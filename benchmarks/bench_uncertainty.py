"""Experiment F2-UE — uncertainty elimination (Sec. 2.2.2).

Claims measured:
  * Trajectory UE: smoothing cuts volatility; inference-based route
    recovery beats straight-line densification on sparse network data;
    calibration unifies heterogeneous views of the same route.
  * STID UE: spatiotemporal interpolation restores unsampled values, and
    its error grows as the spatiotemporal range covered expands (the
    degradation the paper notes).
"""

import numpy as np

from conftest import print_table

from repro.cleaning import (
    GaussianProcessInterpolator,
    calibrate_nearest,
    grid_anchors,
    idw_interpolate,
    moving_average,
    recover_route,
)
from repro.core import Point, accuracy_error, records_from_series, synchronized_error
from repro.localization import kalman_refine
from repro.synth import (
    RoadNetwork,
    SmoothField,
    add_gaussian_noise,
    correlated_random_walk,
    random_sensor_sites,
)


def test_trajectory_smoothing(rng, box, benchmark):
    truth = correlated_random_walk(rng, 250, box, speed_mean=5)
    noisy = add_gaussian_noise(truth, rng, 10.0)
    ma = benchmark(moving_average, noisy, 5)
    kalman = kalman_refine(noisy, 1.0, 10.0)
    rows = [
        ("raw", accuracy_error(noisy, truth)),
        ("moving average", accuracy_error(ma, truth)),
        ("Kalman smoother", accuracy_error(kalman, truth)),
    ]
    print_table("F2-UE: smoothing-based UE, mean error (m)", ["method", "error"], rows)
    assert accuracy_error(ma, truth) < accuracy_error(noisy, truth)
    assert accuracy_error(kalman, truth) < accuracy_error(noisy, truth)


def test_route_recovery_vs_sampling_rate(rng, benchmark):
    """Inference-based UE restores sparse trajectories; gain grows with
    sparsity (low-sampling-rate setting of [137])."""
    net = RoadNetwork.grid(8, 8, 250.0)
    route = net.random_route(rng, min_edges=9)
    truth = net.trajectory_along_path(route, speed=12.0, interval=1.0)
    rows = []
    gains = []
    for keep_every in (5, 10, 20):
        sparse = add_gaussian_noise(truth.downsample(keep_every), rng, 8.0)
        recovered = recover_route(net, sparse)
        err_linear = synchronized_error(truth, sparse)
        err_recovered = synchronized_error(truth, recovered)
        rows.append((keep_every, err_linear, err_recovered))
        gains.append(err_linear - err_recovered)
    benchmark(recover_route, net, add_gaussian_noise(truth.downsample(10), rng, 8.0))
    print_table(
        "F2-UE: route recovery vs sampling (sync error, m)",
        ["keep_every", "linear interp", "network recovery"],
        rows,
    )
    assert all(r[2] < r[1] for r in rows)  # recovery wins at every rate


def test_calibration_unifies_views(rng, box, benchmark):
    truth = correlated_random_walk(rng, 150, box, speed_mean=5)
    view_a = add_gaussian_noise(truth, rng, 10.0)
    view_b = add_gaussian_noise(truth, rng, 10.0)
    anchors = grid_anchors(box, 40.0)
    cal_a = benchmark(calibrate_nearest, view_a, anchors)
    cal_b = calibrate_nearest(view_b, anchors)
    agree_raw = np.mean(
        [1.0 if (p.x, p.y) == (q.x, q.y) else 0.0 for p, q in zip(view_a, view_b)]
    )
    agree_cal = np.mean(
        [1.0 if (p.x, p.y) == (q.x, q.y) else 0.0 for p, q in zip(cal_a, cal_b)]
    )
    rows = [("raw views", float(agree_raw)), ("calibrated views", float(agree_cal))]
    print_table(
        "F2-UE: calibration, fraction of identical representations",
        ["representation", "agreement"],
        rows,
    )
    assert agree_cal > agree_raw


def test_interpolation_degrades_with_range(rng, big_box, benchmark):
    """The paper: 'interpolation performance degrades with the expansion of
    the spatiotemporal range covered'.  Fixed sensor count over growing
    regions -> growing error."""
    from repro.core import BBox

    # One field over the full region with texture everywhere, so growing
    # the covered sub-range dilutes sensor density without changing the
    # phenomenon's local difficulty.
    field = SmoothField(
        np.random.default_rng(7), big_box, n_bumps=40, length_scale=150, amplitude=8
    )
    rows = []
    errors = []
    for side in (500.0, 1000.0, 2000.0):
        region = BBox(0, 0, side, side)
        sites = random_sensor_sites(np.random.default_rng(8), 25, region)
        series = field.sample_sensors(
            sites, np.arange(0, 600, 60.0), np.random.default_rng(9), noise_sigma=0.3
        )
        records = records_from_series(series)
        qrng = np.random.default_rng(10)
        errs = []
        for _ in range(60):
            q = Point(qrng.uniform(0, side), qrng.uniform(0, side))
            t = float(qrng.uniform(0, 540))
            est = idw_interpolate(records, q, t, time_scale=0.5)
            errs.append(abs(est - field.value(q, t)))
        rows.append((int(side), float(np.mean(errs))))
        errors.append(float(np.mean(errs)))
    benchmark(idw_interpolate, records, Point(250, 250), 300.0)
    print_table(
        "F2-UE: IDW error vs region side (25 sensors fixed)",
        ["region_side_m", "mean_abs_error"],
        rows,
    )
    assert errors[-1] > errors[0]  # degradation with range


def test_gp_vs_idw(rng, box, benchmark):
    field = SmoothField(rng, box, n_bumps=4, length_scale=250)
    sites = random_sensor_sites(rng, 30, box)
    series = field.sample_sensors(sites, np.arange(0, 600, 60.0), rng, noise_sigma=0.3)
    records = records_from_series(series)
    gp = GaussianProcessInterpolator(250, 600, 5.0, 0.3).fit(records)
    idw_err, gp_err = [], []
    for _ in range(25):
        q = Point(rng.uniform(100, 900), rng.uniform(100, 900))
        t = float(rng.uniform(50, 550))
        truth = field.value(q, t)
        idw_err.append(abs(idw_interpolate(records, q, t, time_scale=0.5) - truth))
        gp_err.append(abs(gp.predict(q, t)[0] - truth))
    benchmark(gp.predict, Point(500, 500), 300.0)
    rows = [("IDW", float(np.mean(idw_err))), ("GP (kriging)", float(np.mean(gp_err)))]
    print_table("F2-UE: STID interpolation mean abs error", ["method", "error"], rows)
    assert np.mean(gp_err) <= np.mean(idw_err) + 0.2
