import numpy as np
import pytest

from repro.core import Trajectory
from repro.reduction import (
    decode_trajectory,
    encode_trajectory,
    max_sed_error,
    simplify_then_encode,
    trajectory_byte_ratio,
)
from repro.synth import correlated_random_walk


@pytest.fixture
def long_walk(rng, big_box):
    return correlated_random_walk(rng, 400, big_box, speed_mean=8)


class TestCodec:
    def test_roundtrip_within_quantization(self, long_walk):
        blob = encode_trajectory(long_walk, space_scale=10.0, time_scale=10.0)
        back = decode_trajectory(blob)
        assert len(back) == len(long_walk)
        worst = max(a.distance_to(b) for a, b in zip(long_walk.points, back.points))
        # Quantization grid 0.1 m -> max error sqrt(2)*0.05.
        assert worst <= 0.08
        assert np.allclose(back.times, long_walk.times, atol=0.051)

    def test_exact_on_grid_aligned_data(self):
        from repro.core import TrajectoryPoint

        t = Trajectory(
            [TrajectoryPoint(i * 0.5, i * 1.5, float(i)) for i in range(50)]
        )
        back = decode_trajectory(encode_trajectory(t, 10.0, 10.0))
        assert back == t

    def test_compression_beats_raw(self, long_walk):
        blob = encode_trajectory(long_walk)
        assert trajectory_byte_ratio(long_walk, blob) > 4.0

    def test_empty(self):
        blob = encode_trajectory(Trajectory([]))
        assert len(decode_trajectory(blob)) == 0

    def test_single_point(self):
        from repro.core import TrajectoryPoint

        t = Trajectory([TrajectoryPoint(12.3, -4.5, 7.0)])
        back = decode_trajectory(encode_trajectory(t))
        assert back[0].point.distance_to(t[0].point) < 0.1

    def test_object_id_passthrough(self, long_walk):
        back = decode_trajectory(encode_trajectory(long_walk), "veh-9")
        assert back.object_id == "veh-9"

    def test_scale_validated(self, long_walk):
        with pytest.raises(ValueError):
            encode_trajectory(long_walk, space_scale=0.0)

    def test_coarser_grid_smaller_payload(self, long_walk):
        fine = encode_trajectory(long_walk, space_scale=100.0)
        coarse = encode_trajectory(long_walk, space_scale=1.0)
        assert len(coarse) < len(fine)


class TestTwoStage:
    def test_simplify_then_encode_bounds_error(self, long_walk):
        eps = 10.0
        blob = simplify_then_encode(long_walk, eps, 10.0, 10.0)
        restored = decode_trajectory(blob)
        assert max_sed_error(long_walk, restored) <= eps + 0.2

    def test_two_stage_much_smaller_than_encode_alone(self, long_walk):
        plain = encode_trajectory(long_walk)
        staged = simplify_then_encode(long_walk, 10.0)
        assert len(staged) < len(plain) / 2
