"""Online metrics must agree with their batch counterparts.

Property-style checks: finite streams (clean and corrupted with
:mod:`repro.synth.corrupt` injectors) are fed reading-by-reading into
:class:`repro.ingest.OnlineSensorStats`, and every snapshot dimension is
compared against the batch metric from :mod:`repro.core.quality` (or
:mod:`repro.cleaning.screen`) computed on the same finite collection.
"""

import numpy as np
import pytest

from repro.cleaning import speed_violations
from repro.core import (
    Dimension,
    Point,
    STSeries,
    completeness,
    mean_latency,
    precision_jitter,
    redundancy_ratio,
    staleness,
    time_sparsity,
)
from repro.ingest import IngestEvent, OnlineSensorStats, Welford, WindowedSensorStats
from repro.synth import (
    SmoothField,
    add_gaussian_noise,
    correlated_random_walk,
    delay_arrivals,
    duplicate_records,
    spike_values,
)

TOL = 1e-9


def _feed(stats, records, arrivals=None):
    for i, r in enumerate(records):
        arrival = None if arrivals is None else float(arrivals[i])
        stats.update(IngestEvent.from_record(r, arrival))
    return stats


def _series(rng, box, n=120, interval=5.0, drop_rate=0.0):
    field = SmoothField(rng, box)
    loc = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    times = np.arange(0.0, n * interval, interval)
    if drop_rate > 0:
        keep = np.concatenate(
            [[True], rng.random(len(times) - 2) >= drop_rate, [True]]
        )
        times = times[keep]
    values = [field.value(loc, float(t)) for t in times]
    return STSeries("s0", loc, times, values)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("drop_rate", [0.0, 0.3])
def test_completeness_matches_batch(box, seed, drop_rate):
    rng = np.random.default_rng(seed)
    series = _series(rng, box, interval=5.0, drop_rate=drop_rate)
    records = series.records()
    stats = _feed(OnlineSensorStats(expected_interval=5.0), records)
    want = completeness([r.t for r in records], records[0].t, records[-1].t, 5.0)
    got = stats.snapshot()[Dimension.COMPLETENESS]
    assert got == pytest.approx(want, abs=TOL)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_completeness_with_irregular_times(box, seed):
    """Jittered (non-grid) sampling times still match the batch slot count."""
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, 500.0, size=90))
    times = np.unique(times)
    series = STSeries("s0", Point(1, 2), times, np.zeros(len(times)))
    records = series.records()
    stats = _feed(OnlineSensorStats(expected_interval=7.0), records)
    want = completeness([r.t for r in records], records[0].t, records[-1].t, 7.0)
    assert stats.snapshot()[Dimension.COMPLETENESS] == pytest.approx(want, abs=TOL)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_redundancy_matches_batch_on_duplicated_stream(box, seed):
    rng = np.random.default_rng(seed)
    series = _series(rng, box)
    records = duplicate_records(series.records(), rng, rate=0.4, time_jitter=0.1)
    stats = _feed(OnlineSensorStats(space_eps=1.0, time_eps=0.5), records)
    want = redundancy_ratio(records, space_eps=1.0, time_eps=0.5)
    assert stats.snapshot()[Dimension.REDUNDANCY] == pytest.approx(want, abs=TOL)


def test_staleness_matches_batch(rng, box):
    series = _series(rng, box)
    records = series.records()
    stats = _feed(OnlineSensorStats(), records)
    now = records[-1].t + 42.0
    assert stats.snapshot(now=now)[Dimension.STALENESS] == pytest.approx(
        staleness(records, now), abs=TOL
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_precision_jitter_matches_batch(box, seed):
    """Welford jitter over a noisy trajectory equals the batch estimator."""
    rng = np.random.default_rng(seed)
    traj = add_gaussian_noise(
        correlated_random_walk(rng, 150, box, speed_mean=5.0), rng, sigma=8.0
    )
    stats = OnlineSensorStats()
    for p in traj:
        stats.update(IngestEvent.from_point("veh-1", p))
    assert stats.snapshot()[Dimension.PRECISION] == pytest.approx(
        precision_jitter(traj), rel=1e-9
    )
    assert stats.snapshot()[Dimension.TIME_SPARSITY] == pytest.approx(
        time_sparsity(traj), rel=1e-9
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_latency_matches_batch(box, seed):
    rng = np.random.default_rng(seed)
    series = _series(rng, box)
    records = series.records()
    arrivals = delay_arrivals(np.array([r.t for r in records]), rng, mean_delay=3.0)
    stats = _feed(OnlineSensorStats(), records, arrivals)
    want = mean_latency([r.t for r in records], arrivals)
    assert stats.snapshot()[Dimension.LATENCY] == pytest.approx(want, rel=1e-9)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_value_consistency_matches_speed_violations(box, seed):
    """Online consistency = 1 - (batch SCREEN violations / pairs) on the
    same spiked series (the corrupted-stream requirement)."""
    rng = np.random.default_rng(seed)
    series = _series(rng, box)
    spiked, _ = spike_values(series, rng, rate=0.1, magnitude=25.0)
    records = spiked.records()
    stats = _feed(OnlineSensorStats(value_rate_bounds=(-1.0, 1.0)), records)
    violations = speed_violations(spiked.times, spiked.values, -1.0, 1.0)
    want = 1.0 - violations / (len(records) - 1)
    assert stats.snapshot()[Dimension.CONSISTENCY] == pytest.approx(want, abs=TOL)


def test_data_volume_counts_every_reading(rng, box):
    series = _series(rng, box)
    stats = _feed(OnlineSensorStats(), series.records())
    assert stats.snapshot()[Dimension.DATA_VOLUME] == len(series)


def test_empty_stats_snapshot_is_minimal():
    report = OnlineSensorStats().snapshot(now=10.0)
    assert report[Dimension.DATA_VOLUME] == 0.0
    assert Dimension.STALENESS not in report
    assert Dimension.PRECISION not in report


class TestWelford:
    def test_matches_numpy(self, rng):
        xs = rng.normal(3.0, 2.0, size=500)
        w = Welford()
        for x in xs:
            w.push(float(x))
        assert w.mean == pytest.approx(float(np.mean(xs)), rel=1e-12)
        assert w.variance == pytest.approx(float(np.var(xs)), rel=1e-9)

    def test_combine_equals_sequential(self, rng):
        xs = rng.normal(0.0, 1.0, size=301)
        a, b, whole = Welford(), Welford(), Welford()
        for x in xs[:140]:
            a.push(float(x))
        for x in xs[140:]:
            b.push(float(x))
        for x in xs:
            whole.push(float(x))
        merged = Welford.combine(a, b)
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-9)


class TestWindowedStats:
    def _events(self, rng, box, n=200, interval=5.0):
        series = _series(rng, box, n=n, interval=interval)
        return [IngestEvent.from_record(r) for r in series.records()]

    def test_window_covering_stream_equals_cumulative(self, rng, box):
        events = self._events(rng, box)
        span = events[-1].t - events[0].t
        windowed = WindowedSensorStats(span * 2, expected_interval=5.0)
        cumulative = OnlineSensorStats(expected_interval=5.0)
        for ev in events:
            windowed.update(ev)
            cumulative.update(ev)
        got = windowed.snapshot(now=events[-1].t)
        want = cumulative.snapshot(now=events[-1].t)
        for dim, value in want.values.items():
            assert got[dim] == pytest.approx(value, abs=TOL), dim

    def test_old_degradation_ages_out(self, box):
        """Early spikes stop hurting consistency once the window passes them."""
        rng = np.random.default_rng(5)
        times = np.arange(0.0, 1000.0, 5.0)
        values = np.zeros(len(times))
        values[:40] = np.where(np.arange(40) % 2 == 0, 50.0, -50.0)  # early chaos
        series = STSeries("s0", Point(0, 0), times, values)
        windowed = WindowedSensorStats(200.0, value_rate_bounds=(-1.0, 1.0))
        cumulative = OnlineSensorStats(value_rate_bounds=(-1.0, 1.0))
        for r in series.records():
            windowed.update(IngestEvent.from_record(r))
            cumulative.update(IngestEvent.from_record(r))
        aged = windowed.snapshot()[Dimension.CONSISTENCY]
        forever = cumulative.snapshot()[Dimension.CONSISTENCY]
        assert aged == pytest.approx(1.0)
        assert forever < 0.9

    def test_windowed_staleness_tracks_freshest(self, rng, box):
        events = self._events(rng, box)
        windowed = WindowedSensorStats(100.0)
        for ev in events:
            windowed.update(ev)
        now = events[-1].t + 7.0
        assert windowed.snapshot(now=now)[Dimension.STALENESS] == pytest.approx(7.0)
