import numpy as np
import pytest

from repro.core import Point
from repro.decision import (
    NaiveRecommender,
    UncertainCheckinRecommender,
    hit_rate,
)
from repro.decision.next_location import split_stream
from repro.synth import CheckIn, CheckInWorld, corrupt_checkins, generate_pois


@pytest.fixture
def setup(rng, big_box):
    pois = generate_pois(rng, 50, big_box)
    world = CheckInWorld(
        rng, pois, n_users=15, distance_scale=400.0, preference_concentration=0.3
    )
    stream = world.simulate(rng, 80)
    train, test = split_stream(stream, 0.7)
    return pois, world, train, test


class TestRecommenderBasics:
    def test_empty_pois_rejected(self):
        with pytest.raises(ValueError):
            NaiveRecommender([])

    def test_preferences_normalized(self, setup):
        pois, _, train, _ = setup
        rec = NaiveRecommender(pois).fit(train)
        pref = rec.category_preferences(0)
        assert pref.sum() == pytest.approx(1.0)

    def test_unknown_user_uniform_prior(self, setup):
        pois, _, train, _ = setup
        rec = NaiveRecommender(pois).fit(train)
        pref = rec.category_preferences(9999)
        assert np.allclose(pref, pref[0])

    def test_recommend_shape_and_exclusion(self, setup):
        pois, _, train, _ = setup
        rec = NaiveRecommender(pois).fit(train)
        got = rec.recommend(0, Point(500, 500), k=5, exclude={0, 1, 2})
        assert len(got) == 5
        assert not {0, 1, 2} & set(got)

    def test_distance_discount(self, setup):
        pois, _, train, _ = setup
        # A short distance scale makes proximity dominate category score.
        rec = NaiveRecommender(pois, distance_scale=150.0).fit(train)
        here = pois[0].location
        got = rec.recommend(0, here, k=10)
        dists = [pois[i].location.distance_to(here) for i in got]
        # Recommended venues skew near; median distance well below global.
        all_d = [p.location.distance_to(here) for p in pois]
        assert np.median(dists) <= np.median(all_d)


class TestPreferenceLearning:
    def test_naive_learns_category(self, setup):
        pois, world, _, _ = setup
        food = [p for p in pois if p.category == "food"]
        if len(food) >= 2:
            visits = [CheckIn(0, food[i % len(food)].poi_id, float(i)) for i in range(20)]
            rec = NaiveRecommender(pois).fit(visits)
            pref = rec.category_preferences(0)
            cat_idx = rec.categories.index("food")
            assert pref[cat_idx] == pref.max()

    def test_confusion_matrix_is_stochastic(self, setup):
        pois, _, _, _ = setup
        rec = UncertainCheckinRecommender(pois, mismap_radius=600, mismap_rate=0.5)
        m = rec._confusion
        assert np.allclose(m.sum(axis=0), 1.0)
        assert (m >= 0).all()

    def test_mismap_rate_validated(self, setup):
        pois, _, _, _ = setup
        with pytest.raises(ValueError):
            UncertainCheckinRecommender(pois, mismap_rate=1.0)

    def test_deconvolution_recovers_preference(self, setup):
        """Feed observations drawn through the confusion model and check the
        recovered preference is closer to the truth than raw counts."""
        pois, _, _, _ = setup
        rec = UncertainCheckinRecommender(pois, mismap_radius=500, mismap_rate=0.6)
        k = len(rec.categories)
        true_pref = np.zeros(k)
        true_pref[0] = 0.8
        true_pref[1] = 0.2
        observed = rec._confusion @ true_pref
        recovered, _ = __import__("scipy.optimize", fromlist=["nnls"]).nnls(
            rec._confusion, observed
        )
        recovered = recovered / recovered.sum()
        assert np.abs(recovered - true_pref).sum() < np.abs(observed - true_pref).sum()


class TestHitRate:
    def test_in_unit_interval(self, setup):
        pois, _, train, test = setup
        rec = NaiveRecommender(pois).fit(train)
        hr = hit_rate(rec, test, 5)
        assert 0.0 <= hr <= 1.0

    def test_beats_random_baseline(self, setup):
        pois, _, train, test = setup
        rec = NaiveRecommender(pois).fit(train)
        assert hit_rate(rec, test, 10) > 10 / len(pois) * 0.8

    def test_uncertain_recommender_robust_to_mismaps(self, rng, big_box):
        """Across seeds, soft-assignment should not lose to naive counting
        when check-ins are heavily mis-mapped (and typically wins)."""
        deltas = []
        for seed in range(5):
            r = np.random.default_rng(seed)
            pois = generate_pois(r, 50, big_box)
            world = CheckInWorld(
                r, pois, n_users=12, distance_scale=400.0, preference_concentration=0.2
            )
            stream = world.simulate(r, 80)
            train, test = split_stream(stream, 0.7)
            dirty = corrupt_checkins(train, world, r, 0.0, mismap_rate=0.6, mismap_radius=500)
            naive = NaiveRecommender(pois).fit(dirty)
            soft = UncertainCheckinRecommender(
                pois, mismap_radius=500, mismap_rate=0.6
            ).fit(dirty)
            deltas.append(hit_rate(soft, test, 5) - hit_rate(naive, test, 5))
        assert np.mean(deltas) >= -0.02

    def test_empty_test(self, setup):
        pois, _, train, _ = setup
        assert hit_rate(NaiveRecommender(pois).fit(train), [], 5) == 0.0
