"""Shared reprolint infrastructure: findings, pragmas, baseline, runner.

Rule implementations live in :mod:`tools.reprolint.rules`; this module
holds everything they share — the :class:`Finding` record, parsed
:class:`Module` wrappers with their pragma maps, the
``reprolint_baseline.toml`` waiver file, and :func:`run_reprolint`, the
single entry point the CLI and the tier-1 test both call.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 only
    tomllib = None  # type: ignore[assignment]

#: Every rule reprolint knows about (see tools/reprolint/rules.py).
RULE_IDS = ("R1", "R2", "R3", "R4", "R5", "R6", "R7")

#: Inline suppression: ``# reprolint: disable=R1`` or ``disable=R1,R4``.
PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One structured violation: where, which rule, and why."""

    file: str  # repo-relative posix path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {"file": self.file, "line": self.line, "rule": self.rule, "message": self.message}


def pragma_lines(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line."""
    out: dict[int, set[str]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = PRAGMA_RE.search(line)
        if m:
            out[i] = {part.strip() for part in m.group(1).split(",") if part.strip()}
    return out


@dataclass
class Module:
    """One parsed source file plus the lookups every rule needs."""

    path: Path  # absolute
    rel: str  # repo-relative posix path
    source: str
    tree: ast.Module
    pragmas: dict[int, set[str]]

    @classmethod
    def parse(cls, path: Path, root: Path) -> "Module":
        source = path.read_text(encoding="utf-8")
        return cls(
            path=path,
            rel=path.resolve().relative_to(root.resolve()).as_posix(),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            pragmas=pragma_lines(source),
        )

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.pragmas.get(line, ())


# -- baseline ------------------------------------------------------------------


def _parse_minimal_toml(text: str) -> dict[str, dict[str, object]]:
    """Tiny fallback parser for the baseline's TOML subset (Python 3.10).

    Supports ``[section]`` headers and ``key = value`` lines where the
    value is an integer, a double-quoted string, or an array of
    double-quoted strings — exactly what ``reprolint_baseline.toml`` uses.
    """
    data: dict[str, dict[str, object]] = {}
    section: dict[str, object] | None = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if not raw.strip().startswith('"') else raw.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = data.setdefault(line[1:-1].strip(), {})
            continue
        if "=" not in line or section is None:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if value.startswith("["):
            items = re.findall(r'"([^"]*)"', value)
            section[key] = list(items)
        elif value.startswith('"'):
            section[key] = value.strip('"')
        else:
            try:
                section[key] = int(value.split("#", 1)[0].strip())
            except ValueError:
                continue
    return data


@dataclass
class Baseline:
    """Checked-in waivers: per-file rule exemptions plus the mypy ceiling."""

    waivers: dict[str, set[str]]
    mypy_strict_errors: int | None = None

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(waivers={})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        text = path.read_text(encoding="utf-8")
        if tomllib is not None:
            data = tomllib.loads(text)
        else:  # pragma: no cover - Python 3.10 fallback
            data = _parse_minimal_toml(text)
        waivers = {
            str(file): {str(r) for r in rules}
            for file, rules in data.get("waivers", {}).items()
        }
        mypy = data.get("mypy", {})
        strict = mypy.get("strict_errors")
        return cls(waivers=waivers, mypy_strict_errors=int(strict) if strict is not None else None)

    def is_waived(self, rel: str, rule: str) -> bool:
        return rule in self.waivers.get(rel, ())


#: Default baseline location, relative to the repo root.
DEFAULT_BASELINE = Path("tools") / "reprolint" / "reprolint_baseline.toml"


# -- runner --------------------------------------------------------------------


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def run_reprolint(
    root: Path,
    paths: Iterable[Path] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Run every rule over the tree; returns unsuppressed, unwaived findings.

    ``paths`` restricts the per-module rules (R1/R2/R4) to specific files;
    the tree-level rules (R3 kernel parity, R5 export hygiene) always run
    against ``root`` and silently skip when their anchor files are absent.
    Pragmas suppress findings on their exact line; the baseline waives
    whole (file, rule) pairs.
    """
    from . import rules

    root = Path(root).resolve()
    if baseline is None:
        baseline_path = root / DEFAULT_BASELINE
        baseline = Baseline.load(baseline_path) if baseline_path.exists() else Baseline.empty()

    scan_paths = list(paths) if paths is not None else [root / "src" / "repro"]
    modules: list[Module] = []
    for path in iter_python_files(scan_paths):
        modules.append(Module.parse(path, root))

    findings: list[Finding] = []
    pragma_maps: dict[str, dict[int, set[str]]] = {m.rel: m.pragmas for m in modules}
    for module in modules:
        findings.extend(rules.rule_r1_determinism(module))
        findings.extend(rules.rule_r2_shm_lifecycle(module))
        if module.rel.startswith("src/repro/ingest/"):
            findings.extend(rules.rule_r4_lock_discipline(module))
        findings.extend(rules.rule_r6_pool_discipline(module))
        findings.extend(rules.rule_r7_store_append_discipline(module))
    for finding, pragmas in rules.rule_r3_kernel_parity(root):
        pragma_maps.setdefault(finding.file, pragmas)
        findings.append(finding)
    for finding, pragmas in rules.rule_r5_export_hygiene(root):
        pragma_maps.setdefault(finding.file, pragmas)
        findings.append(finding)

    kept = [
        f
        for f in findings
        if f.rule not in pragma_maps.get(f.file, {}).get(f.line, set())
        and not baseline.is_waived(f.file, f.rule)
    ]
    return sorted(set(kept))
