"""Spatial co-evolving pattern discovery in geo-sensory data (Sec. 2.3.2,
[122]).

Assembler [122] finds groups of sensors whose readings *co-evolve* (change
together) — useful both as an analysis product and as a redundancy signal
for reduction.  This module implements the core of that discovery at
laptop scale:

* :func:`change_series` — robust per-sensor change indicators,
* :func:`coevolution_matrix` — pairwise lagged correlation of changes,
* :func:`find_coevolving_groups` — maximal correlated groups grown from
  seed pairs, with a spatial-proximity constraint (co-evolving sensors are
  expected to be spatially close — the spatial autocorrelation prior).
"""

from __future__ import annotations

import numpy as np

from ..core.stid import STSeries


def change_series(series: STSeries) -> np.ndarray:
    """First differences of the values, standardized (zero mean, unit std)."""
    diffs = np.diff(series.values)
    if diffs.size == 0:
        return diffs
    std = float(diffs.std()) or 1e-12
    return (diffs - diffs.mean()) / std


def lagged_correlation(a: np.ndarray, b: np.ndarray, max_lag: int = 2) -> float:
    """Max absolute Pearson correlation over lags ``-max_lag..max_lag``."""
    n = min(len(a), len(b))
    if n < 3:
        return 0.0
    best = 0.0
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            x, y = a[lag:n], b[: n - lag]
        else:
            x, y = a[: n + lag], b[-lag:n]
        if len(x) < 3:
            continue
        sx, sy = x.std(), y.std()
        if sx < 1e-12 or sy < 1e-12:
            continue
        c = float(np.corrcoef(x, y)[0, 1])
        if abs(c) > abs(best):
            best = c
    return best


def coevolution_matrix(
    series: list[STSeries], max_lag: int = 2
) -> np.ndarray:
    """Symmetric matrix of lagged change correlations between all sensors."""
    changes = [change_series(s) for s in series]
    n = len(series)
    m = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            m[i, j] = m[j, i] = lagged_correlation(changes[i], changes[j], max_lag)
    return m


def find_coevolving_groups(
    series: list[STSeries],
    min_correlation: float = 0.7,
    max_distance: float | None = None,
    max_lag: int = 2,
    min_size: int = 2,
) -> list[list[int]]:
    """Greedy maximal groups of mutually co-evolving, spatially close sensors.

    A group is grown from the strongest unused pair; a sensor joins when its
    correlation with *every* member exceeds ``min_correlation`` and (when
    ``max_distance`` is set) it is within that distance of some member.
    """
    corr = coevolution_matrix(series, max_lag)
    n = len(series)
    used = np.zeros(n, dtype=bool)
    pairs = sorted(
        ((abs(corr[i, j]), i, j) for i in range(n) for j in range(i + 1, n)),
        reverse=True,
    )
    groups: list[list[int]] = []
    for strength, i, j in pairs:
        if strength < min_correlation or used[i] or used[j]:
            continue
        group = [i, j]
        for k in range(n):
            if used[k] or k in group:
                continue
            if all(abs(corr[k, m]) >= min_correlation for m in group):
                if max_distance is not None:
                    near = any(
                        series[k].location.distance_to(series[m].location) <= max_distance
                        for m in group
                    )
                    if not near:
                        continue
                group.append(k)
        if len(group) >= min_size:
            groups.append(sorted(group))
            for m in group:
                used[m] = True
    return groups


def group_purity(groups: list[list[int]], truth: list[set[int]]) -> float:
    """Mean best-overlap (Jaccard) of discovered groups with true groups."""
    if not groups:
        return 0.0
    scores = []
    for g in groups:
        gs = set(g)
        best = max((len(gs & t) / len(gs | t) for t in truth), default=0.0)
        scores.append(best)
    return float(np.mean(scores))
