"""Streaming quality monitor: live per-sensor DQ degradation under faults.

The quality-management-middleware storyline (Sec. 2.4), made live: a
20-sensor fleet streams readings into a sharded ingestion engine whose
gates screen, deduplicate, and reorder each reading before admission.
Mid-stream, :mod:`repro.synth.corrupt` faults are injected into part of
the fleet — duplicates (at-least-once transport), value spikes (faulty
electronics), and dropouts (battery brownout) — and the quality registry's
online metrics show exactly which sensors degraded, on which dimension,
while the stream is still running.  Shutdown accounting comes from the
observability layer (:mod:`repro.obs`): per-gate decision counts are read
off the metrics snapshot rather than the engine's internals.

Run:  PYTHONPATH=src python examples/streaming_quality_monitor.py
"""

import numpy as np

from repro import obs
from repro.core import BBox, Dimension
from repro.ingest import (
    DuplicateGate,
    IngestEngine,
    IngestEvent,
    QualityRegistry,
    RangeGate,
    ReorderGate,
    ReplaySource,
    SpeedScreenGate,
    WindowedSensorStats,
    events_from_series,
    field_stream,
)
from repro.synth import duplicate_records, spike_values

FAULT_T = 600.0  # faults switch on at t = 10 min
T_END = 1200.0
INTERVAL = 5.0
WATCHED = [Dimension.REDUNDANCY, Dimension.CONSISTENCY, Dimension.COMPLETENESS]


def build_stream(rng):
    """A clean first half, then duplicates/spikes/dropouts on sensors 0-2."""
    _, series = field_stream(
        rng, 20, BBox(0, 0, 1000, 1000), 0.0, T_END, INTERVAL, noise_sigma=0.3
    )
    events = []
    for i, s in enumerate(series):
        clean = s.slice_time(0.0, FAULT_T - 1e-9)
        faulty = s.slice_time(FAULT_T, T_END)
        events.extend(events_from_series([clean]))
        if i == 0:  # at-least-once transport: duplicated deliveries
            records = duplicate_records(faulty.records(), rng, rate=0.6, time_jitter=0.2)
            events.extend(IngestEvent.from_record(r) for r in records)
        elif i == 1:  # failing electronics: value spikes
            spiked, _ = spike_values(faulty, rng, rate=0.25, magnitude=30.0)
            events.extend(events_from_series([spiked]))
        elif i == 2:  # brownout: four of five readings lost
            kept = [r for r in faulty.records() if rng.random() > 0.8]
            events.extend(IngestEvent.from_record(r) for r in kept)
        else:  # healthy sensor
            events.extend(events_from_series([faulty]))
    events.sort(key=lambda e: e.arrival_time)
    return events


def fmt(report, dim):
    if dim not in report:
        return "  -  "
    return f"{report[dim]:.3f}"


def main() -> None:
    obs.enable()  # record gate decisions and latencies while the stream runs
    rng = np.random.default_rng(42)
    events = build_stream(rng)
    print(f"{len(events)} readings from 20 sensors; faults on sensors 0-2 after t={FAULT_T:.0f}s")

    registry = QualityRegistry(
        stats_factory=lambda: WindowedSensorStats(
            300.0,  # 5-minute sliding horizon: degradation ages in AND out
            expected_interval=INTERVAL,
            space_eps=1.0,
            time_eps=0.5,
            value_rate_bounds=(-2.0, 2.0),
        )
    )
    engine = IngestEngine(
        n_shards=4,
        gate_factories=[
            lambda: ReorderGate(allowed_lateness=2.0),
            lambda: DuplicateGate(space_eps=1.0, time_eps=0.5),
            lambda: RangeGate(-60.0, 160.0),
            lambda: SpeedScreenGate(-2.0, 2.0),
        ],
        registry=registry,
    )

    # Replay in two phases so we can snapshot live quality mid-stream.
    split = next(i for i, e in enumerate(events) if e.arrival_time >= FAULT_T)
    for phase, chunk in (("before faults", events[:split]), ("after faults", events[split:])):
        ReplaySource(chunk).drive(engine)
        now = chunk[-1].arrival_time
        print(f"\n--- live snapshot {phase} (t={now:.0f}s) ---")
        print("sensor      " + "  ".join(f"{d.value:>12}" for d in WATCHED))
        for sid in registry.sensor_ids[:6]:
            report = registry.snapshot(sid, now=now)
            print(f"{sid:<12}" + "  ".join(f"{fmt(report, d):>12}" for d in WATCHED))

    counters = engine.close()
    snap = obs.OBS.metrics.snapshot()
    print("\n--- shutdown accounting (observability snapshot) ---")
    print(f"{'offered':>24}: {int(snap.counter('repro_ingest_offered_total'))}")
    for (name, pairs), value in sorted(snap.counters.items()):
        if name != "repro_ingest_gate_outcomes_total":
            continue
        labels = dict(pairs)
        print(f"{labels['gate'] + '/' + labels['decision']:>24}: {int(value)}")
    gate_seconds = sum(
        h.total for key, h in snap.histograms.items() if key[0] == "repro_ingest_gate_seconds"
    )
    print(f"{'gate-chain time':>24}: {gate_seconds * 1e3:.1f} ms across 4 shards")
    assert counters.conserved()
    assert snap.counter("repro_ingest_offered_total") == float(counters.offered)
    obs.disable()

    agg = registry.aggregate(now=T_END)
    print("\n--- fleet aggregate (per-dimension mean, paper polarity) ---")
    for dim, value, polarity in agg.to_rows():
        print(f"{dim:>16}: {value:10.3f}  ({polarity})")


if __name__ == "__main__":
    main()
