"""Experiment INDOOR — symbolic indoor SID ([114, 118, 102, 57, 58]).

The indoor setting concentrates several tutorial themes: symbolic
positions, deployment-constrained cleansing, walking-distance queries, and
uncertainty-aware aggregation.  Claims measured:

  * Floor-plan-constrained HMM tracking beats the raw symbolic stream at
    every fault level.
  * Walking-distance kNN corrects the through-the-wall mistakes of
    Euclidean ranking.
  * Expected room occupancy from uncertain positions is exact under
    linearity (validated against Monte-Carlo).
  * Stop-by patterns survive the cleaning pipeline end to end.
"""

import numpy as np

from conftest import print_table

from repro.core import Point
from repro.indoor import (
    RoomHMMTracker,
    euclidean_knn,
    expected_room_occupancy,
    grid_floor,
    indoor_knn,
    observe_rooms,
    raw_room_sequence,
    rooms_within_distance,
    sequence_accuracy,
    simulate_room_walk,
    stop_by_patterns,
)


def test_symbolic_tracking(rng, benchmark):
    floor = grid_floor(4, 4, 10.0)
    rows = []
    for p_detect, p_cross in ((0.9, 0.05), (0.7, 0.12), (0.5, 0.2)):
        raw_acc, hmm_acc = [], []
        for seed in range(5):
            r = np.random.default_rng(seed)
            truth = simulate_room_walk(floor, r, 80, move_prob=0.3)
            readings = observe_rooms(floor, truth, r, p_detect, p_cross)
            raw_acc.append(
                sequence_accuracy(raw_room_sequence(readings, len(truth)), truth)
            )
            hmm_acc.append(
                sequence_accuracy(
                    RoomHMMTracker(floor, p_detect, p_cross).track(readings, len(truth)),
                    truth,
                )
            )
        rows.append(
            (
                f"fn={1 - p_detect:.2f}/fp={p_cross:.2f}",
                float(np.mean(raw_acc)),
                float(np.mean(hmm_acc)),
            )
        )
    truth = simulate_room_walk(floor, rng, 80)
    readings = observe_rooms(floor, truth, rng, 0.7, 0.12)
    benchmark(RoomHMMTracker(floor, 0.7, 0.12).track, readings, len(truth))
    print_table(
        "INDOOR: symbolic tracking epoch accuracy",
        ["fault level", "raw stream", "floor-plan HMM"],
        rows,
    )
    for _, raw, hmm in rows:
        assert hmm > raw


def test_walking_distance_knn(rng, benchmark):
    floor = grid_floor(4, 5, 10.0)
    objects = {
        f"o{i}": Point(rng.uniform(1, 49), rng.uniform(1, 39)) for i in range(30)
    }
    query = Point(9, 9)
    indoor = benchmark(indoor_knn, floor, objects, query, 5)
    euclid = euclidean_knn(objects, query, 5)
    flips = len(
        {oid for oid, _ in euclid} ^ {oid for oid, _ in indoor}
    )
    rows = [
        ("euclidean top-5", ", ".join(oid for oid, _ in euclid)),
        ("walking-distance top-5", ", ".join(oid for oid, _ in indoor)),
        ("symmetric difference", flips),
    ]
    print_table("INDOOR: kNN under the walking metric", ["ranking", "value"], rows)
    # Walking distance can only be larger; ordering typically changes.
    for oid, d in indoor:
        assert d >= query.distance_to(objects[oid]) - 1e-9


def test_expected_occupancy_exact(rng, benchmark):
    floor = grid_floor(3, 3, 10.0)
    rooms = sorted(floor.rooms)
    posteriors = {}
    for i in range(40):
        support = rng.choice(rooms, size=3, replace=False)
        weights = rng.dirichlet([1.0] * 3)
        posteriors[f"o{i}"] = {
            str(room): float(w) for room, w in zip(support, weights)
        }
    occupancy = benchmark(expected_room_occupancy, posteriors)
    # Monte-Carlo check.
    mc = {room: 0.0 for room in rooms}
    n_draws = 3000
    for _ in range(n_draws):
        for oid, post in posteriors.items():
            keys = list(post)
            probs = np.array([post[k] for k in keys])
            mc[str(rng.choice(keys, p=probs / probs.sum()))] += 1.0
    mc = {room: count / n_draws for room, count in mc.items()}
    worst = max(abs(occupancy.get(room, 0.0) - mc[room]) for room in rooms)
    rows = [("total expected objects", sum(occupancy.values())),
            ("max |exact - MC|", worst)]
    print_table("INDOOR: probabilistic room occupancy", ["metric", "value"], rows)
    assert sum(occupancy.values()) == pytest.approx(40.0)
    assert worst < 0.15


import pytest  # noqa: E402  (used by the approx assertion above)


def test_stop_by_mining_end_to_end(rng, benchmark):
    """Pipeline: simulate -> observe with faults -> HMM clean -> mine."""
    floor = grid_floor(3, 3, 10.0)
    cleaned = []
    for seed in range(6):
        r = np.random.default_rng(seed)
        truth = simulate_room_walk(floor, r, 70, start_room="r0-0", move_prob=0.25)
        readings = observe_rooms(floor, truth, r, 0.75, 0.1)
        cleaned.append(
            RoomHMMTracker(floor, 0.75, 0.1).track(readings, len(truth))
        )
    patterns = benchmark(stop_by_patterns, cleaned, 3, 3, 3)
    rows = [(str(list(pat)), count) for pat, count in sorted(patterns.items(), key=lambda kv: -kv[1])[:5]]
    print_table("INDOOR: stop-by patterns from cleaned streams", ["pattern", "support"], rows)
    assert len(patterns) > 0
    assert ("r0-0",) in patterns  # the shared start room must surface
