import numpy as np
import pytest

from repro.core import BBox, Point
from repro.synth import (
    AccessPoint,
    RadioMap,
    deploy_access_points,
    measure_ranges,
    measure_vector,
)


@pytest.fixture
def ap():
    return AccessPoint("ap", Point(0, 0), tx_power_dbm=-30.0, path_loss_exponent=2.0)


class TestAccessPoint:
    def test_rssi_decreases_with_distance(self, ap):
        assert ap.expected_rssi(Point(10, 0)) > ap.expected_rssi(Point(100, 0))

    def test_rssi_log_distance_law(self, ap):
        # n=2: each decade of distance costs 20 dB.
        near = ap.expected_rssi(Point(10, 0))
        far = ap.expected_rssi(Point(100, 0))
        assert near - far == pytest.approx(20.0)

    def test_rssi_clamped_at_1m(self, ap):
        assert ap.expected_rssi(Point(0.1, 0)) == ap.expected_rssi(Point(1, 0))

    def test_distance_inversion_roundtrip(self, ap):
        d = ap.distance_from_rssi(ap.expected_rssi(Point(57, 0)))
        assert d == pytest.approx(57.0, rel=1e-9)

    def test_measure_adds_noise(self, ap, rng):
        p = Point(50, 0)
        vals = [ap.measure_rssi(p, rng, noise_db=4.0) for _ in range(200)]
        assert np.std(vals) == pytest.approx(4.0, rel=0.25)
        assert np.mean(vals) == pytest.approx(ap.expected_rssi(p), abs=1.0)

    def test_deploy(self, rng, box):
        aps = deploy_access_points(rng, 7, box)
        assert len(aps) == 7
        assert len({a.ap_id for a in aps}) == 7
        assert all(box.contains(a.location) for a in aps)


class TestRadioMap:
    def test_survey_shape(self, rng, box):
        aps = deploy_access_points(rng, 5, box)
        rm = RadioMap.survey(aps, box, spacing=250.0, rng=rng)
        assert rm.fingerprints.shape == (len(rm), 5)
        assert len(rm.reference_points) == len(rm)

    def test_survey_too_coarse(self, rng):
        aps = deploy_access_points(rng, 2, BBox(0, 0, 10, 10))
        with pytest.raises(ValueError):
            RadioMap.survey(aps, BBox(0, 0, 10, 10), spacing=100.0, rng=rng)

    def test_fingerprints_reflect_geometry(self, rng):
        box = BBox(0, 0, 400, 400)
        aps = [AccessPoint("a", Point(0, 200)), AccessPoint("b", Point(400, 200))]
        rm = RadioMap.survey(aps, box, 100.0, rng, samples_per_point=20, noise_db=1.0)
        # Reference points nearer AP "a" must hear it louder than AP "b".
        for p, row in zip(rm.reference_points, rm.fingerprints):
            if p.x < 150:
                assert row[0] > row[1]
            elif p.x > 250:
                assert row[1] > row[0]

    def test_measure_vector_length(self, rng, box):
        aps = deploy_access_points(rng, 4, box)
        v = measure_vector(aps, Point(10, 10), rng)
        assert v.shape == (4,)


class TestRanging:
    def test_measure_ranges_count(self, rng):
        anchors = [Point(0, 0), Point(100, 0)]
        obs = measure_ranges(anchors, Point(50, 50), rng, noise_m=0.0)
        assert len(obs) == 2
        assert obs[0].distance == pytest.approx(Point(50, 50).distance_to(Point(0, 0)))

    def test_bias_applied(self, rng):
        anchors = [Point(0, 0)]
        obs = measure_ranges(anchors, Point(100, 0), rng, noise_m=0.0, bias_m=5.0)
        assert obs[0].distance == pytest.approx(105.0)

    def test_never_negative(self, rng):
        anchors = [Point(0, 0)]
        for _ in range(50):
            obs = measure_ranges(anchors, Point(1, 0), rng, noise_m=10.0)
            assert obs[0].distance >= 0.0
