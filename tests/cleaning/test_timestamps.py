import numpy as np
import pytest

from repro.cleaning import (
    constrained_repair,
    isotonic_repair,
    order_violations,
    repair_quality,
)
from repro.synth import skew_timestamps


class TestIsotonicRepair:
    def test_already_sorted_unchanged(self):
        t = np.array([0.0, 1.0, 2.0])
        assert np.array_equal(isotonic_repair(t), t)

    def test_result_monotone(self, rng):
        t = rng.normal(0, 10, 100)
        out = isotonic_repair(t)
        assert order_violations(out) == 0

    def test_simple_swap_pooled(self):
        out = isotonic_repair(np.array([0.0, 2.0, 1.0, 3.0]))
        # PAVA pools the violating pair at its mean.
        assert out.tolist() == [0.0, 1.5, 1.5, 3.0]

    def test_l2_optimality_vs_naive_sort(self):
        """PAVA is the L2-minimal monotone repair; sorting generally is not
        closer to the corrupted input."""
        t = np.array([0.0, 5.0, 1.0, 2.0, 8.0])
        pava = isotonic_repair(t)
        srt = np.sort(t)
        assert np.sum((pava - t) ** 2) <= np.sum((srt - t) ** 2) + 1e-9

    def test_strict_eps(self):
        out = isotonic_repair(np.array([0.0, 2.0, 1.0]), strict_eps=0.01)
        assert all(b > a for a, b in zip(out, out[1:]))

    def test_empty(self):
        assert isotonic_repair(np.array([])).size == 0

    def test_recovers_skewed_clock(self, rng):
        truth = np.arange(0, 100, 1.0)
        skewed, _ = skew_timestamps(truth, rng, rate=0.3, max_shift=4.0)
        repaired = isotonic_repair(skewed)
        assert order_violations(repaired) == 0
        assert repair_quality(repaired, truth)["rmse"] <= repair_quality(skewed, truth)["rmse"]


class TestConstrainedRepair:
    def test_gap_bounds_enforced(self, rng):
        truth = np.arange(0, 50, 1.0)
        skewed, _ = skew_timestamps(truth, rng, rate=0.4, max_shift=5.0)
        out = constrained_repair(skewed, min_gap=0.5, max_gap=2.0)
        gaps = np.diff(out)
        assert (gaps >= 0.5 - 1e-9).all() and (gaps <= 2.0 + 1e-9).all()

    def test_valid_input_unchanged(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        out = constrained_repair(t, 0.5, 2.0)
        assert np.array_equal(out, t)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            constrained_repair(np.array([0.0]), min_gap=2.0, max_gap=1.0)
        with pytest.raises(ValueError):
            constrained_repair(np.array([0.0]), min_gap=-1.0, max_gap=1.0)

    def test_improves_rmse_on_uniform_truth(self, rng):
        truth = np.arange(0, 100, 1.0)
        skewed, _ = skew_timestamps(truth, rng, rate=0.3, max_shift=4.0)
        out = constrained_repair(skewed, 0.8, 1.2)
        assert repair_quality(out, truth)["rmse"] <= repair_quality(skewed, truth)["rmse"]


class TestHelpers:
    def test_order_violations_counts(self):
        assert order_violations(np.array([0, 2, 1, 3, 2])) == 2

    def test_repair_quality_shapes(self):
        with pytest.raises(ValueError):
            repair_quality(np.zeros(3), np.zeros(4))

    def test_repair_quality_values(self):
        q = repair_quality(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert q["max_abs"] == 2.0
        assert q["rmse"] == pytest.approx(np.sqrt(2.5))
