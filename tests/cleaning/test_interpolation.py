import numpy as np
import pytest

from repro.core import BBox, Point, STGrid, STRecord, STSeries, grid_rmse, records_from_series
from repro.cleaning import (
    GaussianProcessInterpolator,
    fill_grid,
    idw_interpolate,
    temporal_interpolate,
)
from repro.synth import SmoothField, random_sensor_sites


@pytest.fixture
def field_setup(rng, box):
    field = SmoothField(rng, box, n_bumps=4, length_scale=250.0, drift_speed=0.05)
    sites = random_sensor_sites(rng, 30, box)
    times = np.arange(0, 600, 60.0)
    series = field.sample_sensors(sites, times, rng, noise_sigma=0.3)
    return field, records_from_series(series)


class TestIDW:
    def test_exact_at_sample(self):
        recs = [STRecord(0, 0, 0, 5.0), STRecord(10, 0, 0, 9.0)]
        assert idw_interpolate(recs, Point(0, 0), 0.0) == 5.0

    def test_within_range_of_values(self):
        recs = [STRecord(0, 0, 0, 5.0), STRecord(10, 0, 0, 9.0)]
        v = idw_interpolate(recs, Point(5, 0), 0.0)
        assert 5.0 <= v <= 9.0

    def test_weights_favor_nearer(self):
        recs = [STRecord(0, 0, 0, 0.0), STRecord(10, 0, 0, 10.0)]
        v = idw_interpolate(recs, Point(2, 0), 0.0)
        assert v < 5.0

    def test_time_scale_matters(self):
        # Two records at same place, different times and values.
        recs = [STRecord(0, 0, 0.0, 0.0), STRecord(0, 0, 100.0, 10.0)]
        near_t0 = idw_interpolate(recs, Point(0, 1), 10.0, time_scale=1.0)
        near_t1 = idw_interpolate(recs, Point(0, 1), 90.0, time_scale=1.0)
        assert near_t0 < near_t1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            idw_interpolate([], Point(0, 0), 0.0)

    def test_k_restriction(self, field_setup):
        field, recs = field_setup
        full = idw_interpolate(recs, Point(500, 500), 300.0, k=None)
        knn = idw_interpolate(recs, Point(500, 500), 300.0, k=5)
        assert np.isfinite(full) and np.isfinite(knn)

    def test_accuracy_on_smooth_field(self, field_setup, rng):
        field, recs = field_setup
        errs = []
        for _ in range(15):
            q = Point(rng.uniform(100, 900), rng.uniform(100, 900))
            t = float(rng.uniform(50, 550))
            errs.append(abs(idw_interpolate(recs, q, t, time_scale=0.5) - field.value(q, t)))
        assert np.mean(errs) < 2.0


class TestGP:
    def test_fit_required(self):
        gp = GaussianProcessInterpolator()
        with pytest.raises(RuntimeError):
            gp.predict(Point(0, 0), 0.0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessInterpolator(length_scale_m=0)

    def test_interpolates_training_points(self, field_setup):
        _, recs = field_setup
        gp = GaussianProcessInterpolator(250, 600, 5, 0.3).fit(recs[:50])
        r = recs[0]
        mean, std = gp.predict(r.point, r.t)
        assert abs(mean - r.value) < 1.0
        assert std < 1.0

    def test_uncertainty_grows_away_from_data(self, field_setup):
        _, recs = field_setup
        gp = GaussianProcessInterpolator(250, 600, 5, 0.3).fit(recs[:50])
        r = recs[0]
        _, near_std = gp.predict(r.point, r.t)
        _, far_std = gp.predict(Point(10_000, 10_000), r.t)
        assert far_std > near_std

    def test_gp_beats_idw_on_gp_like_field(self, field_setup, rng):
        field, recs = field_setup
        gp = GaussianProcessInterpolator(250, 600, 5.0, 0.3).fit(recs)
        gp_err, idw_err = [], []
        for _ in range(15):
            q = Point(rng.uniform(100, 900), rng.uniform(100, 900))
            t = float(rng.uniform(50, 550))
            truth = field.value(q, t)
            gp_err.append(abs(gp.predict(q, t)[0] - truth))
            idw_err.append(abs(idw_interpolate(recs, q, t, time_scale=0.5) - truth))
        assert np.mean(gp_err) <= np.mean(idw_err) + 0.2

    def test_predict_many_matches_single(self, field_setup):
        _, recs = field_setup
        gp = GaussianProcessInterpolator().fit(recs[:40])
        queries = [(Point(100, 100), 50.0), (Point(500, 500), 100.0)]
        batch = gp.predict_many(queries)
        singles = [gp.predict(p, t)[0] for p, t in queries]
        assert np.allclose(batch, singles)


class TestFillGrid:
    def test_fills_all_missing(self, rng, box):
        field = SmoothField(rng, box, n_bumps=3)
        truth = field.truth_grid(cell_size=250, t_step=300, t_start=0, t_end=600)
        holey = truth.copy()
        mask = rng.random(holey.values.shape) < 0.5
        holey.values[mask] = np.nan
        filled = fill_grid(holey, method="idw")
        assert filled.missing_fraction() == 0.0

    def test_observed_cells_untouched(self, rng, box):
        field = SmoothField(rng, box, n_bumps=3)
        truth = field.truth_grid(250, 300, 0, 600)
        holey = truth.copy()
        holey.values[0, 0, 0] = np.nan
        filled = fill_grid(holey)
        keep = ~np.isnan(holey.values)
        assert np.array_equal(filled.values[keep], holey.values[keep])

    def test_filled_values_close_to_truth(self, rng, box):
        field = SmoothField(rng, box, n_bumps=3, length_scale=300)
        truth = field.truth_grid(200, 300, 0, 600)
        holey = truth.copy()
        mask = rng.random(holey.values.shape) < 0.3
        holey.values[mask] = np.nan
        filled = fill_grid(holey, method="idw")
        assert grid_rmse(truth, filled) < 3.0

    def test_unknown_method(self, rng, box):
        field = SmoothField(rng, box)
        g = field.truth_grid(500, 300, 0, 300)
        with pytest.raises(ValueError):
            fill_grid(g, method="magic")

    def test_all_missing_rejected(self, box):
        g = STGrid.empty(box, 0, 100, 500, 100)
        with pytest.raises(ValueError):
            fill_grid(g)


class TestTemporalInterpolate:
    def test_resamples_onto_grid(self):
        s = STSeries("s", Point(0, 0), [0.0, 10.0], [0.0, 10.0])
        out = temporal_interpolate(s, np.array([0.0, 5.0, 10.0]))
        assert out.values.tolist() == [0.0, 5.0, 10.0]

    def test_empty_rejected(self):
        s = STSeries("s", Point(0, 0), [], [])
        with pytest.raises(ValueError):
            temporal_interpolate(s, np.array([0.0]))
