"""Score→weight mapping and quality-weighted exploitation primitives.

The paper's exploitation argument: low-quality data should be *used with
confidence weights*, not discarded.  This module turns composite QoD
scores into ``(0, 1]`` weights and provides the weighted counterparts of
the three exploitation primitives the benchmark measures —

* **weighted kNN ranking** lives in the store
  (:meth:`repro.querying.distributed.PartitionedStore.knn_many` with
  ``weighted=True``); :func:`point_weights` builds its per-point weight
  vector from per-sensor weights;
* **weighted aggregation** — :func:`weighted_mean`;
* **weighted interpolation** — :func:`weighted_idw_interpolate`, IDW
  whose kernel is multiplied by each source's quality weight.

Weights are deliberately capped at 1.0: the store's best-first kNN
pruning divides distances by weights, and ``w <= 1`` keeps every
partition lower bound valid (weighted distance ≥ raw distance ≥ box
bound), so weighted search stays exact.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.geometry import Point
from ..core.stid import STRecord
from .checks import QodScore
from .config import resolve_weight_floor, resolve_weight_power


def quality_weights(
    scores: Mapping[str, QodScore] | Mapping[str, float],
    floor: float | None = None,
    power: float | None = None,
) -> dict[str, float]:
    """Map composite scores to ``(0, 1]`` weights: ``floor + (1-floor)·s^p``.

    ``power`` sharpens the separation (the default 2.0 halves the weight
    of a 0.7-score sensor relative to linear); ``floor`` keeps even a
    zero-score sensor minimally represented so coverage never collapses
    to zero in a region where every sensor is bad.  Both default through
    the ``REPRO_QOD_*`` environment resolvers.
    """
    f = resolve_weight_floor(floor)
    p = resolve_weight_power(power)
    if not 0.0 < f <= 1.0:
        raise ValueError("floor must lie in (0, 1]")
    out: dict[str, float] = {}
    for sensor_id, score in scores.items():
        s = score.composite if isinstance(score, QodScore) else float(score)
        s = min(1.0, max(0.0, s))
        out[sensor_id] = f + (1.0 - f) * s**p
    return out


def point_weights(
    sources: Sequence[str],
    weights: Mapping[str, float],
    default: float = 1.0,
) -> np.ndarray:
    """Per-point weight vector for a store whose point ``i`` came from
    ``sources[i]``.

    Unknown sources get ``default`` (a sensor the registry has not seen
    is trusted until evidence arrives) — the same convention the store
    applies to points appended after ``set_quality_weights``.
    """
    return np.array([float(weights.get(s, default)) for s in sources], dtype=float)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Quality-weighted aggregation of one region's readings."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError("values and weights must align")
    if v.size == 0:
        raise ValueError("cannot aggregate zero readings")
    total = float(w.sum())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return float((v * w).sum() / total)


def weighted_idw_interpolate(
    records: list[STRecord],
    where: Point,
    when: float,
    source_weights: Mapping[str, float],
    power: float = 2.0,
    time_scale: float = 1.0,
    k: int | None = 12,
    default_weight: float = 1.0,
) -> float:
    """Quality-weighted inverse-distance interpolation at ``(where, when)``.

    Mirrors :func:`repro.cleaning.interpolation.idw_interpolate` — same
    anisotropic space-time metric, same ``k``-nearest restriction, same
    exact-hit short-circuit — but each record's IDW kernel is multiplied
    by its source's quality weight, so a stuck or drifting sensor pulls
    the estimate far less than an equally-near healthy one.  With all
    weights equal it reduces to plain IDW exactly.
    """
    if not records:
        raise ValueError("no records to interpolate from")
    xs = np.array([r.x for r in records])
    ys = np.array([r.y for r in records])
    ts = np.array([r.t for r in records])
    vs = np.array([r.value for r in records])
    qw = np.array(
        [float(source_weights.get(r.source, default_weight)) for r in records]
    )
    if np.any(qw <= 0):
        raise ValueError("source weights must be positive")
    d = np.sqrt(
        (xs - where.x) ** 2 + (ys - where.y) ** 2 + ((ts - when) * time_scale) ** 2
    )
    if k is not None and k < len(records):
        idx = np.argpartition(d, k)[:k]
        d, vs, qw = d[idx], vs[idx], qw[idx]
    exact = d < 1e-9
    if exact.any():
        # Among exact hits, trust the heaviest source (first on ties,
        # matching the unweighted short-circuit when weights are equal).
        hit_w = np.where(exact, qw, -np.inf)
        return float(vs[int(np.argmax(hit_w))])
    w = qw / d**power
    return float((w * vs).sum() / w.sum())
