"""Fleet-scale parallel execution layer (the Sec. 2.3-2.4 scale-out seam).

PR 2 made single-trajectory hot paths vectorized; this package makes the
*fleet-level* workloads — pipeline collections, ablation grids, partitioned
query fan-out, pairwise similarity matrices — run on all cores:

* :mod:`~repro.parallel.executor` — the :class:`Executor` protocol with
  :class:`SerialExecutor` / :class:`ProcessExecutor` backends and the
  deterministic :func:`map_chunks` / :func:`map_reduce` API,
* :mod:`~repro.parallel.pool` — the process-wide
  :class:`WorkerPoolManager`: one warm, prewarmed, health-checked pool per
  ``(workers, start_method)`` key, leased to consumers through
  :func:`get_executor` and torn down by :func:`shutdown_all` (``atexit``),
* :mod:`~repro.parallel.dispatch` — the calibrated serial-vs-parallel cost
  model (:class:`DispatchModel`): each batch routes at its measured
  crossover, overridable via ``REPRO_PARALLEL_DISPATCH``,
* :mod:`~repro.parallel.chunking` — worker-count-independent chunk spans
  and stable per-item seed derivation,
* :mod:`~repro.parallel.shm` — zero-copy shared-memory handoff of the PR-2
  columnar blocks (:class:`SharedArray`, :class:`SharedTrajectoryBatch`)
  plus the reusable :class:`SharedArenaCache` (:func:`get_arena`), so
  repeated fan-out calls stop paying segment create/copy/unlink.

Consumers: :meth:`repro.core.Pipeline.run_many` /
:meth:`~repro.core.Pipeline.run_ablations`,
:class:`repro.querying.PartitionedStore` batched queries,
:func:`repro.analytics.pairwise_distances`, the serving layer's warm
executor, and the Table-1 grid runner (``benchmarks/table1_grid.py``).
Every consumer's ``workers=1`` path is bit-identical to its parallel path
(``tests/test_parallel.py``) — which is also what makes below-crossover
serial downgrades safe.
"""

from .chunking import chunk_spans, derive_seed, derive_seeds
from .dispatch import (
    DISPATCH_ENV,
    DispatchModel,
    calibrate_dispatch,
    dispatch_decision,
    dispatch_mode,
)
from .executor import (
    START_METHOD_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    default_start_method,
    get_executor,
    map_chunks,
    map_reduce,
    resolve_executor,
)
from .pool import PoolLease, PoolStats, WorkerPoolManager, get_pool_manager, shutdown_all
from .shm import (
    ArenaHandle,
    ArrayHandle,
    SharedArenaCache,
    SharedArray,
    SharedTrajectoryBatch,
    TrajectoryBatchHandle,
    close_default_arena,
    get_arena,
)

__all__ = [
    "chunk_spans",
    "derive_seed",
    "derive_seeds",
    "DISPATCH_ENV",
    "DispatchModel",
    "calibrate_dispatch",
    "dispatch_decision",
    "dispatch_mode",
    "START_METHOD_ENV",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "default_start_method",
    "get_executor",
    "map_chunks",
    "map_reduce",
    "resolve_executor",
    "PoolLease",
    "PoolStats",
    "WorkerPoolManager",
    "get_pool_manager",
    "shutdown_all",
    "ArenaHandle",
    "ArrayHandle",
    "SharedArenaCache",
    "SharedArray",
    "SharedTrajectoryBatch",
    "TrajectoryBatchHandle",
    "close_default_arena",
    "get_arena",
]
