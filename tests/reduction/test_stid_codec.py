import numpy as np
import pytest

from repro.reduction import (
    compress_series_lossless,
    decompress_series_lossless,
    ltc_compress,
    ltc_decompress,
    series_byte_ratio,
)
from repro.reduction.stid_codec import (
    BitReader,
    BitWriter,
    decode_varint,
    encode_varint,
    golomb_rice_decode,
    golomb_rice_encode,
    optimal_rice_k,
    zigzag_decode,
    zigzag_encode,
)


class TestBitIO:
    def test_roundtrip_bits(self):
        w = BitWriter()
        w.write_bits(0b10110, 5)
        w.write_bits(0b01, 2)
        r = BitReader(w.getvalue())
        assert r.read_bits(5) == 0b10110
        assert r.read_bits(2) == 0b01

    def test_unary_roundtrip(self):
        w = BitWriter()
        for v in (0, 1, 5, 12):
            w.write_unary(v)
        r = BitReader(w.getvalue())
        assert [r.read_unary() for _ in range(4)] == [0, 1, 5, 12]

    def test_exhausted_stream_raises(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()


class TestVarintZigzag:
    @pytest.mark.parametrize("v", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_varint_roundtrip(self, v):
        buf = bytearray()
        encode_varint(v, buf)
        out, pos = decode_varint(bytes(buf), 0)
        assert out == v and pos == len(buf)

    def test_varint_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())

    @pytest.mark.parametrize("v", [0, 1, -1, 2, -2, 1000, -1000])
    def test_zigzag_roundtrip(self, v):
        assert zigzag_decode(zigzag_encode(v)) == v

    def test_zigzag_order(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]


class TestRice:
    def test_roundtrip(self):
        values = [0, 3, 17, 255, 1, 0, 9]
        for k in (0, 2, 4):
            w = BitWriter()
            golomb_rice_encode(values, k, w)
            r = BitReader(w.getvalue())
            assert golomb_rice_decode(r, len(values), k) == values

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            golomb_rice_encode([-1], 2, BitWriter())

    def test_optimal_k(self):
        assert optimal_rice_k([]) == 0
        assert optimal_rice_k([1, 1, 1]) == 0
        assert optimal_rice_k([16] * 10) == 4


class TestLossless:
    def test_exact_roundtrip_random_walk(self, rng):
        vals = np.round(np.cumsum(rng.normal(0, 0.5, 300)) + 20.0, 2)
        blob = compress_series_lossless(vals, scale=100.0)
        back = decompress_series_lossless(blob)
        assert np.allclose(back, vals, atol=1e-9)

    def test_compression_ratio_on_smooth_data(self, rng):
        vals = np.round(np.sin(np.arange(1000) / 50.0) * 5 + 20, 2)
        blob = compress_series_lossless(vals, 100.0)
        assert series_byte_ratio(vals, blob) > 4.0

    def test_empty_series(self):
        blob = compress_series_lossless(np.array([]))
        assert decompress_series_lossless(blob).size == 0

    def test_single_value(self):
        blob = compress_series_lossless(np.array([42.13]), 100.0)
        assert decompress_series_lossless(blob).tolist() == [42.13]

    def test_negative_values(self, rng):
        vals = np.round(rng.normal(-50, 10, 100), 2)
        back = decompress_series_lossless(compress_series_lossless(vals, 100.0))
        assert np.allclose(back, vals)

    def test_quantization_scale(self):
        vals = np.array([1.234567])
        back = decompress_series_lossless(compress_series_lossless(vals, 100.0))
        assert back[0] == pytest.approx(1.23, abs=0.005)


class TestLTC:
    def test_error_bound_holds(self, rng):
        t = np.arange(500.0)
        vals = np.cumsum(rng.normal(0, 0.4, 500)) + 10
        eps = 1.0
        knots = ltc_compress(t, vals, eps)
        recon = ltc_decompress(knots, t)
        assert np.max(np.abs(recon - vals)) <= eps + 1e-9

    def test_linear_signal_two_knots(self):
        t = np.arange(100.0)
        vals = 0.5 * t + 3.0
        knots = ltc_compress(t, vals, 0.1)
        assert len(knots) == 2

    def test_higher_epsilon_fewer_knots(self, rng):
        t = np.arange(300.0)
        vals = np.cumsum(rng.normal(0, 1.0, 300))
        n_tight = len(ltc_compress(t, vals, 0.5))
        n_loose = len(ltc_compress(t, vals, 5.0))
        assert n_loose <= n_tight

    def test_single_point(self):
        knots = ltc_compress(np.array([0.0]), np.array([7.0]), 1.0)
        assert len(knots) == 1
        assert ltc_decompress(knots, np.array([0.0]))[0] == 7.0

    def test_empty(self):
        assert ltc_compress(np.array([]), np.array([]), 1.0) == []

    def test_unordered_times_rejected(self):
        with pytest.raises(ValueError):
            ltc_compress(np.array([0.0, 0.0, 1.0]), np.zeros(3), 1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ltc_compress(np.arange(3.0), np.zeros(2), 1.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            ltc_compress(np.arange(3.0), np.zeros(3), -1.0)
