"""reprolint: AST-based invariant checks the generic linters cannot express.

The repository's credibility as a reproduction rests on invariants that
``ruff``/``mypy`` do not know about: seeded determinism (``workers=1``
bit-identical to ``workers=N``), the shared-memory unlink-on-error
contract, and every columnar kernel having a scalar reference twin.  This
package runs a two-phase analysis over ``src/repro``: phase 1 parses each
file once into a cached :class:`~tools.reprolint.core.ModuleInfo`
(imports, lock index, per-function summaries) and applies the per-module
rules; phase 2 runs the whole-program rules over the combined index:

* **R1 determinism** — no stdlib ``random``, legacy global-state
  ``np.random.*``, unseeded ``np.random.default_rng()``, or wall-clock
  calls (``time.time``/``datetime.now``/…) in library code.  Genuine
  timing seams (replay pacing, latency observability) carry per-file
  waivers in ``reprolint_baseline.toml``.
* **R2 resource lifecycle (flow-based)** — every
  ``SharedArray``/``SharedTrajectoryBatch`` ``create``/``attach``, arena
  ``.share(...)`` lease, pool lease (``get_executor`` /
  ``PoolManager.acquire``), and obs ``tracer.span`` must release on
  *every* path out of the acquiring scope — early ``return``/``raise``
  paths included — or transfer ownership (``with`` item, call argument,
  returned/yielded value, stored into a container).
* **R3 kernel parity** — every public function in
  ``repro/kernels/{distances,motion,screens}.py`` has a same-named scalar
  twin in ``kernels/reference.py`` and appears in
  ``tests/test_kernels.py``.
* **R4 lock discipline** — in ``repro/ingest`` classes that declare a
  ``*_lock``, attribute writes outside ``__init__`` must sit inside a
  ``with self.<lock>`` block.
* **R5 export hygiene** — each subpackage ``__all__`` matches its
  ``docs/API.md`` section (regenerate with ``python tools/gen_api_docs.py``).
* **R6 pool discipline** — no direct ``ProcessExecutor(...)`` construction
  outside ``repro/parallel``; consumers lease warm pools via
  ``get_executor()`` / ``WorkerPoolManager.acquire()`` so worker processes
  are shared, prewarmed, and torn down by ``shutdown_all()``.
* **R7 store append discipline** — no in-place ``.points`` mutation
  outside the store's own delta tier; admission flows through
  ``PartitionedStore.append`` / ``append_many``.
* **R8 architecture layering** (whole-program) — the ``[layers]``
  manifest in ``reprolint_baseline.toml`` is enforced against the real
  import graph: no eager upward imports, no same-level cycles, and the
  manifest must agree with the ``reprolint-layers`` marker in
  ``docs/ARCHITECTURE.md``.
* **R9 lock order** (whole-program) — the global lock-acquisition graph
  (one level of intra-repo calls resolved) must be acyclic; no blocking
  call (``.join``, ``queue.get``, executor ``.map``, ``time.sleep``, …)
  and no ``await`` while a ``threading`` lock is held.

Run ``python -m tools.reprolint`` from the repo root (``--changed`` for a
git-diff-scoped pre-commit pass, ``--format sarif`` for code scanning;
the incremental cache in ``.reprolint_cache.json`` is on by default).
Findings can be suppressed line-by-line with ``# reprolint: disable=R1``
pragmas or per-file via the checked-in baseline.  The sibling
:mod:`tools.reprolint.mypy_ratchet` keeps the ``mypy --strict`` error
count from rising above its recorded ceiling.
"""

from .core import (
    Baseline,
    Finding,
    LintResult,
    Module,
    ModuleInfo,
    analyze,
    run_reprolint,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Module",
    "ModuleInfo",
    "analyze",
    "run_reprolint",
]
