"""Retained scalar reference implementations for equivalence testing.

These are the seed's per-point Python loops, kept verbatim (modulo the
deterministic ``(distance, item_id)`` tie rule) after the hot paths moved
onto the columnar kernels.  They serve two purposes:

* the property-based suite in ``tests/test_kernels.py`` asserts every
  vectorized path returns *exactly* what the scalar loop returns,
* ``benchmarks/bench_kernels.py`` times them against the kernels to
  document the speedup.

Nothing here should be called on a hot path.
"""

from __future__ import annotations

import math

import numpy as np


def scalar_range(entries, center, radius: float) -> list[int]:
    """Linear-scan disk query: per-entry ``distance_to`` calls (seed path)."""
    return [e.item_id for e in entries if e.point.distance_to(center) <= radius]


def scalar_knn(entries, center, k: int) -> list[int]:
    """Linear-scan kNN with the ``(distance, item_id)`` tie rule."""
    ranked = sorted(entries, key=lambda e: (e.point.distance_to(center), e.item_id))
    return [e.item_id for e in ranked[:k]]


def scalar_speeds(points) -> list[float]:
    """Per-leg speeds via per-sample attribute walks (seed path)."""
    out = []
    for a, b in zip(points, points[1:]):
        out.append(math.hypot(b.x - a.x, b.y - a.y) / (b.t - a.t))
    return out


def scalar_headings(points) -> list[float]:
    """Per-leg headings via per-sample ``atan2`` calls (seed path)."""
    return [math.atan2(b.y - a.y, b.x - a.x) for a, b in zip(points, points[1:])]


def scalar_speed_outliers(traj, max_speed: float) -> list[int]:
    """Both-legs speed screen as an index loop (seed path)."""
    n = len(traj)
    if n < 3:
        return []
    speeds = traj.speeds()
    flagged = []
    for i in range(1, n - 1):
        if speeds[i - 1] > max_speed and speeds[i] > max_speed:
            flagged.append(i)
    return flagged


def scalar_heading_outliers(traj, max_turn: float = 2.8) -> list[int]:
    """Heading-reversal screen as an index loop (seed path)."""
    n = len(traj)
    if n < 3:
        return []
    headings = traj.headings()
    flagged = []
    for i in range(1, n - 1):
        turn = abs(float(headings[i] - headings[i - 1]))
        turn = min(turn, 2.0 * np.pi - turn)
        if turn > max_turn:
            flagged.append(i)
    return flagged


def scalar_zscore_outliers(traj, window: int = 7, threshold: float = 3.0) -> list[int]:
    """Windowed-median robust z-score screen as a per-point loop (seed path)."""
    n = len(traj)
    if n < 3:
        return []
    half = max(1, window // 2)
    xyt = traj.as_xyt()
    residuals = np.empty(n)
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        mx = float(np.median(xyt[lo:hi, 0]))
        my = float(np.median(xyt[lo:hi, 1]))
        residuals[i] = float(np.hypot(xyt[i, 0] - mx, xyt[i, 1] - my))
    mad = float(np.median(np.abs(residuals - np.median(residuals))))
    scale = 1.4826 * mad if mad > 1e-12 else float(np.std(residuals)) or 1e-12
    center = float(np.median(residuals))
    return [i for i in range(n) if (residuals[i] - center) / scale > threshold]
