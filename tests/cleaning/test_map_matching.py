import numpy as np
import pytest

from repro.core import Trajectory, accuracy_error, synchronized_error
from repro.cleaning import HMMMapMatcher, recover_route
from repro.synth import RoadNetwork, add_gaussian_noise


@pytest.fixture
def net():
    return RoadNetwork.grid(5, 5, spacing=200.0)


@pytest.fixture
def trip(net, rng):
    route = net.random_route(rng, min_edges=8)
    return route, net.trajectory_along_path(route, speed=10.0, interval=2.0)


class TestHMMMapMatcher:
    def test_param_validation(self, net):
        with pytest.raises(ValueError):
            HMMMapMatcher(net, emission_sigma=0)

    def test_empty_rejected(self, net):
        with pytest.raises(ValueError):
            HMMMapMatcher(net).match(Trajectory([]))

    def test_noise_free_match_is_exact(self, net, trip):
        route, traj = trip
        result = HMMMapMatcher(net, emission_sigma=5).match(traj)
        assert accuracy_error(result.trajectory(), traj) < 1.0

    def test_matched_points_lie_on_network(self, net, trip, rng):
        _, traj = trip
        noisy = add_gaussian_noise(traj, rng, 15.0)
        result = HMMMapMatcher(net, emission_sigma=15, candidate_radius=80).match(noisy)
        for m in result.matched:
            _, _, d = net.snap(m.position)
            assert d < 1e-6

    def test_matching_reduces_noise(self, net, trip, rng):
        _, traj = trip
        noisy = add_gaussian_noise(traj, rng, 15.0)
        result = HMMMapMatcher(net, emission_sigma=15, candidate_radius=80).match(noisy)
        assert accuracy_error(result.trajectory(), traj) < accuracy_error(noisy, traj)

    def test_route_nodes_exist(self, net, trip, rng):
        _, traj = trip
        noisy = add_gaussian_noise(traj, rng, 10.0)
        result = HMMMapMatcher(net, candidate_radius=60).match(noisy)
        for n in result.route:
            assert n in net.graph

    def test_far_point_still_matched(self, net):
        """Candidate fallback: a point outside every radius snaps globally."""
        from repro.core import TrajectoryPoint

        t = Trajectory([TrajectoryPoint(-500, -500, 0.0)])
        result = HMMMapMatcher(net, candidate_radius=10).match(t)
        assert len(result.matched) == 1


class TestRouteRecovery:
    def test_recovered_is_denser_than_sparse(self, net, trip, rng):
        _, traj = trip
        sparse = traj.downsample(8)
        recovered = recover_route(net, sparse)
        assert len(recovered) >= len(sparse)

    def test_recovery_beats_linear_interpolation(self, net, rng):
        """On an L-shaped route, network inference recovers the corner that
        straight-line interpolation cuts."""
        route = net.shortest_path(0, 2) + net.shortest_path(2, 12)[1:]  # east then north
        traj = net.trajectory_along_path(route, speed=10.0, interval=1.0)
        sparse = traj.downsample(15)
        recovered = recover_route(net, sparse)
        assert synchronized_error(traj, recovered) < synchronized_error(traj, sparse)

    def test_recovered_times_monotonic(self, net, trip, rng):
        _, traj = trip
        sparse = add_gaussian_noise(traj.downsample(6), rng, 8.0)
        recovered = recover_route(net, sparse)
        ts = recovered.times
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_recovered_points_near_network(self, net, trip, rng):
        _, traj = trip
        sparse = traj.downsample(10)
        recovered = recover_route(net, sparse)
        for p in recovered:
            _, _, d = net.snap(p.point)
            assert d < 1.0


class TestCandidateIndex:
    def test_indexed_candidates_match_brute_force(self, rng):
        """The grid edge-index must return exactly the radius-filtered edges."""
        from repro.core.geometry import project_point_to_segment
        from repro.core import Point

        net = RoadNetwork.grid(10, 10, 200.0)
        mm = HMMMapMatcher(net, emission_sigma=10, candidate_radius=60)
        for _ in range(100):
            p = Point(rng.uniform(-100, 1900), rng.uniform(-100, 1900))
            fast = {frozenset(e) for e, _, d in mm._candidates(p) if d <= 60}
            brute = set()
            for u, v in net.graph.edges:
                a, b = net.positions[u], net.positions[v]
                q, _ = project_point_to_segment(p, a, b)
                if p.distance_to(q) <= 60:
                    brute.add(frozenset((u, v)))
            # _candidates truncates to max_candidates by distance; the fast
            # set must be the nearest subset of the brute-force set.
            assert fast <= brute
            if len(brute) <= mm.max_candidates:
                assert fast == brute

    def test_far_point_fallback_still_works(self, rng):
        net = RoadNetwork.grid(4, 4, 100.0)
        mm = HMMMapMatcher(net, candidate_radius=20)
        from repro.core import Point

        cands = mm._candidates(Point(10_000, 10_000))
        assert len(cands) == 1  # global snap fallback
