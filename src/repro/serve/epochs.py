"""Quality-epoch registry: the invalidation backbone of the result cache.

Every partition of the served :class:`~repro.querying.distributed.PartitionedStore`
carries an integer *quality epoch*.  A write that survives the ingest
gates (an admit or repair — a *quality event* in the data a partition
serves) bumps the epoch of every partition whose extent contains the
written point; cached results remember the epoch vector of the partitions
they depend on and are refused the moment any of those epochs moved.  The
mechanism is deliberately conservative: epochs only ever advance, a bump
can only cause extra cache misses, and a stale result can therefore never
be served after a quality event (``tests/serve/test_epochs.py``).

:func:`ingest_epoch_hook` adapts a registry to the
:class:`~repro.ingest.engine.IngestEngine` ``on_admit`` seam, closing the
loop the tutorial's exploitation half asks for: quality metadata produced
at ingest time flows to query consumers at serving time.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from ..ingest.events import IngestEvent


class EpochRegistry:
    """Per-partition monotonic epoch counters (thread-safe).

    Writers (ingest shard workers) call :meth:`bump` / :meth:`bump_point`;
    the serving event loop reads :meth:`snapshot` and :meth:`vector`.
    Epochs only advance, so a reader comparing a remembered vector against
    the live one can race a writer and still never *under*-invalidate.
    """

    def __init__(self, boxes: np.ndarray) -> None:
        """``boxes`` is the ``(n_partitions, 4)`` min_x/min_y/max_x/max_y
        array of partition extents (see
        :attr:`~repro.querying.distributed.PartitionedStore.partition_boxes`)."""
        boxes = np.asarray(boxes, dtype=float)
        if boxes.ndim != 2 or boxes.shape[1] != 4:
            raise ValueError("boxes must be an (n_partitions, 4) array")
        self._boxes = boxes.copy()
        self._epochs = [0] * boxes.shape[0]
        self._bumps = 0
        self._epochs_lock = threading.Lock()

    @property
    def n_partitions(self) -> int:
        return len(self._epochs)

    # -- write side (ingest threads) --------------------------------------------

    def bump(self, partition_ids: Iterable[int]) -> None:
        """Advance the epoch of each listed partition by one."""
        pids = list(partition_ids)
        with self._epochs_lock:
            for pid in pids:
                self._epochs[pid] += 1
            self._bumps += len(pids)

    def bump_all(self) -> None:
        """Advance every partition's epoch (global quality event)."""
        self.bump(range(self.n_partitions))

    def bump_point(self, x: float, y: float) -> tuple[int, ...]:
        """Bump every partition whose extent contains ``(x, y)``.

        A point outside every partition box still changed the served data
        set, so it conservatively bumps *all* partitions.  Returns the
        bumped partition ids.
        """
        pids = self.partitions_containing(x, y)
        if pids:
            self.bump(pids)
        else:
            self.bump_all()
            pids = tuple(range(self.n_partitions))
        return pids

    # -- read side (serving event loop) ------------------------------------------

    def partitions_containing(self, x: float, y: float) -> tuple[int, ...]:
        """Ids of partitions whose closed bbox contains ``(x, y)``."""
        b = self._boxes
        mask = (b[:, 0] <= x) & (b[:, 1] <= y) & (b[:, 2] >= x) & (b[:, 3] >= y)
        return tuple(int(i) for i in np.flatnonzero(mask))

    def epoch(self, partition_id: int) -> int:
        """Current epoch of one partition."""
        with self._epochs_lock:
            return self._epochs[partition_id]

    def snapshot(self) -> tuple[int, ...]:
        """Consistent copy of every partition's epoch."""
        with self._epochs_lock:
            return tuple(self._epochs)

    def vector(self, partition_ids: Sequence[int]) -> tuple[int, ...]:
        """Epochs of the listed partitions, in the order given."""
        with self._epochs_lock:
            return tuple(self._epochs[pid] for pid in partition_ids)

    @property
    def total_bumps(self) -> int:
        """How many (partition, quality-event) bumps ever happened."""
        with self._epochs_lock:
            return self._bumps


def ingest_epoch_hook(epochs: EpochRegistry) -> Callable[[IngestEvent], None]:
    """Adapt a registry to :class:`~repro.ingest.engine.IngestEngine`'s
    ``on_admit`` seam.

    Wire it as ``IngestEngine(..., on_admit=ingest_epoch_hook(epochs))``:
    every gate-admitted (or gate-repaired) reading bumps the epoch of the
    partitions containing its position, synchronously in the shard worker
    — by the time the write is observable in any store, the cache entries
    it could stale are already invalid.
    """

    def hook(event: IngestEvent) -> None:
        epochs.bump_point(event.x, event.y)

    return hook
