"""Continuous trajectory similarity with incremental evaluation
(Sec. 2.3.1/2.3.2, [123]).

Zhang et al. [123] monitor trajectory similarity *continuously* for online
outlier detection: as each new sample of a moving object arrives, its
distance to reference behavior must be refreshed — recomputing from
scratch per update is quadratic over the stream.  This module maintains the
sliding-window cell-signature distance **incrementally**: each arrival
updates only the counters of the cell entering and the cell leaving the
window, so an update costs O(reference set) instead of O(window x
reference set).

* :class:`ContinuousSimilarityMonitor` — per-object sliding windows with
  incremental signature maintenance and an outlier threshold,
* :func:`signature_distance` — the L1 distance between normalized cell
  histograms the monitor maintains.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from ..core.geometry import BBox, Point
from ..core.trajectory import Trajectory

Cell = tuple[int, int]


def cell_signature(points: list[Point], bbox: BBox, cell_size: float) -> Counter:
    """Cell-visit counter of a point list."""
    sig: Counter = Counter()
    for p in points:
        sig[(int((p.x - bbox.min_x) // cell_size), int((p.y - bbox.min_y) // cell_size))] += 1
    return sig


def signature_distance(a: Counter, b: Counter, n_a: int, n_b: int) -> float:
    """L1 distance between the two *normalized* histograms (in [0, 2])."""
    if n_a == 0 or n_b == 0:
        return 2.0
    keys = set(a) | set(b)
    return float(sum(abs(a[k] / n_a - b[k] / n_b) for k in keys))


@dataclass
class MonitorUpdate:
    """Result of one streamed sample."""

    object_id: str
    distance: float
    is_outlier: bool


class ContinuousSimilarityMonitor:
    """Sliding-window *off-route* monitoring of streaming objects.

    The reference is the set of cells normal trajectories visit (with at
    least ``min_support`` visits).  A monitored object's dissimilarity is
    the fraction of its last ``window`` samples falling *outside* that
    support — 0 for an object following known behavior, 1 for a complete
    detour.  The window counter of off-route samples is maintained
    incrementally: each arrival touches only the entering and leaving
    samples, so updates are O(1) regardless of the window size.
    """

    def __init__(
        self,
        reference: list[Trajectory],
        bbox: BBox,
        cell_size: float = 100.0,
        window: int = 20,
        threshold: float = 0.5,
        min_support: int = 2,
    ) -> None:
        if not reference:
            raise ValueError("need reference trajectories")
        if window < 1 or cell_size <= 0:
            raise ValueError("window and cell_size must be positive")
        self.bbox = bbox
        self.cell_size = cell_size
        self.window = window
        self.threshold = threshold
        counts: Counter = Counter()
        for t in reference:
            for p in t:
                counts[self._cell_of(p.point)] += 1
        self._support = {c for c, n in counts.items() if n >= min_support}
        self._windows: dict[str, deque[bool]] = {}  # True = off-route sample
        self._off_counts: dict[str, int] = {}
        self.updates_processed = 0

    def _cell_of(self, p: Point) -> Cell:
        return (
            int((p.x - self.bbox.min_x) // self.cell_size),
            int((p.y - self.bbox.min_y) // self.cell_size),
        )

    def observe(self, object_id: str, p: Point) -> MonitorUpdate:
        """Stream one sample; O(1) incremental window maintenance."""
        self.updates_processed += 1
        win = self._windows.setdefault(object_id, deque())
        off = self._cell_of(p) not in self._support
        win.append(off)
        self._off_counts[object_id] = self._off_counts.get(object_id, 0) + int(off)
        if len(win) > self.window:
            left = win.popleft()
            self._off_counts[object_id] -= int(left)
        d = self._off_counts[object_id] / len(win)
        return MonitorUpdate(object_id, d, d > self.threshold)

    def current_distance(self, object_id: str) -> float:
        """Latest off-route fraction of a monitored object."""
        if object_id not in self._windows:
            raise KeyError(f"unknown object {object_id!r}")
        win = self._windows[object_id]
        return self._off_counts[object_id] / len(win)

    def recompute_from_scratch(self, object_id: str) -> float:
        """Reference implementation: recount the window fully.

        Used by tests/benchmarks to certify the incremental maintenance.
        """
        if object_id not in self._windows:
            raise KeyError(f"unknown object {object_id!r}")
        win = list(self._windows[object_id])
        return sum(win) / len(win)
