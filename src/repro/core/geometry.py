"""Planar and spherical geometry primitives.

All spatial algorithms in this package operate on a small set of primitives
defined here: :class:`Point`, :class:`BBox`, and free functions over
polylines.  Synthetic worlds are planar (coordinates in meters), which keeps
error metrics exact; :func:`haversine_m` is provided for lon/lat data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D point in planar coordinates (meters unless stated otherwise)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in the same units as coordinates."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment from this point to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_array(self) -> np.ndarray:
        """Return the point as a numpy ``(2,)`` float array."""
        return np.array([self.x, self.y], dtype=float)

    def __iter__(self):
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bbox: {self}")

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BBox":
        """Smallest bbox covering ``points``.  Raises on an empty iterable."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a bbox from zero points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside or on the border of the box."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def intersects(self, other: "BBox") -> bool:
        """Whether the two boxes share at least a border point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expand(self, margin: float) -> "BBox":
        """Return a copy grown by ``margin`` on every side."""
        return BBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BBox") -> "BBox":
        """Smallest bbox covering both boxes."""
        return BBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def min_distance_to(self, p: Point) -> float:
        """Minimum Euclidean distance from ``p`` to the box (0 if inside)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_to(self, p: Point) -> float:
        """Maximum Euclidean distance from ``p`` to any point of the box."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return math.hypot(dx, dy)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two planar points."""
    return a.distance_to(b)


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in meters between two lon/lat pairs (degrees)."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def bearing(a: Point, b: Point) -> float:
    """Direction from ``a`` to ``b`` in radians in ``[-pi, pi]``."""
    return math.atan2(b.y - a.y, b.x - a.x)


def angle_difference(theta1: float, theta2: float) -> float:
    """Smallest absolute difference between two angles (radians), in [0, pi]."""
    d = (theta1 - theta2) % (2.0 * math.pi)
    return min(d, 2.0 * math.pi - d)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Linear interpolation between ``a`` (fraction 0) and ``b`` (fraction 1)."""
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)


def project_point_to_segment(p: Point, a: Point, b: Point) -> tuple[Point, float]:
    """Project ``p`` onto segment ``ab``.

    Returns ``(q, t)`` where ``q`` is the closest point on the segment and
    ``t`` in ``[0, 1]`` the normalized position of ``q`` along ``ab``.
    """
    ax, ay = a.x, a.y
    vx, vy = b.x - ax, b.y - ay
    seg_len_sq = vx * vx + vy * vy
    if seg_len_sq == 0.0:
        return a, 0.0
    t = ((p.x - ax) * vx + (p.y - ay) * vy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    return Point(ax + t * vx, ay + t * vy), t


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Euclidean distance from ``p`` to segment ``ab``."""
    q, _ = project_point_to_segment(p, a, b)
    return p.distance_to(q)


def perpendicular_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``.

    Falls back to point distance when ``a == b``.
    """
    vx, vy = b.x - a.x, b.y - a.y
    norm = math.hypot(vx, vy)
    if norm == 0.0:
        return p.distance_to(a)
    return abs(vx * (a.y - p.y) - (a.x - p.x) * vy) / norm


def polyline_length(points: Sequence[Point]) -> float:
    """Total length of the polyline through ``points`` (0 for < 2 points)."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))


def point_along_polyline(points: Sequence[Point], distance: float) -> Point:
    """Point at ``distance`` along the polyline, clamped to its endpoints."""
    if not points:
        raise ValueError("empty polyline")
    if distance <= 0.0:
        return points[0]
    remaining = distance
    for i in range(len(points) - 1):
        seg = points[i].distance_to(points[i + 1])
        if remaining <= seg:
            if seg == 0.0:
                return points[i]
            return interpolate(points[i], points[i + 1], remaining / seg)
        remaining -= seg
    return points[-1]


def synchronized_euclidean_distance(
    p: Point, t: float, a: Point, ta: float, b: Point, tb: float
) -> float:
    """Synchronized Euclidean distance (SED) of ``(p, t)`` w.r.t. anchor segment.

    The SED is the distance between ``p`` and the position a uniform motion
    from ``(a, ta)`` to ``(b, tb)`` would occupy at time ``t``.  It is the
    error measure used by time-aware trajectory simplification (TD-TR,
    SQUISH-E).
    """
    if tb == ta:
        return p.distance_to(a)
    fraction = (t - ta) / (tb - ta)
    fraction = min(1.0, max(0.0, fraction))
    return p.distance_to(interpolate(a, b, fraction))


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Symmetric ``(n, n)`` matrix of Euclidean distances."""
    arr = np.array([[p.x, p.y] for p in points], dtype=float)
    if arr.size == 0:
        return np.zeros((0, 0))
    diff = arr[:, None, :] - arr[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def convex_hull_area(points: Sequence[Point]) -> float:
    """Area of the convex hull of ``points`` (0 for < 3 points or collinear)."""
    pts = sorted(set((p.x, p.y) for p in points))
    if len(pts) < 3:
        return 0.0

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[tuple[float, float]] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[tuple[float, float]] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return 0.0
    area = 0.0
    for i in range(len(hull)):
        x1, y1 = hull[i]
        x2, y2 = hull[(i + 1) % len(hull)]
        area += x1 * y2 - x2 * y1
    return abs(area) / 2.0
