import numpy as np
import pytest

from repro.analytics import (
    SimilaritySearch,
    bbox_lower_bound,
    dtw_distance,
    edr_distance,
    hausdorff_distance,
)
from repro.core import Trajectory, TrajectoryPoint
from repro.synth import add_gaussian_noise, add_outliers, fleet


def line(offset_y=0.0, n=20, step=1.0):
    return Trajectory(
        [TrajectoryPoint(i * step, offset_y, float(i)) for i in range(n)]
    )


class TestDTW:
    def test_zero_to_self(self, walk):
        assert dtw_distance(walk, walk) == pytest.approx(0.0)

    def test_offset_lines(self):
        assert dtw_distance(line(0), line(5)) == pytest.approx(5.0 * 20)

    def test_rate_tolerance(self):
        """DTW absorbs re-sampling far better than a parallel offset.

        A double-rate copy of the same geometry accumulates only small
        nearest-sample costs; a line offset by 5 pays 5 per match.
        """
        slow = line(0, n=20, step=2.0)
        fast = Trajectory(
            [TrajectoryPoint(i, 0.0, float(i)) for i in range(39)]
        )  # same geometry, twice the samples
        offset = Trajectory(
            [TrajectoryPoint(2.0 * i, 5.0, float(i)) for i in range(20)]
        )
        assert dtw_distance(slow, fast) < dtw_distance(slow, offset) / 3

    def test_band_still_reasonable(self, rng, box):
        a = fleet(rng, 1, 40, box)[0]
        b = add_gaussian_noise(a, rng, 2.0)
        full = dtw_distance(a, b)
        banded = dtw_distance(a, b, band=5)
        assert banded >= full - 1e-9  # band restricts paths, cost can only grow
        assert banded < full * 2 + 50

    def test_empty_rejected(self, walk):
        with pytest.raises(ValueError):
            dtw_distance(Trajectory([]), walk)


class TestHausdorff:
    def test_zero_to_self(self, walk):
        assert hausdorff_distance(walk, walk) == 0.0

    def test_symmetry(self, rng, box):
        a, b = fleet(rng, 2, 30, box)
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_offset_lines(self):
        assert hausdorff_distance(line(0), line(7)) == pytest.approx(7.0)

    def test_subset_directionality(self):
        short = line(0, n=5)
        long = line(0, n=20)
        # Every short point lies on long, but long extends beyond short.
        assert hausdorff_distance(short, long) == pytest.approx(15.0)


class TestEDR:
    def test_zero_to_self(self, walk):
        assert edr_distance(walk, walk, 1.0) == 0.0

    def test_epsilon_validated(self, walk):
        with pytest.raises(ValueError):
            edr_distance(walk, walk, 0.0)

    def test_robust_to_outliers(self, rng, box):
        """EDR's selling point: one gross outlier costs one edit, while
        DTW pays its full distance."""
        a = fleet(rng, 1, 40, box)[0]
        b, _ = add_outliers(a, rng, rate=0.05, magnitude=5000.0)
        assert edr_distance(a, b, 10.0) <= 0.2
        assert dtw_distance(a, b) > 1000.0

    def test_normalized_range(self, rng, box):
        a, b = fleet(rng, 2, 30, box)
        assert 0.0 <= edr_distance(a, b, 50.0) <= 1.0


class TestLowerBound:
    def test_bounds_hausdorff(self, rng, box):
        trajs = fleet(rng, 6, 40, box)
        for i in range(6):
            for j in range(i + 1, 6):
                lb = bbox_lower_bound(trajs[i], trajs[j])
                assert lb <= hausdorff_distance(trajs[i], trajs[j]) + 1e-9

    def test_overlapping_boxes_zero(self):
        a = line(0, n=20)
        b = Trajectory(
            [TrajectoryPoint(5.0 + i, 0.0, float(i)) for i in range(20)]
        )  # x ranges overlap
        assert bbox_lower_bound(a, b) == 0.0

    def test_separated_boxes_positive(self):
        a = line(0)
        b = line(500)
        assert bbox_lower_bound(a, b) == pytest.approx(500.0)


class TestSearch:
    def test_matches_brute_force(self, rng, box):
        corpus = fleet(rng, 15, 50, box)
        query = add_gaussian_noise(corpus[4], rng, 5.0)
        search = SimilaritySearch(corpus)
        got, stats = search.knn(query, 3)
        assert got == search.knn_brute_force(query, 3)
        assert stats.refined + stats.pruned == stats.candidates

    def test_finds_noisy_twin_first(self, rng, box):
        corpus = fleet(rng, 10, 50, box)
        query = add_gaussian_noise(corpus[7], rng, 3.0)
        got, _ = SimilaritySearch(corpus).knn(query, 1)
        assert got == [7]

    def test_pruning_happens_on_spread_corpus(self, rng, box):
        corpus = fleet(rng, 20, 40, box, speed_mean=3)
        query = corpus[0]
        _, stats = SimilaritySearch(corpus).knn(query, 2)
        assert stats.pruned > 0

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            SimilaritySearch([])

    def test_k_validated(self, rng, box):
        search = SimilaritySearch(fleet(rng, 3, 10, box))
        with pytest.raises(ValueError):
            search.knn(fleet(rng, 1, 10, box)[0], 0)
