"""Popular-route discovery from uncertain trajectories (Sec. 2.3.2, [107]).

Following Wei et al. [107]: low-sampling-rate trajectories are aggregated
into a *transfer network* of grid cells whose edges carry transition
probabilities; the most popular route between two places is the maximum
probability path through that network — recoverable even though no single
input trajectory was densely sampled.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from ..core.geometry import BBox, Point
from ..core.trajectory import Trajectory

Cell = tuple[int, int]


class TransferNetwork:
    """Grid transfer network aggregated from (possibly sparse) trajectories."""

    def __init__(self, bbox: BBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.bbox = bbox
        self.cell_size = cell_size
        self.graph = nx.DiGraph()

    def cell_of(self, p: Point) -> Cell:
        """Grid cell containing point ``p``."""
        return (
            int((p.x - self.bbox.min_x) / self.cell_size),
            int((p.y - self.bbox.min_y) / self.cell_size),
        )

    def cell_center(self, c: Cell) -> Point:
        """Planar center of a grid cell."""
        return Point(
            self.bbox.min_x + (c[0] + 0.5) * self.cell_size,
            self.bbox.min_y + (c[1] + 0.5) * self.cell_size,
        )

    def add_trajectory(self, traj: Trajectory) -> None:
        """Accumulate the trajectory's cell transitions (dedupe repeats)."""
        cells: list[Cell] = []
        for p in traj:
            c = self.cell_of(p.point)
            if not cells or cells[-1] != c:
                cells.append(c)
        for a, b in zip(cells, cells[1:]):
            if self.graph.has_edge(a, b):
                self.graph[a][b]["count"] += 1
            else:
                self.graph.add_edge(a, b, count=1)

    def fit(self, corpus: list[Trajectory]) -> "TransferNetwork":
        """Aggregate a trajectory corpus and normalize transition weights."""
        for t in corpus:
            self.add_trajectory(t)
        self._finalize()
        return self

    def _finalize(self) -> None:
        """Convert counts to transition probabilities and -log costs."""
        for node in self.graph.nodes:
            total = sum(d["count"] for _, _, d in self.graph.out_edges(node, data=True))
            for _, succ, d in self.graph.out_edges(node, data=True):
                p = d["count"] / total
                d["probability"] = p
                d["cost"] = -math.log(p)

    def popular_route(self, origin: Point, destination: Point) -> list[Cell]:
        """Maximum-probability cell route (min sum of -log transition probs)."""
        src = self.cell_of(origin)
        dst = self.cell_of(destination)
        if src not in self.graph or dst not in self.graph:
            raise ValueError("origin or destination cell unseen in the corpus")
        return nx.shortest_path(self.graph, src, dst, weight="cost")

    def route_probability(self, route: list[Cell]) -> float:
        """Product of transition probabilities along the route."""
        p = 1.0
        for a, b in zip(route, route[1:]):
            if not self.graph.has_edge(a, b):
                return 0.0
            p *= self.graph[a][b]["probability"]
        return p

    def route_points(self, route: list[Cell]) -> list[Point]:
        """Cell-center geometry of a cell route."""
        return [self.cell_center(c) for c in route]


def route_overlap(route_a: list[Cell], route_b: list[Cell]) -> float:
    """Jaccard overlap of the two routes' cell sets (route quality metric)."""
    sa, sb = set(route_a), set(route_b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)
