import numpy as np
import pytest

from repro.core import (
    Point,
    Trajectory,
    TrajectoryPoint,
    mean_pointwise_error,
    synchronized_error,
)


def make(points):
    return Trajectory([TrajectoryPoint(x, y, t) for x, y, t in points])


@pytest.fixture
def straight():
    """Uniform motion along x at 1 m/s for 10 s."""
    return make([(float(i), 0.0, float(i)) for i in range(11)])


class TestConstruction:
    def test_rejects_unordered_times(self):
        with pytest.raises(ValueError):
            make([(0, 0, 0), (1, 0, 0)])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            make([(0, 0, 5), (1, 0, 3)])

    def test_from_arrays(self):
        t = Trajectory.from_arrays([0, 1], [2, 3], [0, 1], "a")
        assert len(t) == 2 and t.object_id == "a"
        assert t[1] == TrajectoryPoint(1, 3, 1)

    def test_from_arrays_mismatched(self):
        with pytest.raises(ValueError):
            Trajectory.from_arrays([0], [1, 2], [0, 1])

    def test_empty_ok(self):
        assert len(Trajectory([])) == 0

    def test_slicing_returns_trajectory(self, straight):
        sub = straight[2:5]
        assert isinstance(sub, Trajectory)
        assert len(sub) == 3
        assert sub[0].t == 2.0

    def test_equality(self, straight):
        assert straight == make([(float(i), 0.0, float(i)) for i in range(11)])
        assert straight != straight[0:5]


class TestDerived:
    def test_duration_length(self, straight):
        assert straight.duration == 10.0
        assert straight.length == pytest.approx(10.0)

    def test_speeds_uniform(self, straight):
        assert np.allclose(straight.speeds(), 1.0)

    def test_headings(self, straight):
        assert np.allclose(straight.headings(), 0.0)

    def test_sampling_intervals(self, straight):
        assert np.allclose(straight.sampling_intervals(), 1.0)

    def test_bbox(self, straight):
        b = straight.bbox()
        assert (b.min_x, b.max_x) == (0.0, 10.0)

    def test_as_xyt_shape(self, straight):
        assert straight.as_xyt().shape == (11, 3)


class TestTemporalAccess:
    def test_position_at_sample(self, straight):
        assert straight.position_at(3.0) == Point(3.0, 0.0)

    def test_position_at_interpolated(self, straight):
        assert straight.position_at(3.5) == Point(3.5, 0.0)

    def test_position_outside_raises(self, straight):
        with pytest.raises(ValueError):
            straight.position_at(11.0)

    def test_slice_time(self, straight):
        sub = straight.slice_time(2.0, 5.0)
        assert [p.t for p in sub] == [2.0, 3.0, 4.0, 5.0]

    def test_slice_time_empty(self, straight):
        assert len(straight.slice_time(100, 200)) == 0


class TestTransforms:
    def test_resample_halves_interval(self, straight):
        r = straight.resample(0.5)
        assert len(r) == 21
        assert r.position_at(0.5) == Point(0.5, 0.0)

    def test_resample_invalid(self, straight):
        with pytest.raises(ValueError):
            straight.resample(0)

    def test_downsample_keeps_last(self, straight):
        d = straight.downsample(4)
        assert d[0].t == 0.0 and d[-1].t == 10.0

    def test_downsample_identity(self, straight):
        assert len(straight.downsample(1)) == len(straight)

    def test_shift_time(self, straight):
        s = straight.shift_time(5.0)
        assert s.times[0] == 5.0 and s.duration == straight.duration

    def test_map_points(self, straight):
        shifted = straight.map_points(lambda p: TrajectoryPoint(p.x + 1, p.y, p.t))
        assert shifted[0].x == 1.0

    def test_split_on_gap(self):
        t = make([(0, 0, 0), (1, 0, 1), (2, 0, 10), (3, 0, 11)])
        parts = t.split_on_gap(5.0)
        assert [len(p) for p in parts] == [2, 2]

    def test_split_no_gap(self, straight):
        assert len(straight.split_on_gap(100)) == 1

    def test_concat(self, straight):
        other = straight.shift_time(20)
        joined = straight.concat(other)
        assert len(joined) == 22

    def test_concat_overlapping_rejected(self, straight):
        with pytest.raises(ValueError):
            straight.concat(straight)

    def test_immutability_of_source(self, straight):
        before = list(straight.points)
        straight.downsample(2)
        straight.resample(0.5)
        assert list(straight.points) == before


class TestErrors:
    def test_pointwise_zero(self, straight):
        assert mean_pointwise_error(straight, straight) == 0.0

    def test_pointwise_offset(self, straight):
        off = straight.map_points(lambda p: TrajectoryPoint(p.x, p.y + 2, p.t))
        assert mean_pointwise_error(straight, off) == pytest.approx(2.0)

    def test_pointwise_length_mismatch(self, straight):
        with pytest.raises(ValueError):
            mean_pointwise_error(straight, straight[0:5])

    def test_synchronized_error_subsampled(self, straight):
        # A downsampled copy of uniform motion reconstructs exactly.
        assert synchronized_error(straight, straight.downsample(5)) == pytest.approx(0.0)

    def test_synchronized_error_disjoint_raises(self, straight):
        with pytest.raises(ValueError):
            synchronized_error(straight, straight.shift_time(100.0))
