"""Experiment F-ING — streaming ingestion: sharding and gate cost.

Claims measured:
  * Sharding: hash-partitioning sensors across workers raises sustained
    ingestion throughput against a latency-bound store (4 shards strictly
    beat 1 on the same 100-sensor stream).
  * Gate cost: per-reading gate-chain latency stays in the tens of
    microseconds (p50/p99 reported), so quality gating is not the
    bottleneck — the store is.
  * Accounting: every offered event is admitted, quarantined, dropped, or
    rejected, at every shard count.

Emits a JSON summary line (prefix ``BENCH_INGEST_JSON``) with the full
shard sweep for machine consumption, alongside the usual table.
"""

import json
import time

import numpy as np

from conftest import print_table

from repro import obs
from repro.ingest import (
    DuplicateGate,
    IngestEngine,
    InMemoryStore,
    LatencyStore,
    RangeGate,
    ReplaySource,
    SpeedScreenGate,
    corrupt_stream,
    field_stream,
)

N_SENSORS = 100
T_END = 140.0
INTERVAL = 1.0
STORE_LATENCY = 100e-6  # emulated per-write backend cost (seconds)
SHARD_COUNTS = (1, 2, 4, 8)


def _gates():
    return [
        lambda: RangeGate(-60.0, 160.0),
        lambda: DuplicateGate(space_eps=1.0, time_eps=0.5),
        lambda: SpeedScreenGate(-20.0, 20.0),
    ]


def _workload(rng, box):
    _, series = field_stream(rng, N_SENSORS, box, 0.0, T_END, INTERVAL)
    return corrupt_stream(series, rng, duplicate_rate=0.1, spike_rate=0.02)


def _run(events, n_shards):
    engine = IngestEngine(
        n_shards=n_shards,
        gate_factories=_gates(),
        store=LatencyStore(InMemoryStore(), STORE_LATENCY),
        queue_size=4096,
    )
    start = time.perf_counter()
    ReplaySource(events).drive(engine)
    counters = engine.close()
    elapsed = time.perf_counter() - start
    lats = np.array(engine.gate_latencies())
    return {
        "shards": n_shards,
        "events": len(events),
        "seconds": elapsed,
        "throughput_eps": len(events) / elapsed,
        "gate_p50_us": float(np.percentile(lats, 50) * 1e6),
        "gate_p99_us": float(np.percentile(lats, 99) * 1e6),
        "counters": counters.as_dict(),
        "conserved": counters.conserved(),
    }


def test_sharded_ingest_throughput(rng, box, benchmark):
    events = _workload(rng, box)
    results = [_run(events, n) for n in SHARD_COUNTS]

    rows = [
        (
            r["shards"],
            r["events"],
            f"{r['throughput_eps']:.0f}",
            r["gate_p50_us"],
            r["gate_p99_us"],
            r["counters"]["admitted"],
            r["counters"]["quarantined"],
        )
        for r in results
    ]
    print_table(
        f"F-ING: {N_SENSORS}-sensor stream, {STORE_LATENCY * 1e6:.0f}us store writes",
        ["shards", "events", "events/s", "gate p50_us", "gate p99_us", "admitted", "quarantined"],
        rows,
    )
    print("BENCH_INGEST_JSON " + json.dumps({"results": results}))

    by_shards = {r["shards"]: r for r in results}
    # accounting conservation at every shard count
    assert all(r["conserved"] for r in results)
    # identical admission decisions regardless of sharding
    admitted = {r["counters"]["admitted"] for r in results}
    assert len(admitted) == 1
    # sharding pays: 4 shards strictly beat 1, and no sharded config loses
    assert by_shards[4]["throughput_eps"] > by_shards[1]["throughput_eps"]
    for n in (2, 8):
        assert by_shards[n]["throughput_eps"] > by_shards[1]["throughput_eps"] * 0.95

    # time the hot path itself: one offer through a warm engine's shard queue
    engine = IngestEngine(n_shards=4, gate_factories=_gates(), queue_size=1 << 16)
    try:
        benchmark(engine.offer, events[0])
    finally:
        engine.close()


def test_obs_overhead(rng, box, benchmark):
    """Observability column: the identical stream with obs disabled vs enabled.

    The enabled run's gate-outcome counters must exactly match the engine's
    own accounting.  The hard <5% disabled-overhead gate lives in
    ``bench_obs.py --smoke``; here we report the measured columns.
    """
    events = _workload(rng, box)
    obs.disable()
    off = _run(events, 4)
    obs.enable()
    on = _run(events, 4)
    snap = obs.OBS.metrics.snapshot()
    obs.disable()

    rows = [
        ("obs disabled (events/s)", f"{off['throughput_eps']:.0f}"),
        ("obs enabled (events/s)", f"{on['throughput_eps']:.0f}"),
        ("enabled/disabled time", f"{on['seconds'] / off['seconds']:.3f}"),
    ]
    print_table("F-ING: observability overhead (4 shards)", ["mode", "value"], rows)
    assert snap.counter("repro_ingest_offered_total") == float(on["counters"]["offered"])
    # Engine accounting folds repairs into "admitted" (the record is stored).
    admit_total = sum(
        v
        for (name, pairs), v in snap.counters.items()
        if name == "repro_ingest_gate_outcomes_total"
        and (("decision", "admit") in pairs or ("decision", "repair") in pairs)
    )
    assert admit_total == float(on["counters"]["admitted"])

    engine = IngestEngine(n_shards=4, gate_factories=_gates(), queue_size=1 << 16)
    try:
        benchmark(engine.offer, events[0])
    finally:
        engine.close()
