import numpy as np
import pytest

from repro.core import GaussianLocation, Point, UniformDiskLocation
from repro.decision import (
    Task,
    Worker,
    assign_expected,
    assign_naive,
    expected_completions,
    reach_probability,
    realized_completions,
)


def make_world(rng, n=12, sigma=80.0, radius=120.0, spread=2000.0):
    tasks = [
        Task(i, Point(rng.uniform(0, spread), rng.uniform(0, spread)), radius)
        for i in range(n)
    ]
    true_pos = {
        i: Point(rng.uniform(0, spread), rng.uniform(0, spread)) for i in range(n)
    }
    workers = [
        Worker(
            i,
            GaussianLocation(
                Point(
                    true_pos[i].x + rng.normal(0, sigma),
                    true_pos[i].y + rng.normal(0, sigma),
                ),
                sigma,
            ),
        )
        for i in range(n)
    ]
    return tasks, workers, true_pos


class TestReachProbability:
    def test_certain_reach(self):
        w = Worker(0, GaussianLocation(Point(0, 0), 1.0))
        t = Task(0, Point(0, 0), 100.0)
        assert reach_probability(w, t) > 0.999

    def test_impossible_reach(self):
        w = Worker(0, GaussianLocation(Point(0, 0), 1.0))
        t = Task(0, Point(10_000, 0), 10.0)
        assert reach_probability(w, t) < 1e-6

    def test_disk_worker(self):
        w = Worker(0, UniformDiskLocation(Point(0, 0), 10.0))
        t = Task(0, Point(0, 0), 5.0)
        assert reach_probability(w, t) == pytest.approx(0.25)


class TestAssignment:
    def test_one_to_one(self, rng):
        tasks, workers, _ = make_world(rng)
        aw = assign_expected(workers, tasks)
        assert len({t for _, t, _ in aw}) == len(aw)
        assert len({w for w, _, _ in aw}) == len(aw)

    def test_empty_inputs(self):
        assert assign_expected([], []) == []
        assert assign_naive([], []) == []

    def test_min_probability_filters(self, rng):
        tasks, workers, _ = make_world(rng)
        filtered = assign_expected(workers, tasks, min_probability=0.99)
        assert len(filtered) <= len(assign_expected(workers, tasks))

    def test_expected_completions_sum(self, rng):
        tasks, workers, _ = make_world(rng)
        aw = assign_expected(workers, tasks)
        assert expected_completions(aw) == pytest.approx(sum(p for _, _, p in aw))

    def test_aware_matches_or_beats_naive_across_seeds(self):
        """The Sec. 2.3.3 claim: uncertainty-aware assignment completes at
        least as many tasks as the point-estimate baseline, on average."""
        aware_total = naive_total = 0
        for seed in range(12):
            rng = np.random.default_rng(seed)
            tasks, workers, true_pos = make_world(rng, sigma=100.0, radius=150.0)
            aware_total += realized_completions(
                assign_expected(workers, tasks), true_pos, tasks
            )
            naive_total += realized_completions(
                assign_naive(workers, tasks), true_pos, tasks
            )
        assert aware_total >= naive_total

    def test_realized_completions_counts_in_range(self, rng):
        tasks = [Task(0, Point(0, 0), 100.0)]
        workers = [Worker(0, GaussianLocation(Point(0, 0), 10.0))]
        assignment = assign_expected(workers, tasks)
        assert realized_completions(assignment, {0: Point(10, 10)}, tasks) == 1
        assert realized_completions(assignment, {0: Point(500, 500)}, tasks) == 0

    def test_obvious_pairing_found(self):
        tasks = [Task(0, Point(0, 0), 50.0), Task(1, Point(1000, 1000), 50.0)]
        workers = [
            Worker(0, GaussianLocation(Point(10, 10), 5.0)),
            Worker(1, GaussianLocation(Point(990, 990), 5.0)),
        ]
        aw = assign_expected(workers, tasks)
        assert (0, 0) in {(w, t) for w, t, _ in aw}
        assert (1, 1) in {(w, t) for w, t, _ in aw}
