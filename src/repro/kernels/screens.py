"""Vectorized statistical screens used by outlier detection.

The kernels mirror the scalar screens of :mod:`repro.cleaning.outliers`
element-for-element: the windowed median uses the same shrinking window at
the borders, and the robust z-score uses the same MAD scale with the same
standard-deviation fallback, so flagged indices are bit-identical to the
scalar reference.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def windowed_medians(values: np.ndarray, half: int) -> np.ndarray:
    """Centered running median with window ``2*half + 1``, shrinking at edges.

    Interior points are one batched ``np.median`` over a sliding-window
    view; only the ``2*half`` border points (whose windows are truncated)
    fall back to per-element medians.
    """
    v = np.asarray(values, dtype=float)
    n = v.shape[0]
    if n == 0:
        return np.zeros(0)
    window = 2 * half + 1
    out = np.empty(n)
    if n >= window:
        out[half : n - half] = np.median(sliding_window_view(v, window), axis=1)
        edges = list(range(half)) + list(range(n - half, n))
    else:
        edges = range(n)
    for i in edges:
        lo, hi = max(0, i - half), min(n, i + half + 1)
        out[i] = np.median(v[lo:hi])
    return out


def windowed_median_residuals(xyt: np.ndarray, window: int) -> np.ndarray:
    """Distance of each sample from its windowed (x, y) median, ``(n,)``."""
    half = max(1, window // 2)
    mx = windowed_medians(xyt[:, 0], half)
    my = windowed_medians(xyt[:, 1], half)
    return np.hypot(xyt[:, 0] - mx, xyt[:, 1] - my)


def robust_zscores(residuals: np.ndarray) -> np.ndarray:
    """Centered residuals in robust z-units (1.4826 * MAD scale).

    Falls back to the standard deviation when the MAD degenerates (all
    residuals equal), and to an epsilon when even that is zero — the same
    ladder as the scalar screen, so thresholds agree exactly.
    """
    r = np.asarray(residuals, dtype=float)
    if r.size == 0:
        return np.zeros(0)
    center = float(np.median(r))
    mad = float(np.median(np.abs(r - center)))
    scale = 1.4826 * mad if mad > 1e-12 else float(np.std(r)) or 1e-12
    return (r - center) / scale


def both_leg_flags(leg_mask: np.ndarray) -> list[int]:
    """Interior point indices whose *both* touching legs are flagged.

    ``leg_mask[i]`` covers the leg from sample ``i`` to ``i + 1``; a point
    ``i`` (``1 <= i <= n - 2``) is returned when legs ``i - 1`` and ``i``
    are both set — the single-spike signature used by the constraint- and
    statistics-based screens.
    """
    m = np.asarray(leg_mask, dtype=bool)
    if m.shape[0] < 2:
        return []
    return [int(i) for i in np.flatnonzero(m[:-1] & m[1:]) + 1]
