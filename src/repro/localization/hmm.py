"""Grid HMM tracking — motion-based LR via probabilistic graph models
(Sec. 2.2.1, [30]; the Markov-grid machinery is reused by predictive
uncertain queries [129]).

Space is discretized into grid cells; the object's cell sequence is a
first-order Markov chain whose transitions favor staying or moving to
adjacent cells within a speed budget.  Observations are noisy positions with
Gaussian emission around cell centers.  Viterbi decoding returns the most
probable cell path; the forward algorithm returns per-step posteriors for
uncertainty-aware consumers.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.geometry import BBox, Point
from ..core.trajectory import Trajectory, TrajectoryPoint
from ..core.uncertain import DiscreteLocation

_LOG_EPS = -1e18


class GridHMM:
    """First-order Markov model over a regular spatial grid."""

    def __init__(
        self,
        bbox: BBox,
        cell_size: float,
        max_speed: float,
        emission_sigma: float,
    ) -> None:
        if cell_size <= 0 or max_speed <= 0 or emission_sigma <= 0:
            raise ValueError("cell_size, max_speed, emission_sigma must be positive")
        self.bbox = bbox
        self.cell_size = cell_size
        self.max_speed = max_speed
        self.emission_sigma = emission_sigma
        self.nx = max(1, int(math.ceil(bbox.width / cell_size)))
        self.ny = max(1, int(math.ceil(bbox.height / cell_size)))
        self.n_cells = self.nx * self.ny
        centers_x = bbox.min_x + (np.arange(self.nx) + 0.5) * cell_size
        centers_y = bbox.min_y + (np.arange(self.ny) + 0.5) * cell_size
        gx, gy = np.meshgrid(centers_x, centers_y)
        self._centers = np.column_stack([gx.ravel(), gy.ravel()])  # (n_cells, 2)

    # -- model pieces -----------------------------------------------------------

    def cell_center(self, cell: int) -> Point:
        """Planar center of grid cell ``cell``."""
        return Point(float(self._centers[cell, 0]), float(self._centers[cell, 1]))

    def _log_emissions(self, obs: np.ndarray) -> np.ndarray:
        """(T, n_cells) log N(obs_t | center_c, sigma^2 I)."""
        d2 = (
            (obs[:, None, 0] - self._centers[None, :, 0]) ** 2
            + (obs[:, None, 1] - self._centers[None, :, 1]) ** 2
        )
        return -0.5 * d2 / self.emission_sigma**2

    def _reachable(self, dt: float) -> np.ndarray:
        """(n_cells, n_cells) log transition matrix for a step of ``dt``.

        Uniform over cells within ``max_speed * dt`` (plus one cell of
        slack), log-eps elsewhere — the spatial-constraint prior.
        """
        radius = self.max_speed * max(dt, 1e-9) + self.cell_size
        d = np.hypot(
            self._centers[:, None, 0] - self._centers[None, :, 0],
            self._centers[:, None, 1] - self._centers[None, :, 1],
        )
        ok = d <= radius
        with np.errstate(divide="ignore"):
            logp = np.where(ok, 0.0, _LOG_EPS)
        # Normalize rows (uniform over reachable set).
        counts = ok.sum(axis=1, keepdims=True)
        logp = logp - np.log(np.maximum(counts, 1))
        return logp

    # -- inference -----------------------------------------------------------------

    def viterbi(self, traj: Trajectory) -> list[int]:
        """Most probable cell sequence for the observed trajectory."""
        if len(traj) == 0:
            raise ValueError("empty trajectory")
        obs = traj.as_xyt()
        log_b = self._log_emissions(obs[:, :2])
        t_steps = len(traj)
        delta = log_b[0] - math.log(self.n_cells)
        back = np.zeros((t_steps, self.n_cells), dtype=int)
        for t in range(1, t_steps):
            dt = float(obs[t, 2] - obs[t - 1, 2])
            log_a = self._reachable(dt)
            scores = delta[:, None] + log_a
            back[t] = np.argmax(scores, axis=0)
            delta = scores[back[t], np.arange(self.n_cells)] + log_b[t]
        path = [int(np.argmax(delta))]
        for t in range(t_steps - 1, 0, -1):
            path.append(int(back[t, path[-1]]))
        path.reverse()
        return path

    def forward_posteriors(self, traj: Trajectory) -> np.ndarray:
        """(T, n_cells) filtering posteriors P(cell_t | obs_1..t)."""
        obs = traj.as_xyt()
        log_b = self._log_emissions(obs[:, :2])
        alpha = _normalize_log(log_b[0] - math.log(self.n_cells))
        out = [alpha]
        for t in range(1, len(traj)):
            dt = float(obs[t, 2] - obs[t - 1, 2])
            log_a = self._reachable(dt)
            pred = _log_matvec(log_a, out[-1])
            out.append(_normalize_log(pred + log_b[t]))
        return np.exp(np.stack(out))

    def refine(self, traj: Trajectory) -> Trajectory:
        """Refined trajectory through the Viterbi cell centers."""
        path = self.viterbi(traj)
        return Trajectory(
            [
                TrajectoryPoint(*self.cell_center(c), p.t)
                for c, p in zip(path, traj.points)
            ],
            traj.object_id,
        )

    def posterior_location(self, traj: Trajectory, step: int) -> DiscreteLocation:
        """Per-step posterior as a discrete pdf over cell centers."""
        post = self.forward_posteriors(traj)[step]
        keep = post > 1e-6
        pts = tuple(
            Point(float(x), float(y)) for x, y in self._centers[keep]
        )
        return DiscreteLocation(pts, tuple(float(w) for w in post[keep]))


def _normalize_log(logp: np.ndarray) -> np.ndarray:
    m = logp.max()
    p = np.exp(logp - m)
    return np.log(p / p.sum()) + 0.0  # normalized log-probabilities


def _log_matvec(log_a: np.ndarray, log_v: np.ndarray) -> np.ndarray:
    """log(sum_i exp(log_v_i + log_a_ij)) for each j, stably."""
    s = log_v[:, None] + log_a
    m = s.max(axis=0)
    return m + np.log(np.exp(s - m[None, :]).sum(axis=0))
