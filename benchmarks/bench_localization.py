"""Experiment F2-LR — location refinement families (Sec. 2.2.1).

Claims measured:
  * Ensemble LR: aggregating candidates (WkNN) beats the single best match;
    fusing independent sources beats each single source.
  * Motion-based LR: Bayes filters exploit dynamics to cut error further;
    the offline smoother beats the online filter.
  * Collaborative LR: joint denoising removes shared bias; iterative
    optimization reduces random error using peer ranges.
"""

import numpy as np

from conftest import print_table

from repro.core import BBox, Point, accuracy_error
from repro.localization import (
    FingerprintLocalizer,
    KalmanFilter2D,
    PeerRange,
    SourceEstimate,
    gauss_newton,
    inverse_variance_fusion,
    iterative_refine,
    joint_denoise,
    particle_refine,
)
from repro.synth import (
    RadioMap,
    add_gaussian_noise,
    correlated_random_walk,
    deploy_access_points,
    measure_ranges,
    measure_vector,
)


def test_ensemble_lr(rng, benchmark):
    box = BBox(0, 0, 400, 400)
    aps = deploy_access_points(rng, 8, box)
    radio_map = RadioMap.survey(aps, box, 50.0, rng, samples_per_point=10)
    loc = FingerprintLocalizer(radio_map, k=4)
    anchors = [Point(0, 0), Point(400, 0), Point(0, 400), Point(400, 400)]

    nn_err, wknn_err, tri_err, fused_err = [], [], [], []
    for _ in range(60):
        p = Point(rng.uniform(50, 350), rng.uniform(50, 350))
        scan = measure_vector(aps, p, rng, noise_db=5.0)
        nn_err.append(loc.estimate_nn(scan).distance_to(p))
        wknn = loc.estimate(scan)
        wknn_err.append(wknn.distance_to(p))
        ranges = measure_ranges(anchors, p, rng, noise_m=8.0)
        tri = gauss_newton(ranges)
        tri_err.append(tri.distance_to(p))
        fused = inverse_variance_fusion(
            [
                SourceEstimate("fingerprint", wknn, float(np.mean(wknn_err) or 30.0)),
                SourceEstimate("ranging", tri, float(np.mean(tri_err) or 8.0)),
            ]
        )
        fused_err.append(fused.mean().distance_to(p))

    benchmark(loc.estimate, measure_vector(aps, Point(200, 200), rng, 5.0))
    rows = [
        ("NN fingerprint (single result)", float(np.mean(nn_err))),
        ("WkNN fingerprint (ensemble)", float(np.mean(wknn_err))),
        ("WLS trilateration (single source)", float(np.mean(tri_err))),
        ("inverse-variance fusion (multi-source)", float(np.mean(fused_err))),
    ]
    print_table("F2-LR: ensemble LR mean error (m)", ["method", "error"], rows)
    assert np.mean(wknn_err) < np.mean(nn_err)
    assert np.mean(fused_err) < min(np.mean(wknn_err), np.mean(tri_err)) + 1.0


def test_motion_based_lr(rng, box, benchmark):
    truth = correlated_random_walk(rng, 250, box, speed_mean=5, speed_sigma=1)
    noisy = add_gaussian_noise(truth, rng, 12.0)
    kf = KalmanFilter2D(1.0, 12.0)
    filtered = kf.filter(noisy).trajectory()
    smoothed = benchmark(lambda: kf.smooth(noisy).trajectory())
    particles = particle_refine(noisy, rng, 12.0, n_particles=500)
    rows = [
        ("raw observations", accuracy_error(noisy, truth)),
        ("Kalman filter (online)", accuracy_error(filtered, truth)),
        ("RTS smoother (offline)", accuracy_error(smoothed, truth)),
        ("particle filter", accuracy_error(particles, truth)),
    ]
    print_table("F2-LR: motion-based LR mean error (m)", ["method", "error"], rows)
    assert accuracy_error(filtered, truth) < accuracy_error(noisy, truth)
    assert accuracy_error(smoothed, truth) < accuracy_error(filtered, truth)
    assert accuracy_error(particles, truth) < accuracy_error(noisy, truth)


def test_collaborative_lr(rng, benchmark):
    n = 12
    truth = [Point(rng.uniform(0, 500), rng.uniform(0, 500)) for _ in range(n)]
    # Scenario A: shared systematic bias + small noise.
    biased = [
        Point(p.x + 18.0 + rng.normal(0, 1.5), p.y - 9.0 + rng.normal(0, 1.5))
        for p in truth
    ]
    denoised = joint_denoise(biased, [0, 1, 2], truth[:3])
    # Scenario B: random errors + peer ranges.
    noisy = [Point(p.x + rng.normal(0, 10), p.y + rng.normal(0, 10)) for p in truth]
    ranges = [
        PeerRange(i, j, truth[i].distance_to(truth[j]) + rng.normal(0, 0.5))
        for i in range(n)
        for j in range(i + 1, n)
    ]
    refined = benchmark(
        iterative_refine, noisy, ranges, anchor_weight=0.05, n_iter=200
    )

    def err(estimates):
        return float(np.mean([a.distance_to(b) for a, b in zip(estimates, truth)]))

    rows = [
        ("shared-bias observations", err(biased)),
        ("joint denoising", err(denoised)),
        ("random-error observations", err(noisy)),
        ("iterative optimization", err(refined)),
    ]
    print_table("F2-LR: collaborative LR mean error (m)", ["method", "error"], rows)
    assert err(denoised) < err(biased) / 3
    assert err(refined) < err(noisy)
