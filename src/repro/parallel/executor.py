"""Backend-agnostic executors and the deterministic ``map_chunks`` API.

The :class:`Executor` protocol is the seam every fleet-level consumer
(:meth:`repro.core.Pipeline.run_many`, partitioned query fan-out, pairwise
similarity, the Table-1 grid) programs against: an ordered map over
picklable payloads.  Two backends are provided — :class:`SerialExecutor`
(in-process, zero dependencies, the ``workers=1`` fallback) and
:class:`ProcessExecutor` (a ``concurrent.futures`` process pool) — and
later scaling PRs (async, multi-node) only need to add another
implementation of the same protocol.

Determinism contract: chunk boundaries and per-item seeds come from
:mod:`repro.parallel.chunking` and never depend on the executor or worker
count, results are merged in submission order, and the serial path runs the
*same* dispatch function as pool workers — so ``workers=1`` output is
bit-identical to ``workers=N`` for every consumer (enforced by
``tests/test_parallel.py``).
"""

from __future__ import annotations

import os
from concurrent import futures
from contextlib import contextmanager, nullcontext
from functools import reduce as _fold
from multiprocessing import get_context, resource_tracker
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

from ..obs import OBS, WorkerCapture
from .chunking import chunk_spans, derive_seeds
from .dispatch import dispatch_decision

#: Environment override for the pool start method ("fork", "spawn",
#: "forkserver"); unset means the platform default.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


def default_start_method() -> str | None:
    """Start method from ``REPRO_PARALLEL_START_METHOD`` (None = platform default)."""
    method = os.environ.get(START_METHOD_ENV, "").strip()
    return method or None


@runtime_checkable
class Executor(Protocol):
    """Ordered map over picklable payloads; the parallel layer's backend seam."""

    workers: int

    def map_ordered(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each payload, returning results in payload order."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """In-process executor: the deterministic ``workers=1`` reference path."""

    workers = 1

    def map_ordered(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each payload in order, in the calling process.

        With observability on, opens a ``parallel.map`` span with one
        ``parallel.task`` child per payload — the same span/metric shape
        the process backend produces, so traces are backend-comparable.
        """
        if not OBS.enabled:
            return [fn(p) for p in payloads]
        with OBS.tracer.span("parallel.map", backend="serial", tasks=len(payloads)):
            results = []
            for i, p in enumerate(payloads):
                with OBS.tracer.span("parallel.task", index=i):
                    results.append(fn(p))
        OBS.metrics.inc("repro_parallel_tasks_total", (), float(len(payloads)))
        return results

    def close(self) -> None:
        """Nothing to release for the in-process backend."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessExecutor:
    """Process-pool executor over ``concurrent.futures``.

    The pool is created lazily on first use and reused across calls, so a
    long-lived executor amortizes worker startup over many query batches.
    ``fn`` and payloads must be picklable (module-level functions); shared
    state should travel via :mod:`repro.parallel.shm` handles instead of
    being pickled per task.
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 2:
            raise ValueError("ProcessExecutor needs workers >= 2; use SerialExecutor")
        self.workers = workers
        self.start_method = start_method if start_method is not None else default_start_method()
        self._pool: futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        if self._pool is None:
            # Start the resource tracker *before* any worker exists.  A pool
            # forked while the parent has no tracker hands every child
            # ``_fd=None``, so each worker spawns a private tracker on its
            # first shm attach; if those workers later die, their trackers
            # exit and unlink every segment they registered — including arena
            # segments still live in this process.  Pre-seeding the tracker
            # makes all children (fork and spawn alike) share the parent's.
            resource_tracker.ensure_running()
            ctx = get_context(self.start_method) if self.start_method else None
            self._pool = futures.ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)
        return self._pool

    def prewarm(self) -> None:
        """Spawn all workers now via an idle round-trip.

        A pool created lazily spawns workers on the first real batch, which
        charges worker startup to that batch's latency; the pool manager
        prewarms at creation so the first *consumer* call runs on a hot pool.
        """
        list(self._ensure_pool().map(_prewarm_task, range(self.workers)))

    @property
    def broken(self) -> bool:
        """True once a worker died and the pool can no longer accept work."""
        return bool(self._pool is not None and getattr(self._pool, "_broken", False))

    def map_ordered(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each payload on the pool, results in payload order.

        With observability on, each task is wrapped in a worker-side
        :class:`~repro.obs.WorkerCapture`: the worker records spans and
        metrics into a private tracer/registry, and the capture rides back
        with the result to be folded into the parent's — worker task spans
        re-parent under this call's ``parallel.map`` span, and counter
        values merge to exactly the serial backend's totals.
        """
        if not payloads:
            return []
        if not OBS.enabled:
            return list(self._ensure_pool().map(fn, payloads))
        with OBS.tracer.span("parallel.map", backend="process", tasks=len(payloads)):
            remote = OBS.tracer.current_context()
            wrapped = [(fn, p, i) for i, p in enumerate(payloads)]
            results = []
            for result, snapshot, spans in self._ensure_pool().map(_captured_task, wrapped):
                OBS.absorb_worker(snapshot, spans, remote)
                results.append(result)
        OBS.metrics.inc("repro_parallel_tasks_total", (), float(len(payloads)))
        return results

    def close(self) -> None:
        """Shut the pool down and release its workers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def get_executor(workers: int | None = None, start_method: str | None = None) -> Executor:
    """Executor for ``workers``: serial for <= 1, a warm pool lease otherwise.

    ``workers=None`` means serial; ``workers=-1`` means one worker per CPU.
    Parallel requests lease the process-wide warm pool for
    ``(workers, start_method)`` from the
    :class:`~repro.parallel.pool.WorkerPoolManager` — the pool is created
    (and prewarmed) once and shared by every caller; closing the returned
    lease releases it without tearing the pool down.
    """
    if workers is not None and workers < 0:
        workers = os.cpu_count() or 1
    if workers is None or workers <= 1:
        return SerialExecutor()
    from .pool import get_pool_manager

    return get_pool_manager().acquire(workers, start_method)


@contextmanager
def resolve_executor(
    workers: int | None = None,
    executor: Executor | None = None,
    *,
    n_items: int | None = None,
) -> Iterator[Executor]:
    """Yield ``executor`` if given, else a pool lease (released on exit).

    The standard consumer idiom: a caller-supplied executor is borrowed (the
    caller controls its lifetime); an implicit one is owned by this context
    and released even on error paths.

    With ``n_items`` given, the batch is routed through
    :func:`~repro.parallel.dispatch.dispatch_decision` first: below the
    calibrated crossover (or under ``REPRO_PARALLEL_DISPATCH=serial``) a
    :class:`SerialExecutor` is yielded instead — safe because every
    consumer's serial path is bit-identical to its parallel path — and a
    caller-supplied executor is left untouched (and warm) for later batches.
    """
    if executor is not None:
        requested = getattr(executor, "workers", 1)
        if (
            requested > 1
            and dispatch_decision(n_items, requested, getattr(executor, "start_method", None))
            == "serial"
        ):
            yield SerialExecutor()
            return
        yield executor
        return
    if workers is not None and workers < 0:
        workers = os.cpu_count() or 1
    if (
        workers is not None
        and workers > 1
        and dispatch_decision(n_items, workers) == "serial"
    ):
        yield SerialExecutor()
        return
    owned = get_executor(workers)
    try:
        yield owned
    finally:
        owned.close()


def _prewarm_task(index: int) -> int:
    """Trivial pool task used by :meth:`ProcessExecutor.prewarm`."""
    return index


def _captured_task(payload: tuple) -> tuple:
    """Pool worker: run one task under a fresh observability capture.

    Returns ``(result, metrics_snapshot, span_records)``; the parent's
    :meth:`ProcessExecutor.map_ordered` folds the capture back in.  The
    worker-side ``parallel.task`` span becomes the root every span the
    task opens parents under, mirroring the serial backend's span shape.
    """
    fn, inner, index = payload
    capture = WorkerCapture()
    with capture:
        with OBS.tracer.span("parallel.task", index=index):
            result = fn(inner)
    return result, capture.metrics, capture.spans


def _call_chunk(payload: tuple) -> list:
    """Pool-side dispatcher shared by the serial and parallel paths."""
    fn, chunk, seeds = payload
    result = fn(chunk) if seeds is None else fn(chunk, seeds)
    return list(result)


def map_chunks(
    fn: Callable[..., Sequence[Any]],
    items: Sequence[Any],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    seed: int | None = None,
    executor: Executor | None = None,
) -> list[Any]:
    """Chunked ordered map: ``fn(chunk) -> per-item results``, merged in order.

    ``fn`` receives a list of consecutive items and returns one result per
    item.  With ``seed`` set, ``fn(chunk, seeds)`` additionally receives the
    per-item seeds derived from each item's *global* index
    (:func:`~repro.parallel.chunking.derive_seed`), so seeded work is
    reproducible across any worker count or chunk size.
    """
    spans = chunk_spans(len(items), chunk_size)
    payloads = [
        (
            fn,
            list(items[start:stop]),
            None if seed is None else derive_seeds(seed, start, stop),
        )
        for start, stop in spans
    ]
    cm = (
        OBS.tracer.span("parallel.map_chunks", items=len(items), chunks=len(spans))
        if OBS.enabled
        else _NULL
    )
    out: list[Any] = []
    with cm, resolve_executor(workers, executor, n_items=len(items)) as ex:
        for chunk_result in ex.map_ordered(_call_chunk, payloads):
            out.extend(chunk_result)
    if len(out) != len(items):
        raise ValueError(
            f"chunk fn returned {len(out)} results for {len(items)} items; "
            "map_chunks requires exactly one result per item"
        )
    return out


def map_reduce(
    fn: Callable[..., Any],
    items: Sequence[Any],
    reduce_fn: Callable[[Any, Any], Any],
    *,
    initial: Any = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    seed: int | None = None,
    executor: Executor | None = None,
) -> Any:
    """Chunked map then ordered fold: ``reduce_fn`` over per-chunk results.

    ``fn(chunk)`` (or ``fn(chunk, seeds)`` when ``seed`` is set) returns one
    partial aggregate per chunk; partials are folded left-to-right in chunk
    order, so non-commutative merges are still deterministic.  ``initial``
    seeds the fold and is returned as-is for an empty work-list.
    """
    spans = chunk_spans(len(items), chunk_size)
    payloads = [
        (
            fn,
            list(items[start:stop]),
            None if seed is None else derive_seeds(seed, start, stop),
        )
        for start, stop in spans
    ]
    cm = (
        OBS.tracer.span("parallel.map_reduce", items=len(items), chunks=len(spans))
        if OBS.enabled
        else _NULL
    )
    with cm, resolve_executor(workers, executor, n_items=len(items)) as ex:
        partials = ex.map_ordered(_call_chunk_scalar, payloads)
    if initial is None:
        if not partials:
            raise ValueError("map_reduce over an empty work-list requires `initial`")
        return _fold(reduce_fn, partials)
    return _fold(reduce_fn, partials, initial)


def _call_chunk_scalar(payload: tuple) -> Any:
    """Like :func:`_call_chunk` but the chunk result is a single aggregate."""
    fn, chunk, seeds = payload
    return fn(chunk) if seeds is None else fn(chunk, seeds)
