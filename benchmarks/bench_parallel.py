"""Benchmark: fleet-level serial vs parallel execution (repro.parallel).

Times the rewired fleet consumers on a 1k-trajectory workload at
``workers`` in {1, 2, cpu_count}:

* ``Pipeline.run_many`` — a 3-stage cleaning pipeline with a quality probe
  over every trajectory (shared-memory columnar handoff),
* ``PartitionedStore.range_query_many`` / ``knn_many`` — partitioned query
  fan-out over a skewed point set,
* ``pairwise_distances`` — a chunked Hausdorff similarity matrix.

Every parallel result is verified equal to the ``workers=1`` result before
timings are recorded.  Beyond the per-workload timings, the run records the
warm-pool economics introduced by :class:`repro.parallel.WorkerPoolManager`:

* ``pool`` — cold pool start (spawn + prewarm) vs acquiring the already-warm
  managed pool, plus the manager's reuse counters,
* ``arena`` — :class:`repro.parallel.SharedArenaCache` hit rate and byte
  occupancy after the workloads (repeat calls should be hits, not creates),
* ``dispatch`` — the calibrated serial-vs-parallel cost model and its
  measured crossover batch size,
* ``gate`` — per-workload ``speedup_2x > 1`` verdicts, asserted only on
  multi-core runners for batches above the measured crossover and recorded
  as skipped-with-reason otherwise.

Writes ``BENCH_parallel.json`` at the repo root with full reproducibility
metadata: RNG seed, worker counts, ``cpu_count`` *and* ``physical_cores``,
load average, and the *resolved* start method with its source.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full run
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke    # CI gate

``--smoke`` runs a small workload, asserts serial/parallel *equality* plus
pool reuse (worker spawns bounded by the pool size across the whole run),
and applies the speedup gate only where the runner's cores and the measured
crossover make it meaningful.
"""

import argparse
import functools
import json
import multiprocessing
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.analytics import pairwise_distances
from repro.cleaning import median_filter, moving_average, remove_points, speed_outliers
from repro.core import BBox, Pipeline, Point, Stage, Trajectory
from repro.parallel import (
    DISPATCH_ENV,
    ProcessExecutor,
    default_start_method,
    dispatch_decision,
    get_arena,
    get_executor,
    get_pool_manager,
)
from repro.querying import PartitionedStore, kd_partition, skewed_points

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
SEED = 2022
REGION = BBox(0.0, 0.0, 1000.0, 1000.0)

#: Workloads whose ``speedup_2x`` the CI gate may assert on.
GATED_WORKLOADS = (
    "partitioned_range_query_many",
    "partitioned_knn_many",
    "pairwise_hausdorff",
)


def timed(fn):
    """``(result, seconds)`` with one untimed warmup call (see bench_kernels)."""
    out = fn()
    start = time.perf_counter()
    fn()
    return out, time.perf_counter() - start


def physical_core_count() -> int:
    """Physical cores from ``/proc/cpuinfo`` (logical count as fallback).

    Hosted runners advertise hyperthreads as CPUs; parallel speedup claims
    are only honest against physical cores, so both numbers go into meta.
    """
    try:
        pairs = set()
        physical = core = None
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith("physical id"):
                    physical = line.split(":")[1].strip()
                elif line.startswith("core id"):
                    core = line.split(":")[1].strip()
                elif not line.strip() and physical is not None and core is not None:
                    pairs.add((physical, core))
                    physical = core = None
        if physical is not None and core is not None:
            pairs.add((physical, core))
        if pairs:
            return len(pairs)
    except OSError:
        pass
    return os.cpu_count() or 1


def resolved_start_method() -> dict:
    """The start method workers will actually use, and where it came from."""
    env = default_start_method()
    if env is not None:
        return {"resolved": env, "source": "env"}
    return {"resolved": multiprocessing.get_start_method(), "source": "platform-default"}


@contextmanager
def forced_dispatch(mode: str):
    """Pin ``REPRO_PARALLEL_DISPATCH`` for a block (restored on exit).

    Workload timings run under ``parallel`` so a calibrated model can never
    reroute the measured parallel path back to serial mid-benchmark.
    """
    prev = os.environ.get(DISPATCH_ENV)
    os.environ[DISPATCH_ENV] = mode
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(DISPATCH_ENV, None)
        else:
            os.environ[DISPATCH_ENV] = prev


# -- fleet pipeline (module-level stages: picklable under any start method) ----


def _despeed(traj: Trajectory) -> Trajectory:
    return remove_points(traj, speed_outliers(traj, 25.0))


def _probe_length(traj: Trajectory) -> float:
    return traj.length


def make_pipeline() -> Pipeline:
    return Pipeline(
        [
            Stage("despeed", _despeed),
            Stage("median", functools.partial(median_filter, window=5)),
            Stage("smooth", functools.partial(moving_average, window=5)),
        ],
        probes={"length": _probe_length},
    )


def make_fleet(rng, n_trajectories, n_points):
    """Random-walk fleet with occasional speed spikes for the pipeline to fix."""
    fleet = []
    for i in range(n_trajectories):
        steps = rng.normal(0, 4, (n_points, 2)).cumsum(axis=0)
        spikes = rng.random(n_points) < 0.02
        steps[spikes] += rng.normal(0, 120, (int(spikes.sum()), 2))
        fleet.append(
            Trajectory.from_arrays(
                steps[:, 0], steps[:, 1], np.arange(n_points, dtype=float), f"t{i}"
            )
        )
    return fleet


def pipeline_outputs(results):
    return [(r.output, [(t.name, t.metrics) for t in r.trace]) for r in results]


def _idle_chunk(index: int) -> int:
    """Near-empty pool task for the cold-vs-warm round-trip comparison."""
    return index


def bench_workload(name, run, verify, workers_list, results):
    """Time ``run(workers)`` per worker count; verify each against workers=1."""
    rows = {}
    baseline = None
    for w in workers_list:
        out, seconds = timed(lambda w=w: run(w))
        if baseline is None:
            baseline = verify(out)
            rows["baseline_s"] = seconds
        else:
            assert verify(out) == baseline, f"{name}: workers={w} output differs from serial"
        rows[f"workers_{w}_s"] = seconds
    serial_s = rows[f"workers_{workers_list[0]}_s"]
    for w in workers_list[1:]:
        rows[f"speedup_{w}x"] = serial_s / max(rows[f"workers_{w}_s"], 1e-12)
    results[name] = rows


def bench_pool_economics(manager) -> dict:
    """Cold pool start vs warm acquire: the reuse the manager exists for."""
    start = time.perf_counter()
    cold = ProcessExecutor(2)
    cold.prewarm()
    cold_s = time.perf_counter() - start
    cold.map_ordered(_idle_chunk, [(0,), (1,)])
    cold.close()

    warm_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        with manager.acquire(2) as lease:
            lease.map_ordered(_idle_chunk, [(0,), (1,)])
        warm_s = min(warm_s, time.perf_counter() - start)
    return {
        "cold_start_s": cold_s,
        "warm_acquire_s": warm_s,
        "cold_vs_warm": cold_s / max(warm_s, 1e-12),
    }


def apply_speedup_gate(results, physical_cores, crossover, batch_sizes) -> dict:
    """Per-workload gate verdicts; assertions only where they are meaningful.

    ``speedup_2x > 1`` is asserted when the runner has >= 2 physical cores
    AND the workload's batch size sits above the measured crossover — below
    it, serial is *supposed* to win, and on one core parallel cannot.
    """
    gate = {}
    failures = []
    for name in GATED_WORKLOADS:
        speedup = results[name]["speedup_2x"]
        batch = batch_sizes[name]
        if physical_cores < 2:
            gate[name] = {
                "speedup_2x": speedup,
                "skipped": f"single-core runner (physical_cores={physical_cores})",
            }
        elif batch < crossover:
            gate[name] = {
                "speedup_2x": speedup,
                "skipped": f"batch {batch} below measured crossover {crossover:.0f}",
            }
        else:
            passed = speedup > 1.0
            gate[name] = {"speedup_2x": speedup, "passed": passed}
            if not passed:
                failures.append(f"{name}: speedup_2x={speedup:.3f} <= 1.0")
    if failures:
        raise SystemExit("speedup gate failed:\n  " + "\n  ".join(failures))
    return gate


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small input; equality only")
    parser.add_argument("--trajectories", type=int, default=1000)
    parser.add_argument("--points", type=int, default=120)
    parser.add_argument("--workers", type=int, default=None, help="override max worker count")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    cpu = os.cpu_count() or 1
    physical = physical_core_count()
    max_workers = args.workers if args.workers else cpu
    # The ISSUE-3 grid: serial, minimal parallel, and full fan-out.
    workers_list = sorted({1, 2, max_workers})
    if args.smoke:
        n_traj, n_points, n_queries, n_sim = 60, 40, 30, 12
        workers_list = sorted({1, 2})
    else:
        n_traj, n_points, n_queries, n_sim = args.trajectories, args.points, 400, 60

    rng = np.random.default_rng(SEED)
    fleet = make_fleet(rng, n_traj, n_points)
    pipeline = make_pipeline()
    points = skewed_points(rng, 20_000 if not args.smoke else 2_000, REGION)
    partitions = kd_partition(points, REGION, 64)
    store = PartitionedStore(points, partitions)
    centers = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(n_queries)]
    radii = rng.uniform(30, 80, n_queries).tolist()
    sim_fleet = fleet[:n_sim]

    results: dict[str, dict] = {}
    manager = get_pool_manager()

    # One warm lease per worker count, shared across repetitions — pool
    # startup is billed to the manager (measured separately below), exactly
    # as a long-lived service would see it.
    pools = {w: get_executor(w) for w in workers_list}
    try:
        with forced_dispatch("parallel"):
            bench_workload(
                "pipeline_run_many",
                lambda w: pipeline.run_many(fleet, executor=pools[w]),
                pipeline_outputs,
                workers_list,
                results,
            )
            bench_workload(
                "partitioned_range_query_many",
                lambda w: store.range_query_many(centers, radii, executor=pools[w]),
                lambda out: out,
                workers_list,
                results,
            )
            bench_workload(
                "partitioned_knn_many",
                lambda w: store.knn_many(centers, 10, executor=pools[w]),
                lambda out: out,
                workers_list,
                results,
            )
            bench_workload(
                "pairwise_hausdorff",
                lambda w: pairwise_distances(sim_fleet, "hausdorff", executor=pools[w]),
                lambda out: out.tobytes(),
                workers_list,
                results,
            )
        arena_stats = get_arena().stats()
        pool_stats = bench_pool_economics(manager)
        model = manager.calibrate(
            2,
            probe_items=64 if args.smoke else 256,
            rounds=1 if args.smoke else 3,
        )
        crossover = model.crossover_items()
        with forced_dispatch("auto"):
            dispatch_info = model.as_dict()
            dispatch_info["routed_below_crossover"] = dispatch_decision(
                max(1, int(crossover * 0.5)), 2
            )
            dispatch_info["routed_above_crossover"] = dispatch_decision(
                int(crossover * 4) + 1, 2
            )
    finally:
        for pool in pools.values():
            pool.close()

    manager_stats = manager.stats.as_dict()
    if args.smoke:
        # Pool-reuse gate: every fan-out in the run rode the one managed
        # pool — spawned workers never exceed the pool size.
        assert manager_stats["workers_spawned"] <= max(workers_list), manager_stats
        assert manager_stats["pools_created"] == 1, manager_stats
        assert manager_stats["pool_reuses"] >= 1, manager_stats

    batch_sizes = {
        "partitioned_range_query_many": n_queries,
        "partitioned_knn_many": n_queries,
        "pairwise_hausdorff": (n_sim * (n_sim - 1)) // 2,
    }
    gate = apply_speedup_gate(results, physical, crossover, batch_sizes)

    width = max(len(n) for n in results)
    cols = [f"workers_{w}_s" for w in workers_list]
    print(f"{'workload'.ljust(width)}  " + "  ".join(c.rjust(14) for c in cols))
    for name, row in results.items():
        print(
            f"{name.ljust(width)}  "
            + "  ".join(f"{row[c]:14.4f}" for c in cols)
        )
    print(
        f"pool: cold_start={pool_stats['cold_start_s']:.4f}s "
        f"warm_acquire={pool_stats['warm_acquire_s']:.4f}s "
        f"({pool_stats['cold_vs_warm']:.1f}x); "
        f"arena hit rate {arena_stats['hit_rate']:.2f}; "
        f"dispatch crossover {crossover:.0f} items"
    )

    payload = {
        "meta": {
            "seed": SEED,
            "cpu_count": cpu,
            "physical_cores": physical,
            "load_avg": list(os.getloadavg()),
            "workers": workers_list,
            "start_method": resolved_start_method(),
            "python": sys.version.split()[0],
            "workload": {
                "trajectories": n_traj,
                "points_per_trajectory": n_points,
                "store_points": len(points),
                "partitions": len(partitions),
                "queries": n_queries,
                "similarity_fleet": n_sim,
            },
            "smoke": bool(args.smoke),
        },
        "results": {
            name: {k: v for k, v in row.items() if k != "baseline_s"}
            for name, row in results.items()
        },
        "pool": {**pool_stats, "manager": manager_stats},
        "arena": arena_stats,
        "dispatch": dispatch_info,
        "gate": gate,
    }
    if args.smoke:
        print("smoke OK: parallel outputs identical to serial; pool reuse verified")
        if args.out is not None:
            args.out.write_text(json.dumps(payload, indent=2) + "\n")
    else:
        out_path = args.out or OUT_PATH
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
