"""Injectable clocks: the observability layer's single audited wall-time seam.

Every duration the tracer, the metrics registry, or a profiling hook ever
records flows through a :class:`Clock` instance — never through a direct
``time.*`` call at the instrumentation site.  That concentrates the
library's one legitimate need for wall time (observing its own runtime
behaviour) into this file, which is waived for reprolint rule R1 in
``reprolint_baseline.toml``; every other module stays mechanically
verifiable as deterministic.

Two implementations cover both lives of the layer:

* :class:`MonotonicClock` — ``time.perf_counter`` based, the production
  default (monotonic, immune to NTP steps, sub-microsecond resolution),
* :class:`ManualClock` — a hand-advanced clock for deterministic tests:
  ``sleep`` advances virtual time instead of blocking, so span durations
  and histogram values in tests are exact constants.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What the tracer/metrics/profiler need from a time source."""

    def now(self) -> float:
        """Current time in seconds (monotonic; only differences matter)."""
        ...  # pragma: no cover - protocol

    def sleep(self, seconds: float) -> None:
        """Pause the caller for ``seconds`` (virtual clocks merely advance)."""
        ...  # pragma: no cover - protocol


class MonotonicClock:
    """Production clock: monotonic ``perf_counter`` time, real ``sleep``."""

    def now(self) -> float:
        """Monotonic seconds since an arbitrary epoch."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """Deterministic test clock: time moves only when told to.

    ``sleep`` advances the virtual time instead of blocking, so code paths
    that pace themselves against the clock run instantly under test while
    still observing strictly increasing timestamps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)

    def now(self) -> float:
        """Current virtual time."""
        return self._t

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` without blocking."""
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._t += float(seconds)
