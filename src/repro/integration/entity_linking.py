"""Trajectory-based spatiotemporal entity linking (Sec. 2.2.5, [49]).

Two data sources observe the same moving objects under *different ID
systems* (e.g. a camera network and a WiFi sniffer).  Linking recovers the
identity correspondence from movement alone: each trajectory is reduced to
a *spatiotemporal signature* (visit histogram over space-time cells) and
signatures are matched across sources by optimal assignment.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.geometry import BBox
from ..core.trajectory import Trajectory


def st_signature(
    traj: Trajectory,
    bbox: BBox,
    cell_size: float,
    t_bucket: float,
) -> dict[tuple[int, int, int], float]:
    """Normalized visit histogram over (time-bucket, y-cell, x-cell) keys."""
    sig: dict[tuple[int, int, int], float] = {}
    for p in traj:
        xi = int((p.x - bbox.min_x) / cell_size)
        yi = int((p.y - bbox.min_y) / cell_size)
        ti = int(p.t / t_bucket)
        key = (ti, yi, xi)
        sig[key] = sig.get(key, 0.0) + 1.0
    total = sum(sig.values())
    if total > 0:
        sig = {k: v / total for k, v in sig.items()}
    return sig


def signature_similarity(
    a: dict[tuple[int, int, int], float], b: dict[tuple[int, int, int], float]
) -> float:
    """Cosine similarity of two sparse signatures (0 when either is empty)."""
    if not a or not b:
        return 0.0
    dot = sum(v * b.get(k, 0.0) for k, v in a.items())
    na = float(np.sqrt(sum(v * v for v in a.values())))
    nb = float(np.sqrt(sum(v * v for v in b.values())))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return dot / (na * nb)


def link_entities(
    source_a: list[Trajectory],
    source_b: list[Trajectory],
    bbox: BBox,
    cell_size: float = 100.0,
    t_bucket: float = 60.0,
    min_similarity: float = 0.0,
) -> list[tuple[int, int, float]]:
    """Optimal one-to-one linking between two trajectory collections.

    Returns ``(index_in_a, index_in_b, similarity)`` triples from a maximum
    total-similarity assignment (Hungarian algorithm); pairs below
    ``min_similarity`` are dropped.
    """
    sigs_a = [st_signature(t, bbox, cell_size, t_bucket) for t in source_a]
    sigs_b = [st_signature(t, bbox, cell_size, t_bucket) for t in source_b]
    if not sigs_a or not sigs_b:
        return []
    sim = np.zeros((len(sigs_a), len(sigs_b)))
    for i, sa in enumerate(sigs_a):
        for j, sb in enumerate(sigs_b):
            sim[i, j] = signature_similarity(sa, sb)
    rows, cols = linear_sum_assignment(-sim)
    return [
        (int(i), int(j), float(sim[i, j]))
        for i, j in zip(rows, cols)
        if sim[i, j] >= min_similarity
    ]


def linking_accuracy(
    links: list[tuple[int, int, float]], truth: dict[int, int]
) -> float:
    """Fraction of true pairs recovered by the linking."""
    if not truth:
        return 1.0
    correct = sum(1 for i, j, _ in links if truth.get(i) == j)
    return correct / len(truth)
