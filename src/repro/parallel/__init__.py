"""Fleet-scale parallel execution layer (the Sec. 2.3-2.4 scale-out seam).

PR 2 made single-trajectory hot paths vectorized; this package makes the
*fleet-level* workloads — pipeline collections, ablation grids, partitioned
query fan-out, pairwise similarity matrices — run on all cores:

* :mod:`~repro.parallel.executor` — the :class:`Executor` protocol with
  :class:`SerialExecutor` / :class:`ProcessExecutor` backends and the
  deterministic :func:`map_chunks` / :func:`map_reduce` API,
* :mod:`~repro.parallel.chunking` — worker-count-independent chunk spans
  and stable per-item seed derivation,
* :mod:`~repro.parallel.shm` — zero-copy shared-memory handoff of the PR-2
  columnar blocks (:class:`SharedArray`, :class:`SharedTrajectoryBatch`),
  so workers never re-pickle trajectory point lists.

Consumers: :meth:`repro.core.Pipeline.run_many` /
:meth:`~repro.core.Pipeline.run_ablations`,
:class:`repro.querying.PartitionedStore` batched queries,
:func:`repro.analytics.pairwise_distances`, and the Table-1 grid runner
(``benchmarks/table1_grid.py``).  Every consumer's ``workers=1`` path is
bit-identical to its parallel path (``tests/test_parallel.py``).
"""

from .chunking import chunk_spans, derive_seed, derive_seeds
from .executor import (
    START_METHOD_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    default_start_method,
    get_executor,
    map_chunks,
    map_reduce,
    resolve_executor,
)
from .shm import (
    ArrayHandle,
    SharedArray,
    SharedTrajectoryBatch,
    TrajectoryBatchHandle,
)

__all__ = [
    "chunk_spans",
    "derive_seed",
    "derive_seeds",
    "START_METHOD_ENV",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "default_start_method",
    "get_executor",
    "map_chunks",
    "map_reduce",
    "resolve_executor",
    "ArrayHandle",
    "SharedArray",
    "SharedTrajectoryBatch",
    "TrajectoryBatchHandle",
]
