"""Benchmark: fleet-level serial vs parallel execution (repro.parallel).

Times the three rewired fleet consumers on a 1k-trajectory workload at
``workers`` in {1, 2, cpu_count}:

* ``Pipeline.run_many`` — a 3-stage cleaning pipeline with a quality probe
  over every trajectory (shared-memory columnar handoff),
* ``PartitionedStore.range_query_many`` / ``knn_many`` — partitioned query
  fan-out over a skewed point set,
* ``pairwise_distances`` — a chunked Hausdorff similarity matrix.

Every parallel result is verified equal to the ``workers=1`` result before
timings are recorded.  Writes ``BENCH_parallel.json`` at the repo root with
full reproducibility metadata (RNG seed, worker counts, ``cpu_count``,
start method) — the provenance BENCH_kernels.json lacked.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full run
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke    # CI gate

``--smoke`` runs a small workload and asserts only serial/parallel
*equality* (never speedup ratios, which depend on the runner's core
count).  The full run records measured speedups; the ROADMAP target is
>= 2x at ``workers=cpu_count`` on a >= 4-core machine.
"""

import argparse
import functools
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.analytics import pairwise_distances
from repro.cleaning import median_filter, moving_average, remove_points, speed_outliers
from repro.core import BBox, Pipeline, Point, Stage, Trajectory
from repro.parallel import default_start_method, get_executor
from repro.querying import PartitionedStore, kd_partition, skewed_points

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
SEED = 2022
REGION = BBox(0.0, 0.0, 1000.0, 1000.0)


def timed(fn):
    """``(result, seconds)`` with one untimed warmup call (see bench_kernels)."""
    out = fn()
    start = time.perf_counter()
    fn()
    return out, time.perf_counter() - start


# -- fleet pipeline (module-level stages: picklable under any start method) ----


def _despeed(traj: Trajectory) -> Trajectory:
    return remove_points(traj, speed_outliers(traj, 25.0))


def _probe_length(traj: Trajectory) -> float:
    return traj.length


def make_pipeline() -> Pipeline:
    return Pipeline(
        [
            Stage("despeed", _despeed),
            Stage("median", functools.partial(median_filter, window=5)),
            Stage("smooth", functools.partial(moving_average, window=5)),
        ],
        probes={"length": _probe_length},
    )


def make_fleet(rng, n_trajectories, n_points):
    """Random-walk fleet with occasional speed spikes for the pipeline to fix."""
    fleet = []
    for i in range(n_trajectories):
        steps = rng.normal(0, 4, (n_points, 2)).cumsum(axis=0)
        spikes = rng.random(n_points) < 0.02
        steps[spikes] += rng.normal(0, 120, (int(spikes.sum()), 2))
        fleet.append(
            Trajectory.from_arrays(
                steps[:, 0], steps[:, 1], np.arange(n_points, dtype=float), f"t{i}"
            )
        )
    return fleet


def pipeline_outputs(results):
    return [(r.output, [(t.name, t.metrics) for t in r.trace]) for r in results]


def bench_workload(name, run, verify, workers_list, results):
    """Time ``run(workers)`` per worker count; verify each against workers=1."""
    rows = {}
    baseline = None
    for w in workers_list:
        out, seconds = timed(lambda w=w: run(w))
        if baseline is None:
            baseline = verify(out)
            rows["baseline_s"] = seconds
        else:
            assert verify(out) == baseline, f"{name}: workers={w} output differs from serial"
        rows[f"workers_{w}_s"] = seconds
    serial_s = rows[f"workers_{workers_list[0]}_s"]
    for w in workers_list[1:]:
        rows[f"speedup_{w}x"] = serial_s / max(rows[f"workers_{w}_s"], 1e-12)
    results[name] = rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small input; equality only")
    parser.add_argument("--trajectories", type=int, default=1000)
    parser.add_argument("--points", type=int, default=120)
    parser.add_argument("--workers", type=int, default=None, help="override max worker count")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    cpu = os.cpu_count() or 1
    max_workers = args.workers if args.workers else cpu
    # The ISSUE-3 grid: serial, minimal parallel, and full fan-out.
    workers_list = sorted({1, 2, max_workers})
    if args.smoke:
        n_traj, n_points, n_queries, n_sim = 60, 40, 30, 12
        workers_list = sorted({1, 2})
    else:
        n_traj, n_points, n_queries, n_sim = args.trajectories, args.points, 400, 60

    rng = np.random.default_rng(SEED)
    fleet = make_fleet(rng, n_traj, n_points)
    pipeline = make_pipeline()
    points = skewed_points(rng, 20_000 if not args.smoke else 2_000, REGION)
    partitions = kd_partition(points, REGION, 64)
    store = PartitionedStore(points, partitions)
    centers = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(n_queries)]
    radii = rng.uniform(30, 80, n_queries).tolist()
    sim_fleet = fleet[:n_sim]

    results: dict[str, dict] = {}

    # Reuse one pool across repetitions so per-call pool startup is not billed
    # to the workload (matching how a long-lived service would run).
    pools = {w: get_executor(w) for w in workers_list}
    try:
        bench_workload(
            "pipeline_run_many",
            lambda w: pipeline.run_many(fleet, executor=pools[w]),
            pipeline_outputs,
            workers_list,
            results,
        )
        bench_workload(
            "partitioned_range_query_many",
            lambda w: store.range_query_many(centers, radii, executor=pools[w]),
            lambda out: out,
            workers_list,
            results,
        )
        bench_workload(
            "partitioned_knn_many",
            lambda w: store.knn_many(centers, 10, executor=pools[w]),
            lambda out: out,
            workers_list,
            results,
        )
        bench_workload(
            "pairwise_hausdorff",
            lambda w: pairwise_distances(sim_fleet, "hausdorff", executor=pools[w]),
            lambda out: out.tobytes(),
            workers_list,
            results,
        )
    finally:
        for pool in pools.values():
            pool.close()

    width = max(len(n) for n in results)
    cols = [f"workers_{w}_s" for w in workers_list]
    print(f"{'workload'.ljust(width)}  " + "  ".join(c.rjust(14) for c in cols))
    for name, row in results.items():
        print(
            f"{name.ljust(width)}  "
            + "  ".join(f"{row[c]:14.4f}" for c in cols)
        )

    payload = {
        "meta": {
            "seed": SEED,
            "cpu_count": cpu,
            "workers": workers_list,
            "start_method": default_start_method() or "platform-default",
            "python": sys.version.split()[0],
            "workload": {
                "trajectories": n_traj,
                "points_per_trajectory": n_points,
                "store_points": len(points),
                "partitions": len(partitions),
                "queries": n_queries,
                "similarity_fleet": n_sim,
            },
            "smoke": bool(args.smoke),
        },
        "results": {
            name: {k: v for k, v in row.items() if k != "baseline_s"}
            for name, row in results.items()
        },
    }
    if args.smoke:
        print("smoke OK: parallel outputs identical to serial for every workload")
        if args.out is not None:
            args.out.write_text(json.dumps(payload, indent=2) + "\n")
    else:
        out_path = args.out or OUT_PATH
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
