"""Tuning knobs of the QoD scoring engine, with environment overrides.

:class:`QodConfig` collects every threshold the three control points
(self checks, reference checks, deployment-status detectors — see
``docs/QOD.md``) and the score→weight mapping consume.  All fields have
conservative defaults; the four deployment-facing knobs most likely to be
tuned per fleet also read ``REPRO_QOD_*`` environment variables through
:meth:`QodConfig.from_env`, following the same *explicit value > env >
default* resolution as the store's compaction threshold
(:func:`repro.querying.distributed.resolve_compact_threshold`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Environment override for the reference-check neighbor count.
QOD_NEIGHBORS_ENV = "REPRO_QOD_NEIGHBORS"

#: Environment override for the minimum weight a sensor can be assigned.
QOD_WEIGHT_FLOOR_ENV = "REPRO_QOD_WEIGHT_FLOOR"

#: Environment override for the score→weight sharpening exponent.
QOD_WEIGHT_POWER_ENV = "REPRO_QOD_WEIGHT_POWER"

#: Environment override for the sliding stats window (seconds).
QOD_WINDOW_ENV = "REPRO_QOD_WINDOW"

#: Default spatial-neighbor count for comparative quality control.
DEFAULT_NEIGHBORS = 5

#: Default weight floor: even a zero-score sensor keeps 5% influence.
DEFAULT_WEIGHT_FLOOR = 0.05

#: Default sharpening exponent of the score→weight mapping.
DEFAULT_WEIGHT_POWER = 2.0


def resolve_neighbors(value: int | None = None) -> int:
    """CQC neighbor count: explicit value, else ``$REPRO_QOD_NEIGHBORS``, else 5."""
    if value is not None:
        return int(value)
    raw = os.environ.get(QOD_NEIGHBORS_ENV, "")
    return int(raw) if raw else DEFAULT_NEIGHBORS


def resolve_weight_floor(value: float | None = None) -> float:
    """Weight floor: explicit value, else ``$REPRO_QOD_WEIGHT_FLOOR``, else 0.05."""
    if value is not None:
        return float(value)
    raw = os.environ.get(QOD_WEIGHT_FLOOR_ENV, "")
    return float(raw) if raw else DEFAULT_WEIGHT_FLOOR


def resolve_weight_power(value: float | None = None) -> float:
    """Weight exponent: explicit value, else ``$REPRO_QOD_WEIGHT_POWER``, else 2.0."""
    if value is not None:
        return float(value)
    raw = os.environ.get(QOD_WEIGHT_POWER_ENV, "")
    return float(raw) if raw else DEFAULT_WEIGHT_POWER


def resolve_window(value: float | None = None) -> float | None:
    """Stats window (s): explicit value, else ``$REPRO_QOD_WINDOW``, else None.

    ``None`` (and an unset/empty variable) means cumulative statistics:
    detectors see the sensor's whole history instead of a sliding horizon.
    """
    if value is not None:
        return float(value)
    raw = os.environ.get(QOD_WINDOW_ENV, "")
    return float(raw) if raw else None


@dataclass(frozen=True, slots=True)
class QodConfig:
    """Thresholds and weights of the composite QoD score.

    Self checks
        ``value_bounds`` — physical plausibility interval for the
        out-of-bounds check (None disables it); ``value_rate_bounds`` —
        feasible change-rate interval (units/s) for the self-consistency
        check; ``expected_interval`` — sampling period (s) enabling the
        completeness factor.

    Reference check
        ``neighbors`` — spatial neighbors per sensor for comparative
        quality control; ``cqc_tolerance`` — how many fleet-scale units of
        deviation from the neighborhood consensus cost one sigma of
        reference score; ``cqc_min_scale`` — floor on the fleet scale so
        a near-constant phenomenon does not turn measurement noise into
        huge z-scores.

    Deployment-status detectors
        ``stuck_sigma`` — value dispersion (std) below which a sensor
        reads as stuck/constant; ``indoor_ratio`` — fraction of the fleet
        median dispersion below which a sensor reads as indoor/obstructed
        (attenuated dynamics); ``drift_tolerance`` — excess trend slope
        (units/s vs the fleet median) costing one sigma of drift score;
        ``window`` — sliding horizon (s) for the windowed stats the
        detectors read (None = cumulative).

    Compositing and weighting
        ``control_weights`` — ``(self, reference, deployment)`` exponents
        of the weighted geometric mean (normalized internally);
        ``min_readings`` / ``provisional_score`` — sensors with fewer
        than ``min_readings`` admitted readings score ``provisional_score``
        until the detectors have data; ``staleness_horizon`` — event-time
        silence (s) beyond which the composite decays exponentially
        (None disables); ``weight_floor`` / ``weight_power`` — the
        score→weight mapping ``w = floor + (1 - floor) * score ** power``.
    """

    value_bounds: tuple[float, float] | None = None
    value_rate_bounds: tuple[float, float] | None = None
    expected_interval: float | None = None
    neighbors: int = DEFAULT_NEIGHBORS
    cqc_tolerance: float = 3.0
    cqc_min_scale: float = 0.5
    stuck_sigma: float = 0.05
    indoor_ratio: float = 0.5
    drift_tolerance: float = 1e-3
    window: float | None = None
    control_weights: tuple[float, float, float] = (0.4, 0.35, 0.25)
    min_readings: int = 8
    provisional_score: float = 1.0
    staleness_horizon: float | None = None
    weight_floor: float = DEFAULT_WEIGHT_FLOOR
    weight_power: float = DEFAULT_WEIGHT_POWER

    def __post_init__(self) -> None:
        if self.value_bounds is not None and self.value_bounds[0] > self.value_bounds[1]:
            raise ValueError("value_bounds must be (lo, hi) with lo <= hi")
        if self.neighbors < 1:
            raise ValueError("neighbors must be at least 1")
        if self.cqc_tolerance <= 0 or self.cqc_min_scale <= 0:
            raise ValueError("cqc_tolerance and cqc_min_scale must be positive")
        if self.stuck_sigma < 0 or self.indoor_ratio <= 0 or self.drift_tolerance <= 0:
            raise ValueError("detector thresholds must be positive (stuck_sigma >= 0)")
        if self.window is not None and self.window <= 0:
            raise ValueError("window must be positive when set")
        if len(self.control_weights) != 3 or any(w < 0 for w in self.control_weights):
            raise ValueError("control_weights must be three non-negative values")
        if sum(self.control_weights) <= 0:
            raise ValueError("control_weights must not all be zero")
        if self.min_readings < 1:
            raise ValueError("min_readings must be at least 1")
        if not 0.0 <= self.provisional_score <= 1.0:
            raise ValueError("provisional_score must lie in [0, 1]")
        if self.staleness_horizon is not None and self.staleness_horizon <= 0:
            raise ValueError("staleness_horizon must be positive when set")
        if not 0.0 < self.weight_floor <= 1.0:
            raise ValueError("weight_floor must lie in (0, 1]")
        if self.weight_power <= 0:
            raise ValueError("weight_power must be positive")

    @classmethod
    def from_env(
        cls,
        *,
        neighbors: int | None = None,
        weight_floor: float | None = None,
        weight_power: float | None = None,
        window: float | None = None,
        **overrides: object,
    ) -> "QodConfig":
        """A config whose env-tunable knobs read ``REPRO_QOD_*`` variables.

        Explicit keyword values win over the environment; every other
        field passes through ``overrides`` unchanged.
        """
        return cls(
            neighbors=resolve_neighbors(neighbors),
            weight_floor=resolve_weight_floor(weight_floor),
            weight_power=resolve_weight_power(weight_power),
            window=resolve_window(window),
            **overrides,  # type: ignore[arg-type]
        )
