"""Parallel Table-1 grid: every injector x metric cell as one independent task.

The paper's Table 1 crosses SID characteristics (rows, reproduced here as
corruption injectors) with DQ dimensions (columns, measured via
:func:`repro.core.assess_trajectory`).  Each cell — "inject characteristic
R, measure dimension C" — is independent of every other cell, which makes
the grid the textbook fleet-level fan-out: the runner dispatches cells
through :func:`repro.parallel.map_chunks`, and because the corrupted input
for row R is derived from a stable per-injector seed
(:func:`repro.parallel.derive_seed`), the grid is identical for every
worker count and chunk schedule.

This module is import-clean (no pytest fixtures) so both the
``bench_table1.py`` benchmark harness and ``tests/test_parallel.py`` can
drive it.
"""

from __future__ import annotations

import numpy as np

from repro.core import BBox, Dimension, Trajectory, assess_trajectory
from repro.parallel import derive_seed, map_chunks
from repro.synth import add_gaussian_noise, add_outliers, correlated_random_walk, drop_points

MAX_SPEED = 15.0
N_POINTS = 300
_REGION = BBox(0.0, 0.0, 1000.0, 1000.0)


def make_truth(seed: int) -> Trajectory:
    """The clean ground-truth walk every cell corrupts and measures against."""
    rng = np.random.default_rng(seed)
    return correlated_random_walk(rng, N_POINTS, _REGION, speed_mean=5, speed_sigma=1)


def _inject_clean(traj: Trajectory, rng: np.random.Generator) -> Trajectory:
    return traj


def _inject_noise(traj: Trajectory, rng: np.random.Generator) -> Trajectory:
    return add_gaussian_noise(traj, rng, 15.0)


def _inject_noise_outliers(traj: Trajectory, rng: np.random.Generator) -> Trajectory:
    corrupted, _ = add_outliers(add_gaussian_noise(traj, rng, 15.0), rng, 0.05, 200.0)
    return corrupted


def _inject_sparse(traj: Trajectory, rng: np.random.Generator) -> Trajectory:
    return drop_points(traj, rng, 0.6)


def _inject_downsampled(traj: Trajectory, rng: np.random.Generator) -> Trajectory:
    return traj.downsample(4)


#: Table-1 rows: characteristic name -> injector ``(truth, rng) -> corrupted``.
INJECTORS = {
    "clean": _inject_clean,
    "noisy": _inject_noise,
    "noisy+erroneous": _inject_noise_outliers,
    "temporally-sparse": _inject_sparse,
    "downsampled": _inject_downsampled,
}

#: Table-1 columns: metric name -> assessed DQ dimension.
METRICS = {
    "precision": Dimension.PRECISION,
    "accuracy": Dimension.ACCURACY,
    "consistency": Dimension.CONSISTENCY,
    "time_sparsity": Dimension.TIME_SPARSITY,
    "completeness": Dimension.COMPLETENESS,
    "data_volume": Dimension.DATA_VOLUME,
}

Cell = tuple[str, str, int]


def grid_cells(seed: int) -> list[Cell]:
    """All ``(injector, metric, seed)`` cells in row-major order."""
    return [(inj, metric, seed) for inj in INJECTORS for metric in METRICS]


def evaluate_cell(cell: Cell) -> float:
    """One grid cell: rebuild truth, corrupt it, assess one dimension.

    The injector's RNG seed depends only on ``(base seed, row index)``, so
    every cell of a row sees the same corrupted trajectory no matter which
    worker or chunk evaluates it.
    """
    injector, metric, seed = cell
    truth = make_truth(seed)
    row_index = list(INJECTORS).index(injector)
    rng = np.random.default_rng(derive_seed(seed, row_index))
    corrupted = INJECTORS[injector](truth, rng)
    report = assess_trajectory(corrupted, truth=truth, max_speed=MAX_SPEED)
    return float(report.values.get(METRICS[metric], float("nan")))


def _evaluate_chunk(cells: list[Cell]) -> list[float]:
    return [evaluate_cell(c) for c in cells]


def run_grid(
    seed: int = 2022,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    executor=None,
) -> dict[tuple[str, str], float]:
    """The full Table-1 grid, one value per (injector, metric) cell."""
    cells = grid_cells(seed)
    values = map_chunks(
        _evaluate_chunk,
        cells,
        workers=workers,
        chunk_size=chunk_size,
        executor=executor,
    )
    return {(inj, metric): v for (inj, metric, _), v in zip(cells, values)}


def format_grid(grid: dict[tuple[str, str], float]) -> str:
    """Render the grid as an aligned rows-by-columns text table."""
    metrics = list(METRICS)
    name_w = max(len(r) for r in INJECTORS)
    col_w = max(12, max(len(m) for m in metrics) + 2)
    lines = [" " * name_w + "".join(m.rjust(col_w) for m in metrics)]
    for inj in INJECTORS:
        cells = "".join(f"{grid[(inj, m)]:.3f}".rjust(col_w) for m in metrics)
        lines.append(inj.ljust(name_w) + cells)
    return "\n".join(lines)
