"""Semantic data integration for trajectories (Sec. 2.2.5, [113, 58, 57]).

Annotates raw location traces with concepts so they become directly
interpretable: dwell episodes are detected as *stay points* and labeled
with the enclosing/nearest POI; the remaining samples form *move* episodes.
The result is a *semantic trajectory* — the stop/move model of [113].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.geometry import Point
from ..core.trajectory import Trajectory
from ..synth.checkins import POI


@dataclass(frozen=True)
class StayPoint:
    """A detected dwell: index span, centroid, and duration."""

    start_index: int
    end_index: int
    centroid: Point
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class Episode:
    """One annotated trajectory segment: ``kind`` is ``"stay"`` or ``"move"``."""

    kind: str
    start_index: int
    end_index: int
    label: str | None = None
    place: Point | None = None


def detect_stay_points(
    traj: Trajectory, distance_threshold: float = 50.0, time_threshold: float = 300.0
) -> list[StayPoint]:
    """Classical stay-point detection (Li/Zheng style).

    A maximal run of samples all within ``distance_threshold`` of the run's
    first sample, spanning at least ``time_threshold`` seconds, yields a
    stay point at the run centroid.
    """
    n = len(traj)
    stays: list[StayPoint] = []
    i = 0
    while i < n:
        j = i + 1
        while j < n and traj[i].distance_to(traj[j]) <= distance_threshold:
            j += 1
        # Samples i .. j-1 stay near sample i.
        if j - 1 > i and traj[j - 1].t - traj[i].t >= time_threshold:
            xs = [traj[k].x for k in range(i, j)]
            ys = [traj[k].y for k in range(i, j)]
            stays.append(
                StayPoint(
                    i,
                    j - 1,
                    Point(float(np.mean(xs)), float(np.mean(ys))),
                    traj[i].t,
                    traj[j - 1].t,
                )
            )
            i = j
        else:
            i += 1
    return stays


def annotate_with_pois(
    stays: list[StayPoint], pois: list[POI], max_distance: float = 100.0
) -> list[tuple[StayPoint, POI | None]]:
    """Label each stay with the nearest POI within ``max_distance``."""
    out: list[tuple[StayPoint, POI | None]] = []
    for s in stays:
        best: POI | None = None
        best_d = max_distance
        for poi in pois:
            d = s.centroid.distance_to(poi.location)
            if d <= best_d:
                best, best_d = poi, d
        out.append((s, best))
    return out


def build_semantic_trajectory(
    traj: Trajectory,
    pois: list[POI],
    distance_threshold: float = 50.0,
    time_threshold: float = 300.0,
    max_poi_distance: float = 100.0,
) -> list[Episode]:
    """The full stop/move annotation pipeline.

    Returns ordered episodes covering the whole trajectory; stays carry the
    nearest-POI category as their label (or ``"unknown"``).
    """
    stays = detect_stay_points(traj, distance_threshold, time_threshold)
    labeled = annotate_with_pois(stays, pois, max_poi_distance)
    episodes: list[Episode] = []
    cursor = 0
    for stay, poi in labeled:
        if stay.start_index > cursor:
            episodes.append(Episode("move", cursor, stay.start_index - 1))
        episodes.append(
            Episode(
                "stay",
                stay.start_index,
                stay.end_index,
                poi.category if poi else "unknown",
                stay.centroid,
            )
        )
        cursor = stay.end_index + 1
    if cursor < len(traj):
        episodes.append(Episode("move", cursor, len(traj) - 1))
    return episodes


def stay_detection_scores(
    detected: list[StayPoint],
    truth_spans: list[tuple[int, int]],
    overlap: float = 0.5,
) -> dict[str, float]:
    """Precision/recall/F1 of stay detection against ground-truth index spans.

    A truth span counts as recovered when some detected stay overlaps at
    least ``overlap`` of it; a detected stay is correct when it overlaps
    some truth span by at least ``overlap`` of the *detected* span.
    """

    def frac_overlap(a: tuple[int, int], b: tuple[int, int], base: tuple[int, int]) -> float:
        lo = max(a[0], b[0])
        hi = min(a[1], b[1])
        width = base[1] - base[0] + 1
        return max(0, hi - lo + 1) / width if width > 0 else 0.0

    det_spans = [(s.start_index, s.end_index) for s in detected]
    tp_truth = sum(
        1
        for ts in truth_spans
        if any(frac_overlap(ts, ds, ts) >= overlap for ds in det_spans)
    )
    tp_det = sum(
        1
        for ds in det_spans
        if any(frac_overlap(ds, ts, ds) >= overlap for ts in truth_spans)
    )
    # No detections -> vacuously perfect precision (no false positives).
    precision = tp_det / len(det_spans) if det_spans else 1.0
    recall = tp_truth / len(truth_spans) if truth_spans else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
