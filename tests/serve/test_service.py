"""End-to-end QueryService tests: correctness, determinism, admission,
epoch invalidation, and observability.

pytest-asyncio is deliberately not a dependency: each test drives its own
event loop with ``asyncio.run``.  Determinism leans on two facts — the
submit path is synchronous up to ``await future`` (so a ``gather`` or a
burst of ``create_task`` enqueues in creation order before the dispatcher
runs), and the only time sources are the injectable clock and pause seams.
"""

import asyncio

import pytest

from repro.core import BBox, Point
from repro.ingest import IngestEngine
from repro.ingest.events import IngestEvent
from repro.obs import OBS, ManualClock, disable, enable
from repro.querying import PartitionedStore, kd_partition, skewed_points
from repro.serve import (
    EpochRegistry,
    KnnQueryRequest,
    QueryService,
    RangeQueryRequest,
    ResponseStatus,
    ingest_epoch_hook,
)


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    disable()


@pytest.fixture
def store(rng, box):
    pts = skewed_points(rng, 600, box, n_hotspots=3, hotspot_sigma=40.0)
    return PartitionedStore(pts, kd_partition(pts, box, 8))


def range_requests(n, radius=60.0, priority=0):
    return [
        RangeQueryRequest(Point(100.0 + 57.0 * i, 150.0 + 41.0 * i), radius, priority)
        for i in range(n)
    ]


def serve_all(store, requests, **kwargs):
    async def go():
        async with QueryService(store, **kwargs) as svc:
            return await svc.submit_many(requests), svc.stats

    return asyncio.run(go())


class TestCorrectness:
    def test_range_matches_direct_store(self, store):
        reqs = range_requests(6)
        responses, stats = serve_all(store, reqs, linger=0.0)
        for req, resp in zip(reqs, responses):
            assert resp.ok and not resp.cached
            assert list(resp.results) == store.range_query(req.center, req.radius)
        assert stats.served == 6 and stats.shed == 0

    def test_knn_matches_direct_store(self, store):
        reqs = [KnnQueryRequest(Point(120.0 * i, 90.0 * i), 7) for i in range(1, 6)]
        responses, _ = serve_all(store, reqs, linger=0.0)
        for req, resp in zip(reqs, responses):
            assert list(resp.results) == store.knn(req.center, req.k)

    def test_conservation(self, store):
        reqs = range_requests(5) + range_requests(5)  # second half = cache hits
        _, stats = serve_all(store, reqs, linger=0.0)
        assert stats.submitted == stats.served + stats.cache_hits + stats.shed


class TestCoalescing:
    def test_concurrent_burst_coalesces_into_one_kernel_call(self, store):
        responses, stats = serve_all(store, range_requests(12), linger=0.0, max_batch=16)
        assert stats.kernel_calls == 1
        assert all(r.batch_size == 12 for r in responses)
        assert stats.coalesce_ratio() == 12.0

    def test_max_batch_is_a_hard_cap(self, store):
        _, stats = serve_all(store, range_requests(10), linger=0.0, max_batch=4)
        assert stats.max_batch_seen == 4
        assert stats.kernel_calls == 3  # 4 + 4 + 2

    def test_shapes_batch_separately(self, store):
        reqs = range_requests(4) + [KnnQueryRequest(Point(300, 300), k) for k in (3, 3, 5)]
        _, stats = serve_all(store, reqs, linger=0.0, max_batch=16)
        # one range batch, one k=3 batch, one k=5 batch
        assert stats.kernel_calls == 3

    def test_batched_results_match_sequential(self, store):
        reqs = range_requests(9)
        batched, _ = serve_all(store, reqs, linger=0.0, max_batch=16)
        one_by_one = []
        for req in reqs:
            resp, _ = serve_all(store, [req], linger=0.0)
            one_by_one.append(resp[0])
        assert [r.results for r in batched] == [r.results for r in one_by_one]

    def test_manual_clock_batching_is_deterministic(self, store):
        def run():
            clock = ManualClock()

            async def virtual_pause(delay):
                clock.advance(delay)
                await asyncio.sleep(0)

            async def go():
                async with QueryService(
                    store, linger=0.01, max_batch=4, clock=clock, pause=virtual_pause
                ) as svc:
                    responses = await svc.submit_many(range_requests(10))
                return [(r.results, r.batch_size) for r in responses]

            return asyncio.run(go())

        assert run() == run()


class TestCache:
    def test_cached_response_bit_identical(self, store):
        req = range_requests(1)[0]

        async def go():
            async with QueryService(store, linger=0.0) as svc:
                first = await svc.submit(req)
                second = await svc.submit(req)
            return first, second

        first, second = asyncio.run(go())
        assert not first.cached and second.cached
        assert second.results == first.results
        assert second.status is ResponseStatus.OK

    def test_cache_hit_skips_kernel(self, store):
        reqs = range_requests(4)

        async def go():
            async with QueryService(store, linger=0.0, max_batch=4) as svc:
                await svc.submit_many(reqs)
                await svc.submit_many(reqs)
            return svc.stats

        stats = asyncio.run(go())
        assert stats.cache_hits == 4 and stats.served == 4
        assert stats.kernel_calls == 1

    def test_knn_cached_too(self, store):
        req = KnnQueryRequest(Point(400, 400), 5)
        responses, stats = serve_all(store, [req, req], linger=0.0)
        # duplicate signatures in one burst: the second waits for no batch
        assert stats.cache_hits + stats.served == 2


class TestWorkerEquivalence:
    def test_workers_one_vs_two_bit_identical(self, store):
        reqs = range_requests(8) + [
            KnnQueryRequest(Point(200.0 * i, 150.0 * i), 6) for i in range(1, 5)
        ]
        serial, _ = serve_all(store, reqs, linger=0.0, max_batch=16, workers=1)
        pooled, stats = serve_all(store, reqs, linger=0.0, max_batch=16, workers=2)
        assert [r.results for r in serial] == [r.results for r in pooled]
        assert stats.shed == 0

    def test_warm_executor_reused_across_batches(self, store):
        _, stats = serve_all(store, range_requests(10), linger=0.0, max_batch=4)
        assert stats.kernel_calls == 3
        assert stats.executor_reuses == stats.kernel_calls - 1


class TestAdmission:
    @staticmethod
    def run_burst(store, requests, **kwargs):
        """Enqueue `requests` as simultaneous tasks (creation order) and
        collect responses; returns (responses, stats)."""

        async def go():
            async with QueryService(store, **kwargs) as svc:
                tasks = [asyncio.create_task(svc.submit(r)) for r in requests]
                responses = await asyncio.gather(*tasks)
            return responses, svc.stats

        return asyncio.run(go())

    def test_reject_sheds_beyond_max_pending(self, store):
        responses, stats = self.run_burst(
            store, range_requests(4), linger=0.0, max_pending=2, policy="reject"
        )
        assert [r.status for r in responses] == [
            ResponseStatus.OK,
            ResponseStatus.OK,
            ResponseStatus.SHED,
            ResponseStatus.SHED,
        ]
        assert stats.shed == 2 and stats.max_depth_seen == 2

    def test_drop_oldest_displaces_oldest_lowest_class(self, store):
        reqs = range_requests(1, priority=0) + range_requests(1, radius=70.0, priority=1)
        reqs += [RangeQueryRequest(Point(900, 900), 30.0, priority=0)]
        responses, stats = self.run_burst(
            store, reqs, linger=0.0, max_pending=2, policy="drop_oldest"
        )
        # newcomer (priority 0) displaces the oldest priority-0 request
        assert [r.status for r in responses] == [
            ResponseStatus.SHED,
            ResponseStatus.OK,
            ResponseStatus.OK,
        ]
        assert stats.shed == 1

    def test_drop_oldest_sheds_newcomer_when_outranked(self, store):
        reqs = range_requests(2, priority=5) + [
            RangeQueryRequest(Point(900, 900), 30.0, priority=0)
        ]
        responses, _ = self.run_burst(
            store, reqs, linger=0.0, max_pending=2, policy="drop_oldest"
        )
        assert [r.status for r in responses] == [
            ResponseStatus.OK,
            ResponseStatus.OK,
            ResponseStatus.SHED,
        ]

    def test_block_policy_is_lossless(self, store):
        responses, stats = self.run_burst(
            store, range_requests(6), linger=0.0, max_pending=2, policy="block"
        )
        assert all(r.ok for r in responses)
        assert stats.shed == 0
        assert stats.max_depth_seen <= 2

    def test_class_limits_protect_interactive_traffic(self, store):
        reqs = range_requests(2, priority=0) + range_requests(2, radius=75.0, priority=1)
        responses, _ = self.run_burst(
            store,
            reqs,
            linger=0.0,
            max_pending=8,
            policy="reject",
            class_limits={0: 1},
        )
        # second background request sheds at its class limit; interactive admits
        assert [r.status for r in responses] == [
            ResponseStatus.OK,
            ResponseStatus.SHED,
            ResponseStatus.OK,
            ResponseStatus.OK,
        ]


class TestLifecycle:
    def test_submit_requires_running_service(self, store):
        async def go():
            svc = QueryService(store)
            with pytest.raises(RuntimeError):
                await svc.submit(range_requests(1)[0])
            await svc.start()
            await svc.stop()
            with pytest.raises(RuntimeError):
                await svc.submit(range_requests(1)[0])

        asyncio.run(go())

    def test_double_start_rejected(self, store):
        async def go():
            async with QueryService(store) as svc:
                with pytest.raises(RuntimeError):
                    await svc.start()

        asyncio.run(go())

    def test_stop_drains_pending_requests(self, store):
        async def go():
            svc = await QueryService(store, linger=60.0, max_batch=64).start()
            tasks = [asyncio.create_task(svc.submit(r)) for r in range_requests(5)]
            await asyncio.sleep(0)  # let submits enqueue; linger far away
            await svc.stop()
            return await asyncio.gather(*tasks)

        responses = asyncio.run(go())
        assert all(r.ok for r in responses)


class TestEpochInvalidation:
    def test_bump_invalidates_exactly_affected_queries(self, store):
        reqs = range_requests(6, radius=40.0)
        pid_sets = store.range_partition_sets(
            [r.center for r in reqs], [r.radius for r in reqs]
        )

        async def go():
            async with QueryService(store, linger=0.0, max_batch=16) as svc:
                await svc.submit_many(reqs)  # populate cache
                svc.epochs.bump(pid_sets[0])  # quality event in query 0's partitions
                return await svc.submit_many(reqs), svc

        responses, svc = asyncio.run(go())
        affected = set(pid_sets[0])
        for req, pids, resp in zip(reqs, pid_sets, responses):
            if affected & set(pids):
                assert not resp.cached, f"stale serve for {req}"
            else:
                assert resp.cached, f"over-invalidated {req}"
        # at least query 0 recomputed, and some disjoint query stayed cached
        assert not responses[0].cached
        assert any(r.cached for r in responses)
        assert svc.cache.stale_evictions >= 1

    def test_short_knn_answer_depends_on_every_partition(self, store):
        req = KnnQueryRequest(Point(500, 500), len(store.points) + 5)

        async def go():
            async with QueryService(store, linger=0.0) as svc:
                await svc.submit(req)
                svc.epochs.bump([0])  # any single partition
                return await svc.submit(req)

        assert not asyncio.run(go()).cached

    def test_gate_admitted_write_invalidates_before_next_read(self, store):
        epochs = EpochRegistry(store.partition_boxes)
        reqs = range_requests(6, radius=40.0)
        pid_sets = store.range_partition_sets(
            [r.center for r in reqs], [r.radius for r in reqs]
        )
        write_at = reqs[0].center  # lands inside query 0's dependency set
        containing = set(epochs.partitions_containing(write_at.x, write_at.y))
        assert containing, "write point must be inside the partitioned region"

        async def go():
            async with QueryService(store, linger=0.0, max_batch=16, epochs=epochs) as svc:
                await svc.submit_many(reqs)
                before = epochs.snapshot()
                with IngestEngine(
                    n_shards=1, on_admit=ingest_epoch_hook(epochs)
                ) as engine:
                    assert engine.offer(
                        IngestEvent(
                            sensor_id="s0",
                            x=write_at.x,
                            y=write_at.y,
                            t=0.0,
                            value=1.0,
                            arrival_time=0.0,
                        )
                    )
                after = epochs.snapshot()
                return before, after, await svc.submit_many(reqs)

        before, after, responses = asyncio.run(go())
        moved = {i for i, (a, b) in enumerate(zip(before, after)) if a != b}
        assert moved == containing  # exactly the containing partitions moved
        for pids, resp in zip(pid_sets, responses):
            if moved & set(pids):
                assert not resp.cached
            else:
                assert resp.cached


class TestObservability:
    def test_serve_metrics_and_spans(self, store):
        enable()
        reqs = range_requests(4)

        async def go():
            async with QueryService(store, linger=0.0, max_batch=4) as svc:
                first = await svc.submit_many(reqs)
                second = await svc.submit_many(reqs)
            return first + second

        responses = asyncio.run(go())
        assert all(r.ok for r in responses)
        snap = OBS.metrics.snapshot()
        assert snap.counter("repro_serve_requests_total", mode="range", status="ok") == 8
        assert snap.counter("repro_serve_cache_total", result="miss") == 4
        assert snap.counter("repro_serve_cache_total", result="hit") == 4
        assert snap.counter("repro_serve_kernel_calls_total", mode="range") == 1
        assert snap.counter("repro_serve_executor_reuse_total") == 0
        hist = snap.histogram("repro_serve_batch_size", mode="range")
        assert hist is not None and hist.count == 1 and hist.vmax == 4
        lat = snap.histogram("repro_serve_latency_seconds", mode="range")
        assert lat is not None and lat.count == 4
        assert snap.gauge("repro_serve_queue_depth") >= 1
        spans = OBS.tracer.finished()
        request_spans = [s for s in spans if s.name == "serve.request"]
        batch_spans = [s for s in spans if s.name == "serve.batch"]
        assert len(request_spans) == 8 and len(batch_spans) == 1
        # span attrs render as strings
        assert sum(1 for s in request_spans if dict(s.attrs)["cached"] == "True") == 4
        assert dict(batch_spans[0].attrs)["size"] == "4"

    def test_shed_metric_labelled_by_policy_and_priority(self, store):
        enable()

        async def go():
            async with QueryService(
                store, linger=0.0, max_pending=1, policy="reject"
            ) as svc:
                tasks = [
                    asyncio.create_task(svc.submit(r)) for r in range_requests(3)
                ]
                await asyncio.gather(*tasks)

        asyncio.run(go())
        snap = OBS.metrics.snapshot()
        assert snap.counter(
            "repro_serve_shed_total", policy="reject", priority="0"
        ) == 2
        assert snap.counter(
            "repro_serve_requests_total", mode="range", status="shed"
        ) == 2


class TestPoolReuse:
    def test_second_service_reuses_warm_pool(self, store):
        from repro.parallel import get_pool_manager

        created_before = get_pool_manager().stats.pools_created

        def run_service():
            async def go():
                async with QueryService(store, workers=2, linger=0.0) as svc:
                    await svc.submit_many(range_requests(3))
                    return svc.stats

            return asyncio.run(go())

        first = run_service()
        second = run_service()
        assert first.as_dict()["pool_reuses"] in (0, 1)  # warm iff a pool pre-existed
        assert second.pool_reuses == 1  # the restart rides the warm pool
        # No extra pool was spawned for the second service.
        assert get_pool_manager().stats.pools_created <= created_before + 1

    def test_dispatcher_failure_fails_submitters_loudly(self, store):
        """A dying kernel must reject in-flight futures, never strand them."""

        def boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        async def go():
            svc = await QueryService(store, linger=0.0).start()
            svc.store = type(
                "BrokenStore",
                (),
                {
                    "range_query_many": staticmethod(boom),
                    "knn_many": staticmethod(boom),
                    "range_partition_sets": store.range_partition_sets,
                    "knn_partition_sets": store.knn_partition_sets,
                    "partition_boxes": store.partition_boxes,
                },
            )()
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await svc.submit(range_requests(1)[0])
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await svc.stop()

        asyncio.run(go())


class TestLiveIngestCompaction:
    """Opportunistic compaction between batches (live ingest tentpole)."""

    def heavy_delta(self, store, rng, n=400):
        region = BBox(0.0, 0.0, 1000.0, 1000.0)
        extra = skewed_points(rng, n, region, n_hotspots=2, hotspot_sigma=60.0)
        store.append_many(extra)
        return extra

    def test_auto_compaction_triggers_after_batch(self, store, rng, box):
        self.heavy_delta(store, rng)
        assert store.max_delta_fraction() >= 0.25
        responses, stats = serve_all(store, range_requests(4), linger=0.0)
        assert all(r.status is ResponseStatus.OK for r in responses)
        assert stats.compactions >= 1
        assert stats.points_compacted >= 1
        # only partitions at/above the threshold fold; the max must drop below it
        assert store.max_delta_fraction() < 0.25

    def test_auto_compact_off_leaves_deltas(self, store, rng, box):
        self.heavy_delta(store, rng)
        _, stats = serve_all(store, range_requests(4), linger=0.0, auto_compact=False)
        assert stats.compactions == 0
        assert store.delta_stats()["delta_points"] > 0.0

    def test_below_threshold_no_compaction(self, store, rng, box):
        store.append(Point(500.0, 500.0))
        _, stats = serve_all(
            store, range_requests(4), linger=0.0, compact_threshold=0.9
        )
        assert stats.compactions == 0

    def test_compaction_does_not_invalidate_cache(self, store, rng, box):
        """Folding deltas is a representation change: cached results must
        survive it (no epoch bump), unlike a gate-admitted write."""
        self.heavy_delta(store, rng)

        async def go():
            async with QueryService(store, linger=0.0) as svc:
                req = range_requests(1)[0]
                first = await svc.submit(req)
                # the dispatcher compacted after the first batch
                assert svc.stats.compactions >= 1
                again = await svc.submit(range_requests(1)[0])
                assert again.results == first.results
                assert again.cached
                return svc.stats

        stats = asyncio.run(go())
        assert stats.cache_hits == 1

    def test_served_results_identical_with_and_without_compaction(self, rng, box):
        pts = skewed_points(rng, 600, box, n_hotspots=3, hotspot_sigma=40.0)
        extra = skewed_points(rng, 300, box, n_hotspots=1, hotspot_sigma=80.0)
        a = PartitionedStore(pts, kd_partition(pts, box, 8))
        b = PartitionedStore(pts, kd_partition(pts, box, 8))
        a.append_many(extra)
        b.append_many(extra)
        reqs = range_requests(6) + [
            KnnQueryRequest(Point(300.0, 300.0), 5),
            KnnQueryRequest(Point(900.0, 100.0), 3),
        ]
        ra, _ = serve_all(a, reqs, linger=0.0)
        rb, _ = serve_all(b, reqs, linger=0.0, auto_compact=False)
        assert [r.results for r in ra] == [r.results for r in rb]

    def test_store_stats_exposes_delta_accounting(self, store, rng, box):
        async def go():
            async with QueryService(store, linger=0.0) as svc:
                return svc.store_stats()

        stats = asyncio.run(go())
        assert stats["points"] == 600.0
        assert "delta_fraction_max" in stats

    def test_store_stats_empty_for_duck_typed_store(self, store):
        async def go():
            svc = QueryService(store)
            svc.store = object()
            return svc.store_stats()

        assert asyncio.run(go()) == {}

    def test_serve_compaction_metric(self, store, rng, box):
        self.heavy_delta(store, rng)
        enable()
        try:
            _, stats = serve_all(store, range_requests(4), linger=0.0)
            assert stats.compactions >= 1
            snap = OBS.metrics.snapshot()
            assert snap.counter("repro_serve_compactions_total") >= 1
            assert snap.counter("repro_store_compactions_total") >= 1
        finally:
            disable()
