import numpy as np
import pytest

from repro.learning import (
    MultiTaskRidge,
    TransferRidge,
    fit_ridge,
    predict_ridge,
    rmse,
    target_only_ridge,
)


@pytest.fixture
def domains(rng):
    """Source domain (rich) and a related target domain (poor)."""
    w = np.array([2.0, -1.0, 0.5, 0.0, 1.0])
    xs = rng.normal(0, 1, (300, 5))
    ys = xs @ w + 3.0 + rng.normal(0, 0.3, 300)
    w_t = w + rng.normal(0, 0.1, 5)
    xt = rng.normal(0, 1, (6, 5))
    yt = xt @ w_t + 3.2 + rng.normal(0, 0.3, 6)
    xv = rng.normal(0, 1, (200, 5))
    yv = xv @ w_t + 3.2
    return xs, ys, xt, yt, xv, yv


class TestTransferRidge:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            TransferRidge(alpha=-1.0)

    def test_order_enforced(self, domains):
        xs, ys, xt, yt, _, _ = domains
        with pytest.raises(RuntimeError):
            TransferRidge().fit_target(xt, yt)

    def test_unfitted_predict_rejected(self, domains):
        _, _, _, _, xv, _ = domains
        with pytest.raises(RuntimeError):
            TransferRidge().predict(xv)

    def test_zero_shot_uses_source(self, domains):
        xs, ys, _, _, xv, yv = domains
        model = TransferRidge().fit_source(xs, ys)
        assert rmse(yv, model.predict(xv)) < 1.0

    def test_transfer_beats_target_only_when_data_scarce(self, domains):
        xs, ys, xt, yt, xv, yv = domains
        transfer = TransferRidge(1.0, 20.0).fit_source(xs, ys).fit_target(xt, yt)
        only = target_only_ridge(xt, yt)
        assert rmse(yv, transfer.predict(xv)) < rmse(yv, predict_ridge(only, xv))

    def test_data_overrides_prior_when_abundant(self, rng):
        """With lots of target data, transfer converges to target truth even
        from a misleading source."""
        w_t = np.array([1.0, 1.0])
        xt = rng.normal(0, 1, (500, 2))
        yt = xt @ w_t
        xs = rng.normal(0, 1, (100, 2))
        ys = xs @ np.array([-5.0, -5.0])  # opposite source
        model = TransferRidge(0.01, 1.0).fit_source(xs, ys).fit_target(xt, yt)
        xv = rng.normal(0, 1, (100, 2))
        assert rmse(xv @ w_t, model.predict(xv)) < 0.2

    def test_dimension_mismatch_rejected(self, domains, rng):
        xs, ys, _, _, _, _ = domains
        model = TransferRidge().fit_source(xs, ys)
        with pytest.raises(ValueError):
            model.fit_target(rng.normal(0, 1, (4, 3)), np.zeros(4))


class TestMultiTaskRidge:
    @pytest.fixture
    def tasks(self, rng):
        w0 = rng.normal(0, 1, 4)
        train, test = {}, {}
        for t in range(5):
            wt = w0 + rng.normal(0, 0.2, 4)
            x = rng.normal(0, 1, (8, 4))
            xv = rng.normal(0, 1, (100, 4))
            train[f"t{t}"] = (x, x @ wt + rng.normal(0, 0.2, 8))
            test[f"t{t}"] = (xv, xv @ wt)
        return train, test

    def test_params_validated(self):
        with pytest.raises(ValueError):
            MultiTaskRidge(lambda0=-1)
        with pytest.raises(ValueError):
            MultiTaskRidge(n_iter=0)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            MultiTaskRidge().fit({})

    def test_unknown_task_rejected(self, tasks):
        train, _ = tasks
        model = MultiTaskRidge().fit(train)
        with pytest.raises(KeyError):
            model.predict("ghost", np.zeros((1, 4)))

    def test_beats_independent_ridges(self, tasks):
        """The [83] claim: sharing strength helps scarce related tasks."""
        train, test = tasks
        mt = MultiTaskRidge(1.0, 5.0).fit(train)
        independent_rmse = np.mean(
            [
                rmse(test[n][1], predict_ridge(fit_ridge(*train[n], 1.0), test[n][0]))
                for n in train
            ]
        )
        assert mt.task_rmse(test) < independent_rmse

    def test_shared_component_generalizes_to_new_task(self, tasks, rng):
        train, _ = tasks
        mt = MultiTaskRidge(1.0, 5.0).fit(train)
        # A brand new related task: the shared model should beat zero.
        w0_est_pred = mt.predict_shared(rng.normal(0, 1, (50, 4)))
        assert np.std(w0_est_pred) > 0.1  # carries real signal

    def test_large_lambda1_collapses_to_pooled(self, tasks):
        train, _ = tasks
        mt = MultiTaskRidge(1.0, 1e6).fit(train)
        # Per-task deviations ~0: task predictions equal the shared ones.
        x = np.zeros((3, 4))
        for name in train:
            assert np.allclose(mt.predict(name, x), mt.predict_shared(x), atol=1e-3)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            MultiTaskRidge().fit(
                {
                    "a": (rng.normal(0, 1, (5, 3)), np.zeros(5)),
                    "b": (rng.normal(0, 1, (5, 4)), np.zeros(5)),
                }
            )
