import numpy as np
import pytest

from repro.core import Point, STRecord, Trajectory, TrajectoryPoint, records_from_series
from repro.integration import (
    attach_records,
    attachment_coverage,
    exposure_integral,
)
from repro.synth import SmoothField, correlated_random_walk, random_sensor_sites


@pytest.fixture
def scene(rng, big_box):
    field = SmoothField(rng, big_box, n_bumps=4, length_scale=300)
    sites = random_sensor_sites(rng, 40, big_box)
    series = field.sample_sensors(sites, np.arange(0, 300, 30.0), rng, noise_sigma=0.2)
    walk = correlated_random_walk(rng, 150, big_box, speed_mean=8)
    return field, records_from_series(series), walk


class TestAttach:
    def test_every_point_enriched(self, scene):
        _, records, walk = scene
        enriched = attach_records(walk, records, space_window=600, time_window=600)
        assert len(enriched) == len(walk)
        assert attachment_coverage(enriched) == 1.0

    def test_values_track_field(self, scene):
        field, records, walk = scene
        enriched = attach_records(walk, records, 400, 600, time_scale=0.5)
        errs = [
            abs(e.value - field.value(Point(e.x, e.y), e.t))
            for e in enriched
            if e.support > 0
        ]
        assert np.mean(errs) < 3.0

    def test_no_records_in_window_gives_nan(self, scene):
        _, records, walk = scene
        enriched = attach_records(walk, records, space_window=1.0, time_window=0.001)
        nans = [e for e in enriched if np.isnan(e.value)]
        assert len(nans) > 0
        assert all(e.support == 0 for e in nans)

    def test_empty_record_set(self, walk):
        enriched = attach_records(walk, [])
        assert attachment_coverage(enriched) == 0.0

    def test_support_counts_window_records(self, walk):
        p = walk[0]
        records = [STRecord(p.x + 1, p.y, p.t, 5.0), STRecord(p.x, p.y + 2, p.t, 6.0)]
        enriched = attach_records(walk, records, 10, 10)
        assert enriched[0].support == 2


class TestExposure:
    def test_constant_field_integral(self):
        t = Trajectory([TrajectoryPoint(float(i), 0, float(i)) for i in range(11)])
        records = [STRecord(x, 0, tt, 2.0) for x in range(0, 11, 2) for tt in (0.0, 5.0, 10.0)]
        enriched = attach_records(t, records, 20, 20)
        # Constant value 2 over 10 seconds -> integral 20.
        assert exposure_integral(enriched) == pytest.approx(20.0, rel=0.01)

    def test_nan_segments_skipped(self):
        from repro.integration import EnrichedPoint

        enriched = [
            EnrichedPoint(0, 0, 0.0, 1.0, 1),
            EnrichedPoint(1, 0, 1.0, float("nan"), 0),
            EnrichedPoint(2, 0, 2.0, 1.0, 1),
        ]
        assert exposure_integral(enriched) == 0.0

    def test_empty(self):
        assert exposure_integral([]) == 0.0
        assert attachment_coverage([]) == 0.0
