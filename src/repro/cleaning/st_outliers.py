"""Spatiotemporal outlier removal for STID (Sec. 2.2.3, [4, 14, 6]).

A *spatiotemporal outlier* is a record whose thematic value deviates clearly
from other records in its spatial and temporal neighborhood.  Following the
tutorial's discussion:

* :func:`neighborhood_outliers` — the neighborhood-based approach derived
  from ST-DBSCAN [14]: compare each record's value with its space-time
  neighbors,
* :class:`STDBSCAN` — full density clustering with separate spatial and
  temporal radii; noise points are outliers,
* :func:`temporal_outliers` — per-sensor time-series outliers (the tutorial
  notes trajectory point outliers are a special case of temporal OR).
"""

from __future__ import annotations

import numpy as np

from ..core.stid import STRecord, STSeries


def _neighbor_mask(
    records: list[STRecord], i: int, eps_space: float, eps_time: float
) -> np.ndarray:
    xs = np.array([r.x for r in records])
    ys = np.array([r.y for r in records])
    ts = np.array([r.t for r in records])
    d = np.hypot(xs - records[i].x, ys - records[i].y)
    mask = (d <= eps_space) & (np.abs(ts - records[i].t) <= eps_time)
    mask[i] = False
    return mask


def neighborhood_outliers(
    records: list[STRecord],
    eps_space: float,
    eps_time: float,
    threshold: float = 3.0,
    min_neighbors: int = 3,
) -> list[int]:
    """Records deviating from their space-time neighborhood mean.

    Deviation is measured against the neighborhood *median* (robust to
    contamination of the context by other outliers) and scored in units of
    the global robust residual scale (MAD over all neighborhood residuals);
    records with fewer than ``min_neighbors`` neighbors are skipped
    (insufficient context).
    """
    n = len(records)
    if n == 0:
        return []
    values = np.array([r.value for r in records])
    residuals = np.full(n, np.nan)
    for i in range(n):
        mask = _neighbor_mask(records, i, eps_space, eps_time)
        if mask.sum() >= min_neighbors:
            residuals[i] = values[i] - float(np.median(values[mask]))
    valid = ~np.isnan(residuals)
    if not valid.any():
        return []
    mad = float(np.median(np.abs(residuals[valid] - np.median(residuals[valid]))))
    scale = 1.4826 * mad if mad > 1e-12 else float(np.nanstd(residuals)) or 1e-12
    return [
        i
        for i in range(n)
        if valid[i] and abs(residuals[i]) / scale > threshold
    ]


class STDBSCAN:
    """ST-DBSCAN [14]: density clustering with spatial + temporal radii.

    Labels: cluster ids ``0..k-1``; ``-1`` marks noise (the outliers).
    An optional value radius ``eps_value`` additionally requires thematic
    similarity for neighborhood membership, as in the original algorithm.
    """

    def __init__(
        self,
        eps_space: float,
        eps_time: float,
        min_samples: int = 5,
        eps_value: float | None = None,
    ) -> None:
        if eps_space <= 0 or eps_time <= 0 or min_samples < 1:
            raise ValueError("radii must be positive, min_samples >= 1")
        self.eps_space = eps_space
        self.eps_time = eps_time
        self.min_samples = min_samples
        self.eps_value = eps_value

    def fit_predict(self, records: list[STRecord]) -> np.ndarray:
        """Cluster labels per record; ``-1`` marks noise (outliers)."""
        n = len(records)
        labels = np.full(n, -1, dtype=int)
        if n == 0:
            return labels
        xs = np.array([r.x for r in records])
        ys = np.array([r.y for r in records])
        ts = np.array([r.t for r in records])
        vs = np.array([r.value for r in records])

        def neighbors(i: int) -> np.ndarray:
            d = np.hypot(xs - xs[i], ys - ys[i])
            mask = (d <= self.eps_space) & (np.abs(ts - ts[i]) <= self.eps_time)
            if self.eps_value is not None:
                mask &= np.abs(vs - vs[i]) <= self.eps_value
            mask[i] = False
            return np.flatnonzero(mask)

        visited = np.zeros(n, dtype=bool)
        cluster = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            seeds = neighbors(i)
            if len(seeds) + 1 < self.min_samples:
                continue  # stays noise unless absorbed later
            labels[i] = cluster
            queue = list(seeds)
            while queue:
                j = queue.pop()
                if labels[j] == -1:
                    labels[j] = cluster
                if visited[j]:
                    continue
                visited[j] = True
                nbrs = neighbors(j)
                if len(nbrs) + 1 >= self.min_samples:
                    queue.extend(k for k in nbrs if not visited[k] or labels[k] == -1)
            cluster += 1
        return labels

    def outliers(self, records: list[STRecord]) -> list[int]:
        """Indices of records labeled as density noise."""
        labels = self.fit_predict(records)
        return [i for i, lbl in enumerate(labels) if lbl == -1]


def temporal_outliers(
    series: STSeries, window: int = 7, threshold: float = 3.0
) -> list[int]:
    """Per-sensor temporal outliers by robust windowed z-score on values.

    Each sample is scored against two local models of its window (sample
    itself excluded) and must deviate from *both* to be flagged:

    * the windowed **median** — robust to heavy contamination but biased on
      trending windows (it flags curvature/border points of smooth series),
    * a **Theil-Sen line** (median of pairwise slopes) — follows trends but
      breaks when a nearby spike contaminates too many pairs.

    Each residual is scored against its own MAD scale, floored at a small
    fraction of the series' robust spread so ultra-smooth series do not
    flag their curvature extremes.
    """
    values = series.values
    times = series.times
    n = len(values)
    if n < 3:
        return []
    half = max(1, window // 2)

    med_res = np.zeros(n)
    line_res = np.zeros(n)
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        idx = [j for j in range(lo, hi) if j != i]
        if len(idx) < 2:
            continue
        tx = times[idx]
        vy = values[idx]
        med_res[i] = values[i] - float(np.median(vy))
        slopes = [
            (vy[b] - vy[a]) / (tx[b] - tx[a])
            for a in range(len(idx))
            for b in range(a + 1, len(idx))
            if tx[b] != tx[a]
        ]
        slope = float(np.median(slopes)) if slopes else 0.0
        intercept = float(np.median(vy - slope * tx))
        line_res[i] = values[i] - (intercept + slope * times[i])

    value_mad = float(np.median(np.abs(values - np.median(values))))
    floor = 0.05 * 1.4826 * value_mad

    def exceeds(res: np.ndarray) -> np.ndarray:
        mad = float(np.median(np.abs(res - np.median(res))))
        scale = max(1.4826 * mad, floor, 1e-12)
        return np.abs(res) / scale > threshold

    both = exceeds(med_res) & exceeds(line_res)
    return [i for i in range(n) if both[i]]
