"""Retained scalar reference implementations for equivalence testing.

These are the seed's per-point Python loops, kept verbatim (modulo the
deterministic ``(distance, item_id)`` tie rule) after the hot paths moved
onto the columnar kernels.  They serve two purposes:

* the property-based suite in ``tests/test_kernels.py`` asserts every
  vectorized path returns *exactly* what the scalar loop returns,
* ``benchmarks/bench_kernels.py`` times them against the kernels to
  document the speedup.

Nothing here should be called on a hot path.
"""

from __future__ import annotations

import math

import numpy as np


def scalar_range(entries, center, radius: float) -> list[int]:
    """Linear-scan disk query: per-entry ``distance_to`` calls (seed path)."""
    return [e.item_id for e in entries if e.point.distance_to(center) <= radius]


def scalar_knn(entries, center, k: int) -> list[int]:
    """Linear-scan kNN with the ``(distance, item_id)`` tie rule."""
    ranked = sorted(entries, key=lambda e: (e.point.distance_to(center), e.item_id))
    return [e.item_id for e in ranked[:k]]


def scalar_speeds(points) -> list[float]:
    """Per-leg speeds via per-sample attribute walks (seed path)."""
    out = []
    for a, b in zip(points, points[1:]):
        out.append(math.hypot(b.x - a.x, b.y - a.y) / (b.t - a.t))
    return out


def scalar_headings(points) -> list[float]:
    """Per-leg headings via per-sample ``atan2`` calls (seed path)."""
    return [math.atan2(b.y - a.y, b.x - a.x) for a, b in zip(points, points[1:])]


def scalar_speed_outliers(traj, max_speed: float) -> list[int]:
    """Both-legs speed screen as an index loop (seed path)."""
    n = len(traj)
    if n < 3:
        return []
    speeds = traj.speeds()
    flagged = []
    for i in range(1, n - 1):
        if speeds[i - 1] > max_speed and speeds[i] > max_speed:
            flagged.append(i)
    return flagged


def scalar_heading_outliers(traj, max_turn: float = 2.8) -> list[int]:
    """Heading-reversal screen as an index loop (seed path)."""
    n = len(traj)
    if n < 3:
        return []
    headings = traj.headings()
    flagged = []
    for i in range(1, n - 1):
        turn = abs(float(headings[i] - headings[i - 1]))
        turn = min(turn, 2.0 * np.pi - turn)
        if turn > max_turn:
            flagged.append(i)
    return flagged


def scalar_zscore_outliers(traj, window: int = 7, threshold: float = 3.0) -> list[int]:
    """Windowed-median robust z-score screen as a per-point loop (seed path)."""
    n = len(traj)
    if n < 3:
        return []
    half = max(1, window // 2)
    xyt = traj.as_xyt()
    residuals = np.empty(n)
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        mx = float(np.median(xyt[lo:hi, 0]))
        my = float(np.median(xyt[lo:hi, 1]))
        residuals[i] = float(np.hypot(xyt[i, 0] - mx, xyt[i, 1] - my))
    mad = float(np.median(np.abs(residuals - np.median(residuals))))
    scale = 1.4826 * mad if mad > 1e-12 else float(np.std(residuals)) or 1e-12
    center = float(np.median(residuals))
    return [i for i in range(n) if (residuals[i] - center) / scale > threshold]


# -- same-named scalar twins (R3 kernel parity) -------------------------------
#
# One loop-based twin per public kernel in distances/motion/screens, under
# the *same name*, so `tools/reprolint` rule R3 can mechanically pair them
# and `tests/test_kernels.py::TestReferenceTwins` can diff every kernel
# against its twin.  Twins favour per-element clarity over speed and mirror
# each kernel's edge-case conventions (empty inputs, shrinking windows, the
# (distance, id) tie rule, the subnormal-underflow hypot fallback).


def _center_xy(center) -> tuple[float, float]:
    """Mirror of :func:`repro.kernels.columnar.center_of` for scalar code."""
    if hasattr(center, "x"):
        return float(center.x), float(center.y)
    c = np.asarray(center, dtype=float).reshape(2)
    return float(c[0]), float(c[1])


def _pair_dist(dx: float, dy: float) -> float:
    """Scalar twin of the kernels' fused sqrt(dx^2 + dy^2) with hypot repair."""
    d = math.sqrt(dx * dx + dy * dy)
    if d < 1e-150 and (dx != 0.0 or dy != 0.0):
        return math.hypot(dx, dy)
    return d


def dists_to(coords, center) -> np.ndarray:
    """Per-row Euclidean distance loop (twin of kernels.dists_to)."""
    cx, cy = _center_xy(center)
    rows = np.asarray(coords, dtype=float).reshape(-1, 2)
    return np.array([_pair_dist(float(x) - cx, float(y) - cy) for x, y in rows])


def cross_dists(a, b) -> np.ndarray:
    """Nested-loop distance matrix (twin of kernels.cross_dists)."""
    ra = np.asarray(a, dtype=float).reshape(-1, 2)
    rb = np.asarray(b, dtype=float).reshape(-1, 2)
    out = np.zeros((ra.shape[0], rb.shape[0]))
    for i in range(ra.shape[0]):
        for j in range(rb.shape[0]):
            out[i, j] = _pair_dist(ra[i, 0] - rb[j, 0], ra[i, 1] - rb[j, 1])
    return out


def range_mask(coords, center, radius: float) -> np.ndarray:
    """Per-row disk-membership loop (twin of kernels.range_mask)."""
    return np.array([d <= radius for d in dists_to(coords, center)], dtype=bool)


def range_masks(coords, centers, radii) -> np.ndarray:
    """Per-query disk-membership loops (twin of kernels.range_masks)."""
    centers_arr = np.asarray(centers, dtype=float).reshape(-1, 2)
    r = np.asarray(radii, dtype=float)
    rows = []
    for i in range(centers_arr.shape[0]):
        radius = float(r) if r.ndim == 0 else float(r[i])
        rows.append(range_mask(coords, centers_arr[i], radius))
    n = np.asarray(coords, dtype=float).reshape(-1, 2).shape[0]
    if not rows:
        return np.zeros((0, n), dtype=bool)
    return np.stack(rows)


def knn_select(dists, ids, k: int) -> np.ndarray:
    """Sort-based k-smallest under the (distance, id) tie rule."""
    d = np.asarray(dists, dtype=float)
    item_ids = np.asarray(ids)
    if k <= 0 or d.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    ranked = sorted(range(d.shape[0]), key=lambda i: (float(d[i]), int(item_ids[i])))
    return np.array([int(item_ids[i]) for i in ranked[:k]], dtype=np.int64)


def knn_select_many(coords, ids, centers, k: int) -> list[np.ndarray]:
    """Per-center kNN loop (twin of kernels.knn_select_many)."""
    centers_arr = np.asarray(centers, dtype=float).reshape(-1, 2)
    return [
        knn_select(dists_to(coords, centers_arr[i]), ids, k)
        for i in range(centers_arr.shape[0])
    ]


def chunked_range_hits(chunks, centers, radii) -> list[np.ndarray]:
    """Per-chunk, per-row disk-membership loop (twin of kernels.chunked_range_hits)."""
    centers_arr = np.asarray(centers, dtype=float).reshape(-1, 2)
    r = np.asarray(radii, dtype=float)
    out = []
    for qi in range(centers_arr.shape[0]):
        cx, cy = float(centers_arr[qi, 0]), float(centers_arr[qi, 1])
        radius = float(r) if r.ndim == 0 else float(r[qi])
        found: list[int] = []
        for coords, ids in chunks:
            rows = np.asarray(coords, dtype=float).reshape(-1, 2)
            for row in range(rows.shape[0]):
                if _pair_dist(rows[row, 0] - cx, rows[row, 1] - cy) <= radius:
                    found.append(int(ids[row]))
        out.append(np.asarray(found, dtype=np.int64))
    return out


def box_min_dists(boxes, center) -> np.ndarray:
    """Per-box min-distance loop (twin of kernels.box_min_dists)."""
    cx, cy = _center_xy(center)
    rows = np.asarray(boxes, dtype=float).reshape(-1, 4)
    out = []
    for min_x, min_y, max_x, max_y in rows:
        dx = max(min_x - cx, cx - max_x, 0.0)
        dy = max(min_y - cy, cy - max_y, 0.0)
        out.append(math.hypot(dx, dy))
    return np.array(out) if out else np.zeros(0)


def box_max_dists(boxes, center) -> np.ndarray:
    """Per-box max-distance loop (twin of kernels.box_max_dists)."""
    cx, cy = _center_xy(center)
    rows = np.asarray(boxes, dtype=float).reshape(-1, 4)
    out = []
    for min_x, min_y, max_x, max_y in rows:
        dx = max(abs(cx - min_x), abs(cx - max_x))
        dy = max(abs(cy - min_y), abs(cy - max_y))
        out.append(math.hypot(dx, dy))
    return np.array(out) if out else np.zeros(0)


def box_gap_dists(query_box, boxes) -> np.ndarray:
    """Per-box separation-gap loop (twin of kernels.box_gap_dists)."""
    rows = np.asarray(boxes, dtype=float).reshape(-1, 4)
    out = []
    for min_x, min_y, max_x, max_y in rows:
        dx = max(min_x - query_box.max_x, query_box.min_x - max_x, 0.0)
        dy = max(min_y - query_box.max_y, query_box.min_y - max_y, 0.0)
        out.append(math.hypot(dx, dy))
    return np.array(out) if out else np.zeros(0)


def haversine_m_many(lon1, lat1, lon2, lat2) -> np.ndarray:
    """Per-pair great-circle loop (twin of kernels.haversine_m_many).

    Unlike the broadcasting kernel, the twin expects equal-length
    sequences — the shape the parity suite exercises.
    """
    earth_radius_m = 6_371_000.0
    out = []
    for a, b, c, d in zip(
        np.atleast_1d(np.asarray(lon1, dtype=float)),
        np.atleast_1d(np.asarray(lat1, dtype=float)),
        np.atleast_1d(np.asarray(lon2, dtype=float)),
        np.atleast_1d(np.asarray(lat2, dtype=float)),
    ):
        phi1, phi2 = math.radians(b), math.radians(d)
        dphi = phi2 - phi1
        dlmb = math.radians(c - a)
        h = (
            math.sin(dphi / 2.0) ** 2
            + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
        )
        out.append(2.0 * earth_radius_m * math.asin(min(1.0, math.sqrt(h))))
    return np.array(out)


def leg_displacements(xyt) -> np.ndarray:
    """Per-leg distance loop (twin of kernels.leg_displacements)."""
    rows = np.asarray(xyt, dtype=float).reshape(-1, 3)
    if rows.shape[0] < 2:
        return np.zeros(0)
    return np.array(
        [
            math.hypot(rows[i + 1, 0] - rows[i, 0], rows[i + 1, 1] - rows[i, 1])
            for i in range(rows.shape[0] - 1)
        ]
    )


def leg_speeds(xyt) -> np.ndarray:
    """Per-leg speed loop (twin of kernels.leg_speeds)."""
    rows = np.asarray(xyt, dtype=float).reshape(-1, 3)
    if rows.shape[0] < 2:
        return np.zeros(0)
    disp = leg_displacements(rows)
    return np.array(
        [disp[i] / (rows[i + 1, 2] - rows[i, 2]) for i in range(rows.shape[0] - 1)]
    )


def leg_headings(xyt) -> np.ndarray:
    """Per-leg heading loop (twin of kernels.leg_headings)."""
    rows = np.asarray(xyt, dtype=float).reshape(-1, 3)
    if rows.shape[0] < 2:
        return np.zeros(0)
    return np.array(
        [
            math.atan2(rows[i + 1, 1] - rows[i, 1], rows[i + 1, 0] - rows[i, 0])
            for i in range(rows.shape[0] - 1)
        ]
    )


def sampling_intervals(times) -> np.ndarray:
    """Per-gap timestamp-difference loop (twin of kernels.sampling_intervals)."""
    t = np.asarray(times, dtype=float).reshape(-1)
    if t.shape[0] < 2:
        return np.zeros(0)
    return np.array([t[i + 1] - t[i] for i in range(t.shape[0] - 1)])


def turn_angles(headings) -> np.ndarray:
    """Per-pair wrapped heading-change loop (twin of kernels.turn_angles)."""
    h = np.asarray(headings, dtype=float).reshape(-1)
    if h.shape[0] < 2:
        return np.zeros(0)
    out = []
    for i in range(h.shape[0] - 1):
        turn = abs(h[i + 1] - h[i])
        out.append(min(turn, 2.0 * math.pi - turn))
    return np.array(out)


def path_length(xyt) -> float:
    """Summed per-leg distance loop (twin of kernels.path_length)."""
    return float(sum(leg_displacements(xyt), 0.0))


def windowed_medians(values, half: int) -> np.ndarray:
    """Per-element shrinking-window median loop (twin of kernels.windowed_medians)."""
    v = np.asarray(values, dtype=float).reshape(-1)
    n = v.shape[0]
    out = np.empty(n)
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        out[i] = float(np.median(v[lo:hi]))
    return out if n else np.zeros(0)


def windowed_median_residuals(xyt, window: int) -> np.ndarray:
    """Per-sample residual loop (twin of kernels.windowed_median_residuals)."""
    rows = np.asarray(xyt, dtype=float).reshape(-1, 3)
    half = max(1, window // 2)
    mx = windowed_medians(rows[:, 0], half)
    my = windowed_medians(rows[:, 1], half)
    return np.array(
        [math.hypot(rows[i, 0] - mx[i], rows[i, 1] - my[i]) for i in range(rows.shape[0])]
    )


def robust_zscores(residuals) -> np.ndarray:
    """Per-element robust z-score loop (twin of kernels.robust_zscores)."""
    r = np.asarray(residuals, dtype=float).reshape(-1)
    if r.size == 0:
        return np.zeros(0)
    center = float(np.median(r))
    mad = float(np.median(np.abs(r - center)))
    scale = 1.4826 * mad if mad > 1e-12 else float(np.std(r)) or 1e-12
    return np.array([(float(x) - center) / scale for x in r])


def both_leg_flags(leg_mask) -> list[int]:
    """Interior both-legs-flagged loop (twin of kernels.both_leg_flags)."""
    m = [bool(x) for x in np.asarray(leg_mask).reshape(-1)]
    if len(m) < 2:
        return []
    return [i for i in range(1, len(m)) if m[i - 1] and m[i]]
