"""STID + STID multi-source fusion (Sec. 2.2.5, [139, 85]).

Combines measurements of the same phenomenon from heterogeneous sources —
differing in bias, noise level, and sampling — into a single, more reliable
representation:

* :func:`estimate_bias` / :func:`debias_series` — per-source calibration
  offsets estimated from co-located overlap,
* :func:`fuse_series` — inverse-variance-weighted fusion of co-located
  sensor series onto a common time grid,
* :func:`fuse_grids` — cell-wise fusion of two :class:`STGrid` rasters with
  per-grid reliability weights (the multi-resolution remote-sensing case of
  [139] reduced to a common raster).
"""

from __future__ import annotations

import numpy as np

from ..core.stid import STGrid, STSeries


def estimate_bias(series: STSeries, reference: STSeries) -> float:
    """Median offset of ``series`` against a co-located reference.

    Both series are compared on the overlap of their time spans; the median
    makes the estimate robust to spikes in either series.
    """
    t0 = max(series.times[0], reference.times[0])
    t1 = min(series.times[-1], reference.times[-1])
    if t1 <= t0:
        raise ValueError("series do not overlap in time")
    mask = (series.times >= t0) & (series.times <= t1)
    ts = series.times[mask]
    ours = series.values[mask]
    theirs = np.interp(ts, reference.times, reference.values)
    return float(np.median(ours - theirs))


def debias_series(series: STSeries, bias: float) -> STSeries:
    """Remove a constant calibration offset."""
    return series.with_values(series.values - bias)


def fuse_series(
    sources: list[STSeries],
    target_times: np.ndarray,
    noise_sigmas: list[float] | None = None,
    debias_against_first: bool = False,
) -> STSeries:
    """Fuse co-located series into one, by inverse-variance weighting.

    Every source is linearly interpolated onto ``target_times``; when
    ``noise_sigmas`` is omitted all sources weigh equally.  With
    ``debias_against_first`` each later source is first offset-corrected
    against the first (treated as the trusted reference instrument —
    the low-cost-sensor calibration scheme of [85]).
    """
    if not sources:
        raise ValueError("need at least one source")
    target = np.asarray(target_times, dtype=float)
    if noise_sigmas is None:
        noise_sigmas = [1.0] * len(sources)
    if len(noise_sigmas) != len(sources):
        raise ValueError("one sigma per source required")
    used = list(sources)
    if debias_against_first and len(sources) > 1:
        ref = sources[0]
        used = [ref] + [
            debias_series(s, estimate_bias(s, ref)) for s in sources[1:]
        ]
    weights = np.array([1.0 / s**2 for s in noise_sigmas])
    stack = np.stack([np.interp(target, s.times, s.values) for s in used])
    fused = (weights[:, None] * stack).sum(axis=0) / weights.sum()
    # The fused series sits at the (weighted) centroid of the source sites.
    cx = float(np.average([s.location.x for s in used], weights=weights))
    cy = float(np.average([s.location.y for s in used], weights=weights))
    from ..core.geometry import Point

    return STSeries("fused", Point(cx, cy), target, fused)


def fuse_grids(a: STGrid, b: STGrid, weight_a: float = 0.5) -> STGrid:
    """Cell-wise fusion of two same-shape grids.

    Where both hold values: weighted average.  Where one is NaN: the other
    wins — so fusion also *completes* coverage, the property the tutorial
    attributes to data integration (↑ completeness, ↑ accuracy).
    """
    if a.shape != b.shape:
        raise ValueError("grids must share shape; resample first")
    if not 0.0 <= weight_a <= 1.0:
        raise ValueError("weight_a must be in [0, 1]")
    out = a.copy()
    va, vb = a.values, b.values
    both = ~np.isnan(va) & ~np.isnan(vb)
    only_b = np.isnan(va) & ~np.isnan(vb)
    out.values[both] = weight_a * va[both] + (1.0 - weight_a) * vb[both]
    out.values[only_b] = vb[only_b]
    return out


def fusion_gain(
    truth: np.ndarray, single: np.ndarray, fused: np.ndarray
) -> dict[str, float]:
    """RMSE of a single source vs the fused estimate against truth."""
    truth = np.asarray(truth, dtype=float)

    def rmse(est: np.ndarray) -> float:
        return float(np.sqrt(np.mean((np.asarray(est) - truth) ** 2)))

    return {"single_rmse": rmse(single), "fused_rmse": rmse(fused)}
