"""R2-flow: path-sensitive resource-lifecycle analysis (CFG-lite).

Replaces the old lexical R2 check.  A *resource acquisition* — an shm
``create``/``attach``, an arena ``.share(...)`` lease, a pool lease from
``get_executor()`` / ``<manager>.acquire()``, or an obs ``tracer.span``
context — must be provably paired with its release on **every** path out
of the acquiring scope.  The analysis walks the statement structure from
the acquisition onward and accepts exactly these dispositions:

* the acquisition is a ``with``-item context expression,
* ownership escapes immediately (the value is passed to a call, returned,
  yielded, or stored into an attribute/subscript/container — transfer of
  the release obligation, e.g. ``stack.enter_context(...)`` or a factory
  ``return cls(SharedArray.attach(h), ...)``),
* the bound name reaches a release (``release``/``close``/``unlink``/
  ``shutdown``), a ``with name`` block, or an ownership escape, with no
  unprotected early ``return``, ``raise``, or may-raise statement in
  between.  A ``try`` whose ``finally`` releases the name protects every
  path; a handler that releases it protects the exception paths.

Unlike the lexical rule this catches leaks on early-return/raise paths,
leaks in the window between acquisition and the protecting ``try``, and
rebinding a still-held name — while no longer flagging ownership-transfer
factories that needed ``# reprolint: disable=R2`` pragmas before.

Deliberately strict (matching the repo's unlink-on-error contract): any
statement that can raise while a resource is held unprotected counts as a
leak path, because an exception there has no release site.  Attribute
access on the result without keeping the owner (``return shared.handle``)
is a leak — the segment can never be released.
"""

from __future__ import annotations

import ast

from .core import Finding, Module
from .rules import dotted_name, import_aliases, parent_map

RELEASE_METHODS = {"release", "close", "unlink", "shutdown"}
SHM_CLASSES = {"SharedArray", "SharedTrajectoryBatch"}
_ACQUIRE_FUNCS = {"get_executor"}

_TRANSPARENT = (ast.IfExp, ast.Tuple, ast.List, ast.Set, ast.Starred, ast.Await, ast.NamedExpr)


def _terminal_name(expr: ast.AST) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func)
    return None


def acquisition_kind(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Resource category of a call, or None when it acquires nothing."""
    func = call.func
    if isinstance(func, ast.Attribute):
        recv = func.value
        if func.attr in {"create", "attach"}:
            base = dotted_name(recv)
            if base is not None and base.rsplit(".", 1)[-1] in SHM_CLASSES:
                return "shared-memory segment"
        term = (_terminal_name(recv) or "").lower()
        if func.attr == "share" and "arena" in term:
            return "arena lease"
        if func.attr == "acquire" and ("manager" in term or term.endswith("pool")):
            return "pool lease"
        if func.attr == "span" and ("tracer" in term):
            return "obs span"
    name = dotted_name(func)
    if name is not None:
        first, _, rest = name.partition(".")
        resolved = aliases.get(first, first) + (f".{rest}" if rest else "")
        if resolved.rsplit(".", 1)[-1] in _ACQUIRE_FUNCS:
            return "pool lease"
    return None


def _own_nodes(stmts: list[ast.stmt]):
    """Walk nodes without descending into nested function/class bodies."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def rule_r2_flow(module: Module) -> list[Finding]:
    """Flag every resource acquisition that can leak on some path."""
    aliases = import_aliases(module.tree)
    parents = parent_map(module.tree)
    findings: list[Finding] = []

    scopes: list[list[ast.stmt]] = [module.tree.body]
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)

    for body in scopes:
        _check_scope(module, body, aliases, parents, findings)
    return sorted(set(findings))


def _check_scope(
    module: Module,
    body: list[ast.stmt],
    aliases: dict[str, str],
    parents: dict[ast.AST, ast.AST],
    findings: list[Finding],
) -> None:
    for node in _own_nodes(body):
        if not isinstance(node, ast.Call):
            continue
        kind = acquisition_kind(node, aliases)
        if kind is None:
            continue
        disposition, name, stmt = _disposition(node, parents)
        if disposition == "ok":
            continue
        if disposition == "leak":
            findings.append(_leak(module, node.lineno, kind, "the result is discarded"))
            continue
        # disposition == "track": flow-check the bound name from stmt onward
        assert name is not None and stmt is not None
        tracker = _Tracker(module, name, kind, node.lineno, findings)
        path = _statement_path(stmt, body, parents)
        if path is None:
            continue  # acquisition outside this scope's direct structure
        status = tracker.run_from(body, path, _Ctx())
        if status == "held" and not tracker.reported:
            tracker.report(
                stmt.lineno, "the scope can end without releasing it"
            )


def _disposition(
    call: ast.Call, parents: dict[ast.AST, ast.AST]
) -> tuple[str, str | None, ast.stmt | None]:
    """How an acquisition call's value is used: 'ok' | 'leak' | ('track', name)."""
    cur: ast.AST = call
    while True:
        parent = parents.get(cur)
        if parent is None:
            return "leak", None, None
        if isinstance(parent, ast.withitem):
            return "ok", None, None  # context manager pairs enter/exit
        if isinstance(parent, ast.Call):
            if cur is not parent.func:
                return "ok", None, None  # ownership passed to the callee
            return "leak", None, None
        if isinstance(parent, ast.keyword):
            return "ok", None, None
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return "ok", None, None  # ownership returned to the caller
        if isinstance(parent, (ast.Attribute, ast.Subscript)):
            return "leak", None, None  # value derived, owner dropped
        if isinstance(parent, ast.Dict):
            cur = parent
            continue
        if isinstance(parent, _TRANSPARENT):
            cur = parent
            continue
        if isinstance(parent, ast.Assign):
            if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
                return "track", parent.targets[0].id, parent
            return "ok", None, None  # stored into an attribute/subscript/tuple
        if isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return "track", parent.target.id, parent
            return "ok", None, None
        if isinstance(parent, ast.Expr):
            return "leak", None, None  # bare expression statement: discarded
        if isinstance(parent, ast.stmt):
            return "leak", None, None
        cur = parent


def _statement_path(
    stmt: ast.stmt, scope_body: list[ast.stmt], parents: dict[ast.AST, ast.AST]
) -> list[tuple[str, int]] | None:
    """Navigation path [(field, index), ...] from scope_body down to stmt."""
    chain: list[tuple[ast.AST, str, int]] = []
    cur: ast.AST = stmt
    while True:
        parent = parents.get(cur)
        if parent is None:
            return None
        placed = False
        for field in ("body", "orelse", "finalbody"):
            seq = getattr(parent, field, None)
            if isinstance(seq, list) and cur in seq:
                chain.append((parent, field, seq.index(cur)))
                placed = True
                break
        if not placed:
            if isinstance(parent, ast.ExceptHandler):
                chain.append((parent, "body", parent.body.index(cur)))  # type: ignore[arg-type]
            else:
                return None
        if getattr(parent, "body", None) is scope_body or (
            isinstance(parent, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef))
            and parent.body is scope_body
        ):
            if chain and chain[-1][0] is parent:
                break
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            # reached a different scope boundary without matching: bail
            if parent.body is not scope_body:
                return None
            break
        cur = parent
    # chain is innermost-first; the path consumed by the tracker is outermost-first
    path: list[tuple[str, int]] = []
    for _node, field, idx in reversed(chain):
        path.append((field, idx))
    return path


class _Ctx:
    """Protection context: is the current region covered by a releasing try?"""

    __slots__ = ("protected_raise",)

    def __init__(self, protected_raise: bool = False) -> None:
        self.protected_raise = protected_raise

    def with_raise_protection(self) -> "_Ctx":
        return _Ctx(protected_raise=True)


class _Tracker:
    """Follows one bound resource name through the statement structure."""

    def __init__(
        self, module: Module, name: str, kind: str, acq_line: int, findings: list[Finding]
    ) -> None:
        self.module = module
        self.name = name
        self.kind = kind
        self.acq_line = acq_line
        self.findings = findings
        self.reported = False

    def report(self, line: int, why: str) -> None:
        if self.reported:
            return
        self.reported = True
        self.findings.append(_leak(self.module, self.acq_line, self.kind, f"{why} (line {line})"))

    # -- name effects ------------------------------------------------------------

    def _releases(self, node: ast.AST) -> bool:
        for sub in _own_nodes([node] if isinstance(node, ast.stmt) else [ast.Expr(node)]):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in RELEASE_METHODS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == self.name
            ):
                return True
        return False

    def _escapes(self, stmt: ast.stmt) -> bool:
        """The name appears in an ownership-transferring position."""
        local_parents = {
            child: parent for parent in ast.walk(stmt) for child in ast.iter_child_nodes(parent)
        }
        for sub in _own_nodes([stmt]):
            if not (
                isinstance(sub, ast.Name)
                and sub.id == self.name
                and isinstance(sub.ctx, ast.Load)
            ):
                continue
            cur: ast.AST = sub
            while True:
                parent = local_parents.get(cur)
                if parent is None:
                    break
                if isinstance(parent, ast.Call) and cur is not parent.func:
                    return True
                if isinstance(parent, ast.keyword):
                    return True
                if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    if cur is getattr(parent, "value", None):
                        return True
                    break
                if isinstance(parent, ast.Dict) or isinstance(parent, _TRANSPARENT):
                    cur = parent
                    continue
                break
        return False

    def _referenced_in_nested_def(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name) and sub.id == self.name:
                        return True
        return False

    def _rebinds(self, stmt: ast.stmt) -> bool:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id == self.name:
                    return True
        return False

    def _may_raise_expr(self, expr: ast.expr | None) -> bool:
        if expr is None:
            return False
        for sub in _own_nodes([ast.Expr(expr)]):
            if isinstance(sub, ast.Call):
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in RELEASE_METHODS
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == self.name
                ):
                    continue
                return True
        return False

    def _may_raise(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Assert):
            return True
        for sub in _own_nodes([stmt]):
            if isinstance(sub, ast.Call):
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in RELEASE_METHODS
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == self.name
                ):
                    continue
                return True
        return False

    # -- interpreter ---------------------------------------------------------------

    def run_from(self, stmts: list[ast.stmt], path: list[tuple[str, int]], ctx: _Ctx) -> str:
        """Execute from the acquisition statement onward; returns end status."""
        field, i = path[0]
        del field  # top-level path is always within ``stmts`` directly
        if len(path) == 1:
            status = "held"
        else:
            status = self._descend(stmts[i], path[1:], ctx)
        if status == "held":
            status = self.exec_block(stmts, i + 1, ctx)
        return status

    def _descend(self, stmt: ast.stmt, path: list[tuple[str, int]], ctx: _Ctx) -> str:
        field, idx = path[0]
        if isinstance(stmt, ast.Try):
            if any(self._releases(s) for s in stmt.finalbody):
                return "closed"  # finally releases on every path out
            handler_protects = any(
                self._releases(s) for h in stmt.handlers for s in h.body
            )
            if field == "body":
                inner_ctx = ctx.with_raise_protection() if handler_protects else ctx
                sub = stmt.body
            elif field == "orelse":
                sub = stmt.orelse
                inner_ctx = ctx
            elif field == "finalbody":
                sub = stmt.finalbody
                inner_ctx = ctx
            else:
                return "held"
            status = self._run_sub(sub, path, inner_ctx)
            if status == "held" and field == "body":
                if stmt.orelse:
                    status = self.exec_block(stmt.orelse, 0, ctx)
                if status == "held" and stmt.finalbody:
                    status = self.exec_block(stmt.finalbody, 0, ctx)
            return status
        if isinstance(stmt, ast.ExceptHandler):
            return self._run_sub(stmt.body, path, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            status = self._run_sub(getattr(stmt, field), path, ctx)
            if status == "held":
                # the next iteration re-executes the acquisition, leaking this one
                self.report(stmt.lineno, "the loop can iterate again while it is still held")
                return "closed"
            return status
        sub = getattr(stmt, field, None)
        if isinstance(sub, list):
            return self._run_sub(sub, path, ctx)
        return "held"

    def _run_sub(self, stmts: list[ast.stmt], path: list[tuple[str, int]], ctx: _Ctx) -> str:
        _field, i = path[0]
        if len(path) == 1:
            status = "held"
        else:
            status = self._descend(stmts[i], path[1:], ctx)
        if status == "held":
            status = self.exec_block(stmts, i + 1, ctx)
        return status

    def exec_block(self, stmts: list[ast.stmt], start: int, ctx: _Ctx) -> str:
        for stmt in stmts[start:]:
            status = self.exec_stmt(stmt, ctx)
            if status != "held":
                return status
        return "held"

    def exec_stmt(self, stmt: ast.stmt, ctx: _Ctx) -> str:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # a nested scope capturing the name may release it later
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == self.name:
                    return "closed"
            return "held"

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == self.name:
                    return "closed"  # ``with name:`` releases on exit
                if self._may_raise_expr(expr) and not ctx.protected_raise:
                    self.report(expr.lineno, "a `with` item can raise while it is held")
                    return "closed"
            return self.exec_block(stmt.body, 0, ctx)

        if isinstance(stmt, ast.If):
            if self._may_raise_expr(stmt.test) and not ctx.protected_raise:
                self.report(stmt.lineno, "the `if` test can raise while it is held")
                return "closed"
            s1 = self.exec_block(stmt.body, 0, ctx)
            s2 = self.exec_block(stmt.orelse, 0, ctx)
            if "held" in (s1, s2):
                return "held"
            if s1 == s2 == "exited":
                return "exited"
            return "closed"

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            if self._may_raise_expr(header) and not ctx.protected_raise:
                self.report(stmt.lineno, "the loop header can raise while it is held")
                return "closed"
            self.exec_block(stmt.body, 0, ctx)  # findings inside count; status joins to held
            self.exec_block(stmt.orelse, 0, ctx)
            return "held" if not self.reported else "closed"

        if isinstance(stmt, ast.Try):
            if any(self._releases(s) for s in stmt.finalbody):
                return "closed"  # every path through this try releases
            handler_protects = any(self._releases(s) for h in stmt.handlers for s in h.body)
            body_ctx = ctx.with_raise_protection() if handler_protects else ctx
            status = self.exec_block(stmt.body, 0, body_ctx)
            if status == "held" and stmt.orelse:
                status = self.exec_block(stmt.orelse, 0, ctx)
            if status == "held" and stmt.finalbody:
                status = self.exec_block(stmt.finalbody, 0, ctx)
            return status

        if isinstance(stmt, ast.Return):
            if stmt.value is not None and self._escapes(stmt):
                return "exited"
            if not self.reported:
                self.report(stmt.lineno, "an early `return` drops it unreleased")
            return "exited"

        if isinstance(stmt, ast.Raise):
            if not ctx.protected_raise:
                self.report(stmt.lineno, "a `raise` drops it unreleased")
            return "exited"

        # leaf statements
        if self._releases(stmt):
            return "closed"
        if self._escapes(stmt):
            return "closed"
        if self._referenced_in_nested_def(stmt):
            return "closed"
        if self._rebinds(stmt):
            self.report(stmt.lineno, "the name is rebound while still held")
            return "closed"
        if self._may_raise(stmt) and not ctx.protected_raise:
            self.report(stmt.lineno, "a statement can raise while it is held")
            return "closed"
        return "held"


def _leak(module: Module, line: int, kind: str, why: str) -> Finding:
    return Finding(
        module.rel,
        line,
        "R2",
        f"{kind} can leak: {why} — pair the acquisition with a `with` block, "
        "a protecting try/finally (or a handler that releases and re-raises), "
        "or transfer ownership before anything can fail",
    )
