"""Semi-supervised co-training over two sensing views (Sec. 2.1 learning
paradigms, [22]).

Chen et al. [22] estimate fine-grained urban air quality with *ensemble
semi-supervised learning*: labels (monitoring stations) are scarce, but two
independent feature views of each cell exist, and classifiers trained on
each view teach one another with their most confident predictions on
unlabeled cells.

* :class:`CentroidClassifier` — the simple, margin-producing base learner,
* :class:`CoTrainingClassifier` — the two-view loop: per round, each view's
  model labels its most confident unlabeled cells for the *other* view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class CentroidClassifier:
    """Nearest-class-centroid classifier with a distance-margin confidence."""

    def __init__(self) -> None:
        self._centroids: dict[int, np.ndarray] = {}

    @property
    def classes(self) -> list[int]:
        return sorted(self._centroids)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CentroidClassifier":
        """Compute one centroid per class."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError("features and labels must align")
        if len(np.unique(y)) < 2:
            raise ValueError("need at least two classes")
        self._centroids = {int(c): x[y == c].mean(axis=0) for c in np.unique(y)}
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for ``x``."""
        labels, _ = self.predict_with_margin(x)
        return labels

    def predict_with_margin(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Labels plus confidence = gap between the two nearest centroids."""
        if not self._centroids:
            raise RuntimeError("call fit() first")
        x = np.asarray(x, dtype=float)
        classes = self.classes
        d = np.stack(
            [np.linalg.norm(x - self._centroids[c], axis=1) for c in classes], axis=1
        )
        order = np.argsort(d, axis=1)
        labels = np.array([classes[i] for i in order[:, 0]])
        if len(classes) > 1:
            margin = d[np.arange(len(x)), order[:, 1]] - d[np.arange(len(x)), order[:, 0]]
        else:
            margin = -d[:, 0]
        return labels, margin

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct predictions on labeled data."""
        return float(np.mean(self.predict(x) == np.asarray(y)))


@dataclass
class CoTrainingClassifier:
    """Two-view co-training with confident-margin pseudo-labeling.

    ``n_rounds`` rounds; each round, each view's classifier pseudo-labels
    its ``per_round`` most confident unlabeled examples for the other
    view's training set.
    """

    n_rounds: int = 10
    per_round: int = 6

    def __post_init__(self) -> None:
        if self.n_rounds < 1 or self.per_round < 1:
            raise ValueError("n_rounds and per_round must be >= 1")
        self.model_a = CentroidClassifier()
        self.model_b = CentroidClassifier()

    def fit(
        self,
        view_a: np.ndarray,
        view_b: np.ndarray,
        labels: np.ndarray,
        labeled_indices: list[int],
    ) -> "CoTrainingClassifier":
        """Run the co-training rounds from the labeled seed set."""
        xa = np.asarray(view_a, dtype=float)
        xb = np.asarray(view_b, dtype=float)
        y = np.asarray(labels)
        if not (len(xa) == len(xb) == len(y)):
            raise ValueError("views and labels must align")
        if not labeled_indices:
            raise ValueError("need labeled examples")
        train_a: dict[int, int] = {i: int(y[i]) for i in labeled_indices}
        train_b: dict[int, int] = {i: int(y[i]) for i in labeled_indices}
        pool = [i for i in range(len(y)) if i not in set(labeled_indices)]
        for _ in range(self.n_rounds):
            self.model_a.fit(xa[sorted(train_a)], np.array([train_a[i] for i in sorted(train_a)]))
            self.model_b.fit(xb[sorted(train_b)], np.array([train_b[i] for i in sorted(train_b)]))
            self._teach(self.model_a, xa, pool, train_b)
            self._teach(self.model_b, xb, pool, train_a)
        self.model_a.fit(xa[sorted(train_a)], np.array([train_a[i] for i in sorted(train_a)]))
        self.model_b.fit(xb[sorted(train_b)], np.array([train_b[i] for i in sorted(train_b)]))
        return self

    def _teach(
        self,
        teacher: CentroidClassifier,
        teacher_view: np.ndarray,
        pool: list[int],
        student_train: dict[int, int],
    ) -> None:
        candidates = [i for i in pool if i not in student_train]
        if not candidates:
            return
        preds, margins = teacher.predict_with_margin(teacher_view[candidates])
        for o in np.argsort(-margins)[: self.per_round]:
            student_train[candidates[int(o)]] = int(preds[int(o)])

    def predict(self, view_a: np.ndarray, view_b: np.ndarray) -> np.ndarray:
        """Joint prediction: the view with the larger margin decides."""
        la, ma = self.model_a.predict_with_margin(np.asarray(view_a, dtype=float))
        lb, mb = self.model_b.predict_with_margin(np.asarray(view_b, dtype=float))
        return np.where(ma >= mb, la, lb)

    def accuracy(self, view_a: np.ndarray, view_b: np.ndarray, y: np.ndarray) -> float:
        """Joint-prediction accuracy on labeled data."""
        return float(np.mean(self.predict(view_a, view_b) == np.asarray(y)))
