import numpy as np
import pytest

from repro.core import BBox, Point
from repro.decision import (
    PUSiteSelector,
    ranking_quality,
    site_features,
    visits_from_fleet,
)
from repro.synth import fleet


@pytest.fixture
def scenario(rng, big_box):
    trips = fleet(rng, 50, 60, big_box, speed_mean=10)
    visits = visits_from_fleet(trips)
    candidates = [
        Point(x, y) for x in range(100, 2000, 200) for y in range(100, 2000, 200)
    ]
    features = site_features(candidates, visits)
    demand = features[:, 1]
    true_sites = [int(i) for i in np.argsort(-demand)[:12]]
    return candidates, features, true_sites


class TestSiteFeatures:
    def test_shape(self, scenario):
        candidates, features, _ = scenario
        assert features.shape == (len(candidates), 3)

    def test_monotone_in_radius(self, scenario):
        _, features, _ = scenario
        assert (features[:, 1] >= features[:, 0]).all()
        assert (features[:, 2] >= features[:, 1]).all()

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            site_features([], [])

    def test_no_visits_all_zero(self):
        feats = site_features([Point(0, 0)], [])
        assert (feats == 0).all()

    def test_counts_correct(self):
        visits = [Point(0, 0), Point(50, 0), Point(400, 0)]
        feats = site_features([Point(0, 0)], visits, radii=(100.0, 500.0))
        assert feats[0].tolist() == [2.0, 3.0]


class TestPUSelector:
    def test_validation(self):
        with pytest.raises(ValueError):
            PUSiteSelector(negative_fraction=0.0)

    def test_fit_requires_positives(self, scenario):
        _, features, _ = scenario
        with pytest.raises(ValueError):
            PUSiteSelector().fit(features, [])

    def test_fit_index_validated(self, scenario):
        _, features, _ = scenario
        with pytest.raises(ValueError):
            PUSiteSelector().fit(features, [10_000])

    def test_scores_require_fit(self, scenario):
        _, features, _ = scenario
        with pytest.raises(RuntimeError):
            PUSiteSelector().scores(features)

    def test_known_positives_score_high(self, scenario):
        _, features, true_sites = scenario
        sel = PUSiteSelector().fit(features, true_sites[:6])
        s = sel.scores(features)
        assert np.mean(s[true_sites[:6]]) > np.mean(s)

    def test_hidden_positives_rank_above_random(self, scenario):
        _, features, true_sites = scenario
        known, hidden = true_sites[:6], set(true_sites[6:])
        sel = PUSiteSelector().fit(features, known)
        ranking = sel.rank(features, exclude=set(known))
        assert ranking_quality(ranking, hidden) > 0.7

    def test_exclude_removes_known(self, scenario):
        _, features, true_sites = scenario
        sel = PUSiteSelector().fit(features, true_sites[:6])
        ranking = sel.rank(features, exclude=set(true_sites[:6]))
        assert not set(true_sites[:6]) & set(ranking)


class TestRankingQuality:
    def test_perfect(self):
        assert ranking_quality([7, 1, 2, 3], {7}) == 1.0

    def test_worst(self):
        assert ranking_quality([1, 2, 3, 7], {7}) == 0.0

    def test_random_is_half(self):
        # Hidden positive in the exact middle.
        assert ranking_quality([0, 1, 9, 2, 3], {9}) == pytest.approx(0.5)

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValueError):
            ranking_quality([0, 1], set())

    def test_missing_positive_rejected(self):
        with pytest.raises(ValueError):
            ranking_quality([0, 1], {9})
