import numpy as np
import pytest

from repro.core import (
    BBox,
    Point,
    STGrid,
    STRecord,
    STSeries,
    grid_rmse,
    records_from_series,
)


@pytest.fixture
def series():
    return STSeries("s1", Point(10, 20), [0.0, 10.0, 20.0], [1.0, 3.0, 5.0])


class TestSTRecord:
    def test_point(self):
        r = STRecord(1, 2, 3, 4.5, "dev")
        assert r.point == Point(1, 2)
        assert r.value == 4.5


class TestSTSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            STSeries("s", Point(0, 0), [0, 1], [1.0])

    def test_unordered_times(self):
        with pytest.raises(ValueError):
            STSeries("s", Point(0, 0), [1.0, 0.5], [1, 2])

    def test_iter_yields_records(self, series):
        recs = list(series)
        assert len(recs) == 3
        assert recs[0].source == "s1"
        assert recs[2].t == 20.0

    def test_value_at_interpolates(self, series):
        assert series.value_at(5.0) == pytest.approx(2.0)

    def test_value_at_outside(self, series):
        with pytest.raises(ValueError):
            series.value_at(-1.0)

    def test_value_at_empty(self):
        empty = STSeries("e", Point(0, 0), [], [])
        with pytest.raises(ValueError):
            empty.value_at(0.0)

    def test_slice_time(self, series):
        s = series.slice_time(5, 15)
        assert len(s) == 1 and s.values[0] == 3.0

    def test_with_values_copies(self, series):
        s2 = series.with_values([9, 9, 9])
        assert s2.values.tolist() == [9, 9, 9]
        assert series.values.tolist() == [1, 3, 5]

    def test_values_defensive_copy(self, series):
        v = series.values
        v[0] = 99
        assert series.values[0] == 1.0

    def test_records_from_series(self, series):
        recs = records_from_series([series, series])
        assert len(recs) == 6


class TestSTGrid:
    @pytest.fixture
    def grid(self):
        return STGrid.empty(BBox(0, 0, 100, 100), 0.0, 100.0, 10.0, 10.0)

    def test_empty_shape(self, grid):
        assert grid.shape == (10, 10, 10)
        assert grid.missing_fraction() == 1.0

    def test_bad_params(self):
        with pytest.raises(ValueError):
            STGrid.empty(BBox(0, 0, 1, 1), 0, 1, 0.0, 1.0)

    def test_cell_index_basic(self, grid):
        assert grid.cell_index(Point(5, 5), 5.0) == (0, 0, 0)
        assert grid.cell_index(Point(95, 95), 95.0) == (9, 9, 9)

    def test_cell_index_max_border(self, grid):
        assert grid.cell_index(Point(100, 100), 50.0) == (5, 9, 9)

    def test_cell_index_outside(self, grid):
        assert grid.cell_index(Point(-1, 5), 5.0) is None
        assert grid.cell_index(Point(5, 5), 1000.0) is None

    def test_cell_center_roundtrip(self, grid):
        p, t = grid.cell_center(3, 4, 5)
        assert grid.cell_index(p, t) == (3, 4, 5)

    def test_value_at(self, grid):
        grid.values[0, 0, 0] = 7.0
        assert grid.value_at(Point(5, 5), 5.0) == 7.0
        assert np.isnan(grid.value_at(Point(5, 5), 15.0))
        assert np.isnan(grid.value_at(Point(-5, 5), 5.0))

    def test_from_records_mean(self):
        recs = [
            STRecord(5, 5, 5, 10.0),
            STRecord(6, 6, 6, 20.0),  # same cell -> averaged
            STRecord(55, 55, 5, 3.0),
        ]
        g = STGrid.from_records(recs, cell_size=10.0, t_step=10.0, bbox=BBox(0, 0, 100, 100))
        assert g.value_at(Point(5, 5), 5.0) == pytest.approx(15.0)
        assert g.value_at(Point(55, 55), 5.0) == pytest.approx(3.0)

    def test_from_records_empty(self):
        with pytest.raises(ValueError):
            STGrid.from_records([], 10, 10)

    def test_observed_records_roundtrip(self, grid):
        grid.values[1, 2, 3] = 42.0
        recs = grid.observed_records()
        assert len(recs) == 1
        assert recs[0].value == 42.0
        assert grid.cell_index(recs[0].point, recs[0].t) == (1, 2, 3)

    def test_copy_independent(self, grid):
        c = grid.copy()
        c.values[0, 0, 0] = 5.0
        assert np.isnan(grid.values[0, 0, 0])

    def test_grid_rmse(self, grid):
        a = grid.copy()
        b = grid.copy()
        a.values[0, 0, 0] = 1.0
        b.values[0, 0, 0] = 4.0
        assert grid_rmse(a, b) == pytest.approx(3.0)

    def test_grid_rmse_no_overlap_nan(self, grid):
        a = grid.copy()
        b = grid.copy()
        a.values[0, 0, 0] = 1.0
        b.values[1, 0, 0] = 1.0
        assert np.isnan(grid_rmse(a, b))

    def test_grid_rmse_shape_mismatch(self, grid):
        other = STGrid.empty(BBox(0, 0, 50, 50), 0, 50, 10, 10)
        with pytest.raises(ValueError):
            grid_rmse(grid, other)
