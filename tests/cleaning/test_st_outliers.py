import numpy as np
import pytest

from repro.core import Point, STRecord, STSeries
from repro.cleaning import STDBSCAN, neighborhood_outliers, temporal_outliers


def field_records(rng, n=60, anomaly_index=None):
    """A spatially smooth field sample set with one optional planted outlier."""
    recs = []
    for i in range(n):
        x = rng.uniform(0, 100)
        y = rng.uniform(0, 100)
        value = 0.1 * x + 0.05 * y + rng.normal(0, 0.2)  # smooth gradient
        recs.append(STRecord(x, y, 0.0, value))
    if anomaly_index is not None:
        r = recs[anomaly_index]
        recs[anomaly_index] = STRecord(r.x, r.y, r.t, r.value + 50.0)
    return recs


class TestNeighborhoodOutliers:
    def test_detects_planted_value_outlier(self, rng):
        recs = field_records(rng, anomaly_index=7)
        found = neighborhood_outliers(recs, eps_space=40, eps_time=10, threshold=4.0)
        assert 7 in found

    def test_clean_data_mostly_clean(self, rng):
        recs = field_records(rng)
        found = neighborhood_outliers(recs, 40, 10, threshold=5.0)
        assert len(found) <= 2

    def test_empty(self):
        assert neighborhood_outliers([], 10, 10) == []

    def test_isolated_records_skipped(self, rng):
        recs = [STRecord(0, 0, 0, 100.0), STRecord(1000, 1000, 0, -100.0)]
        assert neighborhood_outliers(recs, 10, 10, min_neighbors=1) == []

    def test_temporal_window_respected(self):
        # Same place, far apart in time: not each other's context.
        recs = [
            STRecord(0, 0, 0.0, 1.0),
            STRecord(1, 0, 1.0, 1.1),
            STRecord(0.5, 0, 2.0, 1.05),
            STRecord(0.2, 0, 1000.0, 99.0),  # lonely in time
        ]
        found = neighborhood_outliers(recs, 10, 5, threshold=2.0, min_neighbors=1)
        assert 3 not in found


class TestSTDBSCAN:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            STDBSCAN(0, 1)

    def test_two_clusters_and_noise(self, rng):
        cluster_a = [
            STRecord(rng.normal(10, 1), rng.normal(10, 1), float(i), 1.0)
            for i in range(10)
        ]
        cluster_b = [
            STRecord(rng.normal(90, 1), rng.normal(90, 1), float(i), 1.0)
            for i in range(10)
        ]
        noise = [STRecord(50, 50, 500.0, 1.0)]
        recs = cluster_a + cluster_b + noise
        model = STDBSCAN(eps_space=5, eps_time=20, min_samples=4)
        labels = model.fit_predict(recs)
        assert labels[-1] == -1  # the lone point is noise
        assert len({l for l in labels[:10]}) == 1
        assert labels[0] != labels[10]

    def test_temporal_split(self, rng):
        """Same place, two time bursts: temporal eps splits them."""
        burst1 = [STRecord(10, 10, float(i), 1.0) for i in range(8)]
        burst2 = [STRecord(10, 10, 1000.0 + i, 1.0) for i in range(8)]
        labels = STDBSCAN(5, 20, 4).fit_predict(burst1 + burst2)
        assert labels[0] != labels[8]
        assert -1 not in labels

    def test_value_radius(self, rng):
        """eps_value excludes thematically different records from clusters."""
        base = [STRecord(float(i), 0, float(i), 1.0) for i in range(10)]
        odd = [STRecord(5.1, 0.1, 5.1, 100.0)]
        labels = STDBSCAN(3, 3, 3, eps_value=5.0).fit_predict(base + odd)
        assert labels[-1] == -1

    def test_outliers_helper(self, rng):
        recs = [STRecord(0, 0, 0, 1.0)]
        assert STDBSCAN(1, 1, 5).outliers(recs) == [0]

    def test_empty(self):
        assert STDBSCAN(1, 1, 2).fit_predict([]).size == 0


class TestTemporalOutliers:
    def test_detects_spike(self):
        values = [1.0] * 20
        values[10] = 50.0
        s = STSeries("s", Point(0, 0), np.arange(20.0), values)
        assert temporal_outliers(s, window=5, threshold=3.0) == [10]

    def test_smooth_trend_not_flagged(self):
        s = STSeries("s", Point(0, 0), np.arange(50.0), np.linspace(0, 10, 50))
        assert temporal_outliers(s, threshold=4.0) == []

    def test_short_series(self):
        s = STSeries("s", Point(0, 0), [0.0, 1.0], [1.0, 99.0])
        assert temporal_outliers(s) == []
