"""Streaming ingestion and online quality monitoring (Sec. 2.4, made live).

The tutorial closes with a *Quality Management Middleware for SID*; the
batch :class:`~repro.core.pipeline.Pipeline` realizes it for collected
data, and this subsystem realizes it for data **in flight**: a sharded
:class:`~repro.ingest.engine.IngestEngine` accepts per-sensor streams,
pushes every reading through configurable quality gates
(:mod:`~repro.ingest.gates`) before admission, and maintains incremental
per-sensor DQ metrics (:mod:`~repro.ingest.online_stats`) that agree with
their batch counterparts in :mod:`repro.core.quality` — snapshotted
through a thread-safe :class:`~repro.ingest.registry.QualityRegistry`
using the same report type and polarity conventions.
"""

from .engine import (
    POLICIES,
    InMemoryStore,
    IngestEngine,
    LatencyStore,
    shard_of,
)
from .events import Decision, GateOutcome, IngestEvent
from .gates import (
    DuplicateGate,
    RangeGate,
    ReorderGate,
    SpeedScreenGate,
    StreamingGate,
    flush_chain,
    run_chain,
)
from .online_stats import OnlineSensorStats, Welford, WindowedSensorStats
from .registry import IngestCounters, QualityRegistry
from .sinks import PartitionedStoreSink
from .source import (
    ReplaySource,
    corrupt_stream,
    events_from_series,
    field_stream,
)

__all__ = [
    "POLICIES",
    "InMemoryStore",
    "IngestEngine",
    "LatencyStore",
    "shard_of",
    "Decision",
    "GateOutcome",
    "IngestEvent",
    "DuplicateGate",
    "RangeGate",
    "ReorderGate",
    "SpeedScreenGate",
    "StreamingGate",
    "flush_chain",
    "run_chain",
    "OnlineSensorStats",
    "Welford",
    "WindowedSensorStats",
    "IngestCounters",
    "QualityRegistry",
    "PartitionedStoreSink",
    "ReplaySource",
    "corrupt_stream",
    "events_from_series",
    "field_stream",
]
