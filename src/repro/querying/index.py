"""Spatial indexes for query processing over massive SID (Sec. 2.3.1).

Pure-Python implementations of the two workhorse access methods:

* :class:`GridIndex` — a uniform grid for point data (cheap build, good for
  uniform distributions),
* :class:`RTree` — an STR-bulk-loaded R-tree with best-first kNN (robust to
  skew),
* :func:`brute_force_range` / :func:`brute_force_knn` — the baselines every
  index is validated against in the property tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..core.geometry import BBox, Point


@dataclass(frozen=True)
class IndexEntry:
    """An indexed item: a point with the caller's payload id."""

    point: Point
    item_id: int


def brute_force_range(entries: list[IndexEntry], center: Point, radius: float) -> list[int]:
    """All item ids within ``radius`` of ``center`` (linear scan)."""
    return [e.item_id for e in entries if e.point.distance_to(center) <= radius]


def brute_force_knn(entries: list[IndexEntry], center: Point, k: int) -> list[int]:
    """Ids of the k nearest items (linear scan)."""
    ranked = sorted(entries, key=lambda e: e.point.distance_to(center))
    return [e.item_id for e in ranked[:k]]


class GridIndex:
    """Uniform grid over a fixed region; cells hold entry lists."""

    def __init__(self, region: BBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.region = region
        self.cell_size = cell_size
        self.nx = max(1, int(math.ceil(region.width / cell_size)))
        self.ny = max(1, int(math.ceil(region.height / cell_size)))
        self._cells: dict[tuple[int, int], list[IndexEntry]] = {}
        self._count = 0

    def _cell_of(self, p: Point) -> tuple[int, int]:
        xi = min(self.nx - 1, max(0, int((p.x - self.region.min_x) / self.cell_size)))
        yi = min(self.ny - 1, max(0, int((p.y - self.region.min_y) / self.cell_size)))
        return xi, yi

    def insert(self, entry: IndexEntry) -> None:
        """Add one entry to its cell's bucket."""
        self._cells.setdefault(self._cell_of(entry.point), []).append(entry)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Ids within the disk; visits only cells overlapping its bbox."""
        x0 = int((center.x - radius - self.region.min_x) / self.cell_size)
        x1 = int((center.x + radius - self.region.min_x) / self.cell_size)
        y0 = int((center.y - radius - self.region.min_y) / self.cell_size)
        y1 = int((center.y + radius - self.region.min_y) / self.cell_size)
        out = []
        for xi in range(max(0, x0), min(self.nx - 1, x1) + 1):
            for yi in range(max(0, y0), min(self.ny - 1, y1) + 1):
                for e in self._cells.get((xi, yi), []):
                    if e.point.distance_to(center) <= radius:
                        out.append(e.item_id)
        return out

    def knn(self, center: Point, k: int) -> list[int]:
        """k nearest by ring expansion around the query cell."""
        if self._count == 0 or k < 1:
            return []
        cx, cy = self._cell_of(center)
        best: list[tuple[float, int]] = []
        ring = 0
        max_ring = max(self.nx, self.ny)
        while ring <= max_ring:
            found_any = False
            for xi in range(cx - ring, cx + ring + 1):
                for yi in range(cy - ring, cy + ring + 1):
                    if max(abs(xi - cx), abs(yi - cy)) != ring:
                        continue
                    if not (0 <= xi < self.nx and 0 <= yi < self.ny):
                        continue
                    for e in self._cells.get((xi, yi), []):
                        found_any = True
                        heapq.heappush(best, (-e.point.distance_to(center), e.item_id))
                        if len(best) > k:
                            heapq.heappop(best)
            # Stop when the k-th distance is closed by the explored rings.
            if len(best) >= k:
                kth = -best[0][0]
                if kth <= ring * self.cell_size:
                    break
            if not found_any and len(best) >= k:
                break
            ring += 1
        return [item for _, item in sorted(((-d, i) for d, i in best))]


class _Node:
    __slots__ = ("bbox", "children", "entries")

    def __init__(self, bbox: BBox, children: list["_Node"] | None, entries: list[IndexEntry] | None):
        self.bbox = bbox
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTree:
    """STR (Sort-Tile-Recursive) bulk-loaded R-tree."""

    def __init__(self, entries: list[IndexEntry], leaf_capacity: int = 16) -> None:
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be >= 2")
        self.leaf_capacity = leaf_capacity
        self._size = len(entries)
        self.root = self._bulk_load(list(entries)) if entries else None

    def __len__(self) -> int:
        return self._size

    def _bulk_load(self, entries: list[IndexEntry]) -> _Node:
        # Build leaves via STR tiling.
        n = len(entries)
        cap = self.leaf_capacity
        n_leaves = math.ceil(n / cap)
        n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
        entries.sort(key=lambda e: e.point.x)
        slice_size = math.ceil(n / n_slices)
        leaves: list[_Node] = []
        for i in range(0, n, slice_size):
            strip = sorted(entries[i : i + slice_size], key=lambda e: e.point.y)
            for j in range(0, len(strip), cap):
                chunk = strip[j : j + cap]
                bbox = BBox.from_points(e.point for e in chunk)
                leaves.append(_Node(bbox, None, chunk))
        # Pack upward until a single root remains.
        level = leaves
        while len(level) > 1:
            level.sort(key=lambda nd: (nd.bbox.center.x, nd.bbox.center.y))
            parents = []
            for i in range(0, len(level), cap):
                chunk = level[i : i + cap]
                bbox = chunk[0].bbox
                for nd in chunk[1:]:
                    bbox = bbox.union(nd.bbox)
                parents.append(_Node(bbox, chunk, None))
            level = parents
        return level[0]

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Ids within the disk, pruning subtrees by bbox min-distance."""
        if self.root is None:
            return []
        out: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.bbox.min_distance_to(center) > radius:
                continue
            if node.is_leaf:
                for e in node.entries:  # type: ignore[union-attr]
                    if e.point.distance_to(center) <= radius:
                        out.append(e.item_id)
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return out

    def knn(self, center: Point, k: int) -> list[int]:
        """Best-first kNN over the tree (Hjaltason-Samet)."""
        if self.root is None or k < 1:
            return []
        counter = itertools.count()
        heap: list[tuple[float, int, object]] = [
            (self.root.bbox.min_distance_to(center), next(counter), self.root)
        ]
        out: list[int] = []
        while heap and len(out) < k:
            dist, _, obj = heapq.heappop(heap)
            if isinstance(obj, _Node):
                if obj.is_leaf:
                    for e in obj.entries:  # type: ignore[union-attr]
                        heapq.heappush(
                            heap, (e.point.distance_to(center), next(counter), e)
                        )
                else:
                    for child in obj.children:  # type: ignore[union-attr]
                        heapq.heappush(
                            heap,
                            (child.bbox.min_distance_to(center), next(counter), child),
                        )
            else:  # an IndexEntry surfaced: it is the next nearest item
                out.append(obj.item_id)  # type: ignore[union-attr]
        return out


def build_entries(points: list[Point]) -> list[IndexEntry]:
    """Wrap points as entries ids 0..n-1."""
    return [IndexEntry(p, i) for i, p in enumerate(points)]
