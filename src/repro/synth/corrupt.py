"""Quality-issue injectors, one per SID characteristic of Table 1.

Each injector degrades clean ground truth along exactly one characteristic
so that (a) cleaning operators can be scored against known corruption and
(b) `benchmarks/bench_table1.py` can verify the paper's
characteristic→quality-issue arrows by measuring DQ dimensions before and
after injection.

All injectors are pure: they return new objects plus, where useful, the
ground-truth corruption labels (e.g. outlier indices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stid import STRecord, STSeries
from ..core.trajectory import Trajectory, TrajectoryPoint


# ---------------------------------------------------------------------------
# Characteristic: noisy and erroneous
# ---------------------------------------------------------------------------


def add_gaussian_noise(
    traj: Trajectory, rng: np.random.Generator, sigma: float
) -> Trajectory:
    """Independent Gaussian position noise on every sample (GPS-style error)."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return traj.map_points(
        lambda p: TrajectoryPoint(
            p.x + rng.normal(0, sigma), p.y + rng.normal(0, sigma), p.t
        )
    )


def add_outliers(
    traj: Trajectory,
    rng: np.random.Generator,
    rate: float = 0.05,
    magnitude: float = 200.0,
) -> tuple[Trajectory, list[int]]:
    """Replace a random ``rate`` fraction of points with gross position errors.

    Returns the corrupted trajectory and the ground-truth outlier indices.
    Endpoints are spared so constraint-based detectors have anchors.
    """
    n = len(traj)
    if n < 3 or rate <= 0:
        return traj, []
    candidates = list(range(1, n - 1))
    k = min(len(candidates), max(1, int(round(rate * n))))
    idx = sorted(rng.choice(candidates, size=k, replace=False).tolist())
    chosen = set(idx)
    points = []
    for i, p in enumerate(traj):
        if i in chosen:
            theta = rng.uniform(0, 2 * np.pi)
            r = magnitude * (0.5 + rng.random())
            points.append(
                TrajectoryPoint(p.x + r * np.cos(theta), p.y + r * np.sin(theta), p.t)
            )
        else:
            points.append(p)
    return Trajectory(points, traj.object_id), idx


# ---------------------------------------------------------------------------
# Characteristic: temporally discrete (sparsity, incompleteness, staleness)
# ---------------------------------------------------------------------------


def drop_points(
    traj: Trajectory, rng: np.random.Generator, rate: float
) -> Trajectory:
    """Randomly drop a ``rate`` fraction of interior samples."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("rate must be in [0, 1)")
    n = len(traj)
    if n <= 2:
        return traj
    keep = [0] + [
        i for i in range(1, n - 1) if rng.random() >= rate
    ] + [n - 1]
    return Trajectory([traj[i] for i in keep], traj.object_id)


def drop_interval(traj: Trajectory, t_start: float, t_end: float) -> Trajectory:
    """Remove every sample inside ``[t_start, t_end]`` (sensor blackout)."""
    points = [p for p in traj if not (t_start <= p.t <= t_end)]
    return Trajectory(points, traj.object_id)


# ---------------------------------------------------------------------------
# Characteristic: voluminous and duplicated
# ---------------------------------------------------------------------------


def duplicate_records(
    records: list[STRecord],
    rng: np.random.Generator,
    rate: float = 0.3,
    time_jitter: float = 0.1,
) -> list[STRecord]:
    """Re-emit a ``rate`` fraction of records with tiny time jitter.

    Models at-least-once IoT transport, which produces near-duplicate
    redundant messages.
    """
    out = list(records)
    n_dup = int(round(rate * len(records)))
    if n_dup == 0 or not records:
        return out
    idx = rng.choice(len(records), size=n_dup, replace=True)
    for i in idx:
        r = records[int(i)]
        out.append(STRecord(r.x, r.y, r.t + rng.uniform(0, time_jitter), r.value, r.source))
    out.sort(key=lambda r: r.t)
    return out


# ---------------------------------------------------------------------------
# Characteristic: decentralized / dynamic (latency, disorder, clock skew)
# ---------------------------------------------------------------------------


def delay_arrivals(
    event_times: np.ndarray,
    rng: np.random.Generator,
    mean_delay: float = 2.0,
) -> np.ndarray:
    """Exponential network delays: returns arrival times (>= event times)."""
    if mean_delay < 0:
        raise ValueError("mean_delay must be non-negative")
    return np.asarray(event_times, dtype=float) + rng.exponential(
        mean_delay, size=len(event_times)
    )


def skew_timestamps(
    times: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.2,
    max_shift: float = 5.0,
) -> tuple[np.ndarray, list[int]]:
    """Shift a fraction of timestamps, possibly breaking temporal order.

    Models unsynchronized device clocks — the input that timestamp repair
    (Sec. 2.2.4, [95]) must fix.  Returns corrupted times and the indices of
    the shifted entries.
    """
    t = np.asarray(times, dtype=float).copy()
    n = len(t)
    k = int(round(rate * n))
    if k == 0:
        return t, []
    idx = sorted(rng.choice(n, size=k, replace=False).tolist())
    for i in idx:
        t[i] += rng.uniform(-max_shift, max_shift)
    return t, idx


# ---------------------------------------------------------------------------
# Characteristic: faulty thematic values (STID FC targets)
# ---------------------------------------------------------------------------


def spike_values(
    series: STSeries,
    rng: np.random.Generator,
    rate: float = 0.05,
    magnitude: float = 10.0,
) -> tuple[STSeries, list[int]]:
    """Inject additive spikes into a sensor series; returns fault indices."""
    values = series.values
    n = len(values)
    k = max(1, int(round(rate * n))) if rate > 0 and n > 0 else 0
    if k == 0:
        return series, []
    idx = sorted(rng.choice(n, size=min(k, n), replace=False).tolist())
    for i in idx:
        values[i] += magnitude * rng.choice([-1.0, 1.0]) * (0.5 + rng.random())
    return series.with_values(values), idx


def stuck_sensor(series: STSeries, start: int, length: int) -> STSeries:
    """Freeze the series at index ``start`` for ``length`` readings (stuck fault)."""
    values = series.values
    end = min(len(values), start + length)
    if start < 0 or start >= len(values):
        raise ValueError("start outside series")
    values[start:end] = values[start]
    return series.with_values(values)


def add_sensor_bias(series: STSeries, bias: float) -> STSeries:
    """Constant calibration offset (inter-source inconsistency)."""
    return series.with_values(series.values + bias)


# ---------------------------------------------------------------------------
# Composite corruption profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorruptionProfile:
    """A bundle of corruption parameters applied in one call.

    Used by the end-to-end pipeline experiments to produce "field-quality"
    trajectories: noise + outliers + dropout in one pass.
    """

    noise_sigma: float = 5.0
    outlier_rate: float = 0.03
    outlier_magnitude: float = 150.0
    drop_rate: float = 0.2

    def apply(
        self, traj: Trajectory, rng: np.random.Generator
    ) -> tuple[Trajectory, list[int]]:
        """Corrupt ``traj``; outlier indices refer to the *post-drop* trajectory."""
        out = drop_points(traj, rng, self.drop_rate)
        out = add_gaussian_noise(out, rng, self.noise_sigma)
        out, outlier_idx = add_outliers(
            out, rng, self.outlier_rate, self.outlier_magnitude
        )
        return out, outlier_idx
