"""Typed request/response envelopes of the serving layer.

Clients talk to :class:`~repro.serve.service.QueryService` in terms of
immutable request objects — :class:`RangeQueryRequest` and
:class:`KnnQueryRequest` — and receive a :class:`QueryResponse` carrying
the result point indices plus serving provenance: whether the answer came
from the epoch-validated cache, how large the coalesced kernel batch was,
and whether admission control shed the request instead of serving it.

Two derived keys drive the serving machinery:

* :meth:`~QueryRequest.signature` — the cache identity of a query.  Two
  requests with the same signature are the *same question* and must
  receive bit-identical answers, so priority and client identity are
  deliberately excluded.
* :meth:`~QueryRequest.batch_key` — which coalesce bucket a request joins.
  All range queries share one bucket (``range_query_many`` accepts
  per-query radii); kNN queries bucket by ``k`` (``knn_many`` takes a
  single ``k`` per call).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.geometry import Point

#: Cache identity of a query: kind tag plus the parameters that determine
#: its answer.
Signature = tuple[object, ...]

#: Coalesce-bucket key: ``("range",)`` or ``("knn", k, weighted)``.
BatchKey = tuple[object, ...]


class ResponseStatus(str, Enum):
    """Terminal fate of one request at the serving layer."""

    OK = "ok"  # served, results attached
    SHED = "shed"  # refused or displaced by admission control


@dataclass(frozen=True, slots=True)
class RangeQueryRequest:
    """All point indices within ``radius`` of ``center``.

    ``priority`` orders requests under admission pressure: higher values
    are more important; load shedding displaces lower-priority work first.
    """

    center: Point
    radius: float
    priority: int = 0

    @property
    def mode(self) -> str:
        return "range"

    def signature(self) -> Signature:
        """Cache identity (excludes priority — same query, same answer)."""
        return ("range", self.center.x, self.center.y, self.radius)

    def batch_key(self) -> BatchKey:
        """All range queries coalesce together (per-query radii)."""
        return ("range",)


@dataclass(frozen=True, slots=True)
class KnnQueryRequest:
    """The ``k`` nearest point indices to ``center`` (``(distance, id)`` ties).

    ``weighted=True`` asks for quality-weighted ranking: the store orders
    candidates by effective distance ``d / w`` under the QoD weights
    installed via ``PartitionedStore.set_quality_weights`` (a plain kNN
    when none are installed).  The flag is part of both the cache
    signature and the coalesce bucket — a weighted and an unweighted
    query at the same point are different questions — and the service
    additionally keys weighted cached results on the store's
    ``weights_epoch`` so a weight update can never serve a stale answer.
    """

    center: Point
    k: int
    priority: int = 0
    weighted: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")

    @property
    def mode(self) -> str:
        return "knn"

    def signature(self) -> Signature:
        """Cache identity (excludes priority — same query, same answer)."""
        return ("knn", self.center.x, self.center.y, self.k, self.weighted)

    def batch_key(self) -> BatchKey:
        """kNN queries coalesce per ``(k, weighted)`` (one ``knn_many`` call)."""
        return ("knn", self.k, self.weighted)


#: Union the service accepts; both satisfy the same structural contract.
QueryRequest = RangeQueryRequest | KnnQueryRequest


@dataclass(frozen=True, slots=True)
class QueryResponse:
    """One served (or shed) query with its serving provenance.

    ``results`` holds matching point indices — hit order for range
    queries, ascending ``(distance, id)`` for kNN — and is empty for shed
    requests.  ``cached`` marks epoch-validated cache hits; ``batch_size``
    is the size of the coalesced kernel batch that computed the answer
    (0 for cache hits and shed requests).
    """

    status: ResponseStatus
    results: tuple[int, ...] = ()
    cached: bool = False
    batch_size: int = 0

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK


#: Shared shed response (no per-request state to carry).
SHED_RESPONSE = QueryResponse(status=ResponseStatus.SHED)
