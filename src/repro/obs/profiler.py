"""Sampling wall-clock profiler for benchmark runs (opt-in, zero deps).

:class:`SamplingProfiler` interrupts nothing: a daemon thread periodically
reads the target thread's current Python frame stack via
``sys._current_frames`` and tallies the call stacks it sees.  Sampling
costs one dict lookup and a stack walk per tick, so the profiled workload
runs at native speed — the standard trade-off of statistical profilers.

This is a *diagnostic* tool for benchmark investigation, not part of the
always-on metrics path: attach it around a ``bench_*.py`` workload to see
where wall time concentrates, then read :meth:`SamplingProfiler.top`.
Sample pacing uses ``threading.Event.wait`` so :meth:`stop` returns
promptly; stack-walk bookkeeping involves no wall-clock reads.
"""

from __future__ import annotations

import sys
import threading
from types import FrameType

#: One aggregated stack: innermost-last ``(filename, line, function)`` rows.
StackKey = tuple[tuple[str, int, str], ...]


def _walk(frame: FrameType | None, depth: int) -> StackKey:
    rows: list[tuple[str, int, str]] = []
    while frame is not None and len(rows) < depth:
        code = frame.f_code
        rows.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    rows.reverse()
    return tuple(rows)


class SamplingProfiler:
    """Statistical profiler of one thread's wall time.

    ``interval`` is the sampling period in seconds (default 5 ms);
    ``max_depth`` bounds the recorded stack depth.  Use as a context
    manager around the workload, then inspect :meth:`top` /
    :attr:`sample_count` / :meth:`stacks`.
    """

    def __init__(self, interval: float = 0.005, max_depth: int = 64) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_depth = max_depth
        self._counts: dict[StackKey, int] = {}
        self._stop_event = threading.Event()
        self._sampler: threading.Thread | None = None
        self._target_id: int | None = None

    def start(self, target_thread: threading.Thread | None = None) -> "SamplingProfiler":
        """Begin sampling ``target_thread`` (default: the calling thread)."""
        if self._sampler is not None:
            raise RuntimeError("profiler already started")
        target = target_thread.ident if target_thread is not None else threading.get_ident()
        self._target_id = target
        self._stop_event.clear()
        self._sampler = threading.Thread(
            target=self._run, name="obs-sampler", daemon=True
        )
        self._sampler.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread and join it (idempotent)."""
        if self._sampler is None:
            return
        self._stop_event.set()
        self._sampler.join()
        self._sampler = None

    @property
    def sample_count(self) -> int:
        """How many stack samples have been collected."""
        return sum(self._counts.values())

    def stacks(self) -> dict[StackKey, int]:
        """Copy of the per-stack sample tallies."""
        return dict(self._counts)

    def top(self, n: int = 10) -> list[tuple[tuple[str, int, str], int]]:
        """The ``n`` innermost frames where the most samples landed."""
        leaf_counts: dict[tuple[str, int, str], int] = {}
        for stack, count in self._counts.items():
            if stack:
                leaf = stack[-1]
                leaf_counts[leaf] = leaf_counts.get(leaf, 0) + count
        ranked = sorted(leaf_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- sampler thread ----------------------------------------------------------

    def _run(self) -> None:
        assert self._target_id is not None
        while not self._stop_event.wait(self.interval):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:  # target thread exited; keep waiting for stop()
                continue
            key = _walk(frame, self.max_depth)
            self._counts[key] = self._counts.get(key, 0) + 1
