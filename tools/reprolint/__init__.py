"""reprolint: AST-based invariant checks the generic linters cannot express.

The repository's credibility as a reproduction rests on invariants that
``ruff``/``mypy`` do not know about: seeded determinism (``workers=1``
bit-identical to ``workers=N``), the shared-memory unlink-on-error
contract, and every columnar kernel having a scalar reference twin.  This
package walks the :mod:`ast` of ``src/repro`` and enforces them:

* **R1 determinism** — no stdlib ``random``, legacy global-state
  ``np.random.*``, unseeded ``np.random.default_rng()``, or wall-clock
  calls (``time.time``/``datetime.now``/…) in library code.  Genuine
  timing seams (replay pacing, latency observability) carry per-file
  waivers in ``reprolint_baseline.toml``.
* **R2 shm lifecycle** — every ``SharedArray``/``SharedTrajectoryBatch``
  ``create``/``attach`` must be lexically paired with its release: either
  a ``with`` block or an immediately-following ``try/finally`` that calls
  ``release``/``close``/``unlink`` on the bound name.
* **R3 kernel parity** — every public function in
  ``repro/kernels/{distances,motion,screens}.py`` has a same-named scalar
  twin in ``kernels/reference.py`` and appears in
  ``tests/test_kernels.py``.
* **R4 lock discipline** — in ``repro/ingest`` classes that declare a
  ``*_lock``, attribute writes outside ``__init__`` must sit inside a
  ``with self.<lock>`` block.
* **R5 export hygiene** — each subpackage ``__all__`` matches its
  ``docs/API.md`` section (regenerate with ``python tools/gen_api_docs.py``).
* **R6 pool discipline** — no direct ``ProcessExecutor(...)`` construction
  outside ``repro/parallel``; consumers lease warm pools via
  ``get_executor()`` / ``WorkerPoolManager.acquire()`` so worker processes
  are shared, prewarmed, and torn down by ``shutdown_all()``.

Run ``python -m tools.reprolint`` from the repo root; findings can be
suppressed line-by-line with ``# reprolint: disable=R1`` pragmas or
per-file via the checked-in baseline.  The sibling
:mod:`tools.reprolint.mypy_ratchet` keeps the ``mypy --strict`` error
count from rising above its recorded ceiling.
"""

from .core import Baseline, Finding, Module, run_reprolint

__all__ = ["Baseline", "Finding", "Module", "run_reprolint"]
