"""Uncertain location models.

Sec. 2.3.1 of the tutorial organizes query processing by the *type of
location uncertainty*: an inaccurate location at a sampled time is a pdf —
continuous (closed form) or discrete (weighted samples) — and a location at
an *unsampled* time is a distribution referenced to neighboring samples
(uniform disk, velocity cone, Markov grids...).  This module provides the
pdf types; the unsampled-time models live in
:mod:`repro.querying.uncertain_trajectory`.

All models implement the :class:`UncertainLocation` protocol:

* ``mean()`` — expected position,
* ``sample(rng, n)`` — Monte-Carlo draws,
* ``prob_within(center, radius)`` — probability mass inside a disk,
* ``prob_in_bbox(box)`` — probability mass inside a rectangle,
* ``support_bbox(confidence)`` — a box holding at least ``confidence`` mass,
  used by query processors for pruning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Protocol, Sequence, runtime_checkable

import numpy as np
from scipy import stats

from .geometry import BBox, Point


@runtime_checkable
class UncertainLocation(Protocol):
    """Structural protocol implemented by every uncertain-location model."""

    def mean(self) -> Point:
        """Expected position of the location pdf."""
        ...

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Monte-Carlo draws from the pdf; ``(n, 2)`` array."""
        ...

    def prob_within(self, center: Point, radius: float) -> float:
        """Probability mass inside a disk."""
        ...

    def prob_in_bbox(self, box: BBox) -> float:
        """Probability mass inside a rectangle."""
        ...

    def support_bbox(self, confidence: float = 0.997) -> BBox:
        """A box holding at least ``confidence`` probability mass."""
        ...


@dataclass(frozen=True)
class GaussianLocation:
    """Bivariate Gaussian pdf; the canonical continuous location model."""

    center: Point
    sigma_x: float
    sigma_y: float = -1.0  # set equal to sigma_x when negative (isotropic)
    rho: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma_x <= 0:
            raise ValueError("sigma_x must be positive")
        if self.sigma_y < 0:
            object.__setattr__(self, "sigma_y", self.sigma_x)
        if self.sigma_y <= 0:
            raise ValueError("sigma_y must be positive")
        if not -1.0 < self.rho < 1.0:
            raise ValueError("rho must be in (-1, 1)")

    def mean(self) -> Point:
        """The distribution mean (the center point)."""
        return self.center

    def covariance(self) -> np.ndarray:
        """The 2x2 covariance matrix."""
        cxy = self.rho * self.sigma_x * self.sigma_y
        return np.array([[self.sigma_x**2, cxy], [cxy, self.sigma_y**2]])

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` positions; ``(n, 2)`` array."""
        return rng.multivariate_normal(
            [self.center.x, self.center.y], self.covariance(), size=n
        )

    def pdf(self, p: Point) -> float:
        """Density at point ``p``."""
        return float(
            stats.multivariate_normal.pdf(
                [p.x, p.y], mean=[self.center.x, self.center.y], cov=self.covariance()
            )
        )

    def prob_within(self, center: Point, radius: float) -> float:
        """Mass inside the disk; exact for isotropic, MC otherwise."""
        if self.rho == 0.0 and self.sigma_x == self.sigma_y:
            # Distance from disk center to Gaussian mean, in sigma units:
            # the squared radius follows a noncentral chi-square with 2 dof.
            d = self.center.distance_to(center) / self.sigma_x
            r = radius / self.sigma_x
            return float(stats.ncx2.cdf(r**2, df=2, nc=d**2))
        return self._mc_prob(lambda pts: _inside_disk(pts, center, radius))

    def prob_in_bbox(self, box: BBox) -> float:
        """Mass inside the box (product form when axes independent)."""
        if self.rho == 0.0:
            px = stats.norm.cdf(box.max_x, self.center.x, self.sigma_x) - stats.norm.cdf(
                box.min_x, self.center.x, self.sigma_x
            )
            py = stats.norm.cdf(box.max_y, self.center.y, self.sigma_y) - stats.norm.cdf(
                box.min_y, self.center.y, self.sigma_y
            )
            return float(px * py)
        return self._mc_prob(lambda pts: _inside_bbox(pts, box))

    def support_bbox(self, confidence: float = 0.997) -> BBox:
        """Axis-aligned box holding at least ``confidence`` mass."""
        z = _support_z(confidence)
        return BBox(
            self.center.x - z * self.sigma_x,
            self.center.y - z * self.sigma_y,
            self.center.x + z * self.sigma_x,
            self.center.y + z * self.sigma_y,
        )

    def _mc_prob(self, predicate, n: int = 4096) -> float:
        rng = np.random.default_rng(0)  # deterministic quadrature fallback
        pts = self.sample(rng, n)
        return float(np.mean(predicate(pts)))


@dataclass(frozen=True)
class DiscreteLocation:
    """Weighted location samples — the discrete pdf case of Sec. 2.3.1.

    This is the natural output of particle filters and of fingerprint
    positioning with candidate cells.
    """

    points: tuple[Point, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.points) == 0:
            raise ValueError("need at least one sample")
        if len(self.points) != len(self.weights):
            raise ValueError("points and weights must have equal length")
        total = sum(self.weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if abs(total - 1.0) > 1e-9:
            object.__setattr__(
                self, "weights", tuple(w / total for w in self.weights)
            )

    @classmethod
    def from_samples(cls, samples: Sequence[Point]) -> "DiscreteLocation":
        """Equal-weight samples."""
        n = len(samples)
        return cls(tuple(samples), tuple([1.0 / n] * n))

    def mean(self) -> Point:
        """Probability-weighted mean position."""
        x = sum(p.x * w for p, w in zip(self.points, self.weights))
        y = sum(p.y * w for p, w in zip(self.points, self.weights))
        return Point(x, y)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` positions by weighted resampling; ``(n, 2)`` array."""
        idx = rng.choice(len(self.points), size=n, p=np.array(self.weights))
        return np.array([[self.points[i].x, self.points[i].y] for i in idx])

    def prob_within(self, center: Point, radius: float) -> float:
        """Total weight of samples inside the disk (exact)."""
        return float(
            sum(
                w
                for p, w in zip(self.points, self.weights)
                if p.distance_to(center) <= radius
            )
        )

    def prob_in_bbox(self, box: BBox) -> float:
        """Total weight of samples inside the box (exact)."""
        return float(
            sum(w for p, w in zip(self.points, self.weights) if box.contains(p))
        )

    def support_bbox(self, confidence: float = 0.997) -> BBox:
        """Bounding box of the sample support (holds all mass)."""
        return BBox.from_points(self.points)

    def map_point(self) -> Point:
        """Maximum a-posteriori sample (highest weight)."""
        i = int(np.argmax(self.weights))
        return self.points[i]


@dataclass(frozen=True)
class UniformDiskLocation:
    """Uniform pdf over a disk — the classical imprecise-location region model."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def mean(self) -> Point:
        """The disk center."""
        return self.center

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform draws over the disk; ``(n, 2)`` array."""
        r = self.radius * np.sqrt(rng.random(n))
        theta = rng.random(n) * 2.0 * math.pi
        return np.column_stack(
            [self.center.x + r * np.cos(theta), self.center.y + r * np.sin(theta)]
        )

    def prob_within(self, center: Point, radius: float) -> float:
        """Mass inside a query disk = lens area / disk area (exact)."""
        d = self.center.distance_to(center)
        r1, r2 = self.radius, radius
        if d >= r1 + r2:
            return 0.0
        if d <= abs(r2 - r1):
            # One disk inside the other.
            return 1.0 if r2 >= r1 else (r2 / r1) ** 2
        lens = _lens_area(r1, r2, d)
        return float(lens / (math.pi * r1 * r1))

    def prob_in_bbox(self, box: BBox) -> float:
        """Mass inside the box (deterministic grid quadrature)."""
        if not box.intersects(self.support_bbox()):
            return 0.0
        # Fine deterministic grid quadrature over the disk's bbox.
        n = 128
        xs = np.linspace(self.center.x - self.radius, self.center.x + self.radius, n)
        ys = np.linspace(self.center.y - self.radius, self.center.y + self.radius, n)
        gx, gy = np.meshgrid(xs, ys)
        in_disk = (gx - self.center.x) ** 2 + (gy - self.center.y) ** 2 <= self.radius**2
        in_box = (
            (gx >= box.min_x) & (gx <= box.max_x) & (gy >= box.min_y) & (gy <= box.max_y)
        )
        disk_cells = int(in_disk.sum())
        if disk_cells == 0:
            return 0.0
        return float((in_disk & in_box).sum() / disk_cells)

    def support_bbox(self, confidence: float = 0.997) -> BBox:
        """The disk's bounding box (holds all mass)."""
        return BBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )


@lru_cache(maxsize=64)
def _support_z(confidence: float) -> float:
    """Per-axis z multiplier for a joint-coverage support box.

    Each axis must hold sqrt(confidence) mass so the product (independent
    axes when rho=0) reaches the target.  The 1.001 inflation keeps the
    "at least confidence" contract safe against floating-point rounding in
    the quantile/cdf round trip.  Cached: query processors call this for
    every object with the same confidence, and the bound must stay far
    cheaper than an exact probability evaluation for pruning to pay off.
    """
    per_axis = math.sqrt(confidence)
    return float(stats.norm.ppf(0.5 + per_axis / 2.0)) * 1.001


def _lens_area(r1: float, r2: float, d: float) -> float:
    """Area of intersection of two disks with radii r1, r2 at distance d."""
    a1 = r1 * r1 * math.acos((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1))
    a2 = r2 * r2 * math.acos((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2))
    a3 = 0.5 * math.sqrt(
        max(0.0, (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
    )
    return a1 + a2 - a3


def _inside_disk(pts: np.ndarray, center: Point, radius: float) -> np.ndarray:
    return (pts[:, 0] - center.x) ** 2 + (pts[:, 1] - center.y) ** 2 <= radius**2


def _inside_bbox(pts: np.ndarray, box: BBox) -> np.ndarray:
    return (
        (pts[:, 0] >= box.min_x)
        & (pts[:, 0] <= box.max_x)
        & (pts[:, 1] >= box.min_y)
        & (pts[:, 1] <= box.max_y)
    )


@dataclass(frozen=True)
class UncertainPoint:
    """An uncertain object: identity + location pdf (+ timestamp)."""

    object_id: str
    location: UncertainLocation
    t: float = 0.0


class UncertainTrajectory:
    """A time-ordered sequence of uncertain locations for one object."""

    __slots__ = ("object_id", "_entries")

    def __init__(
        self, entries: Sequence[tuple[float, UncertainLocation]], object_id: str = ""
    ) -> None:
        ents = list(entries)
        for (t0, _), (t1, _) in zip(ents, ents[1:]):
            if t1 <= t0:
                raise ValueError("timestamps must be strictly increasing")
        self.object_id = object_id
        self._entries: tuple[tuple[float, UncertainLocation], ...] = tuple(ents)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, i: int) -> tuple[float, UncertainLocation]:
        return self._entries[i]

    @property
    def times(self) -> list[float]:
        return [t for t, _ in self._entries]

    def expected_trajectory(self):
        """Collapse to a crisp trajectory through the per-time means."""
        from .trajectory import Trajectory, TrajectoryPoint

        return Trajectory(
            [TrajectoryPoint(loc.mean().x, loc.mean().y, t) for t, loc in self._entries],
            self.object_id,
        )
