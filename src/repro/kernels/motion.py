"""Per-leg motion kernels over ``(n, 3)`` space-time arrays.

These produce the derived arrays cached by
:meth:`repro.core.trajectory.Trajectory` (speeds, headings, sampling
intervals) and the turn-angle sequence used by the heading-based outlier
screen.
"""

from __future__ import annotations

import numpy as np


def leg_displacements(xyt: np.ndarray) -> np.ndarray:
    """Distances between consecutive samples, ``(n-1,)``."""
    if xyt.shape[0] < 2:
        return np.zeros(0)
    return np.hypot(np.diff(xyt[:, 0]), np.diff(xyt[:, 1]))


def leg_speeds(xyt: np.ndarray) -> np.ndarray:
    """Per-leg speeds (distance over time gap), ``(n-1,)``."""
    if xyt.shape[0] < 2:
        return np.zeros(0)
    return leg_displacements(xyt) / np.diff(xyt[:, 2])


def leg_headings(xyt: np.ndarray) -> np.ndarray:
    """Per-leg headings in radians, ``(n-1,)``."""
    if xyt.shape[0] < 2:
        return np.zeros(0)
    return np.arctan2(np.diff(xyt[:, 1]), np.diff(xyt[:, 0]))


def sampling_intervals(times: np.ndarray) -> np.ndarray:
    """Gaps between consecutive timestamps, ``(n-1,)``."""
    return np.diff(np.asarray(times, dtype=float))


def turn_angles(headings: np.ndarray) -> np.ndarray:
    """Absolute heading changes wrapped to ``[0, pi]``, ``(n_legs - 1,)``."""
    if headings.shape[0] < 2:
        return np.zeros(0)
    turn = np.abs(np.diff(headings))
    return np.minimum(turn, 2.0 * np.pi - turn)


def path_length(xyt: np.ndarray) -> float:
    """Total polyline length of the sample sequence."""
    return float(leg_displacements(xyt).sum())
