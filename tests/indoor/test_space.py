import math

import networkx as nx
import pytest

from repro.core import BBox, Point
from repro.indoor import Door, IndoorSpace, Room, grid_floor


@pytest.fixture
def floor():
    return grid_floor(3, 4, room_size=10.0)


class TestConstruction:
    def test_grid_counts(self, floor):
        assert len(floor.rooms) == 12
        # Doors: 3*3 east walls + 2*4 north walls = 9 + 8 = 17.
        assert len(floor.doors) == 17

    def test_empty_rooms_rejected(self):
        with pytest.raises(ValueError):
            IndoorSpace([], [])

    def test_duplicate_room_ids_rejected(self):
        r = Room("a", BBox(0, 0, 1, 1))
        with pytest.raises(ValueError):
            IndoorSpace([r, r], [])

    def test_door_unknown_room_rejected(self):
        r = Room("a", BBox(0, 0, 1, 1))
        with pytest.raises(ValueError):
            IndoorSpace([r], [Door("a", "ghost", Point(1, 0.5))])

    def test_topology_connected(self, floor):
        assert nx.is_connected(floor.topology)

    def test_invalid_floor_dims(self):
        with pytest.raises(ValueError):
            grid_floor(0, 3)


class TestSymbolicPositioning:
    def test_room_of_interior(self, floor):
        assert floor.room_of(Point(5, 5)) == "r0-0"
        assert floor.room_of(Point(35, 25)) == "r2-3"

    def test_room_of_outside(self, floor):
        assert floor.room_of(Point(-5, 5)) is None

    def test_adjacent_rooms(self, floor):
        assert floor.adjacent_rooms("r0-0") == ["r0-1", "r1-0"]
        assert set(floor.adjacent_rooms("r1-1")) == {"r0-1", "r1-0", "r1-2", "r2-1"}

    def test_doors_of(self, floor):
        corner_doors = floor.doors_of("r0-0")
        assert len(corner_doors) == 2


class TestWalkingDistance:
    def test_same_room_is_euclidean(self, floor):
        a, b = Point(2, 2), Point(8, 6)
        assert floor.walking_distance(a, b) == a.distance_to(b)

    def test_adjacent_room_through_door(self, floor):
        a = Point(5, 5)  # r0-0
        b = Point(15, 5)  # r0-1
        d = floor.walking_distance(a, b)
        # Must pass through the door at (10, 5): distance = 5 + 5 = 10.
        assert d == pytest.approx(10.0)

    def test_walking_ge_euclidean(self, floor):
        import numpy as np

        rng = np.random.default_rng(3)
        for _ in range(30):
            a = Point(rng.uniform(0, 40), rng.uniform(0, 30))
            b = Point(rng.uniform(0, 40), rng.uniform(0, 30))
            assert floor.walking_distance(a, b) >= a.distance_to(b) - 1e-9

    def test_wall_detour_measured(self, floor):
        """Diagonal neighbors: close in space, farther on foot."""
        a = Point(9, 9)  # r0-0 near the corner
        b = Point(11, 11)  # r1-1 near the same corner
        assert a.distance_to(b) < 3.0
        assert floor.walking_distance(a, b) > 8.0

    def test_outside_point_rejected(self, floor):
        with pytest.raises(ValueError):
            floor.walking_distance(Point(-5, -5), Point(5, 5))

    def test_disconnected_rooms_rejected(self):
        rooms = [Room("a", BBox(0, 0, 10, 10)), Room("b", BBox(20, 0, 30, 10))]
        space = IndoorSpace(rooms, [])
        with pytest.raises(ValueError):
            space.walking_distance(Point(5, 5), Point(25, 5))

    def test_symmetry(self, floor):
        a, b = Point(5, 5), Point(35, 25)
        assert floor.walking_distance(a, b) == pytest.approx(
            floor.walking_distance(b, a)
        )


class TestRoomPath:
    def test_straight_corridor(self, floor):
        assert floor.room_path("r0-0", "r0-3") == ["r0-0", "r0-1", "r0-2", "r0-3"]

    def test_manhattan_length(self, floor):
        path = floor.room_path("r0-0", "r2-3")
        assert len(path) == 6  # 3 + 2 moves + origin
