import numpy as np
import pytest

from repro.reduction import (
    along_route_error,
    compress_trip,
    decode_route,
    decompress_trip,
    encode_route,
)
from repro.synth import RoadNetwork


@pytest.fixture
def net():
    return RoadNetwork.grid(6, 6, spacing=250.0)


@pytest.fixture
def trip(net, rng):
    route = net.random_route(rng, min_edges=10)
    traj = net.trajectory_along_path(route, speed=12.0, interval=1.0)
    return route, traj


class TestRouteCodec:
    def test_roundtrip(self, net, rng):
        route = net.random_route(rng, min_edges=8)
        data = encode_route(net, route)
        decoded, _ = decode_route(net, data)
        assert decoded == route

    def test_single_node_route(self, net):
        data = encode_route(net, [7])
        decoded, _ = decode_route(net, data)
        assert decoded == [7]

    def test_empty_rejected(self, net):
        with pytest.raises(ValueError):
            encode_route(net, [])

    def test_route_bits_small(self, net, rng):
        """Grid nodes have <= 4 neighbors: ~2 bits per hop."""
        route = net.random_route(rng, min_edges=9)
        data = encode_route(net, route)
        # Raw encoding would need ~8 bytes per node.
        assert len(data) < len(route) * 2


class TestTripCodec:
    def test_roundtrip_within_bound(self, net, trip):
        route, traj = trip
        eps = 8.0
        compressed = compress_trip(net, route, traj, epsilon=eps)
        restored = decompress_trip(net, compressed)
        assert along_route_error(net, route, traj, restored) <= eps + 1.0

    def test_restored_points_on_network(self, net, trip):
        route, traj = trip
        restored = decompress_trip(net, compress_trip(net, route, traj))
        for p in restored:
            _, _, d = net.snap(p.point)
            assert d < 1e-6

    def test_strong_byte_compression(self, net, trip):
        route, traj = trip
        compressed = compress_trip(net, route, traj, epsilon=10.0)
        assert compressed.byte_ratio() > 10.0

    def test_epsilon_ratio_tradeoff(self, net, trip):
        route, traj = trip
        tight = compress_trip(net, route, traj, epsilon=1.0)
        loose = compress_trip(net, route, traj, epsilon=50.0)
        assert loose.n_bytes <= tight.n_bytes

    def test_restored_times_monotone(self, net, trip):
        route, traj = trip
        restored = decompress_trip(net, compress_trip(net, route, traj))
        ts = restored.times
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_endpoint_times_preserved(self, net, trip):
        route, traj = trip
        restored = decompress_trip(net, compress_trip(net, route, traj))
        assert restored.times[0] == pytest.approx(traj.times[0], abs=0.1)
        assert restored.times[-1] == pytest.approx(traj.times[-1], abs=0.1)
