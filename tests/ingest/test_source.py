"""Replay sources: merging, corruption wiring, and rate pacing."""

import time

import numpy as np
import pytest

from repro.ingest import (
    IngestEngine,
    ReplaySource,
    corrupt_stream,
    events_from_series,
    field_stream,
)


def _field(rng, box, n_sensors=10, t_end=200.0, interval=5.0):
    return field_stream(rng, n_sensors, box, 0.0, t_end, interval)


def test_field_stream_shapes(rng, box):
    events, series = _field(rng, box)
    assert len(series) == 10
    assert len(events) == sum(len(s) for s in series)
    assert len({e.sensor_id for e in events}) == 10


def test_events_ordered_by_arrival(rng, box):
    events, series = _field(rng, box)
    arrivals = [e.arrival_time for e in events]
    assert arrivals == sorted(arrivals)
    # no transport delay requested: arrival equals event time
    assert all(e.arrival_time == e.t for e in events)


def test_transport_delays_separate_arrival_from_event_time(rng, box):
    _, series = _field(rng, box)
    events = events_from_series(series, rng, mean_delay=2.0)
    assert all(e.arrival_time >= e.t for e in events)
    assert any(e.arrival_time > e.t for e in events)
    # delayed interleaving produces event-time disorder within sensors
    per_sensor_times = {}
    disordered = 0
    for e in events:
        last = per_sensor_times.get(e.sensor_id)
        if last is not None and e.t < last:
            disordered += 1
        per_sensor_times[e.sensor_id] = max(last or -np.inf, e.t)
    assert disordered > 0


def test_events_from_series_requires_rng_for_delays(rng, box):
    _, series = _field(rng, box)
    with pytest.raises(ValueError):
        events_from_series(series, None, mean_delay=1.0)


def test_corrupt_stream_injects_duplicates(rng, box):
    _, series = _field(rng, box)
    base = sum(len(s) for s in series)
    events = corrupt_stream(series, rng, duplicate_rate=0.25)
    assert len(events) > base


def test_replay_full_speed_accepts_everything(rng, box):
    events, _ = _field(rng, box, n_sensors=5, t_end=60.0)
    with IngestEngine(n_shards=2) as engine:
        accepted = ReplaySource(events).drive(engine)
    assert accepted == len(events)


def test_replay_rate_pacing_slows_the_producer(rng, box):
    events, _ = _field(rng, box, n_sensors=8, t_end=400.0)  # 640 events
    with IngestEngine(n_shards=1) as engine:
        start = time.perf_counter()
        ReplaySource(events).drive(engine, rate=2000.0)
        paced = time.perf_counter() - start
    # pacing is checked every 64 events, so the last checkpoint (event 576)
    # cannot pass before 576/2000 s of wall time
    assert paced >= 0.25


def test_replay_rate_validation(rng, box):
    events, _ = _field(rng, box, n_sensors=2, t_end=30.0)
    with IngestEngine(n_shards=1) as engine:
        with pytest.raises(ValueError):
            ReplaySource(events).drive(engine, rate=0.0)
