import numpy as np
import pytest

from repro.analytics.streaming import (
    ContinuousSimilarityMonitor,
    cell_signature,
    signature_distance,
)
from repro.core import BBox, Point, Trajectory, TrajectoryPoint
from repro.synth import correlated_random_walk


def corridor_trip(rng, y=300.0, n=60):
    pts = [
        TrajectoryPoint(50.0 + i * 15.0 + rng.normal(0, 5), y + rng.normal(0, 10), float(i))
        for i in range(n)
    ]
    return Trajectory(pts)


@pytest.fixture
def monitor(rng, box):
    reference = [corridor_trip(rng) for _ in range(10)]
    return ContinuousSimilarityMonitor(reference, box, cell_size=100.0, window=15, threshold=0.5)


class TestSignatures:
    def test_distance_zero_for_identical(self):
        from collections import Counter

        a = Counter({(0, 0): 2, (1, 0): 3})
        assert signature_distance(a, a, 5, 5) == 0.0

    def test_distance_max_for_disjoint(self):
        from collections import Counter

        a = Counter({(0, 0): 5})
        b = Counter({(9, 9): 5})
        assert signature_distance(a, b, 5, 5) == 2.0

    def test_empty_is_max(self):
        from collections import Counter

        assert signature_distance(Counter(), Counter({(0, 0): 1}), 0, 1) == 2.0

    def test_cell_signature_counts(self, box):
        sig = cell_signature([Point(5, 5), Point(7, 7), Point(150, 5)], box, 100.0)
        assert sig[(0, 0)] == 2 and sig[(1, 0)] == 1


class TestMonitor:
    def test_validation(self, box):
        with pytest.raises(ValueError):
            ContinuousSimilarityMonitor([], box)

    def test_normal_trip_stays_under_threshold(self, monitor, rng):
        trip = corridor_trip(rng)
        flags = [monitor.observe("normal", p.point).is_outlier for p in trip]
        # After window warm-up, normal movement is not flagged.
        assert sum(flags[20:]) == 0

    def test_detour_trip_flagged(self, monitor, rng, box):
        detour = correlated_random_walk(rng, 60, BBox(0, 800, 1000, 1000), speed_mean=8)
        last = None
        for p in detour:
            last = monitor.observe("detour", p.point)
        assert last is not None and last.is_outlier

    def test_incremental_matches_scratch(self, monitor, rng, box):
        """The incremental maintenance is exact, not approximate."""
        walk = correlated_random_walk(rng, 80, box, speed_mean=10)
        for p in walk:
            monitor.observe("obj", p.point)
            assert monitor.current_distance("obj") == pytest.approx(
                monitor.recompute_from_scratch("obj")
            )

    def test_window_bounded(self, monitor, rng, box):
        walk = correlated_random_walk(rng, 50, box)
        for p in walk:
            monitor.observe("w", p.point)
        assert len(monitor._windows["w"]) == 15

    def test_unknown_object_rejected(self, monitor):
        with pytest.raises(KeyError):
            monitor.current_distance("ghost")

    def test_recovery_after_detour(self, monitor, rng):
        """The sliding window forgets: returning to the corridor clears
        the flag — the 'evolving' behavior continuous queries must track."""
        detour_pts = [Point(500, 950)] * 20
        for p in detour_pts:
            monitor.observe("rejoin", p)
        assert monitor.observe("rejoin", Point(500, 300)).is_outlier  # still mostly off-route
        trip = corridor_trip(rng)
        last = None
        for p in trip:
            last = monitor.observe("rejoin", p.point)
        assert last is not None and not last.is_outlier

    def test_multiple_objects_independent(self, monitor, rng, box):
        a = corridor_trip(rng)
        b = correlated_random_walk(rng, 60, BBox(0, 800, 1000, 1000))
        for pa, pb in zip(a, b):
            monitor.observe("a", pa.point)
            monitor.observe("b", pb.point)
        assert monitor.current_distance("a") < monitor.current_distance("b")
