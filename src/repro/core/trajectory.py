"""Trajectory data model.

A *trajectory* is a time-ordered sequence of located samples from one moving
object — the first of the two SID special cases the tutorial distinguishes
(the other being STID, see :mod:`repro.core.stid`).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from ..kernels import columnar, motion
from .geometry import BBox, Point, interpolate


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One located sample: planar position, timestamp (seconds), metadata."""

    x: float
    y: float
    t: float

    @property
    def point(self) -> Point:
        return Point(self.x, self.y)

    def distance_to(self, other: "TrajectoryPoint") -> float:
        """Planar distance to another sample (timestamps ignored)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def with_position(self, p: Point) -> "TrajectoryPoint":
        """Copy with position replaced by ``p`` (timestamp kept)."""
        return TrajectoryPoint(p.x, p.y, self.t)


class Trajectory:
    """An immutable, time-ordered sequence of :class:`TrajectoryPoint`.

    Construction validates temporal order (strictly increasing timestamps);
    all transformation methods return new trajectories.  Because points are
    frozen and every transform builds a new trajectory, the derived arrays
    (:meth:`as_xyt`, :meth:`speeds`, :meth:`headings`,
    :meth:`sampling_intervals`) are computed lazily once and cached as
    **read-only** NumPy arrays — repeated cleaning/quality/analytics passes
    over the same trajectory stop recomputing them.  Copy before mutating.
    """

    __slots__ = ("object_id", "_points", "_times", "_xyt", "_speeds", "_headings", "_gaps")

    def __init__(self, points: Sequence[TrajectoryPoint], object_id: str = "") -> None:
        pts = tuple(points)
        ts = np.fromiter((p.t for p in pts), dtype=float, count=len(pts))
        if ts.size > 1:
            bad = np.flatnonzero(np.diff(ts) <= 0)
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"timestamps must be strictly increasing, got {pts[i].t} then {pts[i + 1].t}"
                )
        self.object_id = object_id
        self._points: tuple[TrajectoryPoint, ...] = pts
        self._times: list[float] = ts.tolist()
        self._xyt: np.ndarray | None = None
        self._speeds: np.ndarray | None = None
        self._headings: np.ndarray | None = None
        self._gaps: np.ndarray | None = None

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self._points)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Trajectory(self._points[idx], self.object_id)
        return self._points[idx]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Trajectory)
            and self.object_id == other.object_id
            and self._points == other._points
        )

    def __repr__(self) -> str:
        span = f"[{self._times[0]:.1f}, {self._times[-1]:.1f}]" if self._points else "[]"
        return f"Trajectory(id={self.object_id!r}, n={len(self)}, t={span})"

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        ts: Sequence[float],
        object_id: str = "",
    ) -> "Trajectory":
        """Build a trajectory from parallel coordinate/time arrays."""
        if not (len(xs) == len(ys) == len(ts)):
            raise ValueError("xs, ys, ts must have equal length")
        return cls(
            [TrajectoryPoint(float(x), float(y), float(t)) for x, y, t in zip(xs, ys, ts)],
            object_id,
        )

    # -- views ----------------------------------------------------------------------

    @property
    def points(self) -> tuple[TrajectoryPoint, ...]:
        return self._points

    @property
    def times(self) -> list[float]:
        return list(self._times)

    @property
    def duration(self) -> float:
        """Elapsed time between first and last sample (0 if < 2 points)."""
        if len(self._points) < 2:
            return 0.0
        return self._times[-1] - self._times[0]

    @property
    def length(self) -> float:
        """Total traveled path length."""
        return motion.path_length(self.as_xyt())

    def bbox(self) -> BBox:
        """Smallest bounding box covering all samples."""
        if not self._points:
            raise ValueError("cannot build a bbox from zero points")
        xyt = self.as_xyt()
        lo = xyt[:, :2].min(axis=0)
        hi = xyt[:, :2].max(axis=0)
        return BBox(float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))

    def as_xyt(self) -> np.ndarray:
        """The ``(n, 3)`` array of ``x, y, t`` rows (cached, read-only)."""
        if self._xyt is None:
            self._xyt = columnar.frozen(columnar.xyt_columns(self._points))
        return self._xyt

    def speeds(self) -> np.ndarray:
        """Per-leg speeds, ``(n-1,)`` (m/s) (cached, read-only)."""
        if self._speeds is None:
            self._speeds = columnar.frozen(motion.leg_speeds(self.as_xyt()))
        return self._speeds

    def headings(self) -> np.ndarray:
        """Per-leg headings in radians, ``(n-1,)`` (cached, read-only)."""
        if self._headings is None:
            self._headings = columnar.frozen(motion.leg_headings(self.as_xyt()))
        return self._headings

    def sampling_intervals(self) -> np.ndarray:
        """Gaps between consecutive timestamps, ``(n-1,)`` (cached, read-only)."""
        if self._gaps is None:
            self._gaps = columnar.frozen(motion.sampling_intervals(np.array(self._times)))
        return self._gaps

    # -- temporal access ------------------------------------------------------------

    def position_at(self, t: float) -> Point:
        """Linearly interpolated position at time ``t``.

        Raises ``ValueError`` outside the trajectory's time span.
        """
        if not self._points:
            raise ValueError("empty trajectory")
        if t < self._times[0] or t > self._times[-1]:
            raise ValueError(f"time {t} outside span [{self._times[0]}, {self._times[-1]}]")
        i = bisect_left(self._times, t)
        if i < len(self._times) and self._times[i] == t:
            return self._points[i].point
        a, b = self._points[i - 1], self._points[i]
        fraction = (t - a.t) / (b.t - a.t)
        return interpolate(a.point, b.point, fraction)

    def slice_time(self, t_start: float, t_end: float) -> "Trajectory":
        """Sub-trajectory of samples with ``t_start <= t <= t_end``."""
        lo = bisect_left(self._times, t_start)
        hi = bisect_right(self._times, t_end)
        return Trajectory(self._points[lo:hi], self.object_id)

    # -- transforms -----------------------------------------------------------------

    def resample(self, interval: float) -> "Trajectory":
        """Uniformly resample at ``interval`` seconds by linear interpolation."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if len(self._points) < 2:
            return Trajectory(self._points, self.object_id)
        t0, t1 = self._times[0], self._times[-1]
        ts = np.arange(t0, t1 + 1e-9, interval)
        xyt = self.as_xyt()
        xs = np.interp(ts, xyt[:, 2], xyt[:, 0])
        ys = np.interp(ts, xyt[:, 2], xyt[:, 1])
        out = [
            TrajectoryPoint(float(x), float(y), float(t)) for x, y, t in zip(xs, ys, ts)
        ]
        return Trajectory(out, self.object_id)

    def downsample(self, keep_every: int) -> "Trajectory":
        """Keep every ``keep_every``-th point (always keeps the last point)."""
        if keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        pts = list(self._points[::keep_every])
        if self._points and pts[-1] is not self._points[-1]:
            pts.append(self._points[-1])
        return Trajectory(pts, self.object_id)

    def shift_time(self, offset: float) -> "Trajectory":
        """Copy with every timestamp shifted by ``offset`` seconds."""
        return Trajectory(
            [TrajectoryPoint(p.x, p.y, p.t + offset) for p in self._points], self.object_id
        )

    def map_points(
        self, fn: Callable[[TrajectoryPoint], TrajectoryPoint]
    ) -> "Trajectory":
        """Apply ``fn`` to every point; timestamps must stay ordered."""
        return Trajectory([fn(p) for p in self._points], self.object_id)

    def split_on_gap(self, max_gap: float) -> list["Trajectory"]:
        """Split where consecutive timestamps differ by more than ``max_gap``."""
        if len(self._points) == 0:
            return []
        pieces: list[list[TrajectoryPoint]] = [[self._points[0]]]
        for prev, cur in zip(self._points, self._points[1:]):
            if cur.t - prev.t > max_gap:
                pieces.append([])
            pieces[-1].append(cur)
        return [Trajectory(piece, self.object_id) for piece in pieces]

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Append ``other`` (whose first timestamp must come after our last)."""
        return Trajectory(self._points + other._points, self.object_id)


def mean_pointwise_error(truth: Trajectory, estimate: Trajectory) -> float:
    """Mean distance between time-aligned samples of two equal-length trajectories."""
    if len(truth) != len(estimate):
        raise ValueError("trajectories must have equal length for pointwise error")
    if len(truth) == 0:
        return 0.0
    a, b = truth.as_xyt(), estimate.as_xyt()
    return float(np.mean(np.hypot(a[:, 0] - b[:, 0], a[:, 1] - b[:, 1])))


def synchronized_error(truth: Trajectory, estimate: Trajectory, interval: float = 1.0) -> float:
    """Mean distance between the two trajectories sampled at common times.

    Used to score reconstructions whose sample times differ from the truth's.
    """
    t0 = max(truth.times[0], estimate.times[0])
    t1 = min(truth.times[-1], estimate.times[-1])
    if t1 < t0:
        raise ValueError("trajectories do not overlap in time")
    ts = np.arange(t0, t1 + 1e-9, interval)
    if ts.size == 0:
        return 0.0
    a, b = truth.as_xyt(), estimate.as_xyt()
    dx = np.interp(ts, a[:, 2], a[:, 0]) - np.interp(ts, b[:, 2], b[:, 0])
    dy = np.interp(ts, a[:, 2], a[:, 1]) - np.interp(ts, b[:, 2], b[:, 1])
    return float(np.mean(np.hypot(dx, dy)))
