"""Indoor queries over symbolic, uncertain positions ([114, 118, 102]).

Query processing where the metric is *walking distance* and positions are
rooms (possibly uncertain after cleansing):

* :func:`indoor_knn` — k nearest objects by walking distance (Euclidean
  kNN is wrong indoors: a neighbor behind a wall may be far on foot),
* :func:`rooms_within_distance` — the indoor range primitive of [114],
* :func:`expected_room_occupancy` — probabilistic room counts from
  uncertain symbolic positions (per-object room posteriors), the indoor
  counterpart of the uncertain COUNT aggregate,
* :func:`stop_by_patterns` — frequent stop-by room sequences from symbolic
  trajectories, the mining task of Teng et al. [102].
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..core.geometry import Point
from .space import IndoorSpace


def indoor_knn(
    space: IndoorSpace,
    objects: dict[str, Point],
    query: Point,
    k: int,
) -> list[tuple[str, float]]:
    """The k nearest objects by walking distance: ``(object_id, distance)``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    scored = []
    for oid, pos in objects.items():
        try:
            d = space.walking_distance(query, pos)
        except ValueError:
            continue  # outside the space or unreachable
        scored.append((oid, d))
    scored.sort(key=lambda x: x[1])
    return scored[:k]


def euclidean_knn(
    objects: dict[str, Point], query: Point, k: int
) -> list[tuple[str, float]]:
    """The (indoor-naive) Euclidean baseline."""
    scored = sorted(
        ((oid, query.distance_to(pos)) for oid, pos in objects.items()),
        key=lambda x: x[1],
    )
    return scored[:k]


def rooms_within_distance(
    space: IndoorSpace, origin: Point, max_distance: float
) -> list[str]:
    """Rooms whose center is reachable within ``max_distance`` on foot."""
    out = []
    for room_id, room in space.rooms.items():
        try:
            if space.walking_distance(origin, room.center) <= max_distance:
                out.append(room_id)
        except ValueError:
            continue
    return sorted(out)


def expected_room_occupancy(
    posteriors: dict[str, dict[str, float]]
) -> dict[str, float]:
    """Expected object count per room from per-object room posteriors.

    ``posteriors[object_id][room_id] = P(object in room)``.  Linearity of
    expectation makes the aggregate exact regardless of dependence between
    rooms within one object's posterior.
    """
    occupancy: dict[str, float] = {}
    for oid, post in posteriors.items():
        total = sum(post.values())
        if total <= 0:
            raise ValueError(f"posterior of {oid} has no mass")
        for room, p in post.items():
            occupancy[room] = occupancy.get(room, 0.0) + p / total
    return occupancy


def stop_by_patterns(
    symbolic_trajectories: list[list[str]],
    min_dwell: int = 2,
    min_support: int = 2,
    max_length: int = 3,
) -> dict[tuple[str, ...], int]:
    """Frequent stop-by room sequences (Teng et al. [102]).

    A *stop* is a room occupied for at least ``min_dwell`` consecutive
    epochs; each trajectory reduces to its stop sequence, and contiguous
    stop subsequences of length <= ``max_length`` with support >=
    ``min_support`` (distinct trajectories) are returned with their counts.
    """
    if min_dwell < 1 or min_support < 1:
        raise ValueError("min_dwell and min_support must be >= 1")
    stop_seqs: list[list[str]] = []
    for seq in symbolic_trajectories:
        stops: list[str] = []
        run_room: str | None = None
        run_len = 0
        for room in seq + [None]:  # sentinel flushes the last run
            if room == run_room:
                run_len += 1
                continue
            if run_room is not None and run_len >= min_dwell:
                if not stops or stops[-1] != run_room:
                    stops.append(run_room)
            run_room, run_len = room, 1
        stop_seqs.append(stops)
    counts: Counter[tuple[str, ...]] = Counter()
    for stops in stop_seqs:
        seen: set[tuple[str, ...]] = set()
        for length in range(1, max_length + 1):
            for i in range(len(stops) - length + 1):
                seen.add(tuple(stops[i : i + length]))
        counts.update(seen)
    return {pat: n for pat, n in counts.items() if n >= min_support}
