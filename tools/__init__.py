"""Repo tooling: API-doc generation and the reprolint invariant checker."""
