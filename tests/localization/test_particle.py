import numpy as np
import pytest

from repro.core import BBox, Point, accuracy_error
from repro.localization import (
    ParticleFilter2D,
    particle_refine,
    position_likelihood,
    range_likelihood,
)
from repro.synth import RangingObservation, add_gaussian_noise, correlated_random_walk


class TestParticleFilter:
    def test_requires_init(self, rng):
        pf = ParticleFilter2D(rng, 10)
        with pytest.raises(RuntimeError):
            pf.estimate()

    def test_min_particles(self, rng):
        with pytest.raises(ValueError):
            ParticleFilter2D(rng, 1)

    def test_initialize_uniform(self, rng, box):
        pf = ParticleFilter2D(rng, 200)
        pf.initialize(box)
        assert pf.particles.shape == (200, 4)
        assert box.contains(pf.estimate())

    def test_initialize_at_concentrates(self, rng):
        pf = ParticleFilter2D(rng, 500)
        pf.initialize_at(Point(100, 100), 5.0)
        assert pf.estimate().distance_to(Point(100, 100)) < 2.0

    def test_update_pulls_toward_observation(self, rng, box):
        pf = ParticleFilter2D(rng, 1000)
        pf.initialize(box)
        target = Point(250, 700)
        for _ in range(3):
            pf.predict(1.0)
            pf.update(position_likelihood(target, 20.0))
        assert pf.estimate().distance_to(target) < 50.0

    def test_update_with_ranges(self, rng, box):
        pf = ParticleFilter2D(rng, 2000)
        pf.initialize(box)
        target = Point(400, 300)
        anchors = [Point(0, 0), Point(1000, 0), Point(0, 1000)]
        obs = [RangingObservation(a, a.distance_to(target)) for a in anchors]
        for _ in range(4):
            pf.predict(1.0)
            pf.update(range_likelihood(obs, 10.0))
        assert pf.estimate().distance_to(target) < 60.0

    def test_degenerate_likelihood_recovers(self, rng, box):
        pf = ParticleFilter2D(rng, 100)
        pf.initialize(box)
        pf.update(lambda pts: np.zeros(len(pts)))  # kills all particles
        assert np.isfinite(pf.estimate().x)

    def test_posterior_is_discrete_location(self, rng, box):
        pf = ParticleFilter2D(rng, 300)
        pf.initialize(box)
        post = pf.posterior(max_samples=50)
        assert len(post.points) == 50
        assert sum(post.weights) == pytest.approx(1.0)

    def test_resampling_preserves_count(self, rng, box):
        pf = ParticleFilter2D(rng, 400, resample_threshold=1.0)  # always resample
        pf.initialize(box)
        pf.update(position_likelihood(Point(500, 500), 30.0))
        assert pf.particles.shape == (400, 4)
        assert np.allclose(pf.weights, 1.0 / 400)


class TestParticleRefine:
    def test_reduces_noise(self, rng, box):
        truth = correlated_random_walk(rng, 150, box, speed_mean=5)
        noisy = add_gaussian_noise(truth, rng, 10.0)
        refined = particle_refine(noisy, rng, measurement_sigma=10.0, n_particles=400)
        assert accuracy_error(refined, truth) < accuracy_error(noisy, truth)

    def test_preserves_structure(self, rng, box):
        truth = correlated_random_walk(rng, 20, box)
        noisy = add_gaussian_noise(truth, rng, 5.0)
        refined = particle_refine(noisy, rng)
        assert len(refined) == len(noisy)
        assert refined.times == noisy.times

    def test_empty_rejected(self, rng):
        from repro.core import Trajectory

        with pytest.raises(ValueError):
            particle_refine(Trajectory([]), rng)
