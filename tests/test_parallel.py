"""Serial-vs-parallel equivalence suite for the fleet execution layer.

The contract under test (ISSUE 3): for every rewired consumer —
``map_chunks`` / ``map_reduce``, ``Pipeline.run_many``, parallel
``run_ablations``, partitioned queries, pairwise similarity, the Table-1
grid — the ``workers=1`` output is identical to the output at any worker
count, including empty-collection, single-item, and chunk-boundary cases;
and shared-memory segments are unlinked on error paths.

Worker functions live at module level so they pickle under every start
method (set ``REPRO_PARALLEL_START_METHOD=spawn`` to exercise the CI
configuration locally).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import pairwise_distances
from repro.core import Pipeline, Point, Stage, Trajectory
from repro.parallel import (
    SerialExecutor,
    SharedArray,
    SharedTrajectoryBatch,
    chunk_spans,
    derive_seed,
    derive_seeds,
    get_executor,
    map_chunks,
    map_reduce,
)
from repro.querying import PartitionedStore, grid_partition, kd_partition, skewed_points

WORKER_COUNTS = [1, 2, 4]
BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

# benchmarks/ must be importable *before* the warm pools spawn their
# workers: fork children snapshot sys.path at pool creation, and spawn
# children re-import ``table1_grid`` to unpickle its chunk function.  A
# path added later (e.g. inside a test) is invisible to already-forked
# workers, whose import failure during task unpickling kills them.
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))


@pytest.fixture(scope="module")
def pools():
    """One long-lived executor per worker count, shared across this module."""
    pools = {w: get_executor(w) for w in WORKER_COUNTS}
    yield pools
    for pool in pools.values():
        pool.close()


@pytest.fixture
def rng():
    return np.random.default_rng(2022)


def make_trajectory(seed: int, n: int = 40, object_id: str = "t") -> Trajectory:
    rng = np.random.default_rng(seed)
    steps = rng.normal(0, 5, (n, 2)).cumsum(axis=0)
    return Trajectory.from_arrays(
        steps[:, 0], steps[:, 1], np.arange(n, dtype=float), object_id
    )


# -- module-level chunk/stage functions (picklable under spawn) ----------------


def square_chunk(chunk):
    return [x * x for x in chunk]


def seeded_normal_chunk(chunk, seeds):
    return [x + float(np.random.default_rng(s).normal()) for x, s in zip(chunk, seeds)]


def bad_arity_chunk(chunk):
    return [0] * (len(chunk) + 1)


def sum_chunk(chunk):
    return sum(chunk)


def join_chunk(chunk):
    return "".join(str(x) for x in chunk)


def concat(a, b):
    return a + b


def stage_downsample(traj):
    return traj.downsample(2)


def stage_shift(traj):
    return traj.shift_time(1.0)


def stage_raise(traj):
    raise RuntimeError("stage exploded")


def probe_len(traj):
    return float(len(traj))


def stage_add(x):
    return x + 1


def stage_mul(x):
    return x * 3


def probe_value(x):
    return float(x)


def make_pipeline() -> Pipeline:
    return Pipeline(
        [Stage("down", stage_downsample), Stage("shift", stage_shift)],
        probes={"n": probe_len},
    )


# -- chunking ------------------------------------------------------------------


class TestChunking:
    def test_spans_cover_range_exactly(self):
        for n in (0, 1, 2, 63, 64, 65, 1000):
            spans = chunk_spans(n)
            assert [i for a, b in spans for i in range(a, b)] == list(range(n))

    def test_explicit_chunk_size_boundaries(self):
        assert chunk_spans(10, 10) == [(0, 10)]
        assert chunk_spans(10, 11) == [(0, 10)]
        assert chunk_spans(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert chunk_spans(1, 1) == [(0, 1)]
        assert chunk_spans(0, 5) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_spans(-1)
        with pytest.raises(ValueError):
            chunk_spans(5, 0)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(2022, 3) == derive_seed(2022, 3)
        assert derive_seed(2022, 3) != derive_seed(2022, 4)
        assert derive_seed(2022, 3) != derive_seed(2023, 3)

    def test_derive_seeds_independent_of_chunking(self):
        whole = derive_seeds(7, 0, 10)
        assert whole == derive_seeds(7, 0, 4) + derive_seeds(7, 4, 10)


# -- map_chunks / map_reduce ---------------------------------------------------


class TestMapChunks:
    @settings(max_examples=8, deadline=None)
    @given(
        items=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=40),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
    )
    def test_matches_serial_map(self, pools, items, chunk_size):
        want = [x * x for x in items]
        for w in WORKER_COUNTS:
            got = map_chunks(square_chunk, items, chunk_size=chunk_size, executor=pools[w])
            assert got == want

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=30),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
    )
    def test_seeded_identical_across_workers_and_chunking(self, pools, n, chunk_size):
        items = list(range(n))
        want = map_chunks(seeded_normal_chunk, items, seed=99, chunk_size=1)
        for w in WORKER_COUNTS:
            got = map_chunks(
                seeded_normal_chunk, items, seed=99, chunk_size=chunk_size, executor=pools[w]
            )
            assert got == want  # bit-identical floats

    def test_empty_and_single_item(self, pools):
        for w in WORKER_COUNTS:
            assert map_chunks(square_chunk, [], executor=pools[w]) == []
            assert map_chunks(square_chunk, [7], executor=pools[w]) == [49]

    def test_wrong_result_count_raises(self):
        with pytest.raises(ValueError, match="one result per item"):
            map_chunks(bad_arity_chunk, [1, 2, 3])

    def test_map_reduce_sum(self, pools):
        items = list(range(100))
        for w in WORKER_COUNTS:
            total = map_reduce(sum_chunk, items, concat, executor=pools[w])
            assert total == sum(items)

    def test_map_reduce_ordered_fold(self, pools):
        """Non-commutative merge: chunk partials fold in chunk order."""
        items = list(range(20))
        want = "".join(str(x) for x in items)
        for w in WORKER_COUNTS:
            got = map_reduce(join_chunk, items, concat, chunk_size=3, executor=pools[w])
            assert got == want

    def test_map_reduce_empty(self):
        assert map_reduce(sum_chunk, [], concat, initial=0) == 0
        with pytest.raises(ValueError, match="initial"):
            map_reduce(sum_chunk, [], concat)


# -- Pipeline.run_many / run_ablations ----------------------------------------


class TestPipelineParallel:
    def test_run_many_matches_run(self, pools):
        pipeline = make_pipeline()
        fleet = [make_trajectory(i, object_id=f"t{i}") for i in range(11)]
        want = [pipeline.run(t) for t in fleet]
        for w in WORKER_COUNTS:
            got = pipeline.run_many(fleet, executor=pools[w])
            assert [r.output for r in got] == [r.output for r in want]
            assert [[(t.name, t.metrics) for t in r.trace] for r in got] == [
                [(t.name, t.metrics) for t in r.trace] for r in want
            ]

    def test_run_many_empty_and_single(self, pools):
        pipeline = make_pipeline()
        for w in WORKER_COUNTS:
            assert pipeline.run_many([], executor=pools[w]) == []
            [only] = pipeline.run_many([make_trajectory(5)], executor=pools[w])
            assert only.output == pipeline.run(make_trajectory(5)).output

    def test_run_many_chunk_boundary(self, pools):
        """Fleet sizes straddling the chunk size: every split point is exact."""
        pipeline = make_pipeline()
        for n in (3, 4, 5):
            fleet = [make_trajectory(i, object_id=f"t{i}") for i in range(n)]
            want = [pipeline.run(t).output for t in fleet]
            for w in WORKER_COUNTS:
                got = pipeline.run_many(fleet, chunk_size=2, executor=pools[w])
                assert [r.output for r in got] == want

    def test_run_many_non_trajectory_data(self, pools):
        pipeline = Pipeline(
            [Stage("add", stage_add), Stage("mul", stage_mul)], probes={"v": probe_value}
        )
        data = list(range(10))
        want = [pipeline.run(x) for x in data]
        for w in WORKER_COUNTS:
            got = pipeline.run_many(data, executor=pools[w])
            assert [r.output for r in got] == [r.output for r in want]

    def test_run_ablations_matches_serial(self, pools):
        pipeline = make_pipeline()
        traj = make_trajectory(3)
        want = pipeline.run_ablations(traj)
        for w in WORKER_COUNTS:
            got = pipeline.run_ablations(traj, executor=pools[w])
            assert list(got) == list(want) == ["full", "down", "shift"]
            for key in want:
                assert got[key].output == want[key].output
                assert [(t.name, t.metrics) for t in got[key].trace] == [
                    (t.name, t.metrics) for t in want[key].trace
                ]

    def test_run_ablations_non_trajectory(self, pools):
        pipeline = Pipeline([Stage("add", stage_add), Stage("mul", stage_mul)])
        want = {k: r.output for k, r in pipeline.run_ablations(5).items()}
        for w in WORKER_COUNTS:
            got = {k: r.output for k, r in pipeline.run_ablations(5, executor=pools[w]).items()}
            assert got == want

    def test_probe_seconds_recorded(self):
        result = make_pipeline().run(make_trajectory(4))
        assert all(t.probe_seconds >= 0.0 for t in result.trace)
        assert result.total_probe_seconds == sum(t.probe_seconds for t in result.trace)
        # Stage cost and probe cost stay separate.
        assert result.total_seconds == sum(t.seconds for t in result.trace)


# -- partitioned queries -------------------------------------------------------


class TestPartitionedQueriesParallel:
    @pytest.fixture
    def world(self, rng):
        from repro.core import BBox

        box = BBox(0.0, 0.0, 1000.0, 1000.0)
        points = skewed_points(rng, 900, box, n_hotspots=3, hotspot_sigma=40.0)
        partitions = kd_partition(points, box, 16)
        centers = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(25)]
        radii = rng.uniform(20, 120, len(centers)).tolist()
        return box, points, partitions, centers, radii

    def test_range_many_matches_serial_and_accounting(self, pools, world):
        _, points, partitions, centers, radii = world
        base = PartitionedStore(points, partitions)
        want = base.range_query_many(centers, radii)
        for w in WORKER_COUNTS:
            store = PartitionedStore(points, partitions)
            got = store.range_query_many(centers, radii, executor=pools[w])
            assert got == want
            assert store.partitions_touched == base.partitions_touched
            assert store.queries_run == base.queries_run

    def test_knn_many_matches_serial_and_brute_force(self, pools, world):
        _, points, partitions, centers, _ = world
        base = PartitionedStore(points, partitions)
        want = base.knn_many(centers, 7)
        brute = [
            [i for _, i in sorted((p.distance_to(c), i) for i, p in enumerate(points))[:7]]
            for c in centers
        ]
        assert want == brute
        for w in WORKER_COUNTS:
            store = PartitionedStore(points, partitions)
            got = store.knn_many(centers, 7, executor=pools[w])
            assert got == want
            assert store.partitions_touched == base.partitions_touched

    def test_single_query_wrappers_route_through_batch(self, world):
        _, points, partitions, centers, radii = world
        store = PartitionedStore(points, partitions)
        hits = store.range_query(centers[0], radii[0])
        assert store.queries_run == 1
        assert sorted(hits) == sorted(
            i for i, p in enumerate(points) if p.distance_to(centers[0]) <= radii[0]
        )
        nn = store.knn(centers[0], 3)
        assert len(nn) == 3 and store.queries_run == 2

    def test_empty_store_and_empty_queries(self, pools):
        from repro.core import BBox

        box = BBox(0.0, 0.0, 10.0, 10.0)
        store = PartitionedStore([], grid_partition([], box, 2))
        for w in WORKER_COUNTS:
            assert store.range_query_many([Point(1, 1)], 5.0, executor=pools[w]) == [[]]
            assert store.knn_many([Point(1, 1)], 3, executor=pools[w]) == [[]]
            assert store.range_query_many([], [], executor=pools[w]) == []


# -- pairwise similarity -------------------------------------------------------


class TestPairwiseParallel:
    def test_matrix_identical_across_workers(self, pools):
        fleet = [make_trajectory(i, n=25, object_id=f"t{i}") for i in range(10)]
        want = pairwise_distances(fleet, "hausdorff")
        for w in WORKER_COUNTS:
            got = pairwise_distances(fleet, "hausdorff", executor=pools[w])
            assert np.array_equal(got, want)

    def test_matrix_shape_and_symmetry(self, pools):
        fleet = [make_trajectory(i, n=20) for i in range(6)]
        m = pairwise_distances(fleet, "dtw", executor=pools[2], band=5)
        assert m.shape == (6, 6)
        assert np.array_equal(m, m.T)
        assert np.all(np.diag(m) == 0.0)

    def test_chunk_boundaries(self, pools):
        fleet = [make_trajectory(i, n=15) for i in range(5)]  # 10 pairs
        want = pairwise_distances(fleet, "hausdorff")
        for chunk_size in (1, 3, 10, 99):
            got = pairwise_distances(fleet, "hausdorff", chunk_size=chunk_size, executor=pools[2])
            assert np.array_equal(got, want)

    def test_edge_cases_and_validation(self):
        assert pairwise_distances([]).shape == (0, 0)
        assert pairwise_distances([make_trajectory(1)]).shape == (1, 1)
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_distances([make_trajectory(1)], "cosine")


# -- Table-1 grid --------------------------------------------------------------


class TestTable1Grid:
    def test_grid_identical_across_workers(self):
        # BENCHMARKS_DIR went onto sys.path at module import, before the warm
        # pools forked — see the module-level comment.
        from table1_grid import run_grid

        serial = run_grid(2022, workers=1)
        parallel = run_grid(2022, workers=2)
        assert serial == parallel
        assert len(serial) == 30


# -- shared-memory lifecycle ---------------------------------------------------


class TestSharedMemoryLifecycle:
    def test_roundtrip_and_owner_unlink(self):
        arr = np.arange(12, dtype=float).reshape(3, 4)
        owner = SharedArray.create(arr)
        name = owner.handle.name
        borrowed = SharedArray.attach(owner.handle)
        assert np.array_equal(borrowed.array, arr)
        borrowed.release()  # borrower close leaves the segment alive
        again = SharedArray.attach(owner.handle)
        again.release()
        owner.release()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(owner.handle)
        assert name  # segment name was real

    def test_release_is_idempotent(self):
        owner = SharedArray.create(np.zeros(3))
        owner.release()
        owner.release()

    def test_batch_unlinked_on_error_path(self):
        fleet = [make_trajectory(i) for i in range(3)]
        with pytest.raises(RuntimeError):
            with SharedTrajectoryBatch.create(fleet) as batch:
                handle = batch.handle
                raise RuntimeError("consumer failed mid-flight")
        with pytest.raises(FileNotFoundError):
            SharedTrajectoryBatch.attach(handle)

    def test_batch_roundtrip(self):
        fleet = [make_trajectory(i, n=5 + i, object_id=f"t{i}") for i in range(4)]
        with SharedTrajectoryBatch.create(fleet) as batch:
            view = SharedTrajectoryBatch.attach(batch.handle)
            try:
                assert view.trajectories() == fleet
            finally:
                view.release()

    def test_empty_batch(self):
        with SharedTrajectoryBatch.create([]) as batch:
            assert len(batch) == 0
            assert batch.trajectories() == []

    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_many_unlinks_segment_when_stage_raises(self, monkeypatch, workers):
        """A crashing consumer must not leak its shared segment."""
        import repro.parallel as parallel_pkg

        created: list = []
        real_create = SharedTrajectoryBatch.create.__func__

        class Recorder(SharedTrajectoryBatch):
            @classmethod
            def create(cls, trajectories):
                batch = real_create(cls, trajectories)
                created.append(batch.handle)
                return batch

        monkeypatch.setattr(parallel_pkg, "SharedTrajectoryBatch", Recorder)
        pipeline = Pipeline([Stage("boom", stage_raise)])
        with pytest.raises(RuntimeError, match="stage exploded"):
            pipeline.run_many([make_trajectory(1), make_trajectory(2)], workers=workers)
        assert len(created) == 1
        with pytest.raises(FileNotFoundError):
            SharedTrajectoryBatch.attach(created[0])

    def test_serial_executor_selected_for_one_worker(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        assert get_executor(-1).workers >= 1


class _InProcessPoolStub:
    """Non-serial executor stand-in: drives the shm fan-out path in-process."""

    workers = 2

    def map_ordered(self, fn, payloads):
        return [fn(p) for p in payloads]

    def close(self):
        pass


class TestSharedMemorySiteHygiene:
    """Call-site halves of the unlink-on-error contract (reprolint R2)."""

    def test_partitioned_store_returns_first_lease_when_second_share_fails(
        self, monkeypatch, rng
    ):
        """Regression (now on the arena path): the seed packed both query
        columns before the try, leaking the coords segment when the second
        one failed.  With arena leases the invariant is the same shape: a
        failing second ``share`` must return the first lease to the free
        list and leave no cached half-pair on the store."""
        import repro.parallel.shm as shm_mod
        from repro.core import BBox
        from repro.parallel import SharedArenaCache

        box = BBox(0.0, 0.0, 100.0, 100.0)
        points = skewed_points(rng, 80, box, n_hotspots=2, hotspot_sigma=10.0)
        store = PartitionedStore(points, kd_partition(points, box, 4))

        arena = SharedArenaCache(max_bytes=1 << 20)
        shares: list[object] = []
        real_share = SharedArenaCache.share

        def flaky_share(self, array):
            if shares:
                raise MemoryError("simulated segment exhaustion")
            lease = real_share(self, array)
            shares.append(lease)
            return lease

        monkeypatch.setattr(SharedArenaCache, "share", flaky_share)
        monkeypatch.setattr(shm_mod, "get_arena", lambda: arena)
        try:
            with pytest.raises(MemoryError):
                store.range_query_many(
                    [Point(50.0, 50.0)], [10.0], executor=_InProcessPoolStub()
                )
            stats = arena.stats()
            assert stats["leases"] == 1
            # The first lease went back to the free list, not leaked as leased.
            assert stats["bytes_total"] > 0
            assert stats["bytes_free"] == stats["bytes_total"]
            assert len(store._leases) == 0
        finally:
            arena.close_all()

    def test_query_chunk_worker_closes_first_attachment_when_second_fails(
        self, monkeypatch, rng
    ):
        """The worker side mirrors it: a failing second attach must still
        close the first mapping (borrower half of the contract)."""
        from repro.core import BBox
        from repro.querying.distributed import _query_chunk_task

        box = BBox(0.0, 0.0, 100.0, 100.0)
        points = skewed_points(rng, 60, box, n_hotspots=2, hotspot_sigma=10.0)
        store = PartitionedStore(points, kd_partition(points, box, 4))
        snap = store._tiers.snapshot()

        closed: list[bool] = []
        real_attach = SharedArray.attach.__func__
        real_release = SharedArray.release

        def tracking_release(self):
            closed.append(True)
            real_release(self)

        attached_count = [0]

        def flaky_attach(handle):
            if attached_count[0] == 1:
                raise FileNotFoundError("segment vanished")
            attached_count[0] += 1
            return real_attach(SharedArray, handle)

        monkeypatch.setattr(SharedArray, "attach", staticmethod(flaky_attach))
        monkeypatch.setattr(SharedArray, "release", tracking_release)
        with SharedArray.create(snap.base_coords[0]) as coords_s, SharedArray.create(
            snap.base_index[0]
        ) as index_s:
            part_refs = (((coords_s.handle, index_s.handle), None),)
            payload = (
                part_refs,
                snap.boxes[:1],
                "range",
                np.array([[50.0, 50.0]]),
                np.array([10.0]),
            )
            closed.clear()
            with pytest.raises(FileNotFoundError):
                _query_chunk_task(payload)
            assert closed == [True]  # the one successful attach was closed


# -- worker pool manager -------------------------------------------------------


def _square(x: int) -> int:
    return x * x


class TestWorkerPoolManager:
    def test_acquire_rejects_serial_counts(self):
        from repro.parallel import WorkerPoolManager

        manager = WorkerPoolManager()
        with pytest.raises(ValueError, match="workers >= 2"):
            manager.acquire(1)

    def test_lease_reuse_and_stats(self):
        from repro.parallel import WorkerPoolManager

        manager = WorkerPoolManager()
        try:
            with manager.acquire(2) as lease:
                assert lease.map_ordered(_square, [1, 2, 3]) == [1, 4, 9]
                assert not lease.pool_was_warm
            with manager.acquire(2) as lease:  # same key: reuse, not respawn
                assert lease.pool_was_warm
                assert lease.map_ordered(_square, [4]) == [16]
            stats = manager.stats.as_dict()
            assert stats["pools_created"] == 1
            assert stats["pool_reuses"] == 1
            assert stats["leases"] == 2
            assert stats["workers_spawned"] == 2
            assert manager.active_workers() == 2
        finally:
            manager.shutdown_all()
        assert manager.active_workers() == 0

    def test_lease_after_close_raises(self):
        from repro.parallel import WorkerPoolManager

        manager = WorkerPoolManager()
        try:
            lease = manager.acquire(2)
            lease.close()
            lease.close()  # idempotent
            with pytest.raises(RuntimeError, match="after close"):
                lease.map_ordered(_square, [1])
        finally:
            manager.shutdown_all()

    def test_restart_on_worker_death(self):
        import os
        import signal

        from repro.parallel import WorkerPoolManager

        manager = WorkerPoolManager()
        try:
            lease = manager.acquire(2)
            procs = lease._pool._pool._processes  # reach into the warm pool
            os.kill(next(iter(procs)), signal.SIGKILL)
            # The broken pool is detected mid-map, restarted, and retried.
            assert lease.map_ordered(_square, [5, 6]) == [25, 36]
            assert manager.stats.pools_restarted == 1
            assert manager.stats.pools_created == 2
        finally:
            manager.shutdown_all()

    def test_shutdown_all_allows_rebuild(self):
        from repro.parallel import WorkerPoolManager

        manager = WorkerPoolManager()
        try:
            manager.acquire(2).close()
            manager.shutdown_all()
            manager.shutdown_all()  # idempotent
            with manager.acquire(2) as lease:
                assert lease.map_ordered(_square, [3]) == [9]
            assert manager.stats.pools_created == 2
        finally:
            manager.shutdown_all()

    def test_get_executor_routes_through_process_manager(self):
        from repro.parallel import PoolLease, get_pool_manager

        manager = get_pool_manager()
        before = manager.stats.leases
        ex = get_executor(2)
        try:
            assert isinstance(ex, PoolLease)
            assert manager.stats.leases == before + 1
        finally:
            ex.close()


# -- shared arena cache --------------------------------------------------------


class TestSharedArenaCache:
    def test_lease_return_reuse_hit(self):
        from repro.parallel import SharedArenaCache

        arena = SharedArenaCache(max_bytes=1 << 20)
        try:
            first = arena.share(np.arange(100, dtype=float))
            name = first.handle.name
            first.release()
            second = arena.share(np.arange(50, dtype=float))  # fits: reused
            assert second.handle.name == name
            assert np.array_equal(second.array, np.arange(50, dtype=float))
            stats = arena.stats()
            assert stats["misses"] == 1 and stats["hits"] == 1
            assert stats["hit_rate"] == 0.5
        finally:
            arena.close_all()

    def test_power_of_two_capacity(self):
        from repro.parallel import SharedArenaCache

        arena = SharedArenaCache(max_bytes=1 << 20)
        try:
            lease = arena.share(np.arange(100, dtype=float))  # 800 bytes
            assert arena.stats()["bytes_total"] == 1024
            lease.release()
        finally:
            arena.close_all()

    def test_lru_eviction_under_budget(self):
        from repro.parallel import SharedArenaCache

        arena = SharedArenaCache(max_bytes=2048)
        try:
            small = arena.share(np.zeros(100))  # capacity 1024
            small.release()
            big = arena.share(np.zeros(150))  # capacity 2048 -> over budget
            stats = arena.stats()
            assert stats["evictions"] == 1
            assert stats["bytes_total"] == 2048  # only the leased segment left
            big.release()
        finally:
            arena.close_all()

    def test_leased_segments_never_evicted(self):
        from repro.parallel import SharedArenaCache

        arena = SharedArenaCache(max_bytes=1024)
        try:
            a = arena.share(np.zeros(100))  # 1024, leased
            b = arena.share(np.zeros(100))  # 1024 more: over budget, both leased
            assert arena.stats()["evictions"] == 0
            assert np.array_equal(a.array, np.zeros(100))
            assert np.array_equal(b.array, np.zeros(100))
            a.release()
            b.release()  # returning over budget now evicts down to one segment
            assert arena.stats()["bytes_total"] <= 1024
        finally:
            arena.close_all()

    def test_close_all_invalidates_leases_and_unlinks(self):
        from repro.parallel import SharedArenaCache, SharedArray

        arena = SharedArenaCache(max_bytes=1 << 20)
        lease = arena.share(np.arange(8, dtype=float))
        handle = lease.handle
        assert lease.alive
        arena.close_all()
        assert not lease.alive
        lease.release()  # safe no-op after close_all
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(handle)
        # The arena itself stays usable after the owner seam fires.
        fresh = arena.share(np.arange(4, dtype=float))
        assert fresh.alive
        arena.close_all()

    def test_generation_mismatch_forces_reattach(self):
        import repro.parallel.shm as shm_mod
        from repro.parallel import ArenaHandle, SharedArenaCache, SharedArray

        arena = SharedArenaCache(max_bytes=1 << 20)
        try:
            lease = arena.share(np.arange(6, dtype=float))
            handle = lease.handle
            att = SharedArray.attach(handle)
            cached_gen, cached_shm = shm_mod._ATTACH_CACHE[handle.name]
            assert cached_gen == handle.generation
            att.release()
            # A handle with a newer generation but the same OS name means the
            # segment was recycled: the stale mapping must be replaced.
            newer = ArenaHandle(
                handle.name, handle.generation + 1, handle.shape, handle.dtype
            )
            att2 = SharedArray.attach(newer)
            gen2, shm2 = shm_mod._ATTACH_CACHE[handle.name]
            assert gen2 == newer.generation
            assert shm2 is not cached_shm
            att2.release()
            del shm_mod._ATTACH_CACHE[handle.name]
            shm2.close()
            lease.release()
        finally:
            arena.close_all()

    def test_attach_cache_reuses_mapping(self):
        import repro.parallel.shm as shm_mod
        from repro.parallel import SharedArenaCache, SharedArray

        arena = SharedArenaCache(max_bytes=1 << 20)
        try:
            lease = arena.share(np.arange(5, dtype=float))
            first = SharedArray.attach(lease.handle)
            second = SharedArray.attach(lease.handle)
            assert first._shm is second._shm  # one mapping, cached
            assert np.array_equal(second.array, np.arange(5, dtype=float))
            first.release()
            second.release()
            gen, shm = shm_mod._ATTACH_CACHE.pop(lease.handle.name)
            shm.close()
            lease.release()
        finally:
            arena.close_all()

    def test_no_leaked_segments_after_shutdown_all(self):
        from repro.parallel import SharedArray, get_arena, shutdown_all

        arena = get_arena()
        lease = arena.share(np.arange(16, dtype=float))
        handle = lease.handle
        lease.release()
        assert arena.stats()["segments"] >= 1
        shutdown_all()  # the atexit seam: pools down, arena unlinked
        assert arena.stats()["segments"] == 0
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(handle)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=0,
            max_size=64,
        )
    )
    def test_arena_transport_bit_identical_to_per_call(self, values):
        """Arena-leased segments carry bytes identically to per-call ones."""
        from repro.parallel import SharedArenaCache, SharedArray

        arr = np.asarray(values, dtype=float)
        arena = SharedArenaCache(max_bytes=1 << 20)
        per_call = SharedArray.create(arr)
        lease = arena.share(arr)
        try:
            via_per_call = SharedArray.attach(per_call.handle)
            via_arena = SharedArray.attach(lease.handle)
            try:
                assert via_arena.array.tobytes() == via_per_call.array.tobytes()
                assert via_arena.array.dtype == via_per_call.array.dtype
                assert via_arena.array.shape == via_per_call.array.shape
            finally:
                via_per_call.release()
                via_arena.release()
        finally:
            per_call.release()
            lease.release()
            arena.close_all()

    def test_arena_backed_queries_match_serial(self, rng):
        """End to end: arena-cached store columns give the serial answers."""
        from repro.core import BBox

        box = BBox(0.0, 0.0, 200.0, 200.0)
        points = skewed_points(rng, 150, box, n_hotspots=2, hotspot_sigma=20.0)
        store = PartitionedStore(points, kd_partition(points, box, 8))
        centers = [Point(float(20 * i), float(15 * i)) for i in range(9)]
        radii = [25.0] * len(centers)
        serial = store.range_query_many(centers, radii)
        try:
            # Two parallel-path rounds: the second hits the cached leases.
            for _ in range(2):
                got = store.range_query_many(
                    centers, radii, executor=_InProcessPoolStub()
                )
                assert got == serial
            assert len(store._leases) > 0  # one lease pair per non-empty partition
        finally:
            store.close_shared()


# -- adaptive dispatch ---------------------------------------------------------


class TestAdaptiveDispatch:
    def test_crossover_math(self):
        from repro.parallel import DispatchModel

        model = DispatchModel(
            workers=2,
            start_method=None,
            dispatch_overhead_s=1e-3,
            item_cost_s=1e-5,
            probe_items=256,
        )
        # overhead / (cost * (1 - 1/2)) = 1e-3 / 5e-6 = 200 items.
        assert model.crossover_items() == pytest.approx(200.0)
        assert model.choose(199) == "serial"
        assert model.choose(200) == "parallel"
        # A costlier workload crosses over earlier.
        assert model.choose(10, item_cost_s=1e-3) == "parallel"
        assert model.as_dict()["crossover_items"] == pytest.approx(200.0)

    def test_env_override_wins(self, monkeypatch):
        from repro.parallel import DISPATCH_ENV, dispatch_decision, dispatch_mode

        monkeypatch.setenv(DISPATCH_ENV, "serial")
        assert dispatch_decision(10**9, 8) == "serial"
        monkeypatch.setenv(DISPATCH_ENV, "parallel")
        assert dispatch_decision(1, 8) == "parallel"
        monkeypatch.setenv(DISPATCH_ENV, "bogus")
        with pytest.raises(ValueError, match="not a valid dispatch mode"):
            dispatch_mode()

    def test_auto_without_model_is_parallel(self, monkeypatch):
        import repro.parallel.pool as pool_mod
        from repro.parallel import WorkerPoolManager, dispatch_decision

        monkeypatch.setattr(pool_mod, "get_pool_manager", WorkerPoolManager)
        assert dispatch_decision(3, 2) == "parallel"  # uncalibrated: legacy
        assert dispatch_decision(None, 2) == "parallel"
        assert dispatch_decision(100, 1) == "parallel"

    def test_auto_with_model_routes_at_crossover(self, monkeypatch):
        import repro.parallel.pool as pool_mod
        from repro.parallel import DispatchModel, WorkerPoolManager, dispatch_decision

        manager = WorkerPoolManager()
        manager.set_model(
            DispatchModel(
                workers=2,
                start_method=manager.resolve_key(2)[1],
                dispatch_overhead_s=1e-3,
                item_cost_s=1e-5,
                probe_items=256,
            )
        )
        monkeypatch.setattr(pool_mod, "get_pool_manager", lambda: manager)
        assert dispatch_decision(10, 2) == "serial"
        assert dispatch_decision(1000, 2) == "parallel"

    def test_serial_downgrade_is_bit_identical_and_leases_nothing(self, monkeypatch):
        from repro.parallel import DISPATCH_ENV, get_pool_manager

        want = map_chunks(square_chunk, list(range(40)), workers=1)
        manager = get_pool_manager()
        before = manager.stats.leases
        monkeypatch.setenv(DISPATCH_ENV, "serial")
        got = map_chunks(square_chunk, list(range(40)), workers=2)
        assert got == want
        assert manager.stats.leases == before  # routed serial: no pool lease

    def test_calibrate_once_per_key(self):
        from repro.parallel import WorkerPoolManager

        manager = WorkerPoolManager()
        try:
            model = manager.calibrate(2, probe_items=32, rounds=1)
            assert model.workers == 2
            assert model.dispatch_overhead_s > 0
            assert model.item_cost_s > 0
            assert model.crossover_items() > 0
            again = manager.calibrate(2, probe_items=32, rounds=1)
            assert again is model  # cached, not re-measured
            assert manager.model_for(2) is model
        finally:
            manager.shutdown_all()
