"""Offline error-bounded trajectory simplification (Sec. 2.2.6,
[17, 77, 70]).

*Trajectory simplification* keeps a subset of the points such that a
geometric error bound holds — the mainstream DR technology the tutorial
highlights ("error-bounded line simplification" [70]).  Implemented:

* :func:`douglas_peucker` — the classical split-based algorithm bounding
  the *perpendicular* distance,
* :func:`td_tr` — its time-aware variant bounding the *synchronized
  Euclidean distance* (SED), which respects motion dynamics [17],
* :func:`uniform_simplify` — the non-error-bounded baseline,
* error measures and the compression ratio used by every DR benchmark.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import (
    perpendicular_distance,
    synchronized_euclidean_distance,
)
from ..core.trajectory import Trajectory


def douglas_peucker(traj: Trajectory, epsilon: float) -> Trajectory:
    """Split-based simplification with perpendicular-distance bound ``epsilon``."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    n = len(traj)
    if n <= 2:
        return traj
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a, b = traj[lo].point, traj[hi].point
        dists = [
            perpendicular_distance(traj[i].point, a, b) for i in range(lo + 1, hi)
        ]
        worst = int(np.argmax(dists)) + lo + 1
        if dists[worst - lo - 1] > epsilon:
            keep[worst] = True
            stack.append((lo, worst))
            stack.append((worst, hi))
    return Trajectory([traj[i] for i in range(n) if keep[i]], traj.object_id)


def td_tr(traj: Trajectory, epsilon: float) -> Trajectory:
    """Time-aware split simplification bounding the SED by ``epsilon``.

    Guarantees every dropped point lies within ``epsilon`` of the uniform
    motion interpolant between its kept neighbors *at its own timestamp*.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    n = len(traj)
    if n <= 2:
        return traj
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a, b = traj[lo], traj[hi]
        dists = [
            synchronized_euclidean_distance(
                traj[i].point, traj[i].t, a.point, a.t, b.point, b.t
            )
            for i in range(lo + 1, hi)
        ]
        worst = int(np.argmax(dists)) + lo + 1
        if dists[worst - lo - 1] > epsilon:
            keep[worst] = True
            stack.append((lo, worst))
            stack.append((worst, hi))
    return Trajectory([traj[i] for i in range(n) if keep[i]], traj.object_id)


def uniform_simplify(traj: Trajectory, target_points: int) -> Trajectory:
    """Keep ``target_points`` uniformly spaced samples (no error bound)."""
    n = len(traj)
    if target_points < 2:
        raise ValueError("target_points must be >= 2")
    if target_points >= n:
        return traj
    idx = np.unique(np.linspace(0, n - 1, target_points).round().astype(int))
    return Trajectory([traj[int(i)] for i in idx], traj.object_id)


# ---------------------------------------------------------------------------
# Error measures
# ---------------------------------------------------------------------------


def max_sed_error(original: Trajectory, simplified: Trajectory) -> float:
    """Max SED of any original point against the simplified trajectory.

    This is the quantity TD-TR bounds; for Douglas-Peucker it may exceed
    the epsilon (which bounds perpendicular distance only) — the distinction
    the experimental study [70] emphasizes.
    """
    kept_times = simplified.times
    if len(kept_times) < 2:
        return max(
            (p.point.distance_to(simplified[0].point) for p in original),
            default=0.0,
        )
    worst = 0.0
    j = 0
    for p in original:
        while j + 1 < len(kept_times) and kept_times[j + 1] < p.t:
            j += 1
        a = simplified[min(j, len(simplified) - 1)]
        b = simplified[min(j + 1, len(simplified) - 1)]
        worst = max(
            worst,
            synchronized_euclidean_distance(p.point, p.t, a.point, a.t, b.point, b.t),
        )
    return worst


def max_perpendicular_error(original: Trajectory, simplified: Trajectory) -> float:
    """Max perpendicular distance of any original point to its kept segment."""
    kept_times = simplified.times
    worst = 0.0
    j = 0
    for p in original:
        while j + 1 < len(kept_times) and kept_times[j + 1] < p.t:
            j += 1
        a = simplified[min(j, len(simplified) - 1)]
        b = simplified[min(j + 1, len(simplified) - 1)]
        worst = max(worst, perpendicular_distance(p.point, a.point, b.point))
    return worst


def compression_ratio(original: Trajectory, simplified: Trajectory) -> float:
    """|original| / |simplified| (>= 1; larger = stronger reduction)."""
    if len(simplified) == 0:
        raise ValueError("simplified trajectory is empty")
    return len(original) / len(simplified)
