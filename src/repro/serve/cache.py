"""Epoch-validated LRU result cache keyed by (partition set, query signature).

Each entry remembers the *partition dependency set* of its query — the
partitions whose contents could change the answer — and the epoch vector
those partitions had when the result was computed.  A lookup revalidates
the vector against the live :class:`~repro.serve.epochs.EpochRegistry`:
any moved epoch means a gate-admitted write landed in a dependency
partition since the result was computed, so the entry is evicted and the
lookup reports ``"stale"`` instead of serving it.

The epoch vector is captured *before* the kernel call that computes a
result (see :meth:`~repro.serve.service.QueryService`), so a write racing
the computation leaves the stored vector behind the live one — the race
resolves to an extra miss, never to a stale answer.

The cache is single-writer by construction (only the serving event loop
touches it); the epoch registry it validates against is thread-safe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .epochs import EpochRegistry
from .requests import Signature

#: Lookup outcomes (the ``result`` label of ``repro_serve_cache_total``).
LOOKUP_HIT = "hit"
LOOKUP_MISS = "miss"
LOOKUP_STALE = "stale"


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One cached answer plus the epoch evidence that keeps it honest."""

    results: tuple[int, ...]
    partition_ids: tuple[int, ...]
    epoch_vector: tuple[int, ...]


class ResultCache:
    """Bounded LRU of query results with quality-epoch invalidation."""

    def __init__(self, epochs: EpochRegistry, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.epochs = epochs
        self.capacity = capacity
        self._entries: OrderedDict[Signature, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, signature: Signature) -> tuple[tuple[int, ...] | None, str]:
        """Validated lookup: ``(results, "hit")`` or ``(None, "miss"|"stale")``.

        A present entry whose dependency partitions all kept their epoch is
        a hit (and refreshes LRU recency); a present entry with any moved
        epoch is evicted and reported stale.
        """
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None, LOOKUP_MISS
        if self.epochs.vector(entry.partition_ids) != entry.epoch_vector:
            del self._entries[signature]
            self.stale_evictions += 1
            self.misses += 1
            return None, LOOKUP_STALE
        self._entries.move_to_end(signature)
        self.hits += 1
        return entry.results, LOOKUP_HIT

    def put(
        self,
        signature: Signature,
        results: tuple[int, ...],
        partition_ids: tuple[int, ...],
        epoch_vector: tuple[int, ...],
    ) -> None:
        """Insert one computed result; evicts the LRU entry beyond capacity.

        ``epoch_vector`` must be the dependency partitions' epochs sampled
        *before* the computation that produced ``results``.
        """
        if len(partition_ids) != len(epoch_vector):
            raise ValueError("epoch_vector must align with partition_ids")
        self._entries[signature] = CacheEntry(results, partition_ids, epoch_vector)
        self._entries.move_to_end(signature)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
