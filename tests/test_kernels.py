"""Property-based equivalence suite: vectorized kernels vs scalar references.

Every batched path introduced by ``repro.kernels`` must return *exactly*
what the retained scalar loop returns — same ids, same order under the
``(distance, item_id)`` tie rule — on random, collinear, duplicate-point,
and empty inputs.  The scalar references live in
:mod:`repro.kernels.reference`.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.cleaning import heading_outliers, speed_outliers, zscore_outliers
from repro.core import BBox, Point, Trajectory, TrajectoryPoint, haversine_m
from repro.kernels import reference
from repro.querying import (
    GridIndex,
    RTree,
    brute_force_knn,
    brute_force_knn_many,
    brute_force_range,
    brute_force_range_many,
    build_entries,
)

settings.register_profile("kernels", derandomize=True, max_examples=60, deadline=None)
settings.load_profile("kernels")

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def coords_strategy(min_size=0, max_size=60):
    """Point lists biased toward degeneracy: duplicates and collinear runs."""
    random_pts = st.lists(st.tuples(finite, finite), min_size=min_size, max_size=max_size)
    collinear = st.builds(
        lambda xs, slope, b: [(x, slope * x + b) for x in xs],
        st.lists(finite, min_size=min_size, max_size=max_size),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        finite,
    )
    duplicated = st.builds(
        lambda pts, reps: [p for p in pts for _ in range(reps)],
        st.lists(st.tuples(finite, finite), min_size=max(1, min_size), max_size=12),
        st.integers(min_value=1, max_value=4),
    )
    return st.one_of(random_pts, collinear, duplicated)


def as_points(raw):
    return [Point(float(x), float(y)) for x, y in raw]


# ---------------------------------------------------------------------------
# Brute-force query kernels vs scalar linear scans
# ---------------------------------------------------------------------------


class TestBruteForceEquivalence:
    @given(raw=coords_strategy(), cx=finite, cy=finite, radius=st.floats(0, 2e6))
    def test_range_matches_scalar(self, raw, cx, cy, radius):
        entries = build_entries(as_points(raw))
        center = Point(cx, cy)
        assert brute_force_range(entries, center, radius) == reference.scalar_range(
            entries, center, radius
        )

    @given(raw=coords_strategy(), cx=finite, cy=finite, k=st.integers(0, 70))
    def test_knn_matches_scalar(self, raw, cx, cy, k):
        entries = build_entries(as_points(raw))
        center = Point(cx, cy)
        assert brute_force_knn(entries, center, k) == reference.scalar_knn(
            entries, center, k
        )

    def test_empty_entries(self):
        assert brute_force_range([], Point(0, 0), 10.0) == []
        assert brute_force_knn([], Point(0, 0), 3) == []
        assert brute_force_range_many([], [Point(0, 0)], 1.0) == [[]]
        assert brute_force_knn_many([], [Point(0, 0)], 3) == [[]]

    @given(
        raw=coords_strategy(min_size=1),
        centers=st.lists(st.tuples(finite, finite), min_size=1, max_size=8),
        radius=st.floats(0, 2e6),
        k=st.integers(1, 20),
    )
    def test_batch_matches_per_query(self, raw, centers, radius, k):
        entries = build_entries(as_points(raw))
        pts = as_points(centers)
        assert brute_force_range_many(entries, pts, radius) == [
            brute_force_range(entries, c, radius) for c in pts
        ]
        assert brute_force_knn_many(entries, pts, k) == [
            brute_force_knn(entries, c, k) for c in pts
        ]

    def test_per_query_radii(self):
        entries = build_entries([Point(0, 0), Point(3, 4), Point(6, 8)])
        out = brute_force_range_many(entries, [Point(0, 0), Point(0, 0)], [1.0, 5.0])
        assert out == [[0], [0, 1]]


# ---------------------------------------------------------------------------
# Indexes vs scalar baselines (shared (distance, id) tie rule)
# ---------------------------------------------------------------------------


class TestIndexEquivalence:
    @given(
        raw=st.lists(
            st.tuples(st.floats(0, 1000, allow_nan=False), st.floats(0, 1000, allow_nan=False)),
            min_size=0,
            max_size=80,
        ),
        cx=st.floats(-200, 1200, allow_nan=False),
        cy=st.floats(-200, 1200, allow_nan=False),
        radius=st.floats(0, 1500, allow_nan=False),
        k=st.integers(1, 30),
    )
    def test_grid_and_rtree_match_scalar(self, raw, cx, cy, radius, k):
        pts = as_points(raw)
        entries = build_entries(pts)
        center = Point(cx, cy)
        grid = GridIndex(BBox(0, 0, 1000, 1000), 100.0)
        for e in entries:
            grid.insert(e)
        tree = RTree(entries)
        assert sorted(grid.range_query(center, radius)) == sorted(
            reference.scalar_range(entries, center, radius)
        )
        assert sorted(tree.range_query(center, radius)) == sorted(
            reference.scalar_range(entries, center, radius)
        )
        assert grid.knn(center, k) == reference.scalar_knn(entries, center, k)
        assert tree.knn(center, k) == reference.scalar_knn(entries, center, k)


# ---------------------------------------------------------------------------
# Motion and screen kernels vs scalar loops
# ---------------------------------------------------------------------------


def traj_strategy(min_size=0, max_size=50):
    return st.lists(
        st.tuples(finite, finite, st.floats(0.05, 10, allow_nan=False)),
        min_size=min_size,
        max_size=max_size,
    ).map(
        lambda rows: Trajectory(
            [
                TrajectoryPoint(x, y, float(t))
                for (x, y, _), t in zip(rows, np.cumsum([dt for _, _, dt in rows]))
            ]
        )
    )


class TestMotionKernels:
    @given(traj=traj_strategy())
    def test_speeds_match_scalar(self, traj):
        assert traj.speeds().tolist() == pytest.approx(
            reference.scalar_speeds(traj.points), abs=0, rel=1e-12
        )

    @given(traj=traj_strategy())
    def test_headings_match_scalar(self, traj):
        assert traj.headings().tolist() == pytest.approx(
            reference.scalar_headings(traj.points), abs=1e-15
        )

    @given(traj=traj_strategy(min_size=2))
    def test_intervals_positive(self, traj):
        gaps = traj.sampling_intervals()
        assert gaps.shape == (len(traj) - 1,)
        assert (gaps > 0).all()

    def test_empty_trajectory(self):
        t = Trajectory([])
        assert t.as_xyt().shape == (0, 3)
        assert t.speeds().shape == (0,)
        assert t.headings().shape == (0,)

    @given(traj=traj_strategy())
    def test_derived_arrays_cached_and_frozen(self, traj):
        a, b = traj.as_xyt(), traj.as_xyt()
        assert a is b and not a.flags.writeable
        assert traj.speeds() is traj.speeds()

    @given(
        lon1=st.floats(-180, 180), lat1=st.floats(-90, 90),
        lon2=st.floats(-180, 180), lat2=st.floats(-90, 90),
    )
    def test_haversine_matches_scalar(self, lon1, lat1, lon2, lat2):
        batch = kernels.haversine_m_many([lon1], [lat1], [lon2], [lat2])
        assert float(batch[0]) == pytest.approx(haversine_m(lon1, lat1, lon2, lat2), rel=1e-12)


class TestScreenKernels:
    @given(traj=traj_strategy(), max_speed=st.floats(0.1, 1e4))
    def test_speed_screen_matches_scalar(self, traj, max_speed):
        assert speed_outliers(traj, max_speed) == reference.scalar_speed_outliers(
            traj, max_speed
        )

    @given(traj=traj_strategy(), max_turn=st.floats(0.1, 3.1))
    def test_heading_screen_matches_scalar(self, traj, max_turn):
        assert heading_outliers(traj, max_turn) == reference.scalar_heading_outliers(
            traj, max_turn
        )

    @given(traj=traj_strategy(), window=st.integers(3, 15), threshold=st.floats(0.5, 5))
    def test_zscore_screen_matches_scalar(self, traj, window, threshold):
        assert zscore_outliers(traj, window, threshold) == reference.scalar_zscore_outliers(
            traj, window, threshold
        )

    @given(values=st.lists(finite, min_size=0, max_size=80), half=st.integers(1, 7))
    def test_windowed_medians_match_scalar(self, values, half):
        v = np.asarray(values, dtype=float)
        got = kernels.windowed_medians(v, half)
        want = [
            float(np.median(v[max(0, i - half) : min(len(v), i + half + 1)]))
            for i in range(len(v))
        ]
        assert got.tolist() == want


# ---------------------------------------------------------------------------
# Distance kernel algebra
# ---------------------------------------------------------------------------


class TestDistanceKernels:
    @given(raw=coords_strategy(min_size=1), cx=finite, cy=finite)
    def test_dists_match_scalar_hypot_closely(self, raw, cx, cy):
        coords = kernels.coords_of(as_points(raw))
        d = kernels.dists_to(coords, Point(cx, cy))
        want = [math.hypot(x - cx, y - cy) for x, y in raw]
        assert d.tolist() == pytest.approx(want, rel=1e-15, abs=1e-15)

    @given(raw=coords_strategy(min_size=1, max_size=20))
    def test_cross_dists_symmetry(self, raw):
        coords = kernels.coords_of(as_points(raw))
        d = kernels.cross_dists(coords, coords)
        assert np.array_equal(d, d.T)
        assert np.all(np.diag(d) == 0.0)

    def test_knn_select_tie_rule(self):
        dists = np.array([1.0, 1.0, 0.5, 1.0, 2.0])
        ids = np.array([9, 2, 7, 4, 1], dtype=np.int64)
        assert kernels.knn_select(dists, ids, 3).tolist() == [7, 2, 4]
        assert kernels.knn_select(dists, ids, 10).tolist() == [7, 2, 4, 9, 1]
        assert kernels.knn_select(dists, ids, 0).tolist() == []

    def test_empty_inputs(self):
        empty = np.zeros((0, 2))
        assert kernels.dists_to(empty, Point(0, 0)).shape == (0,)
        assert kernels.cross_dists(empty, empty).shape == (0, 0)
        assert kernels.knn_select(np.zeros(0), np.zeros(0, dtype=np.int64), 5).shape == (0,)
        assert kernels.box_min_dists(np.zeros((0, 4)), Point(0, 0)).shape == (0,)

    @given(
        bx=st.tuples(finite, finite, finite, finite),
        cx=finite,
        cy=finite,
    )
    def test_box_dists_match_bbox_methods(self, bx, cx, cy):
        x0, y0, x1, y1 = bx
        box = BBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        rows = np.array([[box.min_x, box.min_y, box.max_x, box.max_y]])
        c = Point(cx, cy)
        assert float(kernels.box_min_dists(rows, c)[0]) == pytest.approx(
            box.min_distance_to(c), rel=1e-15, abs=1e-15
        )
        assert float(kernels.box_max_dists(rows, c)[0]) == pytest.approx(
            box.max_distance_to(c), rel=1e-15, abs=1e-15
        )


# ---------------------------------------------------------------------------
# Same-named reference twins: every public kernel vs its scalar twin (R3)
# ---------------------------------------------------------------------------


def _twin_rng():
    return np.random.default_rng(20260806)


def _twin_coords(rng, n=40):
    pts = rng.uniform(-200.0, 200.0, size=(n, 2))
    pts[5] = pts[4]  # duplicate rows exercise the (distance, id) tie rule
    pts[6] = pts[4]
    return pts


def _twin_xyt(rng, n=30):
    xy = np.cumsum(rng.normal(0.0, 5.0, size=(n, 2)), axis=0)
    t = np.cumsum(rng.uniform(0.5, 2.0, size=n))
    return np.column_stack([xy, t])


def _twin_boxes(rng, n=12):
    lo = rng.uniform(-100.0, 100.0, size=(n, 2))
    hi = lo + rng.uniform(0.0, 60.0, size=(n, 2))
    return np.hstack([lo, hi])[:, [0, 1, 2, 3]]


#: name -> zero-arg builder of the positional args both twins receive.
#: Keys must cover every public function of kernels.{distances,motion,
#: screens} — reprolint rule R3 and test_every_kernel_has_reference_twin
#: both enforce the pairing.
PARITY_BUILDERS = {
    "dists_to": lambda rng: (_twin_coords(rng), Point(3.0, -7.0)),
    "cross_dists": lambda rng: (_twin_coords(rng, 25), _twin_coords(rng, 18)),
    "range_mask": lambda rng: (_twin_coords(rng), Point(0.0, 0.0), 150.0),
    "range_masks": lambda rng: (
        _twin_coords(rng),
        rng.uniform(-100.0, 100.0, size=(6, 2)),
        rng.uniform(10.0, 200.0, size=6),
    ),
    "knn_select": lambda rng: (
        np.repeat(rng.uniform(0.0, 50.0, size=10), 2),
        rng.permutation(20).astype(np.int64),
        7,
    ),
    "knn_select_many": lambda rng: (
        _twin_coords(rng),
        rng.permutation(40).astype(np.int64),
        rng.uniform(-100.0, 100.0, size=(5, 2)),
        6,
    ),
    "chunked_range_hits": lambda rng: (
        [
            (_twin_coords(rng, 20), np.arange(20, dtype=np.int64)),
            (np.zeros((0, 2)), np.zeros(0, dtype=np.int64)),
            (_twin_coords(rng, 15), np.arange(100, 115, dtype=np.int64)),
        ],
        rng.uniform(-100.0, 100.0, size=(6, 2)),
        rng.uniform(10.0, 200.0, size=6),
    ),
    "box_min_dists": lambda rng: (_twin_boxes(rng), Point(5.0, 5.0)),
    "box_max_dists": lambda rng: (_twin_boxes(rng), Point(5.0, 5.0)),
    "box_gap_dists": lambda rng: (BBox(-20.0, -20.0, 20.0, 20.0), _twin_boxes(rng)),
    "haversine_m_many": lambda rng: (
        rng.uniform(-180.0, 180.0, size=15),
        rng.uniform(-85.0, 85.0, size=15),
        rng.uniform(-180.0, 180.0, size=15),
        rng.uniform(-85.0, 85.0, size=15),
    ),
    "leg_displacements": lambda rng: (_twin_xyt(rng),),
    "leg_speeds": lambda rng: (_twin_xyt(rng),),
    "leg_headings": lambda rng: (_twin_xyt(rng),),
    "sampling_intervals": lambda rng: (np.cumsum(rng.uniform(0.1, 3.0, size=25)),),
    "turn_angles": lambda rng: (rng.uniform(-np.pi, np.pi, size=25),),
    "path_length": lambda rng: (_twin_xyt(rng),),
    "windowed_medians": lambda rng: (rng.normal(0.0, 5.0, size=31), 3),
    "windowed_median_residuals": lambda rng: (_twin_xyt(rng), 7),
    "robust_zscores": lambda rng: (np.abs(rng.normal(0.0, 2.0, size=40)),),
    "both_leg_flags": lambda rng: (rng.random(20) < 0.4,),
}

_EMPTY_BUILDERS = {
    "dists_to": lambda rng: (np.zeros((0, 2)), Point(0.0, 0.0)),
    "leg_displacements": lambda rng: (np.zeros((0, 3)),),
    "turn_angles": lambda rng: (np.zeros(0),),
    "windowed_medians": lambda rng: (np.zeros(0), 2),
    "robust_zscores": lambda rng: (np.zeros(0),),
    "both_leg_flags": lambda rng: (np.zeros(0, dtype=bool),),
    "knn_select": lambda rng: (np.zeros(0), np.zeros(0, dtype=np.int64), 4),
    "chunked_range_hits": lambda rng: (
        [],
        rng.uniform(-100.0, 100.0, size=(3, 2)),
        50.0,
    ),
}


def _assert_twin_equal(name, got, want):
    if name == "both_leg_flags":
        assert got == want
    elif name == "path_length":
        assert got == pytest.approx(want, rel=1e-12, abs=1e-12)
    elif name == "knn_select":
        np.testing.assert_array_equal(got, want)
    elif name in ("knn_select_many", "chunked_range_hits"):
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)
    elif name in ("range_mask", "range_masks"):
        np.testing.assert_array_equal(got, want)
    else:
        got_arr, want_arr = np.asarray(got, dtype=float), np.asarray(want, dtype=float)
        assert got_arr.shape == want_arr.shape
        np.testing.assert_allclose(got_arr, want_arr, rtol=1e-9, atol=1e-9)


class TestReferenceTwins:
    """Each public kernel agrees with its same-named scalar twin."""

    @pytest.mark.parametrize("name", sorted(PARITY_BUILDERS))
    def test_parity(self, name):
        args = PARITY_BUILDERS[name](_twin_rng())
        _assert_twin_equal(name, getattr(kernels, name)(*args), getattr(reference, name)(*args))

    @pytest.mark.parametrize("name", sorted(_EMPTY_BUILDERS))
    def test_parity_on_empty_inputs(self, name):
        args = _EMPTY_BUILDERS[name](_twin_rng())
        _assert_twin_equal(name, getattr(kernels, name)(*args), getattr(reference, name)(*args))

    def test_every_kernel_has_reference_twin(self):
        """Mechanical mirror of reprolint rule R3: no kernel without a twin."""
        import repro.kernels.distances as distances
        import repro.kernels.motion as motion
        import repro.kernels.screens as screens

        for mod in (distances, motion, screens):
            for name, obj in vars(mod).items():
                if name.startswith("_") or not callable(obj):
                    continue
                if getattr(obj, "__module__", None) != mod.__name__:
                    continue
                assert hasattr(reference, name), f"no reference twin for kernel {name}"
                assert name in PARITY_BUILDERS, f"kernel {name} missing a parity case"
