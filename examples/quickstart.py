"""Quickstart: assess, clean, and re-assess a noisy IoT trajectory.

Generates ground truth, corrupts it the way low-cost IoT positioning does
(noise + gross outliers + dropout), measures the paper's DQ dimensions
before and after a two-stage cleaning pipeline, and prints the quality
recovery.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cleaning import remove_and_repair, zscore_outliers
from repro.core import BBox, Pipeline, Stage, accuracy_error, assess_trajectory
from repro.localization import kalman_refine
from repro.synth import CorruptionProfile, correlated_random_walk


def main() -> None:
    rng = np.random.default_rng(7)
    world = BBox(0, 0, 1000, 1000)

    # 1. Ground truth: a pedestrian-scale correlated random walk.
    truth = correlated_random_walk(rng, 300, world, speed_mean=5.0, object_id="walker")
    print(f"ground truth: {truth}")

    # 2. Field-quality observations: noise, outliers, dropout in one shot.
    observed, outlier_idx = CorruptionProfile(
        noise_sigma=6.0, outlier_rate=0.04, outlier_magnitude=200.0, drop_rate=0.2
    ).apply(truth, rng)
    print(f"observed:     {observed}  ({len(outlier_idx)} injected outliers)")

    # 3. Quality report before cleaning (Sec. 2.1 dimensions).
    before = assess_trajectory(observed, truth=truth, region=world, max_speed=15.0)
    print("\nDQ report, raw observations:")
    for name, value, polarity in before.to_rows():
        print(f"  {name:<16} {value:10.3f}   ({polarity})")

    # 4. Quality-management middleware (Sec. 2.4): OR stage + motion-based
    #    refinement stage, with a live accuracy probe.
    pipeline = Pipeline(
        [
            Stage("outlier-repair", lambda t: remove_and_repair(t, zscore_outliers(t))),
            Stage("kalman-smooth", lambda t: kalman_refine(t, 1.0, 6.0)),
        ],
        probes={"error_m": lambda t: accuracy_error(t, truth)},
    )
    result = pipeline.run(observed)

    print("\nerror through the pipeline:")
    print(f"  {'raw':<16} {accuracy_error(observed, truth):8.2f} m")
    for stage, err in result.metric_series("error_m"):
        print(f"  {stage:<16} {err:8.2f} m")

    # 5. Quality report after cleaning.
    after = assess_trajectory(result.output, truth=truth, region=world, max_speed=15.0)
    print("\nDQ report, cleaned output:")
    for name, value, polarity in after.to_rows():
        print(f"  {name:<16} {value:10.3f}   ({polarity})")

    improved = before.degraded_dimensions(after)
    print(
        "\ndimensions improved by cleaning: "
        + ", ".join(d.value for d in improved)
    )


if __name__ == "__main__":
    main()
