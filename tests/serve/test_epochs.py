import numpy as np
import pytest

from repro.ingest import IngestEngine
from repro.ingest.events import IngestEvent
from repro.serve import EpochRegistry, ingest_epoch_hook

#: Four unit boxes tiling [0,2]x[0,2]: partition p covers cell (p % 2, p // 2).
QUAD = np.array(
    [
        [0.0, 0.0, 1.0, 1.0],
        [1.0, 0.0, 2.0, 1.0],
        [0.0, 1.0, 1.0, 2.0],
        [1.0, 1.0, 2.0, 2.0],
    ]
)


def event(x, y, sensor="s0", t=0.0):
    return IngestEvent(sensor_id=sensor, x=x, y=y, t=t, value=1.0, arrival_time=t)


class TestEpochRegistry:
    def test_boxes_shape_validated(self):
        with pytest.raises(ValueError):
            EpochRegistry(np.zeros((3, 2)))

    def test_epochs_start_at_zero(self):
        reg = EpochRegistry(QUAD)
        assert reg.snapshot() == (0, 0, 0, 0)
        assert reg.total_bumps == 0

    def test_bump_point_hits_exactly_containing_partitions(self):
        reg = EpochRegistry(QUAD)
        bumped = reg.bump_point(0.5, 1.5)  # interior of partition 2 only
        assert bumped == (2,)
        assert reg.snapshot() == (0, 0, 1, 0)

    def test_bump_point_on_shared_edge_hits_both(self):
        reg = EpochRegistry(QUAD)
        bumped = reg.bump_point(1.0, 0.5)  # on the p0/p1 boundary
        assert bumped == (0, 1)
        assert reg.snapshot() == (1, 1, 0, 0)

    def test_point_outside_every_box_bumps_all(self):
        reg = EpochRegistry(QUAD)
        bumped = reg.bump_point(5.0, 5.0)
        assert bumped == (0, 1, 2, 3)
        assert reg.snapshot() == (1, 1, 1, 1)

    def test_epochs_only_advance(self):
        reg = EpochRegistry(QUAD)
        seen = [reg.snapshot()]
        for x, y in [(0.5, 0.5), (1.5, 0.5), (0.5, 0.5), (9.0, 9.0)]:
            reg.bump_point(x, y)
            seen.append(reg.snapshot())
        for before, after in zip(seen, seen[1:]):
            assert all(b <= a for b, a in zip(before, after))
        assert reg.total_bumps == 1 + 1 + 1 + 4

    def test_vector_follows_given_order(self):
        reg = EpochRegistry(QUAD)
        reg.bump([3])
        assert reg.vector([3, 0]) == (1, 0)
        assert reg.vector([0, 3]) == (0, 1)
        assert reg.epoch(3) == 1


class TestIngestHook:
    def test_gate_admitted_write_bumps_containing_partition(self):
        reg = EpochRegistry(QUAD)
        with IngestEngine(n_shards=1, on_admit=ingest_epoch_hook(reg)) as engine:
            assert engine.offer(event(1.5, 1.5))
        assert reg.snapshot() == (0, 0, 0, 1)

    def test_hook_fires_before_store_write(self):
        reg = EpochRegistry(QUAD)

        class ProbeStore:
            def __init__(self):
                self.bumps_at_write = []

            def write(self, ev):
                self.bumps_at_write.append(reg.total_bumps)

        probe = ProbeStore()
        with IngestEngine(
            n_shards=1, store=probe, on_admit=ingest_epoch_hook(reg)
        ) as engine:
            engine.offer(event(0.5, 0.5))
            engine.offer(event(1.5, 0.5, sensor="s1", t=1.0))
        # By the time each write is observable the invalidation already landed.
        assert probe.bumps_at_write == [1, 2]
