import numpy as np
import pytest

from repro.core import Trajectory, TrajectoryPoint
from repro.reduction import (
    DeadReckoningReporter,
    SquishE,
    max_sed_error,
    opening_window,
    reconstruct_dead_reckoning,
)
from repro.synth import correlated_random_walk


@pytest.fixture
def long_walk(rng, big_box):
    return correlated_random_walk(rng, 300, big_box, speed_mean=8, turn_sigma=0.25)


class TestOpeningWindow:
    def test_sed_bound_holds(self, long_walk):
        eps = 10.0
        out = opening_window(long_walk, eps)
        assert max_sed_error(long_walk, out) <= eps + 1e-9

    def test_keeps_endpoints(self, long_walk):
        out = opening_window(long_walk, 10.0)
        assert out[0] == long_walk[0] and out[-1] == long_walk[-1]

    def test_compresses(self, long_walk):
        assert len(opening_window(long_walk, 15.0)) < len(long_walk)

    def test_validation(self, long_walk):
        with pytest.raises(ValueError):
            opening_window(long_walk, -0.1)

    def test_short_passthrough(self, long_walk):
        assert opening_window(long_walk[0:2], 5.0) == long_walk[0:2]


class TestDeadReckoning:
    def test_first_point_always_sent(self, long_walk):
        dr = DeadReckoningReporter(10.0)
        assert dr.offer(long_walk[0]) is True

    def test_stationary_object_sends_once(self):
        t = Trajectory([TrajectoryPoint(0, 0, float(i)) for i in range(20)])
        dr = DeadReckoningReporter(5.0)
        sent = dr.run(t)
        assert len(sent) == 1

    def test_uniform_motion_sends_little(self):
        t = Trajectory([TrajectoryPoint(2.0 * i, 0, float(i)) for i in range(100)])
        dr = DeadReckoningReporter(5.0)
        sent = dr.run(t)
        # After the velocity is learned from the second report the linear
        # prediction is exact.
        assert len(sent) <= 3

    def test_threshold_controls_messages(self, long_walk):
        tight = len(DeadReckoningReporter(2.0).run(long_walk))
        loose = len(DeadReckoningReporter(50.0).run(long_walk))
        assert loose < tight

    def test_reconstruction_bounded_at_samples(self, long_walk):
        threshold = 20.0
        dr = DeadReckoningReporter(threshold)
        sent = dr.run(long_walk)
        recon = reconstruct_dead_reckoning(sent, long_walk.times)
        for p, (x, y) in zip(long_walk.points, recon):
            assert np.hypot(p.x - x, p.y - y) <= threshold + 1e-6

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DeadReckoningReporter(-1.0)


class TestSquishE:
    def test_sed_bound_holds(self, long_walk):
        eps = 10.0
        out = SquishE(eps).simplify(long_walk)
        assert max_sed_error(long_walk, out) <= eps + 1e-9

    def test_keeps_endpoints(self, long_walk):
        out = SquishE(8.0).simplify(long_walk)
        assert out[0] == long_walk[0] and out[-1] == long_walk[-1]

    def test_compresses_more_with_larger_epsilon(self, long_walk):
        small = len(SquishE(2.0).simplify(long_walk))
        large = len(SquishE(40.0).simplify(long_walk))
        assert large <= small

    def test_zero_epsilon_keeps_almost_everything(self, long_walk):
        out = SquishE(0.0).simplify(long_walk)
        assert max_sed_error(long_walk, out) <= 1e-9

    def test_straight_uniform_motion_collapses(self):
        t = Trajectory([TrajectoryPoint(float(i), 0, float(i)) for i in range(50)])
        out = SquishE(0.5).simplify(t)
        assert len(out) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SquishE(-1.0)

    def test_short_passthrough(self, long_walk):
        t = long_walk[0:2]
        assert SquishE(5.0).simplify(t) == t
