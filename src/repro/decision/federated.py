"""Federated learning for mobility prediction (Sec. 2.3.3 / 2.4, [55, 75]).

The tutorial's decentralization trend: users' raw check-ins stay on their
devices; only *model updates* are shared.  For the Markov next-location
model this is exact — the global model is the count-weighted average of
per-client transition statistics — so the federated model matches the
centralized one while no check-in ever leaves its owner, and clients with
little data still benefit from the federation (the data-scarcity claim of
[55]).

Differential-privacy-style noise can be added to each client's update to
study the privacy/utility trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..synth.checkins import CheckIn
from .next_location import MarkovNextLocation


@dataclass
class ClientUpdate:
    """What one client shares: transition counts, nothing else.

    ``counts[prev_poi][next_poi] = n`` — aggregated, with optional noise;
    raw timestamps and visit orders never leave the device.
    """

    counts: dict[int, dict[int, float]]


class FederatedClient:
    """A device holding one user's private check-in history."""

    def __init__(self, user_id: int, checkins: list[CheckIn]) -> None:
        self.user_id = user_id
        self._checkins = sorted(
            (c for c in checkins if c.user_id == user_id), key=lambda c: c.t
        )

    def local_update(
        self, rng: np.random.Generator | None = None, noise_scale: float = 0.0
    ) -> ClientUpdate:
        """Compute the shareable transition counts (optionally noised)."""
        counts: dict[int, dict[int, float]] = {}
        for prev, cur in zip(self._checkins, self._checkins[1:]):
            row = counts.setdefault(prev.poi_id, {})
            row[cur.poi_id] = row.get(cur.poi_id, 0.0) + 1.0
        if noise_scale > 0.0:
            if rng is None:
                raise ValueError("noise requires an rng")
            for row in counts.values():
                for key in row:
                    row[key] = max(0.0, row[key] + rng.laplace(0.0, noise_scale))
        return ClientUpdate(counts)

    def n_transitions(self) -> int:
        """Number of local transitions (the client's update weight)."""
        return max(0, len(self._checkins) - 1)


class FederatedServer:
    """Aggregates client updates into one shared (non-personalized) model."""

    def __init__(self, n_pois: int, alpha: float = 0.1) -> None:
        self.n_pois = n_pois
        self.alpha = alpha
        self._counts: dict[int, dict[int, float]] = {}

    def aggregate(self, updates: list[ClientUpdate]) -> None:
        """Add client updates into the global transition counts."""
        for update in updates:
            for prev, row in update.counts.items():
                target = self._counts.setdefault(prev, {})
                for nxt, n in row.items():
                    target[nxt] = target.get(nxt, 0.0) + n

    def model(self) -> MarkovNextLocation:
        """Materialize the aggregated counts as a global Markov model."""
        m = MarkovNextLocation(self.n_pois, personalized=False, alpha=self.alpha)
        for prev, row in self._counts.items():
            key = m._key(0, prev)
            m._counts[key] = dict(row)
        return m


def train_federated(
    checkins: list[CheckIn],
    n_pois: int,
    rng: np.random.Generator | None = None,
    noise_scale: float = 0.0,
) -> MarkovNextLocation:
    """One federation round over all users present in ``checkins``."""
    users = sorted({c.user_id for c in checkins})
    server = FederatedServer(n_pois)
    server.aggregate(
        [
            FederatedClient(u, checkins).local_update(rng, noise_scale)
            for u in users
        ]
    )
    return server.model()


def train_centralized(checkins: list[CheckIn], n_pois: int) -> MarkovNextLocation:
    """The privacy-free upper bound: pool all raw check-ins."""
    return MarkovNextLocation(n_pois, personalized=False).fit(checkins)


def train_local_only(
    checkins: list[CheckIn], n_pois: int, user_id: int
) -> MarkovNextLocation:
    """The no-sharing lower bound: each user learns alone."""
    own = [c for c in checkins if c.user_id == user_id]
    return MarkovNextLocation(n_pois, personalized=False).fit(own)
