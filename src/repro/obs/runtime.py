"""The process-global observability switchboard (``OBS``).

Instrumentation sites across the library are guarded by exactly one
attribute read — ``if OBS.enabled:`` — so with observability off (the
default) the hot-path cost is a pointer load and a branch: no allocation,
no call, no lock (``tests/obs/test_obs.py`` holds this to zero allocated
blocks).  :func:`enable` installs a :class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`; :func:`disable` restores the
no-op state.

Process model: worker processes start disabled regardless of the parent's
state.  The parallel executor wraps each task in a :class:`WorkerCapture`
when the parent has observability on — the worker records into a private
fresh tracer/registry, and the finished spans plus a metrics snapshot ride
back with the task result for the parent to fold in (see
``repro.parallel.executor``).  Counter- and count-valued metrics are
therefore bit-identical between ``workers=1`` and ``workers=N``.
"""

from __future__ import annotations

from .clock import Clock, ManualClock, MonotonicClock
from .metrics import DEFAULT_BUCKETS, MetricsRegistry, MetricsSnapshot
from .trace import JsonlExporter, RingBufferExporter, SpanContext, SpanRecord, Tracer


class Observability:
    """Per-process observability state: one flag, one tracer, one registry.

    ``enabled`` is the single hot-path guard; ``tracer`` and ``metrics``
    are only valid while it is True.  Use the module-level :func:`enable` /
    :func:`disable` helpers rather than mutating fields directly.
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer | None = None
        self.metrics: MetricsRegistry | None = None

    def absorb_worker(self, snapshot: MetricsSnapshot, spans: list[SpanRecord],
                      remote: SpanContext | None) -> None:
        """Fold one worker task's capture into the live tracer/registry."""
        if not self.enabled:
            return
        assert self.metrics is not None and self.tracer is not None
        self.metrics.absorb(snapshot)
        self.tracer.absorb(spans, remote)


#: The process-global switchboard every instrumentation site checks.
OBS = Observability()


def enable(
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    clock: Clock | None = None,
    exporter=None,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> Observability:
    """Switch observability on for this process.

    With no arguments, installs a ring-buffer tracer and a fresh metrics
    registry on a monotonic clock.  Pass ``clock`` (e.g. a
    :class:`~repro.obs.clock.ManualClock`) to make recorded durations
    deterministic, ``exporter`` (e.g. a
    :class:`~repro.obs.trace.JsonlExporter`) to redirect span output, or
    prebuilt ``tracer``/``metrics`` to share instances.  Re-enabling
    replaces the previous tracer and registry.
    """
    OBS.tracer = tracer if tracer is not None else Tracer(exporter=exporter, clock=clock)
    OBS.metrics = metrics if metrics is not None else MetricsRegistry(buckets=buckets)
    OBS.enabled = True
    return OBS


def disable() -> None:
    """Switch observability off (instrumentation reverts to the no-op guard)."""
    OBS.enabled = False
    OBS.tracer = None
    OBS.metrics = None


def is_enabled() -> bool:
    """Whether this process currently records spans and metrics."""
    return OBS.enabled


class _NullContext:
    """Shared allocation-free no-op context (the disabled ``profile`` path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attr(self, key: str, value: object) -> None:
        """No-op attribute setter (matches the active-span interface)."""
        return None


_NULL_CONTEXT = _NullContext()


class _ProfileCm:
    """Enabled ``profile`` block: a span plus a duration histogram sample."""

    __slots__ = ("_name", "_cm", "_start")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self._name = name
        assert OBS.tracer is not None
        self._cm = OBS.tracer.span(f"profile.{name}", **attrs)

    def __enter__(self):
        span = self._cm.__enter__()
        self._start = OBS.tracer.clock.now() if OBS.tracer is not None else 0.0
        return span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if OBS.enabled and OBS.metrics is not None and OBS.tracer is not None:
            elapsed = OBS.tracer.clock.now() - self._start
            OBS.metrics.observe("repro_profile_seconds", (("block", self._name),), elapsed)
        self._cm.__exit__(exc_type, exc, tb)


def profile(name: str, **attrs: object):
    """Profile a code block: ``with obs.profile("pack"): ...``.

    When observability is enabled, opens a span named ``profile.<name>``
    and records the block's duration into the
    ``repro_profile_seconds{block=<name>}`` histogram.  When disabled,
    returns a shared no-op context — no allocation, nothing recorded.
    """
    if not OBS.enabled:
        return _NULL_CONTEXT
    return _ProfileCm(name, attrs)


class WorkerCapture:
    """Record one worker-side task into a private tracer/registry.

    The executor enters this around each task when the parent process had
    observability on: a fresh ring-buffer tracer and registry replace
    whatever state the worker inherited (relevant under the ``fork`` start
    method), the task runs, and on exit ``spans`` / ``metrics`` hold the
    capture while the previous state is restored.  The capture tuple is
    picklable and travels back with the task result.
    """

    __slots__ = ("spans", "metrics", "_prev")

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics = MetricsSnapshot()

    def __enter__(self) -> "WorkerCapture":
        self._prev = (OBS.enabled, OBS.tracer, OBS.metrics)
        OBS.tracer = Tracer()
        OBS.metrics = MetricsRegistry()
        OBS.enabled = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert OBS.tracer is not None and OBS.metrics is not None
        self.spans = OBS.tracer.finished()
        self.metrics = OBS.metrics.snapshot()
        OBS.enabled, OBS.tracer, OBS.metrics = self._prev


__all__ = [
    "OBS",
    "Observability",
    "WorkerCapture",
    "disable",
    "enable",
    "is_enabled",
    "profile",
]
