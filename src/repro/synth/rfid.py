"""RFID / symbolic-trajectory simulation.

Sec. 2.2.4 of the tutorial treats *symbolic trajectories* — time-ordered
sequences of detecting-sensor identifiers, as produced by RFID, infrared,
and Bluetooth tracking.  Their characteristic faults are **false negatives**
(a reader misses a present object) and **false positives** (overlapping
readers detect the object simultaneously / cross-reads).

This module simulates a corridor of readers that an object traverses,
emitting per-epoch raw readings with tunable false-negative and
false-positive rates, along with the ground-truth zone occupancy needed to
score cleaning algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RawReading:
    """One raw detection event: epoch index, reader id, object id."""

    epoch: int
    reader: int
    object_id: str


@dataclass(frozen=True)
class ZoneVisit:
    """Ground truth: the object occupied ``reader``'s zone during [enter, exit]."""

    reader: int
    enter_epoch: int
    exit_epoch: int


@dataclass
class CorridorWorld:
    """A linear corridor of ``n_readers`` zones traversed left to right.

    ``dwell_epochs`` draws the number of epochs spent in each zone.  Readers
    overlap slightly with their neighbors, which is what produces cross-read
    false positives in real deployments.
    """

    n_readers: int
    dwell_min: int = 3
    dwell_max: int = 8

    def ground_truth(
        self, rng: np.random.Generator, object_id: str = "tag"
    ) -> list[ZoneVisit]:
        """Visit every zone in order with a random dwell per zone."""
        visits: list[ZoneVisit] = []
        t = 0
        for reader in range(self.n_readers):
            dwell = int(rng.integers(self.dwell_min, self.dwell_max + 1))
            visits.append(ZoneVisit(reader, t, t + dwell - 1))
            t += dwell
        return visits

    def observe(
        self,
        visits: list[ZoneVisit],
        rng: np.random.Generator,
        p_detect: float = 0.85,
        p_cross: float = 0.10,
        object_id: str = "tag",
    ) -> list[RawReading]:
        """Emit raw readings from ground truth with false negatives/positives.

        Per occupied epoch: the true reader fires with probability
        ``p_detect`` (misses are false negatives); each adjacent reader fires
        with probability ``p_cross`` (cross-reads are false positives).
        """
        if not 0.0 <= p_detect <= 1.0 or not 0.0 <= p_cross <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        readings: list[RawReading] = []
        for visit in visits:
            for epoch in range(visit.enter_epoch, visit.exit_epoch + 1):
                if rng.random() < p_detect:
                    readings.append(RawReading(epoch, visit.reader, object_id))
                for neighbor in (visit.reader - 1, visit.reader + 1):
                    if 0 <= neighbor < self.n_readers and rng.random() < p_cross:
                        readings.append(RawReading(epoch, neighbor, object_id))
        readings.sort(key=lambda r: (r.epoch, r.reader))
        return readings

    def truth_reader_at(self, visits: list[ZoneVisit], epoch: int) -> int | None:
        """The reader whose zone the object truly occupies at ``epoch``."""
        for v in visits:
            if v.enter_epoch <= epoch <= v.exit_epoch:
                return v.reader
        return None

    def total_epochs(self, visits: list[ZoneVisit]) -> int:
        """Number of epochs covered by the ground-truth visits."""
        return visits[-1].exit_epoch + 1 if visits else 0


def readings_by_epoch(readings: list[RawReading]) -> dict[int, list[int]]:
    """Group raw readings into ``epoch -> sorted reader ids``."""
    out: dict[int, list[int]] = {}
    for r in readings:
        out.setdefault(r.epoch, []).append(r.reader)
    for epoch in out:
        out[epoch] = sorted(set(out[epoch]))
    return out
