import numpy as np
import pytest

from repro.core import BBox, Point
from repro.localization import FingerprintLocalizer
from repro.synth import RadioMap, deploy_access_points, measure_vector


@pytest.fixture
def setup(rng):
    box = BBox(0, 0, 400, 400)
    aps = deploy_access_points(rng, 8, box)
    rm = RadioMap.survey(aps, box, spacing=50.0, rng=rng, samples_per_point=10)
    return box, aps, rm


class TestFingerprintLocalizer:
    def test_invalid_k(self, setup):
        _, _, rm = setup
        with pytest.raises(ValueError):
            FingerprintLocalizer(rm, k=0)
        with pytest.raises(ValueError):
            FingerprintLocalizer(rm, k=len(rm) + 1)

    def test_wrong_vector_length(self, setup):
        _, _, rm = setup
        loc = FingerprintLocalizer(rm)
        with pytest.raises(ValueError):
            loc.estimate(np.zeros(3))

    def test_candidates_count_and_weights(self, setup, rng):
        _, aps, rm = setup
        loc = FingerprintLocalizer(rm, k=5)
        cand = loc.candidates(measure_vector(aps, Point(200, 200), rng))
        assert len(cand.points) == 5
        assert sum(cand.weights) == pytest.approx(1.0)

    def test_noise_free_accuracy(self, setup, rng):
        box, aps, rm = setup
        loc = FingerprintLocalizer(rm, k=3)
        errs = []
        for _ in range(30):
            p = Point(rng.uniform(50, 350), rng.uniform(50, 350))
            exact = np.array([ap.expected_rssi(p) for ap in aps])
            errs.append(loc.estimate(exact).distance_to(p))
        # Bounded by roughly one grid spacing with noise-free observations.
        assert np.mean(errs) < 60.0

    def test_wknn_beats_nn_on_noisy_scans(self, setup):
        box, aps, rm = setup
        loc = FingerprintLocalizer(rm, k=4)
        rng = np.random.default_rng(99)
        wknn_err, nn_err = [], []
        for _ in range(60):
            p = Point(rng.uniform(50, 350), rng.uniform(50, 350))
            v = measure_vector(aps, p, rng, noise_db=6.0)
            wknn_err.append(loc.estimate(v).distance_to(p))
            nn_err.append(loc.estimate_nn(v).distance_to(p))
        # The ensemble (aggregated candidates) beats the single result.
        assert np.mean(wknn_err) <= np.mean(nn_err) + 2.0

    def test_estimate_within_map_extent(self, setup, rng):
        box, aps, rm = setup
        loc = FingerprintLocalizer(rm)
        est = loc.estimate(measure_vector(aps, Point(10, 10), rng))
        assert box.expand(50).contains(est)
