"""Distributed query processing over skewed SID (Sec. 2.3.1, [93, 104, 111]).

Simulates the partition-and-route layer of a distributed spatial store:

* :func:`grid_partition` — static uniform tiling (ignores skew),
* :func:`kd_partition` — recursive median splits (SATO-style [104],
  adapts to skew),
* :func:`load_imbalance` — max/mean partition load, the quantity
  data-partitioning work minimizes,
* :class:`PartitionedStore` — routes range and kNN queries to the
  partitions that can contribute and counts partitions touched (the
  communication proxy).

The store's scan layer is columnar (the PR-2 batched kernels) and
two-tiered, LSM-style: each partition's construction-time points live in
contiguous base coordinate/index arrays, later
:meth:`~PartitionedStore.append_many` points land in per-partition
columnar *delta tails* that every query merges on the fly (no rebuild),
and :meth:`~PartitionedStore.compact` folds tails back into packed base
columns partition by partition.  Batch queries
(:meth:`PartitionedStore.range_query_many` /
:meth:`~PartitionedStore.knn_many`) filter candidates with vectorized
reductions, and ``workers > 1`` fans query chunks out to a process pool:
base columns travel as cached arena leases
(:mod:`repro.parallel.shm`), delta tails ride the task payload — the
SATO-style [104] place where parallelism pays.  Routing decisions,
result order, and the partitions-touched accounting are identical at
every worker count and every compaction state.

The measurable claim: on skewed data, median partitioning yields near-1
imbalance while uniform tiling degrades — "node load-balancing and data
partitioning have been studied [for] queries over skewed SID".
"""

from __future__ import annotations

import os
import threading
import weakref
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .. import kernels
from ..core.geometry import BBox, Point
from ..obs import OBS
from ..obs.clock import MonotonicClock

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


@dataclass(frozen=True)
class Partition:
    """One shard: its spatial extent and the points assigned to it."""

    bbox: BBox
    point_indices: tuple[int, ...]

    @property
    def load(self) -> int:
        return len(self.point_indices)


def grid_partition(points: list[Point], region: BBox, n_cells_per_side: int) -> list[Partition]:
    """Uniform n x n tiling of the region."""
    if n_cells_per_side < 1:
        raise ValueError("need at least one cell per side")
    n = n_cells_per_side
    w, h = region.width / n, region.height / n
    buckets: dict[tuple[int, int], list[int]] = {}
    for i, p in enumerate(points):
        xi = min(n - 1, max(0, int((p.x - region.min_x) / w)))
        yi = min(n - 1, max(0, int((p.y - region.min_y) / h)))
        buckets.setdefault((xi, yi), []).append(i)
    parts = []
    for yi in range(n):
        for xi in range(n):
            bbox = BBox(
                region.min_x + xi * w,
                region.min_y + yi * h,
                region.min_x + (xi + 1) * w,
                region.min_y + (yi + 1) * h,
            )
            parts.append(Partition(bbox, tuple(buckets.get((xi, yi), []))))
    return parts


def kd_partition(points: list[Point], region: BBox, n_partitions: int) -> list[Partition]:
    """Recursive median splitting into ``n_partitions`` (power of 2 rounded up)."""
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    idx = list(range(len(points)))

    def split(indices: list[int], bbox: BBox, parts_left: int, depth: int) -> list[Partition]:
        if parts_left <= 1 or len(indices) <= 1:
            return [Partition(bbox, tuple(indices))]
        by_x = depth % 2 == 0
        vals = np.array([points[i].x if by_x else points[i].y for i in indices])
        median = float(np.median(vals))
        left = [i for i in indices if (points[i].x if by_x else points[i].y) <= median]
        right = [i for i in indices if (points[i].x if by_x else points[i].y) > median]
        if not left or not right:
            return [Partition(bbox, tuple(indices))]
        if by_x:
            b_left = BBox(bbox.min_x, bbox.min_y, median, bbox.max_y)
            b_right = BBox(median, bbox.min_y, bbox.max_x, bbox.max_y)
        else:
            b_left = BBox(bbox.min_x, bbox.min_y, bbox.max_x, median)
            b_right = BBox(bbox.min_x, median, bbox.max_x, bbox.max_y)
        half = parts_left // 2
        return split(left, b_left, parts_left - half, depth + 1) + split(
            right, b_right, half, depth + 1
        )

    return split(idx, region, n_partitions, 0)


def load_imbalance(partitions: list[Partition]) -> float:
    """Max load / mean load (1.0 = perfectly balanced)."""
    loads = [p.load for p in partitions]
    mean = float(np.mean(loads)) if loads else 0.0
    if mean == 0.0:
        return float("inf") if any(loads) else 1.0
    return max(loads) / mean


def skewed_points(
    rng: np.random.Generator,
    n_points: int,
    region: BBox,
    n_hotspots: int = 3,
    hotspot_sigma: float = 50.0,
    hotspot_fraction: float = 0.8,
) -> list[Point]:
    """Skewed workload: most points cluster in a few Gaussian hotspots."""
    centers = [
        (
            rng.uniform(region.min_x, region.max_x),
            rng.uniform(region.min_y, region.max_y),
        )
        for _ in range(n_hotspots)
    ]
    out = []
    for _ in range(n_points):
        if rng.random() < hotspot_fraction:
            cx, cy = centers[int(rng.integers(n_hotspots))]
            x = float(np.clip(rng.normal(cx, hotspot_sigma), region.min_x, region.max_x))
            y = float(np.clip(rng.normal(cy, hotspot_sigma), region.min_y, region.max_y))
        else:
            x = rng.uniform(region.min_x, region.max_x)
            y = rng.uniform(region.min_y, region.max_y)
        out.append(Point(x, y))
    return out


class _ColumnarView:
    """One consistent read snapshot of the two-tier columns.

    ``coords_chunks[p]`` / ``index_chunks[p]`` list partition ``p``'s
    column chunks in scan order — packed base first, then the delta tail —
    so routing scans merge both tiers without materializing their
    concatenation.  ``boxes`` are the *scan* boxes (each partition's static
    bbox grown to cover every member point), which keeps bbox pruning
    sound for points routed to a partition from outside its static extent.
    Both the in-process scan path and the pool workers run the same
    routing functions over this one structure.
    """

    __slots__ = ("boxes", "coords_chunks", "index_chunks")

    def __init__(
        self,
        boxes: np.ndarray,
        coords_chunks: list[list[np.ndarray]],
        index_chunks: list[list[np.ndarray]],
    ) -> None:
        self.boxes = boxes
        self.coords_chunks = coords_chunks
        self.index_chunks = index_chunks

    @property
    def n_partitions(self) -> int:
        return self.boxes.shape[0]

    def part_size(self, p: int) -> int:
        return sum(c.shape[0] for c in self.coords_chunks[p])


class _StoreSnapshot:
    """Immutable capture of the tier state taken under the tier lock.

    Holds the base arrays by reference (they are replaced, never mutated)
    and zero-copy prefixes of the delta buffers (rows below the published
    size are never rewritten), so a snapshot stays valid while appends
    and compactions continue.
    """

    __slots__ = ("boxes", "base_coords", "base_index", "deltas", "_view")

    def __init__(
        self,
        boxes: np.ndarray,
        base_coords: list[np.ndarray],
        base_index: list[np.ndarray],
        deltas: list[tuple[np.ndarray, np.ndarray] | None],
    ) -> None:
        self.boxes = boxes
        self.base_coords = base_coords
        self.base_index = base_index
        self.deltas = deltas
        self._view: _ColumnarView | None = None

    def view(self) -> _ColumnarView:
        if self._view is not None:
            return self._view
        coords_chunks: list[list[np.ndarray]] = []
        index_chunks: list[list[np.ndarray]] = []
        for p in range(self.boxes.shape[0]):
            cc: list[np.ndarray] = []
            ic: list[np.ndarray] = []
            if self.base_coords[p].shape[0]:
                cc.append(self.base_coords[p])
                ic.append(self.base_index[p])
            delta = self.deltas[p]
            if delta is not None:
                cc.append(delta[0])
                ic.append(delta[1])
            coords_chunks.append(cc)
            index_chunks.append(ic)
        self._view = _ColumnarView(self.boxes, coords_chunks, index_chunks)
        return self._view


#: Initial per-partition delta buffer rows; buffers double beyond this.
_DELTA_MIN_CAPACITY = 64

_EMPTY_COORDS = np.zeros((0, 2))
_EMPTY_INDEX = np.zeros(0, dtype=np.int64)


class _TwoTierColumns:
    """The store's mutable column state: packed base tier + delta tails.

    Base tier: per-partition contiguous ``coords``/``index`` arrays,
    immutable between compactions (and therefore shareable through the
    arena).  Delta tier: one amortized-growth columnar tail per partition
    that :meth:`append` fills and :meth:`compact_one` folds into the base.
    All mutation happens under one lock; :meth:`snapshot` captures a
    consistent read view cheaply, so queries never block on ingest for
    longer than one bucketed append or one partition's fold.
    """

    def __init__(self, points: list[Point], partitions: list[Partition]) -> None:
        self._lock = threading.Lock()
        self.points = points
        n = len(partitions)
        self.static_boxes = np.array(
            [(p.bbox.min_x, p.bbox.min_y, p.bbox.max_x, p.bbox.max_y) for p in partitions],
            dtype=float,
        ).reshape(n, 4)
        self.scan_boxes = self.static_boxes.copy()
        self.base_coords: list[np.ndarray] = []
        self.base_index: list[np.ndarray] = []
        for p, part in enumerate(partitions):
            index = np.fromiter(
                part.point_indices, dtype=np.int64, count=len(part.point_indices)
            )
            coords = kernels.coords_of([points[i] for i in part.point_indices])
            self.base_coords.append(coords)
            self.base_index.append(index)
            if coords.shape[0]:
                self._grow_scan_box(p, coords)
        self.delta_coords: list[np.ndarray] = [_EMPTY_COORDS] * n
        self.delta_index: list[np.ndarray] = [_EMPTY_INDEX] * n
        self.delta_sizes: list[int] = [0] * n
        self.appended_total = 0
        self._snapshot: _StoreSnapshot | None = None

    @property
    def n_partitions(self) -> int:
        return self.static_boxes.shape[0]

    def _grow_scan_box(self, p: int, coords: np.ndarray) -> None:
        box = self.scan_boxes[p]
        box[0] = min(box[0], float(coords[:, 0].min()))
        box[1] = min(box[1], float(coords[:, 1].min()))
        box[2] = max(box[2], float(coords[:, 0].max()))
        box[3] = max(box[3], float(coords[:, 1].max()))

    def _route_coords(self, coords: np.ndarray) -> np.ndarray:
        """Home partition per row: minimum static-box distance, lowest id on ties.

        A contained point has distance 0 to every box holding it, so one
        argmin covers both cases — lowest containing partition when inside,
        nearest partition when outside every static box.
        """
        b = self.static_boxes
        x = coords[:, 0][:, None]
        y = coords[:, 1][:, None]
        dx = np.maximum(np.maximum(b[None, :, 0] - x, x - b[None, :, 2]), 0.0)
        dy = np.maximum(np.maximum(b[None, :, 1] - y, y - b[None, :, 3]), 0.0)
        return np.argmin(np.hypot(dx, dy), axis=1)

    def append(self, new_points: list[Point]) -> list[int]:
        """Route and append points to their delta tails; returns global ids."""
        coords = kernels.coords_of(new_points)
        with self._lock:
            start = len(self.points)
            homes = self._route_coords(coords)
            self.points.extend(new_points)  # reprolint: disable=R7 — the delta tier is the sanctioned append seam
            order = np.argsort(homes, kind="stable")  # stable: admit order kept per partition
            sorted_homes = homes[order]
            cuts = np.flatnonzero(np.diff(sorted_homes)) + 1
            for group in np.split(order, cuts):
                p = int(homes[group[0]])
                rows = coords[group]
                size = self.delta_sizes[p]
                self._reserve(p, size + group.shape[0])
                self.delta_coords[p][size : size + group.shape[0]] = rows
                self.delta_index[p][size : size + group.shape[0]] = start + group
                self.delta_sizes[p] = size + group.shape[0]
                self._grow_scan_box(p, rows)
            self.appended_total += len(new_points)
            self._snapshot = None
            return list(range(start, start + len(new_points)))

    def _reserve(self, p: int, need: int) -> None:
        """Grow partition ``p``'s delta buffers to hold ``need`` rows.

        Filled rows are copied into the fresh buffers *before* they are
        published, so a snapshot slice taken at any point keeps reading
        rows that are never rewritten.
        """
        capacity = self.delta_coords[p].shape[0]
        if capacity >= need:
            return
        new_cap = max(_DELTA_MIN_CAPACITY, capacity)
        while new_cap < need:
            new_cap *= 2
        size = self.delta_sizes[p]
        coords = np.empty((new_cap, 2))
        coords[:size] = self.delta_coords[p][:size]
        index = np.empty(new_cap, dtype=np.int64)
        index[:size] = self.delta_index[p][:size]
        self.delta_coords[p] = coords
        self.delta_index[p] = index

    def compact_one(self, p: int) -> int:
        """Fold partition ``p``'s delta tail into its packed base columns.

        The pause is bounded by one partition's size: the lock is held for
        a single concat/copy, the delta buffer resets to empty, and the new
        base arrays are fresh objects (snapshots holding the old ones stay
        valid).  Returns the number of rows folded.
        """
        with self._lock:
            size = self.delta_sizes[p]
            if size == 0:
                return 0
            self.base_coords[p] = np.concatenate(
                [self.base_coords[p], self.delta_coords[p][:size]]
            )
            self.base_index[p] = np.concatenate(
                [self.base_index[p], self.delta_index[p][:size]]
            )
            self.delta_coords[p] = _EMPTY_COORDS
            self.delta_index[p] = _EMPTY_INDEX
            self.delta_sizes[p] = 0
            self._snapshot = None
            return size

    def snapshot(self) -> _StoreSnapshot:
        """Consistent read snapshot, cached until the next append/compact."""
        with self._lock:
            if self._snapshot is not None:
                return self._snapshot
            deltas: list[tuple[np.ndarray, np.ndarray] | None] = []
            for p in range(self.n_partitions):
                size = self.delta_sizes[p]
                if size:
                    deltas.append(
                        (self.delta_coords[p][:size], self.delta_index[p][:size])
                    )
                else:
                    deltas.append(None)
            self._snapshot = _StoreSnapshot(
                self.scan_boxes.copy(),
                list(self.base_coords),
                list(self.base_index),
                deltas,
            )
            return self._snapshot

    def members(self) -> list[np.ndarray]:
        """Per-partition point ids, base rows then delta rows (admit order)."""
        with self._lock:
            return [
                np.concatenate(
                    [self.base_index[p], self.delta_index[p][: self.delta_sizes[p]]]
                )
                for p in range(self.n_partitions)
            ]

    def tier_sizes(self) -> tuple[list[int], list[int]]:
        """(base rows, delta rows) per partition, one consistent read."""
        with self._lock:
            return (
                [a.shape[0] for a in self.base_index],
                list(self.delta_sizes),
            )

    def delta_fractions(self) -> list[float]:
        """Per-partition ``delta / (base + delta)`` (0.0 for empty partitions)."""
        base, delta = self.tier_sizes()
        return [
            d / (b + d) if (b + d) else 0.0 for b, d in zip(base, delta)
        ]


def _route_range(
    view: _ColumnarView, centers: np.ndarray, radii: np.ndarray
) -> tuple[list[list[int]], int]:
    """Range routing: per-query hit lists plus partitions-touched count.

    A partition is *touched* by a query when its scan box overlaps the
    disk (whether or not any point qualifies), matching the legacy
    per-query scalar router.  Hits come back in partition order, then in
    each partition's member order (base rows before delta rows).  Scans
    are batched partition-major: one
    :func:`repro.kernels.chunked_range_hits` merged scan covers every
    query routed to a partition across both tiers.
    """
    n_queries = centers.shape[0]
    hits: list[list[int]] = [[] for _ in range(n_queries)]
    if n_queries == 0 or view.n_partitions == 0:
        return hits, 0
    overlap = np.zeros((n_queries, view.n_partitions), dtype=bool)
    for qi in range(n_queries):
        overlap[qi] = kernels.box_min_dists(view.boxes, centers[qi]) <= radii[qi]
    touched = int(overlap.sum())
    for p in range(view.n_partitions):
        routed = np.flatnonzero(overlap[:, p])
        if routed.size == 0 or view.part_size(p) == 0:
            continue
        chunks = list(zip(view.coords_chunks[p], view.index_chunks[p]))
        per_query = kernels.chunked_range_hits(chunks, centers[routed], radii[routed])
        for qi, ids in zip(routed.tolist(), per_query):
            hits[qi].extend(ids.tolist())
    return hits, touched


def _route_knn(
    view: _ColumnarView,
    centers: np.ndarray,
    k: int,
    weights: list[list[np.ndarray]] | None = None,
) -> tuple[list[list[int]], int]:
    """kNN routing: scan partitions best-first, prune by the k-th distance.

    Partitions are visited in ascending ``(scan-box min-distance,
    partition index)`` order; scanning stops once ``k`` candidates are
    known and the next partition's lower bound exceeds the current k-th
    distance.  Every scanned partition counts as touched, and a scanned
    partition contributes both its tiers.  Ties break by ascending point
    index (the package-wide ``(distance, id)`` rule).

    ``weights`` (chunk lists aligned with ``view``'s) turns the scan into
    quality-weighted ranking: candidates order by *effective* distance
    ``d / w``.  Weights are capped at 1.0, so ``d / w >= d >=`` every
    scan-box lower bound — the best-first pruning stays sound (merely
    less tight) and weighted results stay exact and bit-identical across
    worker counts.
    """
    n_queries = centers.shape[0]
    out: list[list[int]] = [[] for _ in range(n_queries)]
    if n_queries == 0 or view.n_partitions == 0 or k < 1:
        return out, 0
    touched = 0
    for qi in range(n_queries):
        lower = kernels.box_min_dists(view.boxes, centers[qi])
        order = np.lexsort((np.arange(view.n_partitions), lower))
        d_parts: list[np.ndarray] = []
        id_parts: list[np.ndarray] = []
        total = 0
        kth = np.inf
        for p in order.tolist():
            if total >= k and lower[p] > kth:
                break
            touched += 1
            size = view.part_size(p)
            if size == 0:
                continue
            for ci, (coords, index) in enumerate(
                zip(view.coords_chunks[p], view.index_chunks[p])
            ):
                if coords.shape[0] == 0:
                    continue
                d = kernels.dists_to(coords, centers[qi])
                if weights is not None:
                    d = d / weights[p][ci]
                d_parts.append(d)
                id_parts.append(index)
            total += size
            if total >= k:
                kth = float(np.partition(np.concatenate(d_parts), k - 1)[k - 1])
        if total:
            sel = kernels.knn_select(np.concatenate(d_parts), np.concatenate(id_parts), k)
            out[qi] = sel.tolist()
    return out, touched


def _weights_for(index: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-row weights for one column chunk's global point ids.

    Points appended after ``set_quality_weights`` sit past the end of the
    weight vector and default to 1.0 (fully trusted until the next QoD
    pass assigns them a weight).
    """
    out = np.ones(index.shape[0])
    known = index < weights.shape[0]
    out[known] = weights[index[known]]
    return out


class _PartitionLeases:
    """Single owner of a store's per-partition arena leases.

    Exactly one seam returns a lease to the arena: every path — the lazy
    re-share in :meth:`lease`, compaction's :meth:`invalidate`, the
    explicit :meth:`PartitionedStore.close_shared`, and the store's GC
    finalizer — pops the entry under the lock before releasing it, so the
    paths can fire in any order (or twice) without a lease ever being
    returned to the arena twice.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases: dict[int, tuple[np.ndarray, Any, np.ndarray, Any]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)

    def lease(self, p: int, coords: np.ndarray, index: np.ndarray) -> tuple[Any, Any]:
        """Live ``(coords, index)`` leases for partition ``p``'s base arrays.

        A cached pair is reused only when it was shared from these exact
        array objects and both segments are still alive — compaction swaps
        the base arrays, so identity doubles as a staleness check even if
        an explicit ``invalidate`` was missed.
        """
        from ..parallel.shm import get_arena

        stale: tuple[np.ndarray, Any, np.ndarray, Any] | None = None
        with self._lock:
            cached = self._leases.get(p)
            if cached is not None:
                src_c, lease_c, src_i, lease_i = cached
                if src_c is coords and src_i is index and lease_c.alive and lease_i.alive:
                    return lease_c, lease_i
                stale = self._leases.pop(p)
        if stale is not None:
            stale[1].release()
            stale[3].release()
        arena = get_arena()
        lease_c = arena.share(coords)
        try:
            lease_i = arena.share(index)
        except BaseException:
            lease_c.release()  # pairs the first lease on the failure path
            raise
        try:
            with self._lock:
                displaced = self._leases.get(p)
                self._leases[p] = (coords, lease_c, index, lease_i)
        except BaseException:  # cache bookkeeping failed: both leases are still ours
            lease_c.release()
            lease_i.release()
            raise
        if displaced is not None:  # racing lease for the same partition
            displaced[1].release()
            displaced[3].release()
        return lease_c, lease_i

    def invalidate(self, p: int) -> None:
        """Return partition ``p``'s leases (compaction's re-lease seam)."""
        with self._lock:
            entry = self._leases.pop(p, None)
        if entry is not None:
            entry[1].release()
            entry[3].release()

    def release_all(self) -> None:
        """Return every lease; naturally idempotent (the dict drains once)."""
        with self._lock:
            entries = list(self._leases.values())
            self._leases.clear()
        for entry in entries:
            entry[1].release()
            entry[3].release()


def _query_chunk_task(payload: tuple) -> tuple[list[list[int]], int]:
    """Pool worker: answer one query chunk against the two-tier store.

    ``part_refs`` carries, per partition, the base tier as arena handles
    (``None`` when empty) and the delta tail inline (``None`` when empty) —
    base columns stay in shared memory, delta tails ride the payload.
    Quality-weight chunks (``None`` for unweighted batches) ride inline
    too, pre-sliced to the same chunk layout the view rebuilds.
    """
    from ..parallel import SharedArray

    part_refs, boxes, mode, centers, arg, *rest = payload
    wchunks = rest[0] if rest else None
    coords_chunks: list[list[np.ndarray]] = []
    index_chunks: list[list[np.ndarray]] = []
    # One ExitStack pairs every attach with its release on all exit paths;
    # flow-based R2 sees the enter_context ownership transfer directly.
    with ExitStack() as stack:
        for base_ref, delta in part_refs:
            cc: list[np.ndarray] = []
            ic: list[np.ndarray] = []
            if base_ref is not None:
                coords_h, index_h = base_ref
                cc.append(stack.enter_context(SharedArray.attach(coords_h)).array)
                ic.append(stack.enter_context(SharedArray.attach(index_h)).array)
            if delta is not None:
                cc.append(delta[0])
                ic.append(delta[1])
            coords_chunks.append(cc)
            index_chunks.append(ic)
        view = _ColumnarView(boxes, coords_chunks, index_chunks)
        if mode == "range":
            return _route_range(view, centers, arg)
        return _route_knn(view, centers, arg, wchunks)


#: Environment override for the default compaction trigger.
COMPACT_THRESHOLD_ENV = "REPRO_STORE_COMPACT_THRESHOLD"

#: Default delta fraction above which a partition is folded.
DEFAULT_COMPACT_THRESHOLD = 0.25


def resolve_compact_threshold(value: float | None = None) -> float:
    """Compaction trigger: explicit value, else the env override, else 0.25."""
    if value is not None:
        return float(value)
    raw = os.environ.get(COMPACT_THRESHOLD_ENV, "")
    return float(raw) if raw else DEFAULT_COMPACT_THRESHOLD


@dataclass(frozen=True)
class CompactionStats:
    """One :meth:`PartitionedStore.compact` call's outcome."""

    partitions: int  # partitions folded
    points_folded: int  # delta rows moved into base columns
    seconds: float  # wall time for the whole call


class PartitionedStore:
    """Query router over a partitioned point set with a live append tier.

    The store is two-tiered, LSM-style: construction packs each
    partition's points into contiguous base columns, and
    :meth:`append` / :meth:`append_many` land later points in
    per-partition columnar delta tails that every query merges on the fly
    — new data is queryable immediately, no rebuild.  :meth:`compact`
    folds delta tails back into packed base columns (per-partition, so
    pauses stay bounded) once their fraction passes a threshold.

    Single-query entry points (:meth:`range_query`, :meth:`knn`) are thin
    wrappers over the batched ones, which scan each partition with the
    columnar kernels and optionally fan query chunks out to a process
    pool (``workers > 1``): base columns travel as cached arena leases,
    delta tails ride the task payload.  Results are bit-identical across
    worker counts, delta state, and compaction timing — equal to a store
    rebuilt from scratch with the same membership (:meth:`rebuilt`).

    ``partitions_touched`` counts every (query, partition) routing
    decision regardless of execution backend.  Appends are thread-safe
    (ingest shards write concurrently); ``compact`` and parallel query
    batches must not overlap — the serving layer runs compaction between
    batches.
    """

    def __init__(self, points: list[Point], partitions: list[Partition]) -> None:
        self.points = list(points)
        self.partitions_touched = 0
        self.queries_run = 0
        self.compactions = 0
        self.compacted_points = 0
        self.last_compaction_seconds = 0.0
        self.weights_epoch = 0
        self._weights: np.ndarray | None = None
        self._bboxes = [p.bbox for p in partitions]
        self._tiers = _TwoTierColumns(self.points, partitions)
        self._leases = _PartitionLeases()
        self._lease_finalizer = weakref.finalize(
            self, _PartitionLeases.release_all, self._leases
        )

    @property
    def partitions(self) -> list[Partition]:
        """Live membership: construction assignment plus routed appends."""
        return [
            Partition(bbox, tuple(int(i) for i in members))
            for bbox, members in zip(self._bboxes, self._tiers.members())
        ]

    # -- the live tier -----------------------------------------------------------

    def append(self, point: Point) -> int:
        """Append one point to its partition's delta tail; returns its id."""
        return self.append_many([point])[0]

    def append_many(self, points: Sequence[Point]) -> list[int]:
        """Append points to the delta tier; queryable immediately.

        Points are routed to the partition whose static bbox contains them
        (lowest partition index on boundary ties) or the nearest partition
        when outside every bbox — that partition's scan box grows to keep
        bbox pruning sound.  Ids continue the store's sequence in admit
        order, so results stay bit-identical to a from-scratch rebuild
        with the same membership.
        """
        pts = list(points)
        if not pts:
            return []
        if self._tiers.n_partitions == 0:
            raise ValueError("cannot append to a store with no partitions")
        ids = self._tiers.append(pts)
        if OBS.enabled:
            OBS.metrics.inc("repro_store_appends_total", (), float(len(pts)))
            OBS.metrics.set_gauge(
                "repro_store_delta_fraction", (), self.max_delta_fraction()
            )
        return ids

    def max_delta_fraction(self) -> float:
        """Largest per-partition delta fraction (the compaction trigger)."""
        fractions = self._tiers.delta_fractions()
        return max(fractions) if fractions else 0.0

    def delta_stats(self) -> dict[str, float]:
        """Two-tier accounting for ops surfaces and the serving layer."""
        base, delta = self._tiers.tier_sizes()
        fractions = self._tiers.delta_fractions()
        return {
            "points": float(len(self.points)),
            "base_points": float(sum(base)),
            "delta_points": float(sum(delta)),
            "delta_fraction_max": max(fractions) if fractions else 0.0,
            "appends_total": float(self._tiers.appended_total),
            "compactions": float(self.compactions),
            "compacted_points_total": float(self.compacted_points),
            "last_compaction_seconds": self.last_compaction_seconds,
        }

    def compact(
        self,
        partition_ids: Sequence[int] | None = None,
        *,
        threshold: float | None = None,
        clock: Any = None,
    ) -> CompactionStats:
        """Fold delta tails into packed base columns, one partition at a time.

        With no ``partition_ids``, folds every partition whose delta
        fraction is at least the threshold (explicit ``threshold``, else
        ``$REPRO_STORE_COMPACT_THRESHOLD``, else 0.25).  Query results are
        unchanged by construction — and cached results stay valid:
        compaction does not bump quality epochs.  Only folded partitions'
        arena leases are invalidated; the next parallel batch re-leases
        just those segments.  Must not overlap a parallel query batch.
        """
        clk = clock if clock is not None else MonotonicClock()
        delta_sizes = self._tiers.tier_sizes()[1]
        if partition_ids is None:
            thr = resolve_compact_threshold(threshold)
            fractions = self._tiers.delta_fractions()
            targets = [
                p
                for p in range(self._tiers.n_partitions)
                if delta_sizes[p] and fractions[p] >= thr
            ]
        else:
            targets = [p for p in partition_ids if delta_sizes[p]]
        start = clk.now()
        folded = 0
        cm = (
            OBS.tracer.span("store.compact", partitions=len(targets))
            if OBS.enabled
            else _NULL
        )
        with cm:
            for p in targets:
                folded += self._tiers.compact_one(p)
                self._leases.invalidate(p)
        seconds = clk.now() - start
        if targets:
            self.compactions += 1
            self.compacted_points += folded
            self.last_compaction_seconds = seconds
            if OBS.enabled:
                OBS.metrics.inc("repro_store_compactions_total")
                OBS.metrics.inc("repro_store_compacted_points_total", (), float(folded))
                OBS.metrics.observe("repro_store_compaction_seconds", (), seconds)
                OBS.metrics.set_gauge(
                    "repro_store_delta_fraction", (), self.max_delta_fraction()
                )
        return CompactionStats(len(targets), folded, seconds)

    # -- quality weights (the QoD exploitation seam) -----------------------------

    def set_quality_weights(self, weights: Sequence[float] | np.ndarray | None) -> int:
        """Install per-point quality weights for weighted kNN ranking.

        ``weights[i]`` weights point ``i`` (typically
        :func:`repro.qod.weighting.point_weights` over the per-sensor
        output of a :class:`~repro.qod.registry.QodRegistry` pass); points
        beyond the vector's length — appended after this call — default
        to 1.0 until the next pass.  ``None`` clears weighting.

        Every weight must lie in ``(0, 1]``: weighted ranking divides
        distances by weights, and the cap keeps effective distances at or
        above raw ones, so best-first partition pruning stays exact.

        Bumps and returns :attr:`weights_epoch` — the serving layer keys
        weighted cached results on it, so an update (or a clear) can
        never serve a stale weighted answer.  Like :meth:`compact`, calls
        must not overlap an in-flight query batch; the serving layer
        updates weights between batches.
        """
        if weights is None:
            self._weights = None
        else:
            w = np.asarray(weights, dtype=float).copy()
            if w.ndim != 1:
                raise ValueError("weights must be one-dimensional")
            if w.size and (not np.all(np.isfinite(w)) or w.min() <= 0 or w.max() > 1.0):
                raise ValueError("weights must be finite and lie in (0, 1]")
            self._weights = w
        self.weights_epoch += 1
        return self.weights_epoch

    def quality_weights(self) -> np.ndarray | None:
        """The installed per-point weight vector (read-only view), or None."""
        if self._weights is None:
            return None
        view = self._weights.view()
        view.flags.writeable = False
        return view

    def _weight_chunks(self, snap: _StoreSnapshot) -> list[list[np.ndarray]] | None:
        """Per-partition weight chunks aligned with the snapshot's view.

        Chunk order matches :meth:`_StoreSnapshot.view` (packed base
        first, then the delta tail), so both the in-process scan and the
        pool workers index the same weight rows.
        """
        w = self._weights
        if w is None:
            return None
        out: list[list[np.ndarray]] = []
        for p in range(snap.boxes.shape[0]):
            chunks: list[np.ndarray] = []
            if snap.base_coords[p].shape[0]:
                chunks.append(_weights_for(snap.base_index[p], w))
            delta = snap.deltas[p]
            if delta is not None:
                chunks.append(_weights_for(delta[1], w))
            out.append(chunks)
        return out

    def rebuilt(self) -> "PartitionedStore":
        """A from-scratch store with this store's exact live membership.

        The rebuild packs every partition's base+delta members into fresh
        base columns in the same order the live store scans them, so its
        query results are bit-identical to the delta-merged ones — the
        oracle the tests and ``bench_store.py`` check against.
        """
        return PartitionedStore(self.points, self.partitions)

    # -- queries -----------------------------------------------------------------

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Route to overlapping partitions; returns matching point indices."""
        return self.range_query_many([center], [radius])[0]

    def range_query_many(
        self,
        centers: Sequence[Point],
        radii,
        *,
        workers: int | None = None,
        executor: Any = None,
    ) -> list[list[int]]:
        """Batch range routing; one hit list per center, in input order.

        ``radii`` is a scalar shared by every query or a per-query sequence.
        """
        c = kernels.centers_of(centers)
        r = np.asarray(radii, dtype=float)
        if r.ndim == 0:
            r = np.full(c.shape[0], float(r))
        elif r.shape != (c.shape[0],):
            raise ValueError("radii must be a scalar or match the number of centers")
        return self._run_batch("range", c, r, workers, executor)

    def knn(self, center: Point, k: int, *, weighted: bool = False) -> list[int]:
        """Indices of the k nearest points (``(distance, index)`` tie rule)."""
        return self.knn_many([center], k, weighted=weighted)[0]

    def knn_many(
        self,
        centers: Sequence[Point],
        k: int,
        *,
        workers: int | None = None,
        executor: Any = None,
        weighted: bool = False,
    ) -> list[list[int]]:
        """Batch kNN routing with best-first partition pruning.

        With ``weighted=True`` and quality weights installed
        (:meth:`set_quality_weights`), candidates rank by effective
        distance ``d / w`` — low-QoD points must be proportionally closer
        to make the top-k — under the same ``(distance, id)`` tie rule.
        Without installed weights the flag is a no-op.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        c = kernels.centers_of(centers)
        return self._run_batch("knn", c, k, workers, executor, weighted=weighted)

    def _run_batch(
        self,
        mode: str,
        centers: np.ndarray,
        arg,
        workers: int | None,
        executor: Any,
        *,
        weighted: bool = False,
    ) -> list[list[int]]:
        from ..parallel import SerialExecutor, chunk_spans, resolve_executor

        obs_on = OBS.enabled
        self.queries_run += centers.shape[0]
        snap = self._tiers.snapshot()
        wchunks = self._weight_chunks(snap) if (weighted and mode == "knn") else None
        cm = (
            OBS.tracer.span("query.partitioned_batch", mode=mode, queries=centers.shape[0])
            if obs_on
            else _NULL
        )
        with cm, resolve_executor(workers, executor, n_items=centers.shape[0]) as ex:
            if isinstance(ex, SerialExecutor):
                if mode == "range":
                    hits, touched = _route_range(snap.view(), centers, arg)
                else:
                    hits, touched = _route_knn(snap.view(), centers, arg, wchunks)
            else:
                spans = chunk_spans(centers.shape[0], None)
                part_refs = self._shared_refs(snap)
                payloads = [
                    (
                        part_refs,
                        snap.boxes,
                        mode,
                        centers[start:stop],
                        arg[start:stop] if mode == "range" else arg,
                        wchunks,
                    )
                    for start, stop in spans
                ]
                results = ex.map_ordered(_query_chunk_task, payloads)
                hits = [h for chunk_hits, _ in results for h in chunk_hits]
                touched = sum(t for _, t in results)
        self.partitions_touched += touched
        if obs_on:
            OBS.metrics.inc(
                "repro_query_partitions_touched_total", (("mode", mode),), float(touched)
            )
        return hits

    def _shared_refs(self, snap: _StoreSnapshot) -> tuple:
        """Worker-shippable snapshot: arena handles for base, inline deltas.

        Base columns are immutable between compactions, so each
        partition's pair is leased from the default arena once and reused
        across batches (pool workers keep their cached attachments); delta
        tails are small and simply pickled with the task.  Leases
        invalidated by compaction or an arena ``close_all`` are re-shared
        lazily — and only for the affected partitions.
        """
        refs = []
        for p in range(snap.boxes.shape[0]):
            base_coords = snap.base_coords[p]
            if base_coords.shape[0]:
                lease_c, lease_i = self._leases.lease(p, base_coords, snap.base_index[p])
                base_ref = (lease_c.handle, lease_i.handle)
            else:
                base_ref = None
            refs.append((base_ref, snap.deltas[p]))
        return tuple(refs)

    def close_shared(self) -> None:
        """Return this store's cached arena leases (idempotent).

        Called automatically when the store is garbage collected; the GC
        finalizer stays registered and simply finds nothing left to
        release.  Long-lived applications cycling many stores can call it
        eagerly to keep the arena's free list tight.
        """
        self._leases.release_all()

    def mean_partitions_per_query(self) -> float:
        """Average partitions touched per query (communication proxy)."""
        if self.queries_run == 0:
            return 0.0
        return self.partitions_touched / self.queries_run

    # -- cache-aware entry points (the serving layer's dependency oracle) --------

    @property
    def partition_boxes(self) -> np.ndarray:
        """Read-only ``(n_partitions, 4)`` min_x/min_y/max_x/max_y extents.

        These are the *static* construction-time boxes — the stable
        identity the serving layer's :class:`~repro.serve.epochs
        .EpochRegistry` is built over.  (Internal routing additionally
        grows per-partition scan boxes as out-of-box points are appended;
        the dependency oracles below use those, which is strictly
        conservative for invalidation.)
        """
        boxes = self._tiers.static_boxes.view()
        boxes.flags.writeable = False
        return boxes

    def range_partition_sets(
        self, centers: Sequence[Point], radii
    ) -> list[tuple[int, ...]]:
        """Per-query partition dependency sets for range queries.

        A partition belongs to a query's set exactly when its scan box
        overlaps the query disk — the same predicate the router uses — so
        a write outside the set provably cannot change the query's answer.
        The serving layer keys cached results on these sets for
        quality-epoch invalidation.
        """
        c = kernels.centers_of(centers)
        r = np.asarray(radii, dtype=float)
        if r.ndim == 0:
            r = np.full(c.shape[0], float(r))
        elif r.shape != (c.shape[0],):
            raise ValueError("radii must be a scalar or match the number of centers")
        boxes = self._tiers.snapshot().boxes
        out: list[tuple[int, ...]] = []
        for qi in range(c.shape[0]):
            overlap = kernels.box_min_dists(boxes, c[qi]) <= r[qi]
            out.append(tuple(int(p) for p in np.flatnonzero(overlap)))
        return out

    def knn_partition_sets(
        self,
        centers: Sequence[Point],
        hits: Sequence[Sequence[int]],
        k: int | None = None,
        *,
        append_only: bool = True,
        weighted: bool = False,
    ) -> list[tuple[int, ...]]:
        """Per-query partition dependency sets for answered kNN queries.

        ``hits`` is the corresponding :meth:`knn_many` output (pass the
        requested ``k`` to detect short answers).  A full top-k changes
        only when a new point lands *strictly* inside the current k-th
        distance: the store is append-only and new points always get ids
        above every existing id, so a newcomer at exactly the k-th
        distance loses the ``(distance, id)`` tie.  Partitions whose scan
        box lower bound equals the k-th distance can therefore be pruned
        (pass ``append_only=False`` for the conservative ``<=`` bound,
        which also covers hypothetical in-place mutation).

        A short or empty answer (the store held fewer than ``k`` points)
        depends on every partition — *exactly*, not conservatively: a
        short answer ranks the whole store, so an append anywhere enters
        it.  No tightening is possible there.

        For hits computed with ``knn_many(..., weighted=True)``, pass
        ``weighted=True``: the k-th distance is then the k-th *effective*
        distance ``d / w``.  New appends default to weight 1.0, so a
        newcomer's effective distance equals its raw distance and the raw
        scan-box lower bound still under-estimates it — the same pruning
        logic holds, just against the weighted k-th.
        """
        c = kernels.centers_of(centers)
        if c.shape[0] != len(hits):
            raise ValueError("hits must align with centers")
        n_parts = self._tiers.n_partitions
        boxes = self._tiers.snapshot().boxes
        w = self._weights if weighted else None
        out: list[tuple[int, ...]] = []
        for qi, ids in enumerate(hits):
            if not ids or (k is not None and len(ids) < k):
                out.append(tuple(range(n_parts)))
                continue
            coords = kernels.coords_of([self.points[i] for i in ids])
            dists = kernels.dists_to(coords, c[qi])
            if w is not None:
                id_arr = np.asarray(ids, dtype=np.int64)
                dists = dists / _weights_for(id_arr, w)
            kth = float(dists.max())
            lower = kernels.box_min_dists(boxes, c[qi])
            overlap = lower < kth if append_only else lower <= kth
            out.append(tuple(int(p) for p in np.flatnonzero(overlap)))
        return out
