"""Smart-city decisions from low-quality SID (Sec. 2.3.3).

Three decision tasks consuming corrupted spatial IoT data:

  * next-location prediction from an incomplete check-in stream,
  * POI recommendation under mis-mapped check-ins, where deconvolving the
    mis-mapping beats naive counting,
  * crowdsourcing task assignment with uncertain worker positions, where
    the expected-completion assignment beats the point-estimate baseline.

Run:  python examples/smart_city_decisions.py
"""

import numpy as np

from repro.core import BBox, GaussianLocation, Point
from repro.decision import (
    MarkovNextLocation,
    NaiveRecommender,
    Task,
    UncertainCheckinRecommender,
    Worker,
    assign_expected,
    assign_naive,
    evaluate_accuracy,
    hit_rate,
    realized_completions,
    split_stream,
)
from repro.synth import CheckInWorld, corrupt_checkins, generate_pois


def main() -> None:
    rng = np.random.default_rng(31)
    city = BBox(0, 0, 2000, 2000)

    # A city of POIs and users with distance-discounted preferences.
    pois = generate_pois(rng, 50, city)
    # Peaked category preferences + wide mobility: the regime where the
    # *category* signal drives decisions, so mis-mapping corruption bites.
    world = CheckInWorld(
        rng, pois, n_users=15, distance_scale=500.0, preference_concentration=0.15
    )
    stream = world.simulate(rng, visits_per_user=120)
    train, test = split_stream(stream, 0.7)
    print(f"{len(pois)} POIs, {world.n_users} users, {len(stream)} check-ins")

    # --- 1. Next-location prediction vs training-data quality -------------
    print("\nnext-location prediction (hit@5 on held-out transitions):")
    for drop in (0.0, 0.5):
        dirty = corrupt_checkins(train, world, rng, drop_rate=drop, mismap_rate=drop / 2)
        model = MarkovNextLocation(len(pois)).fit(dirty)
        acc = evaluate_accuracy(model, test, k=5)
        print(f"  training drop rate {drop:.0%}: hit@5 = {acc['hit@5']:.3f}")

    # --- 2. POI recommendation under mis-mapped check-ins -----------------
    # Averaged over several corruption draws: single draws are noisy.
    naive_hits, aware_hits = [], []
    for seed in range(5):
        r = np.random.default_rng(seed)
        dirty = corrupt_checkins(train, world, r, 0.0, mismap_rate=0.6, mismap_radius=500.0)
        naive_hits.append(hit_rate(NaiveRecommender(pois).fit(dirty), test, 5))
        aware_hits.append(
            hit_rate(
                UncertainCheckinRecommender(
                    pois, mismap_radius=500.0, mismap_rate=0.6
                ).fit(dirty),
                test,
                5,
            )
        )
    print("\nPOI recommendation with 60% mis-mapped training check-ins (mean hit@5):")
    print(f"  naive category counting:     {np.mean(naive_hits):.3f}")
    print(f"  uncertainty deconvolution:   {np.mean(aware_hits):.3f}")

    # --- 3. DQ-aware spatial task assignment ------------------------------
    true_pos = {i: Point(rng.uniform(0, 2000), rng.uniform(0, 2000)) for i in range(15)}
    # Tasks pop up in the vicinity of the workforce (as dispatch queues do),
    # so most assignments are contestable rather than hopeless.
    tasks = [
        Task(
            i,
            Point(
                float(np.clip(true_pos[i].x + rng.normal(0, 200), 0, 2000)),
                float(np.clip(true_pos[i].y + rng.normal(0, 200), 0, 2000)),
            ),
            radius=150.0,
        )
        for i in range(15)
    ]
    workers = [
        Worker(
            i,
            GaussianLocation(
                Point(true_pos[i].x + rng.normal(0, 100), true_pos[i].y + rng.normal(0, 100)),
                100.0,
            ),
        )
        for i in range(15)
    ]
    aware_done = realized_completions(assign_expected(workers, tasks), true_pos, tasks)
    naive_done = realized_completions(assign_naive(workers, tasks), true_pos, tasks)
    print("\nspatial crowdsourcing (15 tasks, stale worker positions):")
    print(f"  point-estimate assignment completed:    {naive_done} tasks")
    print(f"  expected-completion assignment completed: {aware_done} tasks")


if __name__ == "__main__":
    main()
