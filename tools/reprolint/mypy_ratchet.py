"""mypy-strict ratchet: the strict-error count must never rise.

``python -m tools.reprolint.mypy_ratchet`` runs ``mypy --strict`` over
``src/repro``, counts ``error:`` diagnostics, and compares against the
``[mypy] strict_errors`` ceiling recorded in ``reprolint_baseline.toml``:

* count > ceiling  -> exit 1 (new strict debt; fix it or consciously raise
  the ceiling in review),
* count < ceiling  -> exit 0 with a nudge to tighten via ``--update``,
* mypy not installed -> exit 0 with a notice (local containers may lack
  it; CI installs the dev extras and always enforces).

``--update`` rewrites the recorded ceiling to the measured count, which is
how the ratchet only ever moves down.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from collections import Counter
from importlib.util import find_spec
from pathlib import Path

from .core import DEFAULT_BASELINE, Baseline

_ERROR_RE = re.compile(r"^(?P<file>[^:\n]+):\d+:(?:\d+:)? error:")
_CEILING_RE = re.compile(r"(strict_errors\s*=\s*)(-?\d+)")


def count_strict_errors(root: Path, targets: list[str]) -> tuple[int, Counter[str]]:
    """Run ``mypy --strict`` and return (total errors, per-file counts)."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "--no-color-output", *targets],
        cwd=root,
        capture_output=True,
        text=True,
    )
    per_file: Counter[str] = Counter()
    for line in proc.stdout.splitlines():
        m = _ERROR_RE.match(line)
        if m:
            per_file[m.group("file")] += 1
    return sum(per_file.values()), per_file


def compare(count: int, ceiling: int | None) -> tuple[int, str]:
    """Ratchet verdict as (exit code, human message)."""
    if ceiling is None or ceiling < 0:
        return 0, (
            f"mypy-ratchet: {count} strict error(s); no ceiling recorded — run "
            "with --update to arm the ratchet"
        )
    if count > ceiling:
        return 1, (
            f"mypy-ratchet: FAIL — {count} strict error(s) exceeds the recorded "
            f"ceiling of {ceiling} (+{count - ceiling}); fix the new errors or "
            "raise the ceiling deliberately in reprolint_baseline.toml"
        )
    if count < ceiling:
        return 0, (
            f"mypy-ratchet: OK — {count} strict error(s), ceiling {ceiling}; "
            f"tighten it with --update to lock in the {ceiling - count} repaid"
        )
    return 0, f"mypy-ratchet: OK — {count} strict error(s), at the ceiling"


def update_ceiling(baseline_path: Path, count: int) -> None:
    text = baseline_path.read_text(encoding="utf-8")
    new_text, n = _CEILING_RE.subn(rf"\g<1>{count}", text, count=1)
    if n == 0:
        new_text = text.rstrip() + f"\n\n[mypy]\nstrict_errors = {count}\n"
    baseline_path.write_text(new_text, encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tools.reprolint.mypy_ratchet")
    parser.add_argument("targets", nargs="*", default=None, help="mypy targets")
    parser.add_argument("--root", type=Path, default=Path.cwd())
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--update", action="store_true", help="record the measured count as the new ceiling"
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    baseline_path = args.baseline if args.baseline is not None else root / DEFAULT_BASELINE

    if find_spec("mypy") is None:
        print("mypy-ratchet: mypy is not installed here; skipping (CI enforces)")
        return 0

    targets = args.targets or ["src/repro"]
    count, per_file = count_strict_errors(root, targets)

    if args.update:
        update_ceiling(baseline_path, count)
        print(f"mypy-ratchet: recorded ceiling {count} in {baseline_path}")
        return 0

    ceiling = (
        Baseline.load(baseline_path).mypy_strict_errors if baseline_path.exists() else None
    )
    code, message = compare(count, ceiling)
    print(message)
    if code != 0:
        for file, n in per_file.most_common(10):
            print(f"  {file}: {n} strict error(s)")
    return code


if __name__ == "__main__":
    sys.exit(main())
