import numpy as np
import pytest

from repro.core import Point
from repro.localization import (
    PeerRange,
    iterative_refine,
    joint_denoise,
    range_stress,
)


def scatter(rng, n, spread=500.0):
    return [Point(rng.uniform(0, spread), rng.uniform(0, spread)) for _ in range(n)]


class TestJointDenoise:
    def test_removes_exact_shared_bias(self, rng):
        truth = scatter(rng, 8)
        biased = [Point(p.x + 12.0, p.y - 7.0) for p in truth]
        fixed = joint_denoise(biased, [0, 1], truth[:2])
        for a, b in zip(fixed, truth):
            assert a.distance_to(b) < 1e-9

    def test_noisy_references_average_out(self, rng):
        truth = scatter(rng, 10)
        biased = [
            Point(p.x + 20 + rng.normal(0, 1), p.y - 5 + rng.normal(0, 1)) for p in truth
        ]
        fixed = joint_denoise(biased, [0, 1, 2, 3], truth[:4])
        errs = [a.distance_to(b) for a, b in zip(fixed, truth)]
        raw = [a.distance_to(b) for a, b in zip(biased, truth)]
        assert np.mean(errs) < np.mean(raw) / 3

    def test_requires_references(self, rng):
        with pytest.raises(ValueError):
            joint_denoise(scatter(rng, 3), [], [])

    def test_alignment_validated(self, rng):
        pts = scatter(rng, 3)
        with pytest.raises(ValueError):
            joint_denoise(pts, [0, 1], [pts[0]])


class TestIterativeRefine:
    def test_exact_ranges_reduce_error(self, rng):
        truth = scatter(rng, 10, 300)
        noisy = [Point(p.x + rng.normal(0, 10), p.y + rng.normal(0, 10)) for p in truth]
        ranges = [
            PeerRange(i, j, truth[i].distance_to(truth[j]))
            for i in range(10)
            for j in range(i + 1, 10)
        ]
        refined = iterative_refine(noisy, ranges, anchor_weight=0.05, n_iter=300)
        err_before = np.mean([a.distance_to(b) for a, b in zip(noisy, truth)])
        err_after = np.mean([a.distance_to(b) for a, b in zip(refined, truth)])
        assert err_after < err_before

    def test_stress_decreases(self, rng):
        truth = scatter(rng, 8, 300)
        noisy = [Point(p.x + rng.normal(0, 8), p.y + rng.normal(0, 8)) for p in truth]
        ranges = [
            PeerRange(i, j, truth[i].distance_to(truth[j]))
            for i in range(8)
            for j in range(i + 1, 8)
        ]
        refined = iterative_refine(noisy, ranges, n_iter=200)
        assert range_stress(refined, ranges) < range_stress(noisy, ranges)

    def test_no_ranges_keeps_observations(self, rng):
        noisy = scatter(rng, 5)
        refined = iterative_refine(noisy, [], n_iter=10)
        for a, b in zip(refined, noisy):
            assert a.distance_to(b) < 1e-6

    def test_bad_indices_rejected(self, rng):
        pts = scatter(rng, 3)
        with pytest.raises(ValueError):
            iterative_refine(pts, [PeerRange(0, 5, 10.0)])
        with pytest.raises(ValueError):
            iterative_refine(pts, [PeerRange(1, 1, 10.0)])

    def test_negative_distance_rejected(self, rng):
        pts = scatter(rng, 3)
        with pytest.raises(ValueError):
            iterative_refine(pts, [PeerRange(0, 1, -1.0)])


class TestRangeStress:
    def test_zero_for_consistent(self, rng):
        truth = scatter(rng, 5)
        ranges = [PeerRange(0, 1, truth[0].distance_to(truth[1]))]
        assert range_stress(truth, ranges) == pytest.approx(0.0)

    def test_empty_ranges(self, rng):
        assert range_stress(scatter(rng, 3), []) == 0.0
