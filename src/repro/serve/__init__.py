"""Quality-aware serving: the query front end over the partitioned store.

The tutorial's exploitation half argues quality-managed SID pays off when
it is *queried under load*; this subsystem is that load path.  A
long-lived asyncio :class:`~repro.serve.service.QueryService` accepts
typed :class:`~repro.serve.requests.RangeQueryRequest` /
:class:`~repro.serve.requests.KnnQueryRequest` objects and

* **coalesces** concurrent requests into single batched kernel calls
  (:mod:`~repro.serve.coalescer` — bounded linger window on the
  injectable clock, one warm executor reused across batches),
* applies **admission control** with the ingest layer's backpressure
  vocabulary (:mod:`~repro.serve.admission` — ``block`` / ``reject`` /
  ``drop_oldest`` mapped to request semantics, per-class priorities),
* serves repeats from a **result cache with quality-epoch invalidation**
  (:mod:`~repro.serve.cache` + :mod:`~repro.serve.epochs` — a write
  admitted through the ingest gates bumps the epochs of the partitions it
  touches, so a stale result is never served after a quality event).

Benchmarked by ``benchmarks/bench_serve.py`` (p50/p99 latency, sustained
QPS, coalesce ratio at 10k+ simulated clients); demonstrated end to end
in ``examples/serve_quality_gateway.py``.
"""

from .admission import POLICIES, AdmissionController, AdmissionDecision
from .cache import CacheEntry, ResultCache
from .coalescer import Batch, Coalescer, PendingQuery
from .epochs import EpochRegistry, ingest_epoch_hook
from .requests import (
    KnnQueryRequest,
    QueryRequest,
    QueryResponse,
    RangeQueryRequest,
    ResponseStatus,
)
from .service import QueryService, ServeStats

__all__ = [
    "POLICIES",
    "AdmissionController",
    "AdmissionDecision",
    "CacheEntry",
    "ResultCache",
    "Batch",
    "Coalescer",
    "PendingQuery",
    "EpochRegistry",
    "ingest_epoch_hook",
    "KnnQueryRequest",
    "QueryRequest",
    "QueryResponse",
    "RangeQueryRequest",
    "ResponseStatus",
    "QueryService",
    "ServeStats",
]
