import pytest

from repro.serve import POLICIES, AdmissionController, AdmissionDecision


class TestValidation:
    def test_policy_names_match_ingest_vocabulary(self):
        assert set(POLICIES) == {"block", "reject", "drop_oldest"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(4, policy="spill")

    def test_max_pending_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_class_limits_bounded_by_max_pending(self):
        with pytest.raises(ValueError):
            AdmissionController(4, class_limits={0: 5})
        with pytest.raises(ValueError):
            AdmissionController(4, class_limits={0: 0})


class TestDecisions:
    def test_admit_below_limit(self):
        ctl = AdmissionController(4, policy="reject")
        assert ctl.decide(0, priority=0) is AdmissionDecision.ADMIT
        assert ctl.decide(3, priority=0) is AdmissionDecision.ADMIT

    def test_full_queue_per_policy(self):
        expect = {
            "block": AdmissionDecision.WAIT,
            "reject": AdmissionDecision.SHED,
            "drop_oldest": AdmissionDecision.DISPLACE,
        }
        for policy, decision in expect.items():
            ctl = AdmissionController(4, policy=policy)
            assert ctl.decide(4, priority=0) is decision

    def test_class_limits_shed_background_first(self):
        ctl = AdmissionController(8, policy="reject", class_limits={0: 2})
        # depth 2: background (priority 0) is at its class limit...
        assert ctl.decide(2, priority=0) is AdmissionDecision.SHED
        # ...while interactive traffic still has headroom.
        assert ctl.decide(2, priority=1) is AdmissionDecision.ADMIT
        assert ctl.decide(8, priority=1) is AdmissionDecision.SHED

    def test_limit_for_defaults_to_max_pending(self):
        ctl = AdmissionController(8, class_limits={0: 2})
        assert ctl.limit_for(0) == 2
        assert ctl.limit_for(1) == 8
