"""Spatiotemporal scalar fields — ground truth for STID.

A smooth synthetic phenomenon (temperature, PM2.5...) exhibiting the Table 1
characteristics *spatially autocorrelated*, *varying smoothly*, and
optionally *spatially anisotropic*.  Sensor networks sample the field to
produce STID with known ground truth for interpolation, fusion, outlier
removal, and reduction experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.geometry import BBox, Point
from ..core.stid import STGrid, STRecord, STSeries


@dataclass(frozen=True)
class _Bump:
    cx: float
    cy: float
    amplitude: float
    sigma_x: float
    sigma_y: float
    drift_x: float
    drift_y: float


class SmoothField:
    """Sum of drifting anisotropic Gaussian bumps + diurnal baseline.

    ``value(p, t)`` is deterministic and infinitely smooth, so spatial and
    temporal autocorrelation are controlled exactly by the bump scales.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        bbox: BBox,
        n_bumps: int = 6,
        amplitude: float = 10.0,
        length_scale: float = 300.0,
        anisotropy: float = 1.0,
        drift_speed: float = 0.5,
        baseline: float = 20.0,
        diurnal_amplitude: float = 3.0,
        period: float = 86_400.0,
    ) -> None:
        if anisotropy <= 0:
            raise ValueError("anisotropy must be positive")
        self.bbox = bbox
        self.baseline = baseline
        self.diurnal_amplitude = diurnal_amplitude
        self.period = period
        self._bumps = [
            _Bump(
                cx=rng.uniform(bbox.min_x, bbox.max_x),
                cy=rng.uniform(bbox.min_y, bbox.max_y),
                amplitude=rng.uniform(0.3, 1.0) * amplitude * rng.choice([-1.0, 1.0]),
                sigma_x=length_scale * anisotropy,
                sigma_y=length_scale / anisotropy,
                drift_x=rng.normal(0.0, drift_speed),
                drift_y=rng.normal(0.0, drift_speed),
            )
            for _ in range(n_bumps)
        ]

    def value(self, p: Point, t: float) -> float:
        """Field value at position ``p`` and time ``t``."""
        v = self.baseline + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / self.period
        )
        for b in self._bumps:
            dx = p.x - (b.cx + b.drift_x * t)
            dy = p.y - (b.cy + b.drift_y * t)
            v += b.amplitude * math.exp(
                -0.5 * ((dx / b.sigma_x) ** 2 + (dy / b.sigma_y) ** 2)
            )
        return v

    def values(self, points: list[Point], t: float) -> np.ndarray:
        """Field values at several points at one time."""
        return np.array([self.value(p, t) for p in points])

    # -- sampling ------------------------------------------------------------------

    def sample_sensors(
        self,
        sensor_locations: list[Point],
        times: np.ndarray,
        rng: np.random.Generator,
        noise_sigma: float = 0.5,
        bias_per_sensor: float = 0.0,
    ) -> list[STSeries]:
        """Read the field with stationary sensors (Gaussian noise + fixed bias).

        ``bias_per_sensor`` is the std-dev of a per-device calibration offset,
        modeling the heterogeneous low-cost sensors of the IoT setting.
        """
        out = []
        for i, loc in enumerate(sensor_locations):
            bias = rng.normal(0.0, bias_per_sensor) if bias_per_sensor > 0 else 0.0
            vals = [
                self.value(loc, float(t)) + bias + rng.normal(0.0, noise_sigma)
                for t in times
            ]
            out.append(STSeries(f"sensor-{i}", loc, times, vals))
        return out

    def truth_grid(
        self, cell_size: float, t_step: float, t_start: float, t_end: float
    ) -> STGrid:
        """Rasterized noise-free field (evaluation reference)."""
        grid = STGrid.empty(self.bbox, t_start, t_end, cell_size, t_step)
        nt, ny, nx = grid.shape
        for ti in range(nt):
            for yi in range(ny):
                for xi in range(nx):
                    p, t = grid.cell_center(ti, yi, xi)
                    grid.values[ti, yi, xi] = self.value(p, t)
        return grid


def random_sensor_sites(
    rng: np.random.Generator, n_sensors: int, bbox: BBox
) -> list[Point]:
    """Uniform sensor placement over the region."""
    return [
        Point(rng.uniform(bbox.min_x, bbox.max_x), rng.uniform(bbox.min_y, bbox.max_y))
        for _ in range(n_sensors)
    ]


def records_with_truth(
    field: SmoothField, series: list[STSeries]
) -> list[tuple[STRecord, float]]:
    """Pair every noisy record with the field's true value at its site/time."""
    out: list[tuple[STRecord, float]] = []
    for s in series:
        for rec in s:
            out.append((rec, field.value(rec.point, rec.t)))
    return out
