"""Tests of the composite QoD scoring engine and weighted exploitation."""
