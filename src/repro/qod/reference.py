"""Comparative quality control: each sensor versus its spatial neighbors.

The reference control point asks whether a sensor *agrees with the
phenomenon around it*.  For every sensor this module finds the ``k``
nearest *other* sensor sites — one batched
:func:`repro.querying.index.brute_force_knn_many` call over the whole
fleet, which runs on the PR-2 columnar kernels — and takes the median of
their (windowed) mean values as the neighborhood consensus.  The median
makes the consensus robust: a bad sensor cannot poison its neighbors'
reference values unless a majority of a neighborhood is bad.

Fleet-level robust statistics (median dispersion, median trend slope)
come from the same summaries and anchor the deployment detectors in
:mod:`repro.qod.checks`.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..core.geometry import Point
from ..obs import OBS
from ..querying.index import brute_force_knn_many, build_entries
from .checks import SensorSummary

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


def neighbor_consensus(summaries: list[SensorSummary], k: int) -> list[float | None]:
    """Per-sensor median of the ``k`` nearest *other* sensors' mean values.

    One batched kNN call covers the whole fleet (``k + 1`` neighbors per
    site, self dropped by id).  Sensors with no neighbors — a fleet of
    one — get ``None``, which the reference check reads as "unchecked,
    never penalize".  The output aligns with ``summaries``.
    """
    n = len(summaries)
    if n == 0:
        return []
    if n == 1:
        return [None]
    sites = [Point(s.x, s.y) for s in summaries]
    entries = build_entries(sites)
    means = np.array([s.mean for s in summaries], dtype=float)
    cm = (
        OBS.tracer.span("qod.reference", sensors=n, k=k)
        if OBS.enabled
        else _NULL
    )
    with cm:
        hits = brute_force_knn_many(entries, sites, min(k, n - 1) + 1)
    out: list[float | None] = []
    for i, ids in enumerate(hits):
        neighbor_ids = [j for j in ids if j != i][: min(k, n - 1)]
        if not neighbor_ids:
            out.append(None)
            continue
        out.append(float(np.median(means[neighbor_ids])))
    return out


def fleet_dispersion(summaries: list[SensorSummary]) -> float:
    """Robust fleet-typical value dispersion: the median over sensors."""
    if not summaries:
        return 0.0
    return float(np.median([s.dispersion for s in summaries]))


def fleet_slope(summaries: list[SensorSummary]) -> float:
    """Robust fleet-typical value trend (units/s): the median over sensors."""
    if not summaries:
        return 0.0
    return float(np.median([s.slope for s in summaries]))
