"""Vehicle tracking: sparse noisy GPS -> map matching -> route recovery ->
network-constrained compression -> continuous monitoring.

The urban-mobility storyline of the tutorial's intro: a vehicle reports
low-rate, noisy positions; the road network's spatial constraint restores
the full route (Sec. 2.2.2), which then compresses to a handful of bytes
(Sec. 2.2.6); a dispatcher watches a zone with safe-region continuous
queries (Sec. 2.3.1).

Run:  python examples/vehicle_tracking.py
"""

import numpy as np

from repro.cleaning import HMMMapMatcher, recover_route
from repro.core import Point, synchronized_error
from repro.querying import NaiveRangeMonitor, SafeRegionRangeMonitor
from repro.reduction import along_route_error, compress_trip, decompress_trip
from repro.synth import RoadNetwork, add_gaussian_noise


def main() -> None:
    rng = np.random.default_rng(11)

    # 1. A downtown grid and a ground-truth trip across it.
    network = RoadNetwork.grid(8, 8, spacing=250.0)
    route = network.random_route(rng, min_edges=12)
    truth = network.trajectory_along_path(route, speed=12.0, interval=1.0, object_id="veh-1")
    print(f"true trip: {truth}, route of {len(route)} nodes, {truth.length:.0f} m")

    # 2. What the server actually receives: every 8th point, 12 m GPS noise.
    observed = add_gaussian_noise(truth.downsample(8), rng, 12.0)
    print(f"received:  {observed} ({len(observed)} of {len(truth)} samples)")

    # 3. Inference-based uncertainty elimination: match + recover the route.
    matcher = HMMMapMatcher(network, emission_sigma=12.0, candidate_radius=80.0)
    recovered = recover_route(network, observed, matcher)
    print("\nroute recovery (synchronized error vs truth):")
    print(f"  straight-line densification: {synchronized_error(truth, observed):8.2f} m")
    print(f"  network route recovery:      {synchronized_error(truth, recovered):8.2f} m")

    # 4. Network-constrained compression of the recovered trip.
    matched_route = matcher.match(observed).route
    trip = compress_trip(network, matched_route, recovered, epsilon=10.0)
    restored = decompress_trip(network, trip, "veh-1")
    print("\ncompression:")
    print(f"  raw (x, y, t) float64: {len(truth) * 24} bytes")
    print(f"  route+knots codec:     {trip.n_bytes} bytes ({trip.byte_ratio():.0f}x)")
    print(
        f"  along-route error of restored trip: "
        f"{along_route_error(network, matched_route, recovered, restored):.2f} m"
    )

    # 5. Continuous zone watch: safe regions vs naive re-evaluation.
    center = network.positions[network.nearest_node(Point(875, 875))]
    safe = SafeRegionRangeMonitor(center, 400.0)
    naive = NaiveRangeMonitor(center, 400.0)
    for p in recovered:
        safe.observe("veh-1", p.point)
        naive.observe("veh-1", p.point)
    assert safe.answer() == naive.answer()
    print("\ncontinuous zone monitoring (identical answers):")
    print(f"  naive protocol:  {naive.stats.messages_sent} messages")
    print(f"  safe regions:    {safe.stats.messages_sent} messages")


if __name__ == "__main__":
    main()
