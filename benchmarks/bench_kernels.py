"""Benchmark: columnar kernels vs the seed's scalar per-point loops.

Measures the hot paths the vectorized compute core (:mod:`repro.kernels`)
rewired — batch range / kNN queries over 100k points and the trajectory
outlier screens — against the retained scalar references
(:mod:`repro.kernels.reference`), verifying result equality before timing.
Writes ``BENCH_kernels.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full run
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI gate

``--smoke`` runs a small input and *asserts* the vectorized paths are
correct and at least as fast as the scalar paths — a loud regression gate
without ratio-based timing flakiness.  The full run records the measured
speedups (target: >= 5x on the 100k workloads).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cleaning import heading_outliers, speed_outliers, zscore_outliers
from repro.core import BBox, Point, Trajectory
from repro.kernels import reference
from repro.querying import (
    GridIndex,
    RTree,
    brute_force_knn_many,
    brute_force_range_many,
    build_entries,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def timed(fn):
    """Run ``fn`` twice — untimed warmup, then timed — returning ``(result, seconds)``.

    The warmup keeps one-off costs (allocator growth, first-touch page
    faults on the big intermediate arrays) out of the measurement; both
    scalar and vectorized contenders get the same treatment.
    """
    out = fn()
    start = time.perf_counter()
    fn()
    return out, time.perf_counter() - start


def make_workload(rng, n_points, n_queries):
    """Random points, query centers/radii, and a random-walk trajectory."""
    box = BBox(0.0, 0.0, 1000.0, 1000.0)
    pts = [Point(x, y) for x, y in rng.uniform(0, 1000, (n_points, 2))]
    entries = build_entries(pts)
    centers = [Point(x, y) for x, y in rng.uniform(0, 1000, (n_queries, 2))]
    radii = rng.uniform(30, 80, n_queries).tolist()
    steps = rng.normal(0, 5, (n_points, 2)).cumsum(axis=0)
    traj = Trajectory.from_arrays(
        steps[:, 0], steps[:, 1], np.arange(n_points, dtype=float), "bench"
    )
    return box, entries, centers, radii, traj


def bench_queries(box, entries, centers, radii, k, results):
    """Range and kNN batches: scalar linear scans vs every vectorized path."""
    scalar_range, t_scalar_range = timed(
        lambda: [reference.scalar_range(entries, c, r) for c, r in zip(centers, radii)]
    )
    scalar_knn, t_scalar_knn = timed(
        lambda: [reference.scalar_knn(entries, c, k) for c in centers]
    )

    grid = GridIndex(box, 50.0)
    for e in entries:
        grid.insert(e)
    tree = RTree(entries, leaf_capacity=32)
    grid.range_query_many(centers[:1], radii[:1])  # build columnar snapshots

    contenders = {
        "brute_force_range_many": lambda: brute_force_range_many(entries, centers, radii),
        "grid_range_query_many": lambda: grid.range_query_many(centers, radii),
        "rtree_range_query_many": lambda: tree.range_query_many(centers, radii),
    }
    for name, fn in contenders.items():
        got, elapsed = timed(fn)
        assert [sorted(g) for g in got] == [sorted(s) for s in scalar_range], name
        results[name] = {"scalar_s": t_scalar_range, "vectorized_s": elapsed}

    contenders = {
        "brute_force_knn_many": lambda: brute_force_knn_many(entries, centers, k),
        "grid_knn_many": lambda: grid.knn_many(centers, k),
        "rtree_knn_many": lambda: tree.knn_many(centers, k),
    }
    for name, fn in contenders.items():
        got, elapsed = timed(fn)
        assert got == scalar_knn, name
        results[name] = {"scalar_s": t_scalar_knn, "vectorized_s": elapsed}


def bench_screens(traj, results):
    """Outlier screens: scalar per-point loops vs the screen kernels."""
    screens = {
        "speed_screen": (
            lambda: reference.scalar_speed_outliers(traj, 20.0),
            lambda: speed_outliers(traj, 20.0),
        ),
        "heading_screen": (
            lambda: reference.scalar_heading_outliers(traj, 2.8),
            lambda: heading_outliers(traj, 2.8),
        ),
        "zscore_screen": (
            lambda: reference.scalar_zscore_outliers(traj, 7, 3.0),
            lambda: zscore_outliers(traj, 7, 3.0),
        ),
    }
    traj.speeds(), traj.headings()  # warm the shared caches for both sides
    for name, (scalar_fn, vector_fn) in screens.items():
        want, t_scalar = timed(scalar_fn)
        got, t_vector = timed(vector_fn)
        assert got == want, name
        results[name] = {"scalar_s": t_scalar, "vectorized_s": t_vector}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small input; assert correctness and vectorized <= scalar time",
    )
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        n_points, n_queries = 2_000, 5
    else:
        n_points, n_queries = args.points, args.queries

    rng = np.random.default_rng(2022)
    box, entries, centers, radii, traj = make_workload(rng, n_points, n_queries)

    results: dict[str, dict[str, float]] = {}
    bench_queries(box, entries, centers, radii, args.k, results)
    bench_screens(traj, results)

    for name, row in results.items():
        row["speedup"] = row["scalar_s"] / max(row["vectorized_s"], 1e-12)

    width = max(len(n) for n in results)
    print(f"{'case'.ljust(width)}  scalar_s  vectorized_s  speedup")
    for name, row in results.items():
        print(
            f"{name.ljust(width)}  {row['scalar_s']:8.4f}  "
            f"{row['vectorized_s']:12.4f}  {row['speedup']:6.1f}x"
        )

    if args.smoke:
        slow = [n for n, r in results.items() if r["vectorized_s"] > r["scalar_s"]]
        assert not slow, f"vectorized paths slower than scalar: {slow}"
        print("smoke OK: all vectorized paths correct and at least as fast as scalar")
        if args.out is not None:
            args.out.write_text(json.dumps(results, indent=2) + "\n")
    else:
        out_path = args.out or OUT_PATH
        payload = {
            "workload": {"points": n_points, "queries": n_queries, "k": args.k},
            "results": results,
        }
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
