"""Kalman filtering and smoothing — motion-based LR via Bayes filters
(Sec. 2.2.1, [34]).

A constant-velocity Kalman filter refines a sequence of noisy position
observations by propagating motion dynamics; the Rauch-Tung-Striebel (RTS)
smoother adds the backward pass for offline refinement.  State is
``[x, y, vx, vy]``; observations are positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trajectory import Trajectory, TrajectoryPoint


@dataclass
class KalmanResult:
    """Filtered/smoothed states and covariances, plus the trajectory view."""

    states: np.ndarray  # (n, 4)
    covariances: np.ndarray  # (n, 4, 4)
    times: np.ndarray  # (n,)
    object_id: str = ""

    def trajectory(self) -> Trajectory:
        """The position track as a :class:`Trajectory`."""
        return Trajectory(
            [
                TrajectoryPoint(float(s[0]), float(s[1]), float(t))
                for s, t in zip(self.states, self.times)
            ],
            self.object_id,
        )

    def position_sigmas(self) -> np.ndarray:
        """Per-step position uncertainty: sqrt of mean of x/y variances."""
        return np.sqrt(
            (self.covariances[:, 0, 0] + self.covariances[:, 1, 1]) / 2.0
        )


class KalmanFilter2D:
    """Constant-velocity Kalman filter for planar tracking.

    ``process_sigma`` is the white-acceleration noise density (m/s^2);
    ``measurement_sigma`` the position observation noise (m).  Both can be
    tuned from the known corruption level or estimated from residuals.
    """

    def __init__(self, process_sigma: float = 1.0, measurement_sigma: float = 5.0) -> None:
        if process_sigma <= 0 or measurement_sigma <= 0:
            raise ValueError("noise parameters must be positive")
        self.process_sigma = process_sigma
        self.measurement_sigma = measurement_sigma
        self._h = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])
        self._r = np.eye(2) * measurement_sigma**2

    def _f_q(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Transition matrix and process noise for a step of ``dt`` seconds."""
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        q3, q2 = dt**3 / 3.0, dt**2 / 2.0
        qs = self.process_sigma**2
        q = qs * np.array(
            [
                [q3, 0, q2, 0],
                [0, q3, 0, q2],
                [q2, 0, dt, 0],
                [0, q2, 0, dt],
            ]
        )
        return f, q

    def filter(self, traj: Trajectory) -> KalmanResult:
        """Forward pass over the observed trajectory."""
        n = len(traj)
        if n == 0:
            raise ValueError("empty trajectory")
        xyt = traj.as_xyt()
        states = np.zeros((n, 4))
        covs = np.zeros((n, 4, 4))
        # Initialize at the first observation with a diffuse velocity prior.
        state = np.array([xyt[0, 0], xyt[0, 1], 0.0, 0.0])
        cov = np.diag(
            [self.measurement_sigma**2, self.measurement_sigma**2, 100.0, 100.0]
        )
        states[0], covs[0] = state, cov
        for i in range(1, n):
            dt = float(xyt[i, 2] - xyt[i - 1, 2])
            f, q = self._f_q(dt)
            state = f @ state
            cov = f @ cov @ f.T + q
            z = xyt[i, :2]
            innov = z - self._h @ state
            s = self._h @ cov @ self._h.T + self._r
            gain = cov @ self._h.T @ np.linalg.inv(s)
            state = state + gain @ innov
            cov = (np.eye(4) - gain @ self._h) @ cov
            states[i], covs[i] = state, cov
        return KalmanResult(states, covs, xyt[:, 2], traj.object_id)

    def smooth(self, traj: Trajectory) -> KalmanResult:
        """RTS smoother: forward filter then backward refinement."""
        fwd = self.filter(traj)
        n = len(fwd.times)
        states = fwd.states.copy()
        covs = fwd.covariances.copy()
        for i in range(n - 2, -1, -1):
            dt = float(fwd.times[i + 1] - fwd.times[i])
            f, q = self._f_q(dt)
            pred_state = f @ fwd.states[i]
            pred_cov = f @ fwd.covariances[i] @ f.T + q
            gain = fwd.covariances[i] @ f.T @ np.linalg.inv(pred_cov)
            states[i] = fwd.states[i] + gain @ (states[i + 1] - pred_state)
            covs[i] = (
                fwd.covariances[i]
                + gain @ (covs[i + 1] - pred_cov) @ gain.T
            )
        return KalmanResult(states, covs, fwd.times, traj.object_id)


def kalman_refine(
    traj: Trajectory,
    process_sigma: float = 1.0,
    measurement_sigma: float = 5.0,
    smooth: bool = True,
) -> Trajectory:
    """One-call motion-based refinement of a noisy trajectory."""
    kf = KalmanFilter2D(process_sigma, measurement_sigma)
    result = kf.smooth(traj) if smooth else kf.filter(traj)
    return result.trajectory()
