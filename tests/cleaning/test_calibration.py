import numpy as np
import pytest

from repro.core import BBox, Point
from repro.cleaning import (
    calibrate_nearest,
    calibrate_weighted,
    grid_anchors,
    mine_anchors,
)
from repro.synth import add_gaussian_noise, correlated_random_walk


class TestAnchorSources:
    def test_grid_anchor_count(self):
        anchors = grid_anchors(BBox(0, 0, 100, 100), 25.0)
        assert len(anchors) == 16

    def test_grid_anchor_spacing_validated(self, box):
        with pytest.raises(ValueError):
            grid_anchors(box, 0.0)

    def test_mine_anchors_requires_support(self, rng, box):
        # Three objects following the same corridor -> corridor cells mined.
        base = correlated_random_walk(rng, 60, box, object_id="a")
        shadows = [
            add_gaussian_noise(base, rng, 2.0).map_points(lambda p: p)
            for _ in range(2)
        ]
        corpus = [base] + [
            type(base)([p for p in s], object_id=f"s{i}")
            for i, s in enumerate(shadows)
        ]
        mined = mine_anchors(corpus, cell_size=50, min_support=3)
        lonely = mine_anchors(corpus[:1], cell_size=50, min_support=3)
        assert len(mined) > 0
        assert len(lonely) == 0

    def test_mined_anchor_near_visits(self, rng, box):
        base = correlated_random_walk(rng, 80, box, object_id="a")
        corpus = [
            type(base)([p for p in add_gaussian_noise(base, rng, 1.0)], object_id=f"c{i}")
            for i in range(3)
        ]
        anchors = mine_anchors(corpus, cell_size=40, min_support=2)
        for a in anchors:
            assert min(p.point.distance_to(a) for p in base) < 60.0


class TestCalibration:
    def test_nearest_snaps_to_anchor_set(self, rng, walk):
        anchors = grid_anchors(walk.bbox().expand(10), 50.0)
        cal = calibrate_nearest(walk, anchors)
        anchor_set = {(a.x, a.y) for a in anchors}
        for p in cal:
            assert (p.x, p.y) in anchor_set

    def test_nearest_respects_max_distance(self, rng, walk):
        anchors = [Point(-10_000, -10_000)]  # unreachable anchor
        cal = calibrate_nearest(walk, anchors, max_distance=100.0)
        assert cal == walk  # nothing snapped

    def test_empty_anchor_set_rejected(self, walk):
        with pytest.raises(ValueError):
            calibrate_nearest(walk, [])
        with pytest.raises(ValueError):
            calibrate_weighted(walk, [], sigma=10)

    def test_weighted_sigma_validated(self, walk):
        with pytest.raises(ValueError):
            calibrate_weighted(walk, [Point(0, 0)], sigma=0)

    def test_weighted_blends_between_anchors(self):
        from repro.core import Trajectory, TrajectoryPoint

        anchors = [Point(0, 0), Point(100, 0)]
        t = Trajectory([TrajectoryPoint(50, 0, 0.0)])
        cal = calibrate_weighted(t, anchors, sigma=50, k=2)
        # Equidistant: lands midway rather than snapping.
        assert cal[0].x == pytest.approx(50.0, abs=1.0)

    def test_weighted_far_point_untouched(self):
        from repro.core import Trajectory, TrajectoryPoint

        anchors = [Point(0, 0)]
        t = Trajectory([TrajectoryPoint(10_000, 0, 0.0)])
        cal = calibrate_weighted(t, anchors, sigma=10)
        assert cal[0].x == 10_000

    def test_calibration_unifies_heterogeneous_trajectories(self, rng, box):
        """Calibration's DQ purpose: two noisy views of the same route land
        on (nearly) the same representation."""
        truth = correlated_random_walk(rng, 80, box, speed_mean=5)
        view_a = add_gaussian_noise(truth, rng, 10.0)
        view_b = add_gaussian_noise(truth, rng, 10.0)
        anchors = grid_anchors(box, 40.0)
        cal_a = calibrate_nearest(view_a, anchors)
        cal_b = calibrate_nearest(view_b, anchors)
        same = sum(
            1 for p, q in zip(cal_a, cal_b) if (p.x, p.y) == (q.x, q.y)
        ) / len(cal_a)
        raw_same = sum(
            1 for p, q in zip(view_a, view_b) if (p.x, p.y) == (q.x, q.y)
        ) / len(view_a)
        assert same > raw_same  # calibrated views agree far more often
        assert same > 0.3
