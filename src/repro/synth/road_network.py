"""Synthetic road networks and network-constrained motion.

Substitute for real maps (OSM): a planar graph with per-edge geometry, built
on :mod:`networkx`.  Map matching (Sec. 2.2.2), network-constrained
compression (2.2.6), and route recovery all operate on this substrate —
they require only topology plus edge geometry, which synthetic grids
provide with exact ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.geometry import BBox, Point, point_along_polyline, polyline_length
from ..core.trajectory import Trajectory, TrajectoryPoint


@dataclass(frozen=True)
class RoadEdge:
    """A directed road segment between two node ids with straight geometry."""

    u: int
    v: int
    geometry: tuple[Point, Point]

    @property
    def length(self) -> float:
        return self.geometry[0].distance_to(self.geometry[1])


class RoadNetwork:
    """A planar road graph with node coordinates and Euclidean edge weights.

    The graph is undirected for routing; edges are traversable both ways.
    """

    def __init__(self, graph: nx.Graph, positions: dict[int, Point]) -> None:
        for n in graph.nodes:
            if n not in positions:
                raise ValueError(f"node {n} has no position")
        self.graph = graph
        self.positions = positions
        for u, v in graph.edges:
            graph.edges[u, v]["length"] = positions[u].distance_to(positions[v])

    # -- constructors --------------------------------------------------------

    @classmethod
    def grid(cls, n_rows: int, n_cols: int, spacing: float = 500.0) -> "RoadNetwork":
        """A Manhattan-style grid network."""
        g = nx.Graph()
        positions: dict[int, Point] = {}
        for r in range(n_rows):
            for c in range(n_cols):
                nid = r * n_cols + c
                positions[nid] = Point(c * spacing, r * spacing)
                g.add_node(nid)
        for r in range(n_rows):
            for c in range(n_cols):
                nid = r * n_cols + c
                if c + 1 < n_cols:
                    g.add_edge(nid, nid + 1)
                if r + 1 < n_rows:
                    g.add_edge(nid, nid + n_cols)
        return cls(g, positions)

    @classmethod
    def random_geometric(
        cls, rng: np.random.Generator, n_nodes: int, bbox: BBox, radius: float
    ) -> "RoadNetwork":
        """Random geometric graph restricted to its largest connected component."""
        pts = {
            i: Point(rng.uniform(bbox.min_x, bbox.max_x), rng.uniform(bbox.min_y, bbox.max_y))
            for i in range(n_nodes)
        }
        g = nx.Graph()
        g.add_nodes_from(pts)
        ids = list(pts)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if pts[a].distance_to(pts[b]) <= radius:
                    g.add_edge(a, b)
        if g.number_of_nodes() == 0:
            raise ValueError("empty network")
        giant = max(nx.connected_components(g), key=len)
        g = g.subgraph(giant).copy()
        return cls(g, {n: pts[n] for n in g.nodes})

    # -- views -----------------------------------------------------------------

    def bbox(self) -> BBox:
        """Bounding box of all node positions."""
        return BBox.from_points(self.positions.values())

    def edges(self) -> list[RoadEdge]:
        """All edges with their geometry."""
        return [
            RoadEdge(u, v, (self.positions[u], self.positions[v]))
            for u, v in self.graph.edges
        ]

    def edge_length(self, u: int, v: int) -> float:
        """Euclidean length of edge ``(u, v)``."""
        return float(self.graph.edges[u, v]["length"])

    def nearest_node(self, p: Point) -> int:
        """Node id closest to point ``p``."""
        return min(self.positions, key=lambda n: self.positions[n].distance_to(p))

    # -- routing -----------------------------------------------------------------

    def shortest_path(self, u: int, v: int) -> list[int]:
        """Node sequence of the shortest path by Euclidean length."""
        return nx.shortest_path(self.graph, u, v, weight="length")

    def path_length(self, path: list[int]) -> float:
        """Total Euclidean length of a node path."""
        return sum(self.edge_length(a, b) for a, b in zip(path, path[1:]))

    def path_geometry(self, path: list[int]) -> list[Point]:
        """Node positions along a path."""
        return [self.positions[n] for n in path]

    def random_route(
        self, rng: np.random.Generator, min_edges: int = 5
    ) -> list[int]:
        """Shortest path between two random nodes at least ``min_edges`` apart."""
        nodes = list(self.graph.nodes)
        for _ in range(100):
            u, v = rng.choice(nodes, size=2, replace=False)
            path = self.shortest_path(int(u), int(v))
            if len(path) - 1 >= min_edges:
                return path
        raise RuntimeError("could not find a long enough route; grow the network")

    # -- trajectories on the network ----------------------------------------------

    def trajectory_along_path(
        self,
        path: list[int],
        speed: float = 10.0,
        interval: float = 1.0,
        object_id: str = "veh",
        t_start: float = 0.0,
    ) -> Trajectory:
        """Uniform-speed traversal of ``path``, sampled every ``interval`` s."""
        geometry = self.path_geometry(path)
        total = polyline_length(geometry)
        if total == 0:
            raise ValueError("degenerate path")
        duration = total / speed
        ts = np.arange(0.0, duration + 1e-9, interval)
        points = [
            TrajectoryPoint(*point_along_polyline(geometry, speed * float(t)), t_start + float(t))
            for t in ts
        ]
        return Trajectory(points, object_id)

    def snap(self, p: Point) -> tuple[tuple[int, int], Point, float]:
        """Closest edge to ``p``: ``((u, v), projected point, distance)``."""
        best: tuple[tuple[int, int], Point, float] | None = None
        for u, v in self.graph.edges:
            a, b = self.positions[u], self.positions[v]
            from ..core.geometry import project_point_to_segment

            q, _ = project_point_to_segment(p, a, b)
            d = p.distance_to(q)
            if best is None or d < best[2]:
                best = ((u, v), q, d)
        if best is None:
            raise ValueError("network has no edges")
        return best
