"""Deterministic chunking and seed derivation for the parallel layer.

Every fleet-level consumer splits its work-list into contiguous chunks and
derives per-item RNG seeds *before* any executor is chosen.  Both functions
here are pure in the inputs shown — the chosen worker count never enters
the computation — which is what makes the ``workers=1`` serial fallback
bit-identical to every parallel schedule: the same chunks carrying the same
seeds produce the same floats, merely on different processes.
"""

from __future__ import annotations

import numpy as np

#: Upper bound on chunks produced by the default policy; keeps task-dispatch
#: overhead bounded for huge work-lists without ever consulting ``workers``.
_DEFAULT_MAX_CHUNKS = 64


def chunk_spans(n_items: int, chunk_size: int | None = None) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans covering ``range(n_items)``.

    With ``chunk_size=None`` the span count is ``min(n_items,
    _DEFAULT_MAX_CHUNKS)`` — a function of the work-list alone, never of the
    worker count, so chunk boundaries (and therefore any per-chunk work) are
    identical no matter which executor runs them.
    """
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    if n_items == 0:
        return []
    if chunk_size is None:
        n_chunks = min(n_items, _DEFAULT_MAX_CHUNKS)
        chunk_size = -(-n_items // n_chunks)  # ceil division
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(start, min(start + chunk_size, n_items)) for start in range(0, n_items, chunk_size)]


def derive_seed(base_seed: int, index: int) -> int:
    """Stable per-item seed: ``(base_seed, index) -> uint64``.

    Uses :class:`numpy.random.SeedSequence` spawn keys, so item seeds are
    statistically independent of each other and of the base sequence, and
    depend only on the item's *global* index — not on which chunk or worker
    the item lands on.
    """
    ss = np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def derive_seeds(base_seed: int, start: int, stop: int) -> list[int]:
    """Per-item seeds for the global index span ``[start, stop)``."""
    return [derive_seed(base_seed, i) for i in range(start, stop)]
