import numpy as np
import pytest

from repro.core import Trajectory, TrajectoryPoint, accuracy_error
from repro.cleaning import (
    detection_scores,
    heading_outliers,
    prediction_outliers,
    profile_outliers,
    remove_and_repair,
    remove_points,
    speed_outliers,
    zscore_outliers,
)
from repro.synth import add_gaussian_noise, add_outliers, correlated_random_walk


@pytest.fixture
def corrupted(rng, box):
    truth = correlated_random_walk(rng, 200, box, speed_mean=5, speed_sigma=1)
    noisy = add_gaussian_noise(truth, rng, 3.0)
    bad, idx = add_outliers(noisy, rng, rate=0.05, magnitude=200.0)
    return truth, bad, idx


class TestConstraintBased:
    def test_speed_finds_spikes(self, corrupted):
        _, bad, idx = corrupted
        found = speed_outliers(bad, max_speed=30.0)
        scores = detection_scores(found, idx, len(bad))
        assert scores["recall"] > 0.7

    def test_speed_clean_trajectory_no_flags(self, rng, box):
        clean = correlated_random_walk(rng, 100, box, speed_mean=5, speed_sigma=0.5)
        assert speed_outliers(clean, max_speed=30.0) == []

    def test_speed_short_trajectory(self, walk):
        assert speed_outliers(walk[0:2], 10.0) == []

    def test_heading_finds_reversals(self, corrupted):
        _, bad, idx = corrupted
        found = heading_outliers(bad)
        scores = detection_scores(found, idx, len(bad))
        assert scores["recall"] > 0.5


class TestStatisticsBased:
    def test_zscore_detects(self, corrupted):
        _, bad, idx = corrupted
        found = zscore_outliers(bad, window=7, threshold=3.0)
        scores = detection_scores(found, idx, len(bad))
        assert scores["f1"] > 0.7

    def test_zscore_clean_few_false_alarms(self, rng, box):
        clean = correlated_random_walk(rng, 200, box, speed_mean=5)
        found = zscore_outliers(clean, threshold=4.0)
        assert len(found) < 0.05 * 200

    def test_profile_requires_history(self, corrupted):
        _, bad, _ = corrupted
        with pytest.raises(ValueError):
            profile_outliers(bad, history=[])

    def test_profile_detects_with_history(self, rng, box, corrupted):
        truth, bad, idx = corrupted
        history = [
            correlated_random_walk(rng, 150, box, speed_mean=5, speed_sigma=1)
            for _ in range(10)
        ]
        found = profile_outliers(bad, history, threshold=3.0)
        scores = detection_scores(found, idx, len(bad))
        assert scores["recall"] > 0.5

    def test_profile_degrades_with_scarce_history(self, rng, box, corrupted):
        """Table row: statistics-based OR is restricted by history volume.

        A profile pooled from one short trajectory is noisier than one from
        many; across seeds, recall with rich history >= recall with scarce.
        """
        truth, bad, idx = corrupted
        rich = [
            correlated_random_walk(rng, 150, box, speed_mean=5, speed_sigma=1)
            for _ in range(10)
        ]
        scarce = [correlated_random_walk(rng, 5, box, speed_mean=5, speed_sigma=1)]
        r_rich = detection_scores(profile_outliers(bad, rich), idx, len(bad))
        r_scarce = detection_scores(profile_outliers(bad, scarce), idx, len(bad))
        assert r_rich["f1"] >= r_scarce["f1"] - 0.15


class TestPredictionBased:
    def test_detects_and_repairs(self, corrupted):
        truth, bad, idx = corrupted
        found, repaired = prediction_outliers(bad, measurement_sigma=3.0)
        scores = detection_scores(found, idx, len(bad))
        assert scores["f1"] > 0.7
        assert accuracy_error(repaired, truth) < accuracy_error(bad, truth)

    def test_repaired_preserves_count(self, corrupted):
        _, bad, _ = corrupted
        _, repaired = prediction_outliers(bad)
        assert len(repaired) == len(bad)
        assert repaired.times == bad.times

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            prediction_outliers(Trajectory([]))


class TestRemovalRepair:
    def test_remove_points(self, walk):
        out = remove_points(walk, [1, 3, 5])
        assert len(out) == len(walk) - 3

    def test_remove_and_repair_keeps_count(self, corrupted):
        _, bad, idx = corrupted
        repaired = remove_and_repair(bad, idx)
        assert len(repaired) == len(bad)
        assert repaired.times == bad.times

    def test_repair_improves_accuracy(self, corrupted):
        truth, bad, idx = corrupted
        repaired = remove_and_repair(bad, idx)
        assert accuracy_error(repaired, truth) < accuracy_error(bad, truth)

    def test_repair_with_true_indices_restores_smoothness(self):
        pts = [TrajectoryPoint(float(i), 0.0, float(i)) for i in range(10)]
        pts[5] = TrajectoryPoint(5.0, 300.0, 5.0)
        t = Trajectory(pts)
        fixed = remove_and_repair(t, [5])
        assert abs(fixed[5].y) < 1e-9


class TestScores:
    def test_perfect(self):
        s = detection_scores([1, 2], [1, 2], 10)
        assert s == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_empty_both(self):
        s = detection_scores([], [], 10)
        assert s["precision"] == 1.0 and s["recall"] == 1.0

    def test_no_detection(self):
        s = detection_scores([], [1], 10)
        assert s["recall"] == 0.0

    def test_all_false_alarms(self):
        s = detection_scores([5], [], 10)
        assert s["recall"] == 1.0 and s["precision"] == 0.0
