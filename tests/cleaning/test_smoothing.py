import numpy as np
import pytest

from repro.core import Trajectory, TrajectoryPoint, accuracy_error, precision_jitter
from repro.cleaning import (
    exponential_smoothing,
    heading_aware_smoothing,
    median_filter,
    moving_average,
)
from repro.synth import add_gaussian_noise, correlated_random_walk


@pytest.fixture
def noisy_pair(rng, box):
    truth = correlated_random_walk(rng, 150, box, speed_mean=5)
    return truth, add_gaussian_noise(truth, rng, 8.0)


ALL_SMOOTHERS = [
    ("ma", lambda t: moving_average(t, 5)),
    ("median", lambda t: median_filter(t, 5)),
    ("exp", lambda t: exponential_smoothing(t, 0.3)),
    # On noisy data apparent turns are everywhere; the higher threshold keeps
    # the smoother active except at genuine near-reversals.
    ("heading", lambda t: heading_aware_smoothing(t, 5, turn_threshold=2.6)),
]


@pytest.mark.parametrize("name,smoother", ALL_SMOOTHERS)
class TestAllSmoothers:
    def test_preserves_length_and_times(self, noisy_pair, name, smoother):
        _, noisy = noisy_pair
        out = smoother(noisy)
        assert len(out) == len(noisy)
        assert out.times == noisy.times

    def test_reduces_jitter(self, noisy_pair, name, smoother):
        _, noisy = noisy_pair
        assert precision_jitter(smoother(noisy)) < precision_jitter(noisy)

    def test_improves_accuracy(self, noisy_pair, name, smoother):
        truth, noisy = noisy_pair
        assert accuracy_error(smoother(noisy), truth) < accuracy_error(noisy, truth)

    def test_input_untouched(self, noisy_pair, name, smoother):
        _, noisy = noisy_pair
        before = list(noisy.points)
        smoother(noisy)
        assert list(noisy.points) == before


class TestSpecifics:
    def test_window_validation(self, walk):
        with pytest.raises(ValueError):
            moving_average(walk, 0)
        with pytest.raises(ValueError):
            median_filter(walk, 0)

    def test_alpha_validation(self, walk):
        with pytest.raises(ValueError):
            exponential_smoothing(walk, 0.0)
        with pytest.raises(ValueError):
            exponential_smoothing(walk, 1.5)

    def test_alpha_one_identity(self, walk):
        assert exponential_smoothing(walk, 1.0) == walk

    def test_median_robust_to_spike(self):
        pts = [TrajectoryPoint(float(i), 0.0, float(i)) for i in range(9)]
        pts[4] = TrajectoryPoint(4.0, 500.0, 4.0)  # gross spike
        spiky = Trajectory(pts)
        med = median_filter(spiky, 5)
        ma = moving_average(spiky, 5)
        assert abs(med[4].y) < abs(ma[4].y)

    def test_heading_aware_preserves_corner(self):
        # Sharp 90-degree corner at index 5.
        pts = [TrajectoryPoint(float(i), 0.0, float(i)) for i in range(6)]
        pts += [TrajectoryPoint(5.0, float(i), 5.0 + i) for i in range(1, 6)]
        corner = Trajectory(pts)
        plain = moving_average(corner, 5)
        aware = heading_aware_smoothing(corner, 5, turn_threshold=1.0)
        corner_pt = corner[5].point
        assert aware[5].point.distance_to(corner_pt) <= plain[5].point.distance_to(corner_pt)

    def test_short_trajectories_pass_through(self):
        t = Trajectory([TrajectoryPoint(0, 0, 0), TrajectoryPoint(1, 1, 1)])
        assert len(heading_aware_smoothing(t)) == 2
        assert len(moving_average(t, 5)) == 2
