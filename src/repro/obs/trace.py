"""Spans and tracers: contextvar-propagated structured timing records.

A :class:`Tracer` hands out :meth:`~Tracer.span` context managers; spans
nest through a :mod:`contextvars` variable, so each thread (and each task
context) carries its own current-span chain without any locking.  Finished
spans are immutable :class:`SpanRecord` rows pushed to an exporter — the
in-memory :class:`RingBufferExporter` (default; bounded, zero-dependency)
or a :class:`JsonlExporter` that appends one JSON object per line for
benchmark runs.

Identifiers are deterministic: span and trace ids come from per-tracer
monotonic counters, never from a random source, so two runs of the same
seeded workload produce identical span trees.  Worker-process spans are
folded back in with :meth:`Tracer.absorb`, which remaps their ids onto the
parent tracer's sequence and re-parents worker roots under the dispatching
span — giving one connected tree across process boundaries.

All timestamps flow through the injectable :class:`~repro.obs.clock.Clock`
(the library's single audited wall-time seam).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import IO, Iterable

from .clock import Clock, MonotonicClock

#: Attribute payload: sorted ``(key, rendered value)`` pairs.
Attrs = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class SpanContext:
    """Picklable position in a span tree: the ids a child needs to attach."""

    span_id: int
    trace_id: int


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, tree position, clock interval, attributes."""

    name: str
    span_id: int
    parent_id: int | None
    trace_id: int
    start: float
    end: float
    attrs: Attrs = ()

    @property
    def duration(self) -> float:
        """Span length in clock seconds."""
        return self.end - self.start

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (the JSONL exporter's row format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class RingBufferExporter:
    """Bounded in-memory span sink (oldest records evicted first)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._buffer_lock = threading.Lock()

    def export(self, record: SpanRecord) -> None:
        """Append one finished span."""
        with self._buffer_lock:
            self._buffer.append(record)

    def records(self) -> list[SpanRecord]:
        """Copy of the retained spans, oldest first."""
        with self._buffer_lock:
            return list(self._buffer)

    def clear(self) -> None:
        """Drop all retained spans."""
        with self._buffer_lock:
            self._buffer.clear()


class JsonlExporter:
    """Span sink appending one JSON object per line to a file.

    Suited to benchmark runs where the span volume outgrows a ring buffer;
    the file handle is line-buffered appends, flushed on :meth:`close`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._io_lock = threading.Lock()
        self._fh: IO[str] | None = open(path, "a", encoding="utf-8")

    def export(self, record: SpanRecord) -> None:
        """Write one finished span as a JSON line."""
        with self._io_lock:
            if self._fh is not None:
                self._fh.write(json.dumps(record.as_dict()) + "\n")

    def records(self) -> list[SpanRecord]:
        """JSONL exporters retain nothing in memory."""
        return []

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._io_lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _ActiveSpan:
    """Mutable in-flight span handed to the ``with`` body for attribute adds."""

    __slots__ = ("name", "context", "parent_id", "start", "attrs")

    def __init__(
        self, name: str, context: SpanContext, parent_id: int | None, start: float, attrs: Attrs
    ) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.attrs = dict(attrs)

    def set_attr(self, key: str, value: object) -> None:
        """Attach or overwrite one attribute on the in-flight span."""
        self.attrs[str(key)] = _render(value)


class _SpanCm:
    """Reusable-shape span context manager (one per ``Tracer.span`` call)."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: _ActiveSpan) -> None:
        self._tracer = tracer
        self._span = span
        self._token: contextvars.Token | None = None

    def __enter__(self) -> _ActiveSpan:
        self._token = self._tracer._current.set(self._span.context)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self._token is not None:
            self._tracer._current.reset(self._token)
        if exc_type is not None:
            self._span.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._tracer._finish(self._span)


def _render(value: object) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


class Tracer:
    """Span factory with contextvar parenting and deterministic ids.

    One tracer per process side (the runtime owns a global one when
    observability is enabled); span creation is cheap — a counter bump, a
    clock read, and a contextvar set — and safe from any thread.
    """

    def __init__(self, exporter=None, clock: Clock | None = None) -> None:
        self.exporter = exporter if exporter is not None else RingBufferExporter()
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._current: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
            "repro_obs_span", default=None
        )

    def span(self, name: str, **attrs: object):
        """Context manager opening a child of the current span.

        The managed value is the active span; use ``set_attr`` to attach
        attributes discovered mid-flight.  On exit the finished record goes
        to the exporter; an exception type is recorded as attr ``error``.
        """
        parent = self._current.get()
        span_id = next(self._span_ids)
        trace_id = parent.trace_id if parent is not None else next(self._trace_ids)
        active = _ActiveSpan(
            name,
            SpanContext(span_id, trace_id),
            parent.span_id if parent is not None else None,
            self.clock.now(),
            tuple(sorted((str(k), _render(v)) for k, v in attrs.items())),
        )
        return _SpanCm(self, active)

    def current_context(self) -> SpanContext | None:
        """The active span's ``(span_id, trace_id)``, or None at top level."""
        return self._current.get()

    def finished(self) -> list[SpanRecord]:
        """Spans retained by the exporter (empty for sink-style exporters)."""
        return self.exporter.records()

    def absorb(self, records: Iterable[SpanRecord], remote: SpanContext | None) -> None:
        """Fold worker-process spans in, re-iding and re-parenting them.

        Worker ids are remapped onto this tracer's sequences; worker root
        spans become children of ``remote`` (the dispatching span) when
        given, so the merged export is one connected tree.
        """
        rows = list(records)
        id_map = {r.span_id: next(self._span_ids) for r in rows}
        trace_map: dict[int, int] = {}
        for r in rows:
            if remote is not None:
                trace_id = remote.trace_id
            else:
                if r.trace_id not in trace_map:
                    trace_map[r.trace_id] = next(self._trace_ids)
                trace_id = trace_map[r.trace_id]
            if r.parent_id is not None and r.parent_id in id_map:
                parent_id: int | None = id_map[r.parent_id]
            else:
                parent_id = remote.span_id if remote is not None else None
            self.exporter.export(
                SpanRecord(
                    r.name, id_map[r.span_id], parent_id, trace_id, r.start, r.end, r.attrs
                )
            )

    def _finish(self, span: _ActiveSpan) -> None:
        self.exporter.export(
            SpanRecord(
                span.name,
                span.context.span_id,
                span.parent_id,
                span.context.trace_id,
                span.start,
                self.clock.now(),
                tuple(sorted(span.attrs.items())),
            )
        )


def span_tree(records: Iterable[SpanRecord]) -> dict[int | None, list[SpanRecord]]:
    """Group finished spans by parent id (None = roots), start-ordered.

    A convenience for tests and reports: ``tree[None]`` lists the roots,
    ``tree[span_id]`` the direct children of that span.
    """
    tree: dict[int | None, list[SpanRecord]] = {}
    for r in records:
        tree.setdefault(r.parent_id, []).append(r)
    for children in tree.values():
        children.sort(key=lambda r: (r.start, r.span_id))
    return tree
