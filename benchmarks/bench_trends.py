"""Experiment TREND — the emerging trends of Sec. 2.4, measured.

The tutorial closes with trends the taxonomy points toward.  Each is built
here and its defining trade-off measured:

  * Privacy-preserving computing [117]: exact outsourced queries with
    (near-)zero geometric leakage to the server.
  * Quality-driven stream processing [48]: the completeness/latency knob of
    out-of-order aggregation.
  * Edge/fog computing [130, 62]: tier-by-tier volume reduction at a
    bounded reconstruction error.
  * Federated learning [55, 75]: centralized-level accuracy with no raw
    data sharing; fixes per-user data scarcity.
  * Similarity search at scale [111]: lower-bound pruning preserves exact
    answers while skipping most expensive comparisons.
"""

import numpy as np

from conftest import print_table

from repro.analytics import SimilaritySearch
from repro.core import Point
from repro.decision import (
    evaluate_accuracy,
    split_stream,
    train_centralized,
    train_federated,
    train_local_only,
)
from repro.querying import (
    GridShuffleScheme,
    OutsourcedStore,
    PrivateQueryClient,
    StreamEvent,
    distance_leakage,
    run_stream,
)
from repro.reduction import EdgeNode, cloud_only_baseline
from repro.synth import (
    CheckInWorld,
    SmoothField,
    add_gaussian_noise,
    fleet,
    generate_pois,
    random_sensor_sites,
)


def test_private_outsourced_queries(rng, box, benchmark):
    scheme = GridShuffleScheme(box, 16, b"owner-secret")
    store = OutsourcedStore(16, box)
    client = PrivateQueryClient(scheme, store)
    points = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(500)]
    client.upload(points)
    exact = 0
    for _ in range(10):
        q = Point(rng.uniform(100, 900), rng.uniform(100, 900))
        r = float(rng.uniform(50, 150))
        hits = sorted(client.range_query(q, r))
        truth = sorted(i for i, p in enumerate(points) if p.distance_to(q) <= r)
        exact += hits == truth
    leak = distance_leakage(scheme, points, rng)
    benchmark(client.range_query, Point(500, 500), 100.0)
    rows = [("exact answers", f"{exact}/10"), ("distance leakage |corr|", leak)]
    print_table("TREND: privacy-preserving outsourced queries", ["metric", "value"], rows)
    assert exact == 10
    assert leak < 0.3


def test_quality_driven_streams(rng, benchmark):
    events = [
        StreamEvent(float(t), float(t) + rng.exponential(5.0), float(t % 7))
        for t in range(400)
    ]
    rows = []
    comp, lat = [], []
    for lateness in (0.0, 10.0, 40.0):
        agg = run_stream(events, 10.0, lateness)
        rows.append((lateness, agg.completeness(), agg.mean_result_latency()))
        comp.append(agg.completeness())
        lat.append(agg.mean_result_latency())
    benchmark(run_stream, events, 10.0, 10.0)
    print_table(
        "TREND: out-of-order aggregation (quality-driven)",
        ["allowed lateness (s)", "completeness", "result latency (s)"],
        rows,
    )
    assert comp == sorted(comp) and lat == sorted(lat)
    assert comp[-1] == 1.0


def test_edge_tier_reduction(rng, box, benchmark):
    field = SmoothField(rng, box, n_bumps=4)
    sites = random_sensor_sites(rng, 10, box)
    series = field.sample_sensors(sites, np.arange(0, 2000, 10.0), rng, noise_sigma=0.1)
    raw = cloud_only_baseline(series)
    node = EdgeNode(tolerance=0.5)
    result = benchmark(node.run, series)
    rows = [
        ("device -> cloud (no edge)", raw.payload_bytes, 1.0),
        (
            "device -> edge (suppression)",
            result.device_to_edge.payload_bytes,
            raw.payload_bytes / max(1, result.device_to_edge.payload_bytes),
        ),
        (
            "edge -> cloud (batched codec)",
            result.edge_to_cloud.payload_bytes,
            result.reduction_vs_raw(raw.records),
        ),
    ]
    print_table(
        "TREND: edge/fog tiered reduction (tolerance 0.5)",
        ["hop", "bytes", "reduction vs raw"],
        rows,
    )
    assert result.max_error(series) <= 0.5 + 1e-9
    assert result.reduction_vs_raw(raw.records) > 10.0


def test_federated_mobility_model(rng, big_box, benchmark):
    pois = generate_pois(rng, 30, big_box)
    world = CheckInWorld(
        rng, pois, n_users=10, distance_scale=200.0, preference_concentration=0.3
    )
    stream = world.simulate(rng, 100)
    train, test = split_stream(stream, 0.7)
    fed = benchmark(train_federated, train, len(pois))
    cen = train_centralized(train, len(pois))
    acc_fed = evaluate_accuracy(fed, test, 5)["hit@5"]
    acc_cen = evaluate_accuracy(cen, test, 5)["hit@5"]
    local_accs = []
    for user in range(5):
        own = [c for c in test if c.user_id == user]
        if len(own) >= 3:
            local = train_local_only(train, len(pois), user)
            local_accs.append(evaluate_accuracy(local, own, 5)["hit@5"])
    rows = [
        ("local only (mean of 5 users)", float(np.mean(local_accs))),
        ("federated (no raw sharing)", acc_fed),
        ("centralized (raw pooling)", acc_cen),
    ]
    print_table("TREND: federated next-location, hit@5", ["training", "accuracy"], rows)
    assert acc_fed == acc_cen  # exact aggregation
    assert acc_fed >= np.mean(local_accs)


def test_similarity_search_pruning(rng, big_box, benchmark):
    corpus = fleet(rng, 40, 60, big_box, speed_mean=5)
    query = add_gaussian_noise(corpus[11], rng, 5.0)
    search = SimilaritySearch(corpus)
    got, stats = benchmark(search.knn, query, 5)
    brute = search.knn_brute_force(query, 5)
    rows = [
        ("answers match brute force", got == brute),
        ("pruning ratio", stats.pruning_ratio),
        ("refined / corpus", f"{stats.refined}/{stats.candidates}"),
    ]
    print_table("TREND: trajectory similarity search", ["metric", "value"], rows)
    assert got == brute
    assert stats.pruning_ratio > 0.3


def test_synthetic_trajectory_generation(rng, box, benchmark):
    """Privacy-preserving generation [23, 76]: synthetic traces keep the
    aggregate mobility statistics while copying no individual."""
    from repro.analytics import (
        MarkovTrajectoryGenerator,
        nearest_real_distance,
        visit_distribution_divergence,
    )

    corpus = fleet(rng, 25, 60, box, speed_mean=6)
    gen = MarkovTrajectoryGenerator(box, 100.0).fit(corpus)
    synth = benchmark(gen.sample_many, rng, 25, 60)
    p = gen.visit_distribution(corpus)
    q = gen.visit_distribution(synth)
    uniform = np.full_like(p, 1.0 / len(p))
    js_synth = visit_distribution_divergence(p, q)
    js_uniform = visit_distribution_divergence(p, uniform)
    min_copy = min(nearest_real_distance(s, corpus) for s in synth[:8])
    rows = [
        ("JS(real, synthetic)", js_synth),
        ("JS(real, uniform) [no-utility baseline]", js_uniform),
        ("min distance to any real trace (m)", min_copy),
    ]
    print_table("TREND: privacy-aware trajectory generation", ["metric", "value"], rows)
    assert js_synth < js_uniform  # utility preserved
    assert min_copy > 10.0  # nobody copied
