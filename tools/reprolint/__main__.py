"""CLI for reprolint: ``python -m tools.reprolint [paths...]`` from the root.

Exit status is 0 when the tree is clean against the baseline and nonzero
when any unwaived finding remains — the contract the CI ``lint-invariants``
job and the tier-1 test both rely on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core import DEFAULT_BASELINE, Baseline, run_reprolint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST invariant checks: determinism, shm lifecycle, kernel "
        "parity, lock discipline, export hygiene.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src/repro under --root)",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(), help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"waiver file (default: <root>/{DEFAULT_BASELINE.as_posix()})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if args.no_baseline:
        baseline = Baseline.empty()
    elif args.baseline is not None:
        baseline = Baseline.load(args.baseline)
    else:
        default = root / DEFAULT_BASELINE
        baseline = Baseline.load(default) if default.exists() else Baseline.empty()

    findings = run_reprolint(root, paths=args.paths or None, baseline=baseline)

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"reprolint: {len(findings)} finding(s)")
        else:
            print("reprolint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
