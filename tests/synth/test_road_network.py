import networkx as nx
import numpy as np
import pytest

from repro.core import BBox, Point
from repro.synth import RoadNetwork


@pytest.fixture
def grid_net():
    return RoadNetwork.grid(4, 4, spacing=100.0)


class TestConstruction:
    def test_grid_counts(self, grid_net):
        assert grid_net.graph.number_of_nodes() == 16
        # 4x4 grid: 2 * 4 * 3 = 24 edges.
        assert grid_net.graph.number_of_edges() == 24

    def test_grid_edge_lengths(self, grid_net):
        assert all(
            grid_net.edge_length(u, v) == pytest.approx(100.0)
            for u, v in grid_net.graph.edges
        )

    def test_random_geometric_connected(self, rng, box):
        net = RoadNetwork.random_geometric(rng, 60, box, radius=300)
        assert nx.is_connected(net.graph)

    def test_missing_position_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            RoadNetwork(g, {})

    def test_bbox(self, grid_net):
        b = grid_net.bbox()
        assert (b.max_x, b.max_y) == (300.0, 300.0)


class TestRouting:
    def test_shortest_path_manhattan(self, grid_net):
        path = grid_net.shortest_path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert grid_net.path_length(path) == pytest.approx(600.0)

    def test_random_route_min_edges(self, rng, grid_net):
        route = grid_net.random_route(rng, min_edges=4)
        assert len(route) - 1 >= 4

    def test_nearest_node(self, grid_net):
        assert grid_net.nearest_node(Point(95, 8)) == 1

    def test_edges_view(self, grid_net):
        edges = grid_net.edges()
        assert len(edges) == 24
        assert edges[0].length == pytest.approx(100.0)


class TestTrajectoryOnNetwork:
    def test_constant_speed(self, grid_net):
        route = grid_net.shortest_path(0, 3)  # 300 m straight
        t = grid_net.trajectory_along_path(route, speed=10, interval=1.0)
        assert t.duration == pytest.approx(30.0)
        assert np.allclose(t.speeds(), 10.0, atol=1e-6)

    def test_endpoints_on_route(self, grid_net):
        route = grid_net.shortest_path(0, 15)
        t = grid_net.trajectory_along_path(route, speed=20)
        assert t[0].point == grid_net.positions[0]
        assert t[-1].point.distance_to(grid_net.positions[15]) < 25.0

    def test_degenerate_path_rejected(self, grid_net):
        with pytest.raises(ValueError):
            grid_net.trajectory_along_path([0], speed=10)

    def test_snap_to_nearest_edge(self, grid_net):
        edge, q, d = grid_net.snap(Point(50, 7))
        assert set(edge) == {0, 1}
        assert q == Point(50, 0)
        assert d == pytest.approx(7.0)

    def test_points_lie_on_network(self, rng, grid_net):
        route = grid_net.random_route(rng, min_edges=5)
        t = grid_net.trajectory_along_path(route, speed=15)
        for p in t:
            _, _, d = grid_net.snap(p.point)
            assert d < 1e-6
