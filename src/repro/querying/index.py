"""Spatial indexes for query processing over massive SID (Sec. 2.3.1).

The two workhorse access methods, rebuilt on the columnar compute core
(:mod:`repro.kernels`) so candidate filtering runs as NumPy reductions
instead of per-entry ``distance_to`` calls:

* :class:`GridIndex` — a uniform grid for point data (cheap build, good for
  uniform distributions) with array-backed cell storage,
* :class:`RTree` — an STR-bulk-loaded R-tree with best-first kNN (robust to
  skew) whose leaves hold columnar coordinate arrays,
* :func:`brute_force_range` / :func:`brute_force_knn` — single-reduction
  linear-scan baselines, with batch variants
  (:func:`brute_force_range_many` / :func:`brute_force_knn_many`) that pay
  the object-to-column conversion once per entry set.

Every access method answers kNN under the deterministic
``(distance, item_id)`` rule: equal-distance items come back in ascending
id order, so index-vs-baseline comparisons can never flake on ties.  Batch
APIs (``range_query_many`` / ``knn_many``) answer many probes per columnar
snapshot; the scalar reference loops retained for validation live in
:mod:`repro.kernels.reference`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import kernels
from ..core.geometry import BBox, Point
from ..obs import OBS

# Cap on the elements of a batch distance matrix; larger batches are answered
# in query chunks so memory stays flat.
_BATCH_ELEMENTS = 4_000_000

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


def _batch_cm(kind: str, index: str, n_queries: int):
    """Span plus batch/query counters for one batch entry point.

    Returns a shared no-op context when observability is disabled, so the
    hot path pays a single attribute check.  Durations are attributed by
    the tracer's injectable clock — this module never reads wall time.
    """
    if not OBS.enabled:
        return _NULL
    labels = (("index", index), ("kind", kind))
    OBS.metrics.inc("repro_query_batch_total", labels)
    OBS.metrics.inc("repro_query_queries_total", labels, float(n_queries))
    return OBS.tracer.span(f"query.{kind}_many", index=index, queries=n_queries)


@dataclass(frozen=True)
class IndexEntry:
    """An indexed item: a point with the caller's payload id."""

    point: Point
    item_id: int


def brute_force_range(entries: list[IndexEntry], center: Point, radius: float) -> list[int]:
    """All item ids within ``radius`` of ``center`` (one NumPy reduction)."""
    coords, ids = kernels.entry_columns(entries)
    return [int(i) for i in ids[kernels.range_mask(coords, center, radius)]]


def brute_force_knn(entries: list[IndexEntry], center: Point, k: int) -> list[int]:
    """Ids of the k nearest items, ties broken by ascending ``item_id``."""
    coords, ids = kernels.entry_columns(entries)
    return [int(i) for i in kernels.knn_select(kernels.dists_to(coords, center), ids, k)]


def _query_chunks(n_points: int, n_queries: int) -> range:
    chunk = max(1, _BATCH_ELEMENTS // max(1, n_points))
    return range(0, n_queries, chunk)


def brute_force_range_many(
    entries: list[IndexEntry], centers: Sequence[Point], radii
) -> list[list[int]]:
    """Batch disk queries over one entry set, columnarized once.

    ``radii`` is a scalar shared by every query or a per-query sequence.
    Returns one id list per center, each in entry order (ascending id when
    entries come from :func:`build_entries`).
    """
    coords, ids = kernels.entry_columns(entries)
    c = kernels.centers_of(centers)
    r = np.broadcast_to(np.asarray(radii, dtype=float), (c.shape[0],))
    out: list[list[int]] = []
    with _batch_cm("range", "brute_force", c.shape[0]):
        chunks = _query_chunks(coords.shape[0], c.shape[0])
        for start in chunks:
            stop = start + chunks.step
            masks = kernels.range_masks(coords, c[start:stop], r[start:stop])
            out.extend([int(i) for i in ids[m]] for m in masks)
    return out


def brute_force_knn_many(
    entries: list[IndexEntry], centers: Sequence[Point], k: int
) -> list[list[int]]:
    """Batch kNN over one entry set (``(distance, item_id)`` tie rule)."""
    coords, ids = kernels.entry_columns(entries)
    c = kernels.centers_of(centers)
    out: list[list[int]] = []
    with _batch_cm("knn", "brute_force", c.shape[0]):
        chunks = _query_chunks(coords.shape[0], c.shape[0])
        for start in chunks:
            stop = start + chunks.step
            for sel in kernels.knn_select_many(coords, ids, c[start:stop], k):
                out.append([int(i) for i in sel])
    return out


class GridIndex:
    """Uniform grid over a fixed region with array-backed cell storage.

    Inserts append to per-cell buckets; the first query after an insert
    snapshots every bucket into contiguous ``(m, 2)`` coordinate and
    ``(m,)`` id arrays, so query-time candidate filtering is a vectorized
    distance reduction per cell instead of a per-entry Python loop.
    """

    def __init__(self, region: BBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.region = region
        self.cell_size = cell_size
        self.nx = max(1, int(math.ceil(region.width / cell_size)))
        self.ny = max(1, int(math.ceil(region.height / cell_size)))
        self._cells: dict[tuple[int, int], list[IndexEntry]] = {}
        self._columns: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] | None = None
        self._count = 0

    def _cell_of(self, p: Point) -> tuple[int, int]:
        xi = min(self.nx - 1, max(0, int((p.x - self.region.min_x) / self.cell_size)))
        yi = min(self.ny - 1, max(0, int((p.y - self.region.min_y) / self.cell_size)))
        return xi, yi

    def insert(self, entry: IndexEntry) -> None:
        """Add one entry to its cell's bucket (invalidates the snapshot)."""
        self._cells.setdefault(self._cell_of(entry.point), []).append(entry)
        self._columns = None
        self._count += 1

    def _ensure_columns(self) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]:
        if self._columns is None:
            self._columns = {
                cell: kernels.entry_columns(bucket) for cell, bucket in self._cells.items()
            }
        return self._columns

    def __len__(self) -> int:
        return self._count

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Ids within the disk; visits only cells overlapping its bbox."""
        columns = self._ensure_columns()
        # Clamp both window ends into [0, n-1] — matching the clamp in
        # ``_cell_of`` — so a disk centered on (or past) the region's max
        # border still reaches the last cell, where border points live.
        x0 = min(self.nx - 1, max(0, int((center.x - radius - self.region.min_x) / self.cell_size)))
        x1 = min(self.nx - 1, max(0, int((center.x + radius - self.region.min_x) / self.cell_size)))
        y0 = min(self.ny - 1, max(0, int((center.y - radius - self.region.min_y) / self.cell_size)))
        y1 = min(self.ny - 1, max(0, int((center.y + radius - self.region.min_y) / self.cell_size)))
        out: list[int] = []
        for xi in range(x0, x1 + 1):
            for yi in range(y0, y1 + 1):
                piece = columns.get((xi, yi))
                if piece is None:
                    continue
                coords, ids = piece
                out.extend(int(i) for i in ids[kernels.range_mask(coords, center, radius)])
        return out

    def range_query_many(self, centers: Sequence[Point], radii) -> list[list[int]]:
        """Batch disk queries against one columnar snapshot.

        ``radii`` is a scalar or per-query sequence; returns one id list
        per center (same per-query results as :meth:`range_query`).
        """
        r = np.broadcast_to(np.asarray(radii, dtype=float), (len(centers),))
        with _batch_cm("range", "grid", len(centers)):
            return [self.range_query(c, float(rad)) for c, rad in zip(centers, r)]

    def knn(self, center: Point, k: int) -> list[int]:
        """k nearest by ring expansion, ties broken by ascending id."""
        if self._count == 0 or k < 1:
            return []
        columns = self._ensure_columns()
        cx, cy = self._cell_of(center)
        d_parts: list[np.ndarray] = []
        id_parts: list[np.ndarray] = []
        total = 0
        ring = 0
        max_ring = max(self.nx, self.ny)
        while ring <= max_ring:
            found_any = False
            for xi in range(cx - ring, cx + ring + 1):
                for yi in range(cy - ring, cy + ring + 1):
                    if max(abs(xi - cx), abs(yi - cy)) != ring:
                        continue
                    piece = columns.get((xi, yi))
                    if piece is None:
                        continue
                    coords, ids = piece
                    found_any = True
                    d_parts.append(kernels.dists_to(coords, center))
                    id_parts.append(ids)
                    total += ids.shape[0]
            # Stop when the k-th distance is closed by the explored rings:
            # any unexplored cell lies at least ``ring`` full cells away.
            if total >= k:
                kth = float(np.partition(np.concatenate(d_parts), k - 1)[k - 1])
                if kth <= ring * self.cell_size:
                    break
                if not found_any:
                    break
            ring += 1
        if total == 0:
            return []
        sel = kernels.knn_select(np.concatenate(d_parts), np.concatenate(id_parts), k)
        return [int(i) for i in sel]

    def knn_many(self, centers: Sequence[Point], k: int) -> list[list[int]]:
        """Batch kNN against one columnar snapshot (same tie rule)."""
        self._ensure_columns()
        with _batch_cm("knn", "grid", len(centers)):
            return [self.knn(c, k) for c in centers]


class _Node:
    __slots__ = ("bbox", "children", "entries", "coords", "ids")

    def __init__(
        self,
        bbox: BBox,
        children: list["_Node"] | None,
        entries: list[IndexEntry] | None,
    ):
        self.bbox = bbox
        self.children = children
        self.entries = entries
        if entries is not None:
            self.coords, self.ids = kernels.entry_columns(entries)
        else:
            self.coords, self.ids = None, None

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTree:
    """STR (Sort-Tile-Recursive) bulk-loaded R-tree with columnar leaves."""

    def __init__(self, entries: list[IndexEntry], leaf_capacity: int = 16) -> None:
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be >= 2")
        self.leaf_capacity = leaf_capacity
        self._size = len(entries)
        self.root = self._bulk_load(list(entries)) if entries else None

    def __len__(self) -> int:
        return self._size

    def _bulk_load(self, entries: list[IndexEntry]) -> _Node:
        # Build leaves via STR tiling.
        n = len(entries)
        cap = self.leaf_capacity
        n_leaves = math.ceil(n / cap)
        n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
        entries.sort(key=lambda e: e.point.x)
        slice_size = math.ceil(n / n_slices)
        leaves: list[_Node] = []
        for i in range(0, n, slice_size):
            strip = sorted(entries[i : i + slice_size], key=lambda e: e.point.y)
            for j in range(0, len(strip), cap):
                chunk = strip[j : j + cap]
                bbox = BBox.from_points(e.point for e in chunk)
                leaves.append(_Node(bbox, None, chunk))
        # Pack upward until a single root remains.
        level = leaves
        while len(level) > 1:
            level.sort(key=lambda nd: (nd.bbox.center.x, nd.bbox.center.y))
            parents = []
            for i in range(0, len(level), cap):
                chunk = level[i : i + cap]
                bbox = chunk[0].bbox
                for nd in chunk[1:]:
                    bbox = bbox.union(nd.bbox)
                parents.append(_Node(bbox, chunk, None))
            level = parents
        return level[0]

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Ids within the disk, pruning subtrees by bbox min-distance.

        Leaf candidates are filtered by one vectorized distance reduction
        per visited leaf.
        """
        if self.root is None:
            return []
        out: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.bbox.min_distance_to(center) > radius:
                continue
            if node.is_leaf:
                mask = kernels.range_mask(node.coords, center, radius)
                out.extend(int(i) for i in node.ids[mask])
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return out

    def range_query_many(self, centers: Sequence[Point], radii) -> list[list[int]]:
        """Batch disk queries (one traversal per query, vectorized leaves)."""
        r = np.broadcast_to(np.asarray(radii, dtype=float), (len(centers),))
        with _batch_cm("range", "rtree", len(centers)):
            return [self.range_query(c, float(rad)) for c, rad in zip(centers, r)]

    def knn(self, center: Point, k: int) -> list[int]:
        """Best-first kNN (Hjaltason-Samet), ties broken by ascending id.

        Heap keys are ``(distance, kind, tiebreak)`` with nodes ordered
        before items at equal distance, so a subtree whose bound ties the
        current item is always expanded first — equal-distance items then
        surface in ascending id order, matching :func:`brute_force_knn`.
        """
        if self.root is None or k < 1:
            return []
        counter = itertools.count()
        # kind 0 = node (expand before equal-distance items), 1 = item.
        heap: list[tuple[float, int, int, _Node | None]] = [
            (self.root.bbox.min_distance_to(center), 0, next(counter), self.root)
        ]
        out: list[int] = []
        while heap and len(out) < k:
            dist, kind, tie, node = heapq.heappop(heap)
            if kind == 1:  # an item surfaced: it is the next nearest
                out.append(tie)
                continue
            assert node is not None
            if node.is_leaf:
                dists = kernels.dists_to(node.coords, center)
                for d, i in zip(dists.tolist(), node.ids.tolist()):
                    heapq.heappush(heap, (d, 1, i, None))
            else:
                for child in node.children:  # type: ignore[union-attr]
                    heapq.heappush(
                        heap,
                        (child.bbox.min_distance_to(center), 0, next(counter), child),
                    )
        return out

    def knn_many(self, centers: Sequence[Point], k: int) -> list[list[int]]:
        """Batch kNN over the tree (same ``(distance, id)`` tie rule)."""
        with _batch_cm("knn", "rtree", len(centers)):
            return [self.knn(c, k) for c in centers]


def build_entries(points: list[Point]) -> list[IndexEntry]:
    """Wrap points as entries ids 0..n-1."""
    return [IndexEntry(p, i) for i, p in enumerate(points)]
