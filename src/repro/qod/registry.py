"""The thread-safe QoD registry: incremental evidence, on-demand scores.

:class:`QodRegistry` is the live end of the QoD engine.  It hangs off the
ingest engine's ``on_admit`` seam (:func:`qod_ingest_hook`) so every
gate-admitted reading folds into constant-memory per-sensor accumulators
— an :class:`~repro.ingest.online_stats.OnlineSensorStats` (or its
windowed pane-rotating variant) for the self checks, plus value moments
and a trend-slope regression for the deployment detectors — and a
scoring pass (:meth:`QodRegistry.scores`) composites the three control
points (:mod:`repro.qod.checks`) into one :class:`~repro.qod.checks
.QodScore` per sensor whenever exploitation needs fresh weights.

Concurrency mirrors :class:`repro.ingest.registry.QualityRegistry`: a
registry lock guards the sensor map, a per-sensor lock guards that
sensor's accumulators, and the two are never held together.  Scoring
snapshots each sensor under its own lock, then works on immutable
summaries — updates arriving mid-pass land in the *next* pass.

Determinism: everything is a pure function of the admitted event stream
(event times, not wall time).  ``scores(now=...)`` defaults ``now`` to
the injected :class:`~repro.obs.clock.Clock` when one was provided, else
to the fleet's newest event time — so un-clocked registries are fully
reproducible, R1-clean, and need no waiver.
"""

from __future__ import annotations

import math
import threading
from contextlib import nullcontext
from typing import Callable, Iterable

from ..core.quality import Dimension
from ..ingest.events import IngestEvent
from ..ingest.online_stats import OnlineSensorStats, Welford, WindowedSensorStats
from ..obs import OBS
from ..obs.clock import Clock
from .checks import (
    QodScore,
    SensorSummary,
    composite_score,
    deployment_score,
    drift_score,
    obstruction_score,
    reference_score,
    self_check_score,
    staleness_factor,
    stuck_score,
)
from .config import QodConfig
from .reference import fleet_dispersion, fleet_slope, neighbor_consensus

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


class _ValueMoments:
    """One pane of value moments: Welford + a least-squares trend.

    ``push`` takes event times relative to the sensor's first reading
    (keeps the normal-equation sums well conditioned and lets panes
    combine by plain addition).
    """

    __slots__ = ("welford", "sum_t", "sum_v", "sum_tt", "sum_tv")

    def __init__(self) -> None:
        self.welford = Welford()
        self.sum_t = 0.0
        self.sum_v = 0.0
        self.sum_tt = 0.0
        self.sum_tv = 0.0

    def push(self, rel_t: float, value: float) -> None:
        self.welford.push(value)
        self.sum_t += rel_t
        self.sum_v += value
        self.sum_tt += rel_t * rel_t
        self.sum_tv += rel_t * value

    @classmethod
    def combine(cls, a: "_ValueMoments", b: "_ValueMoments") -> "_ValueMoments":
        out = cls()
        out.welford = Welford.combine(a.welford, b.welford)
        out.sum_t = a.sum_t + b.sum_t
        out.sum_v = a.sum_v + b.sum_v
        out.sum_tt = a.sum_tt + b.sum_tt
        out.sum_tv = a.sum_tv + b.sum_tv
        return out

    def slope(self) -> float:
        """Least-squares value trend (units/s); 0.0 when underdetermined."""
        n = self.welford.n
        if n < 2:
            return 0.0
        var_t = self.sum_tt - self.sum_t * self.sum_t / n
        if var_t <= 1e-12:
            return 0.0
        return (self.sum_tv - self.sum_t * self.sum_v / n) / var_t


class _SensorState:
    """Mutable per-sensor evidence; every access goes through its entry lock."""

    __slots__ = (
        "stats",
        "n",
        "n_out_of_bounds",
        "x",
        "y",
        "t_first",
        "t_last",
        "window",
        "pane_start",
        "pane_prev",
        "pane_cur",
    )

    def __init__(self, config: QodConfig) -> None:
        stats_kwargs = {
            "expected_interval": config.expected_interval,
            "value_rate_bounds": config.value_rate_bounds,
        }
        self.stats: OnlineSensorStats | WindowedSensorStats
        if config.window is not None:
            self.stats = WindowedSensorStats(config.window, **stats_kwargs)
        else:
            self.stats = OnlineSensorStats(**stats_kwargs)
        self.n = 0
        self.n_out_of_bounds = 0
        self.x = 0.0
        self.y = 0.0
        self.t_first: float | None = None
        self.t_last = 0.0
        self.window = config.window
        self.pane_start: float | None = None
        self.pane_prev: _ValueMoments | None = None
        self.pane_cur = _ValueMoments()

    def update(self, event: IngestEvent, value_bounds: tuple[float, float] | None) -> None:
        self.n += 1
        self.x = event.x
        self.y = event.y
        if self.t_first is None:
            self.t_first = event.t
        self.t_last = max(self.t_last, event.t) if self.n > 1 else event.t
        self.stats.update(event)
        value = event.value
        if math.isnan(value):
            return
        if value_bounds is not None and not (value_bounds[0] <= value <= value_bounds[1]):
            self.n_out_of_bounds += 1
            return  # implausible readings never contaminate the moments
        self._rotate(event.t)
        self.pane_cur.push(event.t - self.t_first, value)

    def _rotate(self, t: float) -> None:
        """Two-pane rotation matching :class:`WindowedSensorStats`."""
        if self.window is None:
            return
        if self.pane_start is None:
            self.pane_start = t
        elif t - self.pane_start >= self.window:
            self.pane_prev = self.pane_cur
            self.pane_cur = _ValueMoments()
            self.pane_start = self.pane_start + self.window * math.floor(
                (t - self.pane_start) / self.window
            )

    def moments(self) -> _ValueMoments:
        if self.pane_prev is None:
            return self.pane_cur
        return _ValueMoments.combine(self.pane_prev, self.pane_cur)

    def summary(self, sensor_id: str) -> SensorSummary:
        moments = self.moments()
        report = self.stats.snapshot()
        consistency = (
            report[Dimension.CONSISTENCY] if Dimension.CONSISTENCY in report else None
        )
        completeness = (
            report[Dimension.COMPLETENESS] if Dimension.COMPLETENESS in report else None
        )
        return SensorSummary(
            sensor_id=sensor_id,
            x=self.x,
            y=self.y,
            n=self.n,
            n_out_of_bounds=self.n_out_of_bounds,
            mean=moments.welford.mean,
            dispersion=moments.welford.std,
            slope=moments.slope(),
            consistency=consistency,
            completeness=completeness,
            last_t=self.t_last,
        )


class _SensorEntry:
    """One sensor's lock + state (the lock covers only this sensor)."""

    __slots__ = ("lock", "state")

    def __init__(self, config: QodConfig) -> None:
        self.lock = threading.Lock()
        self.state = _SensorState(config)


class QodRegistry:
    """Incrementally maintained per-sensor QoD scores for a sensor fleet.

    Feed it admitted readings — directly via :meth:`update`, or by
    installing :func:`qod_ingest_hook` as (part of) an
    :class:`~repro.ingest.engine.IngestEngine`'s ``on_admit`` — then call
    :meth:`scores` for the composite verdicts or :meth:`weights` for the
    exploitation-ready ``(0, 1]`` weights
    (:func:`repro.qod.weighting.quality_weights` applied with the
    config's floor and power).

    ``clock`` is optional; when provided, :meth:`scores` uses
    ``clock.now()`` as the staleness reference instant.  Without one the
    reference is the fleet's newest event time, keeping replayed streams
    bit-reproducible.
    """

    def __init__(self, config: QodConfig | None = None, clock: Clock | None = None) -> None:
        self.config = config if config is not None else QodConfig()
        self._clock = clock
        self._registry_lock = threading.Lock()
        self._entries: dict[str, _SensorEntry] = {}

    # -- ingestion side ----------------------------------------------------------

    def _entry(self, sensor_id: str) -> _SensorEntry:
        with self._registry_lock:
            entry = self._entries.get(sensor_id)
            if entry is None:
                entry = _SensorEntry(self.config)
                self._entries[sensor_id] = entry
            return entry

    def update(self, event: IngestEvent) -> None:
        """Fold one admitted reading into its sensor's accumulators (O(1))."""
        entry = self._entry(event.sensor_id)
        with entry.lock:
            entry.state.update(event, self.config.value_bounds)
        if OBS.enabled:
            OBS.metrics.inc("repro_qod_updates_total")

    def update_many(self, events: Iterable[IngestEvent]) -> None:
        """Fold a batch of admitted readings in iteration order."""
        for event in events:
            self.update(event)

    @classmethod
    def from_events(
        cls,
        events: Iterable[IngestEvent],
        config: QodConfig | None = None,
        clock: Clock | None = None,
    ) -> "QodRegistry":
        """Batch construction: a fresh registry fed the whole stream.

        The incremental-maintenance oracle — a registry updated one event
        at a time scores identically to this batch rebuild
        (``tests/qod/test_scoring.py``).
        """
        registry = cls(config, clock)
        registry.update_many(events)
        return registry

    # -- read side ---------------------------------------------------------------

    def sensor_ids(self) -> list[str]:
        """Tracked sensor ids, sorted for deterministic iteration."""
        with self._registry_lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._entries)

    def summaries(self) -> list[SensorSummary]:
        """Consistent per-sensor evidence snapshots, in sorted-id order.

        Each sensor is snapshotted under its own lock; the pass never
        holds two locks at once, so ingestion is never stalled for more
        than one sensor's copy.
        """
        with self._registry_lock:
            items = sorted(self._entries.items())
        out: list[SensorSummary] = []
        for sensor_id, entry in items:
            with entry.lock:
                out.append(entry.state.summary(sensor_id))
        return out

    def scores(self, now: float | None = None) -> dict[str, QodScore]:
        """One scoring pass: composite QoD per sensor, keyed by sensor id.

        ``now`` is the staleness reference instant (event-time units);
        it defaults to the injected clock's reading when the registry has
        one, else to the fleet's newest event time.
        """
        summaries = self.summaries()
        cm = (
            OBS.tracer.span("qod.score", sensors=len(summaries))
            if OBS.enabled
            else _NULL
        )
        with cm:
            out = self._score_pass(summaries, now)
        if OBS.enabled:
            OBS.metrics.set_gauge("repro_qod_sensors", (), float(len(out)))
            for score in out.values():
                OBS.metrics.observe("repro_qod_score", (), score.composite)
                band = "low" if score.composite < 0.3 else (
                    "mid" if score.composite < 0.7 else "high"
                )
                OBS.metrics.inc("repro_qod_scores_total", (("band", band),))
        return out

    def _score_pass(
        self, summaries: list[SensorSummary], now: float | None
    ) -> dict[str, QodScore]:
        config = self.config
        if not summaries:
            return {}
        if now is None:
            now = (
                self._clock.now()
                if self._clock is not None
                else max(s.last_t for s in summaries)
            )
        consensus = neighbor_consensus(summaries, config.neighbors)
        scale = max(fleet_dispersion(summaries), config.cqc_min_scale)
        trend = fleet_slope(summaries)
        median_dispersion = fleet_dispersion(summaries)
        out: dict[str, QodScore] = {}
        for summary, near in zip(summaries, consensus):
            out[summary.sensor_id] = self._score_one(
                summary, near, scale, trend, median_dispersion, now
            )
        return out

    def _score_one(
        self,
        summary: SensorSummary,
        consensus: float | None,
        scale: float,
        trend: float,
        median_dispersion: float,
        now: float,
    ) -> QodScore:
        config = self.config
        obc = 1.0 if summary.n == 0 else 1.0 - summary.n_out_of_bounds / summary.n
        if summary.n < config.min_readings:
            # Cold start: not enough evidence for the detectors to mean
            # anything — report the provisional score with neutral layers.
            s = config.provisional_score
            return QodScore(
                sensor_id=summary.sensor_id,
                composite=s,
                self_check=s,
                reference=s,
                deployment=s,
                out_of_bounds=obc,
                consistency=1.0 if summary.consistency is None else summary.consistency,
                completeness=1.0 if summary.completeness is None else summary.completeness,
                stuck=1.0,
                obstruction=1.0,
                drift=1.0,
                n=summary.n,
            )
        self_check = self_check_score(summary)
        ref = (
            1.0
            if consensus is None
            else reference_score(summary.mean, consensus, scale, config.cqc_tolerance)
        )
        stuck = stuck_score(summary.dispersion, config.stuck_sigma)
        obstruction = obstruction_score(
            summary.dispersion, median_dispersion, config.indoor_ratio
        )
        drift = drift_score(summary.slope, trend, config.drift_tolerance)
        deployment = deployment_score(stuck, obstruction, drift)
        composite = composite_score(self_check, ref, deployment, config.control_weights)
        composite *= staleness_factor(now - summary.last_t, config.staleness_horizon)
        return QodScore(
            sensor_id=summary.sensor_id,
            composite=composite,
            self_check=self_check,
            reference=ref,
            deployment=deployment,
            out_of_bounds=obc,
            consistency=1.0 if summary.consistency is None else summary.consistency,
            completeness=1.0 if summary.completeness is None else summary.completeness,
            stuck=stuck,
            obstruction=obstruction,
            drift=drift,
            n=summary.n,
        )

    def weights(self, now: float | None = None) -> dict[str, float]:
        """Exploitation-ready ``(0, 1]`` weights per sensor.

        The config's ``weight_floor`` / ``weight_power`` mapping applied
        to :meth:`scores` — see :func:`repro.qod.weighting.quality_weights`.
        """
        from .weighting import quality_weights

        return quality_weights(
            self.scores(now),
            floor=self.config.weight_floor,
            power=self.config.weight_power,
        )


def qod_ingest_hook(registry: QodRegistry) -> Callable[[IngestEvent], None]:
    """An ``on_admit`` callback folding admitted readings into ``registry``.

    Install on an :class:`~repro.ingest.engine.IngestEngine` (compose
    with the serving layer's epoch hook via :func:`compose_admit_hooks`
    when both are wanted)::

        engine = IngestEngine(..., on_admit=qod_ingest_hook(registry))
    """

    def hook(event: IngestEvent) -> None:
        registry.update(event)

    return hook


def compose_admit_hooks(
    *hooks: Callable[[IngestEvent], None] | None,
) -> Callable[[IngestEvent], None]:
    """One ``on_admit`` callback fanning each admitted event to ``hooks``.

    The ingest engine takes a single callback; live deployments usually
    want at least two — the serving layer's
    :func:`~repro.serve.epochs.ingest_epoch_hook` *and*
    :func:`qod_ingest_hook`.  Hooks run in argument order; ``None``
    entries are dropped, so optional hooks compose without branching.
    """
    live = tuple(h for h in hooks if h is not None)

    def hook(event: IngestEvent) -> None:
        for h in live:
            h(event)

    return hook
