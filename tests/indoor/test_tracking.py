import numpy as np
import pytest

from repro.indoor import (
    RoomHMMTracker,
    grid_floor,
    observe_rooms,
    raw_room_sequence,
    sequence_accuracy,
    simulate_room_walk,
)


@pytest.fixture
def floor():
    return grid_floor(3, 3, 10.0)


@pytest.fixture
def scenario(floor, rng):
    truth = simulate_room_walk(floor, rng, 80, move_prob=0.3)
    readings = observe_rooms(floor, truth, rng, p_detect=0.7, p_cross=0.12)
    return truth, readings


class TestSimulation:
    def test_walk_respects_topology(self, floor, rng):
        truth = simulate_room_walk(floor, rng, 100)
        for a, b in zip(truth, truth[1:]):
            assert a == b or b in floor.adjacent_rooms(a)

    def test_start_room_honored(self, floor, rng):
        truth = simulate_room_walk(floor, rng, 10, start_room="r1-1")
        assert truth[0] == "r1-1"

    def test_unknown_start_rejected(self, floor, rng):
        with pytest.raises(ValueError):
            simulate_room_walk(floor, rng, 10, start_room="nope")

    def test_observation_validation(self, floor, rng):
        with pytest.raises(ValueError):
            observe_rooms(floor, ["r0-0"], rng, p_detect=2.0)

    def test_cross_reads_are_adjacent(self, floor, rng):
        truth = simulate_room_walk(floor, rng, 50)
        readings = observe_rooms(floor, truth, rng, p_detect=0.0, p_cross=1.0)
        for r in readings:
            assert r.room in floor.adjacent_rooms(truth[r.epoch])


class TestTracker:
    def test_param_validation(self, floor):
        with pytest.raises(ValueError):
            RoomHMMTracker(floor, p_detect=0.0)

    def test_perfect_readings_decoded_exactly(self, floor, rng):
        truth = simulate_room_walk(floor, rng, 60, move_prob=0.2)
        readings = observe_rooms(floor, truth, rng, p_detect=1.0, p_cross=0.0)
        tracker = RoomHMMTracker(floor, 0.95, 0.02)
        decoded = tracker.track(readings, len(truth))
        assert sequence_accuracy(decoded, truth) == 1.0

    def test_beats_raw_on_faulty_readings(self, scenario, floor):
        truth, readings = scenario
        tracker = RoomHMMTracker(floor, 0.7, 0.12)
        decoded = tracker.track(readings, len(truth))
        raw = raw_room_sequence(readings, len(truth))
        assert sequence_accuracy(decoded, truth) > sequence_accuracy(raw, truth)

    def test_decoded_path_respects_topology(self, scenario, floor):
        truth, readings = scenario
        decoded = RoomHMMTracker(floor, 0.7, 0.12).track(readings, len(truth))
        for a, b in zip(decoded, decoded[1:]):
            assert a == b or b in floor.adjacent_rooms(a)

    def test_accuracy_degrades_gracefully(self, floor):
        """More faults, lower accuracy — but never below the raw stream."""
        accs = []
        for p_detect in (0.9, 0.6, 0.4):
            hmm_acc, raw_acc = [], []
            for seed in range(4):
                r = np.random.default_rng(seed)
                truth = simulate_room_walk(floor, r, 80, move_prob=0.3)
                readings = observe_rooms(floor, truth, r, p_detect, 0.1)
                decoded = RoomHMMTracker(floor, p_detect, 0.1).track(readings, len(truth))
                hmm_acc.append(sequence_accuracy(decoded, truth))
                raw_acc.append(
                    sequence_accuracy(raw_room_sequence(readings, len(truth)), truth)
                )
            accs.append((float(np.mean(hmm_acc)), float(np.mean(raw_acc))))
        assert accs[0][0] >= accs[-1][0]  # degrades with faults
        for hmm, raw in accs:
            assert hmm >= raw


class TestHelpers:
    def test_sequence_accuracy(self):
        assert sequence_accuracy(["a", "b"], ["a", "b"]) == 1.0
        assert sequence_accuracy(["a", "x"], ["a", "b"]) == 0.5
        assert sequence_accuracy([], []) == 1.0

    def test_raw_sequence_silent_epochs(self, floor, rng):
        truth = simulate_room_walk(floor, rng, 20)
        readings = observe_rooms(floor, truth, rng, p_detect=0.3, p_cross=0.0)
        raw = raw_room_sequence(readings, len(truth))
        assert len(raw) == len(truth)
        assert any(r is None for r in raw)
