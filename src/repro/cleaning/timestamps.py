"""Timestamp repair under temporal constraints (Sec. 2.2.4, [95, 48]).

Device clocks in decentralized IoT deployments drift and skip, producing
out-of-order or ill-spaced timestamps.  Following Song et al. [95], repair
is cast as *minimal change under temporal constraints*:

* :func:`isotonic_repair` — restore monotonic (non-decreasing) order with
  the minimum total squared change (pool-adjacent-violators),
* :func:`constrained_repair` — additionally enforce declared minimum and
  maximum gaps between consecutive records (a forward clamp pass, the
  streaming-friendly variant),
* :func:`repair_quality` — how close a repair lands to the true timestamps.
"""

from __future__ import annotations

import numpy as np


def isotonic_repair(times: np.ndarray, strict_eps: float = 0.0) -> np.ndarray:
    """L2-minimal non-decreasing repair via pool-adjacent-violators (PAVA).

    With ``strict_eps > 0`` the result is made strictly increasing by
    spreading tied blocks by ``strict_eps`` — needed when downstream
    containers (e.g. :class:`~repro.core.trajectory.Trajectory`) demand
    strict order.
    """
    t = np.asarray(times, dtype=float)
    n = len(t)
    if n == 0:
        return t.copy()
    # PAVA with uniform weights.
    values = t.copy()
    weights = np.ones(n)
    # Each block tracks (value, weight, count); merge while decreasing.
    block_val: list[float] = []
    block_w: list[float] = []
    block_len: list[int] = []
    for i in range(n):
        block_val.append(float(values[i]))
        block_w.append(1.0)
        block_len.append(1)
        while len(block_val) > 1 and block_val[-2] > block_val[-1]:
            v2, w2, l2 = block_val.pop(), block_w.pop(), block_len.pop()
            v1, w1, l1 = block_val.pop(), block_w.pop(), block_len.pop()
            w = w1 + w2
            block_val.append((v1 * w1 + v2 * w2) / w)
            block_w.append(w)
            block_len.append(l1 + l2)
    out = np.empty(n)
    pos = 0
    for v, length in zip(block_val, block_len):
        out[pos : pos + length] = v
        pos += length
    if strict_eps > 0:
        for i in range(1, n):
            if out[i] <= out[i - 1]:
                out[i] = out[i - 1] + strict_eps
    return out


def constrained_repair(
    times: np.ndarray, min_gap: float, max_gap: float
) -> np.ndarray:
    """Forward repair enforcing ``min_gap <= t[i+1] - t[i] <= max_gap``.

    Each timestamp is moved the minimal amount (given the already-repaired
    prefix) to satisfy the gap constraints — the sequential strategy of
    constraint-based stream cleaning.
    """
    if min_gap < 0 or max_gap < min_gap:
        raise ValueError("need 0 <= min_gap <= max_gap")
    t = np.asarray(times, dtype=float)
    out = t.copy()
    for i in range(1, len(out)):
        lo = out[i - 1] + min_gap
        hi = out[i - 1] + max_gap
        out[i] = min(max(out[i], lo), hi)
    return out


def order_violations(times: np.ndarray) -> int:
    """Count of adjacent pairs violating non-decreasing order."""
    t = np.asarray(times, dtype=float)
    return int(np.sum(np.diff(t) < 0))


def repair_quality(
    repaired: np.ndarray, truth: np.ndarray
) -> dict[str, float]:
    """RMSE and max deviation of repaired timestamps against the truth."""
    r = np.asarray(repaired, dtype=float)
    g = np.asarray(truth, dtype=float)
    if r.shape != g.shape:
        raise ValueError("shapes differ")
    err = r - g
    return {
        "rmse": float(np.sqrt(np.mean(err**2))) if len(err) else 0.0,
        "max_abs": float(np.max(np.abs(err))) if len(err) else 0.0,
    }
