"""Event envelope and gate decisions of the streaming ingestion layer.

Every reading entering the engine — whether it originates as an
:class:`~repro.core.stid.STRecord` (stationary STID sensor) or a
:class:`~repro.core.trajectory.TrajectoryPoint` (moving object) — is wrapped
in one uniform :class:`IngestEvent` carrying both its *event time* (when the
phenomenon was measured) and its *arrival time* (when the ingestion layer
saw it), the distinction every latency/disorder metric rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum

from ..core.stid import STRecord
from ..core.trajectory import TrajectoryPoint


class Decision(str, Enum):
    """Terminal outcome of a quality-gate chain for one event."""

    ADMIT = "admit"  # passed every gate unchanged
    REPAIR = "repair"  # admitted after at least one gate modified it
    QUARANTINE = "quarantine"  # withheld from the store (with a reason)


@dataclass(frozen=True, slots=True)
class IngestEvent:
    """One sensor reading in flight through the ingestion engine.

    ``t`` is the event (measurement) time; ``arrival_time`` is when the
    reading reached the engine.  ``value`` is the thematic attribute and is
    NaN for pure position streams.
    """

    sensor_id: str
    x: float
    y: float
    t: float
    value: float
    arrival_time: float

    @classmethod
    def from_record(cls, record: STRecord, arrival_time: float | None = None) -> "IngestEvent":
        """Wrap an STID record; arrival defaults to the event time."""
        return cls(
            sensor_id=record.source,
            x=record.x,
            y=record.y,
            t=record.t,
            value=record.value,
            arrival_time=record.t if arrival_time is None else arrival_time,
        )

    @classmethod
    def from_point(
        cls,
        sensor_id: str,
        point: TrajectoryPoint,
        value: float = math.nan,
        arrival_time: float | None = None,
    ) -> "IngestEvent":
        """Wrap a trajectory sample; arrival defaults to the event time."""
        return cls(
            sensor_id=sensor_id,
            x=point.x,
            y=point.y,
            t=point.t,
            value=value,
            arrival_time=point.t if arrival_time is None else arrival_time,
        )

    def to_record(self) -> STRecord:
        """The event as an STID record (drops the arrival time)."""
        return STRecord(self.x, self.y, self.t, self.value, self.sensor_id)

    def with_value(self, value: float) -> "IngestEvent":
        """Copy with the thematic value replaced (repair result)."""
        return replace(self, value=float(value))

    @property
    def latency(self) -> float:
        """Transport delay: arrival time minus event time (seconds)."""
        return self.arrival_time - self.t


@dataclass(frozen=True, slots=True)
class GateOutcome:
    """One gate-chain verdict: the (possibly repaired) event plus decision."""

    event: IngestEvent
    decision: Decision
    gate: str = ""
    reason: str = ""
