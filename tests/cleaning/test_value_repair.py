import numpy as np
import pytest

from repro.core import Point, STSeries
from repro.cleaning import (
    cross_sensor_repair,
    detect_spikes,
    detect_stuck,
    repair_rmse,
    repair_with_interpolation,
)
from repro.synth import SmoothField, add_sensor_bias, spike_values, stuck_sensor


@pytest.fixture
def smooth_series():
    t = np.arange(100.0)
    return STSeries("s0", Point(0, 0), t, np.sin(t / 10.0) * 5.0 + 20.0)


class TestDetectSpikes:
    def test_finds_injected(self, rng, smooth_series):
        spiked, idx = spike_values(smooth_series, rng, 0.05, magnitude=20.0)
        found = detect_spikes(spiked, window=7, threshold=3.0)
        assert set(idx) <= set(found) | set()
        # Precision: few false alarms on the smooth remainder.
        assert len(set(found) - set(idx)) <= 3


class TestDetectStuck:
    def test_finds_run(self, smooth_series):
        stuck = stuck_sensor(smooth_series, start=20, length=10)
        found = detect_stuck(stuck, min_run=5)
        assert set(range(21, 30)) <= set(found)

    def test_first_sample_of_run_spared(self, smooth_series):
        stuck = stuck_sensor(smooth_series, start=20, length=10)
        assert 20 not in detect_stuck(stuck, min_run=5)

    def test_short_runs_ignored(self, smooth_series):
        stuck = stuck_sensor(smooth_series, start=20, length=3)
        assert detect_stuck(stuck, min_run=5) == []

    def test_smooth_series_clean(self, smooth_series):
        assert detect_stuck(smooth_series, min_run=3) == []


class TestInterpolationRepair:
    def test_restores_values(self, rng, smooth_series):
        truth = smooth_series.values
        spiked, idx = spike_values(smooth_series, rng, 0.05, 20.0)
        fixed = repair_with_interpolation(spiked, idx)
        assert repair_rmse(fixed, truth, idx) < repair_rmse(spiked, truth, idx) / 3

    def test_clean_indices_untouched(self, rng, smooth_series):
        spiked, idx = spike_values(smooth_series, rng, 0.05, 20.0)
        fixed = repair_with_interpolation(spiked, idx)
        clean = sorted(set(range(len(spiked))) - set(idx))
        assert np.array_equal(fixed.values[clean], spiked.values[clean])

    def test_bad_index_rejected(self, smooth_series):
        with pytest.raises(IndexError):
            repair_with_interpolation(smooth_series, [1000])

    def test_all_faulty_passthrough(self, smooth_series):
        out = repair_with_interpolation(smooth_series, list(range(100)))
        assert np.array_equal(out.values, smooth_series.values)


class TestCrossSensorRepair:
    @pytest.fixture
    def network(self, rng, box):
        field = SmoothField(rng, box, n_bumps=3, length_scale=400)
        times = np.arange(0, 600, 30.0)
        sites = [Point(500, 500), Point(520, 500), Point(480, 510), Point(505, 520)]
        series = field.sample_sensors(sites, times, rng, noise_sigma=0.2)
        truth = np.array([field.value(sites[0], t) for t in times])
        return series, truth

    def test_repairs_long_fault(self, rng, network):
        series, truth = network
        target = series[0]
        # A long stuck run defeats temporal interpolation; neighbors don't.
        faulty = stuck_sensor(target, start=5, length=12)
        idx = list(range(6, 17))
        cross = cross_sensor_repair(faulty, series[1:], idx)
        temporal = repair_with_interpolation(faulty, idx)
        assert repair_rmse(cross, truth, idx) < repair_rmse(temporal, truth, idx)

    def test_bias_correction(self, rng, network):
        series, truth = network
        target = series[0]
        biased_neighbors = [add_sensor_bias(s, 10.0) for s in series[1:]]
        faulty, idx = spike_values(target, rng, 0.1, 25.0)
        fixed = cross_sensor_repair(faulty, biased_neighbors, idx)
        # Despite the +10 neighbor bias, offsets are removed before repair.
        assert repair_rmse(fixed, truth, idx) < 2.0

    def test_requires_neighbors(self, smooth_series):
        with pytest.raises(ValueError):
            cross_sensor_repair(smooth_series, [], [1])


class TestRepairRmse:
    def test_empty_indices(self, smooth_series):
        assert repair_rmse(smooth_series, smooth_series.values, []) == 0.0
