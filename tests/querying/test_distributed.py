import pytest

from repro.core import Point
from repro.querying import (
    PartitionedStore,
    grid_partition,
    kd_partition,
    load_imbalance,
    skewed_points,
)


@pytest.fixture
def skew(rng, box):
    return skewed_points(rng, 1500, box, n_hotspots=3, hotspot_sigma=40.0)


@pytest.fixture
def uniform(rng, box):
    return [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(1500)]


class TestPartitioners:
    def test_grid_covers_all_points(self, uniform, box):
        parts = grid_partition(uniform, box, 4)
        assert sum(p.load for p in parts) == len(uniform)
        assert len(parts) == 16

    def test_kd_covers_all_points(self, skew, box):
        parts = kd_partition(skew, box, 16)
        assert sum(p.load for p in parts) == len(skew)

    def test_kd_partitions_disjoint(self, skew, box):
        parts = kd_partition(skew, box, 8)
        seen = set()
        for p in parts:
            assert not (seen & set(p.point_indices))
            seen |= set(p.point_indices)

    def test_points_inside_their_partition_bbox(self, skew, box):
        parts = kd_partition(skew, box, 16)
        for part in parts:
            for i in part.point_indices:
                assert part.bbox.expand(1e-9).contains(skew[i])

    def test_validation(self, uniform, box):
        with pytest.raises(ValueError):
            grid_partition(uniform, box, 0)
        with pytest.raises(ValueError):
            kd_partition(uniform, box, 0)


class TestImbalance:
    def test_kd_balances_skew_better_than_grid(self, skew, box):
        grid = grid_partition(skew, box, 4)
        kd = kd_partition(skew, box, 16)
        assert load_imbalance(kd) < load_imbalance(grid)

    def test_kd_near_perfect_on_skew(self, skew, box):
        assert load_imbalance(kd_partition(skew, box, 16)) < 1.3

    def test_uniform_data_grid_ok(self, uniform, box):
        assert load_imbalance(grid_partition(uniform, box, 4)) < 1.6

    def test_empty_partitions(self):
        assert load_imbalance([]) == 1.0


class TestPartitionedStore:
    def test_results_match_brute_force(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 16))
        q, r = Point(500, 500), 120.0
        expected = sorted(
            i for i, p in enumerate(skew) if p.distance_to(q) <= r
        )
        assert sorted(store.range_query(q, r)) == expected

    def test_partitions_touched_less_than_total(self, skew, box):
        parts = kd_partition(skew, box, 16)
        store = PartitionedStore(skew, parts)
        store.range_query(Point(200, 200), 50.0)
        assert store.mean_partitions_per_query() < len(parts)

    def test_query_counter(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 8))
        store.range_query(Point(0, 0), 10)
        store.range_query(Point(500, 500), 10)
        assert store.queries_run == 2

    def test_empty_store(self, box):
        store = PartitionedStore([], grid_partition([], box, 2))
        assert store.range_query(Point(0, 0), 100) == []

    def test_range_query_many_matches_singles(self, skew, box):
        parts = kd_partition(skew, box, 16)
        centers = [Point(200, 200), Point(500, 500), Point(950, 60)]
        radii = [50.0, 120.0, 80.0]
        singles = PartitionedStore(skew, parts)
        want = [singles.range_query(c, r) for c, r in zip(centers, radii)]
        batched = PartitionedStore(skew, parts)
        assert batched.range_query_many(centers, radii) == want
        assert batched.partitions_touched == singles.partitions_touched
        assert batched.queries_run == singles.queries_run

    def test_range_query_many_scalar_radius(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 8))
        centers = [Point(100, 100), Point(800, 800)]
        got = store.range_query_many(centers, 75.0)
        assert [sorted(h) for h in got] == [
            sorted(i for i, p in enumerate(skew) if p.distance_to(c) <= 75.0)
            for c in centers
        ]

    def test_knn_matches_brute_force(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 16))
        center, k = Point(420, 650), 9
        brute = [
            i
            for _, i in sorted((p.distance_to(center), i) for i, p in enumerate(skew))[:k]
        ]
        assert store.knn(center, k) == brute

    def test_knn_prunes_partitions(self, skew, box):
        parts = kd_partition(skew, box, 16)
        store = PartitionedStore(skew, parts)
        store.knn(Point(200, 200), 5)
        assert store.partitions_touched < len(parts)

    def test_knn_k_larger_than_points(self, box):
        pts = [Point(1, 1), Point(2, 2)]
        store = PartitionedStore(pts, grid_partition(pts, box, 2))
        assert sorted(store.knn(Point(0, 0), 10)) == [0, 1]

    def test_knn_validation(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        with pytest.raises(ValueError):
            store.knn(Point(0, 0), 0)

    def test_mismatched_radii_rejected(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        with pytest.raises(ValueError):
            store.range_query_many([Point(0, 0), Point(1, 1)], [5.0])
