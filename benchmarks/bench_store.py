"""Benchmark: incremental ingest→query path vs rebuild-per-batch (ISSUE 8).

Streams points into a :class:`repro.querying.PartitionedStore` in batches
and interleaves range/kNN queries after every batch, two ways:

* **rebuild** — the pre-delta workflow: after each batch the store is
  rebuilt from scratch (repack every base column, re-lease every
  segment) before it can answer queries,
* **delta** — the two-tier path: appends land in per-partition delta
  tails, queries merge base + delta on the fly, and compaction folds
  tails back opportunistically at the default threshold.

Reports append-and-query throughput for both paths (points+queries
processed per second of wall time), the speedup, compaction pause
statistics, and asserts bit-identity: after the full stream, the delta
store's answers equal a from-scratch rebuild's, query for query.

Writes ``BENCH_store.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py            # full run
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # CI gate

``--smoke`` runs a reduced stream and *asserts* the live-ingest
invariants: delta-vs-rebuild bit-identity after every batch, a generous
append-throughput floor, and a bounded compaction pause.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import BBox, Point
from repro.querying import PartitionedStore, kd_partition, skewed_points

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

SEED = 2022
BOX = BBox(0.0, 0.0, 1000.0, 1000.0)

#: Full-run gate (ISSUE 8 acceptance): delta path at least this many times
#: faster than rebuild-per-batch on the 100k/10k workload.
FULL_SPEEDUP_FLOOR = 50.0

#: Smoke gates, generous enough for shared CI runners.
SMOKE_APPEND_FLOOR_PPS = 20_000.0
SMOKE_COMPACT_PAUSE_BUDGET_S = 0.5


def make_world(rng, n_base: int, n_stream: int, n_partitions: int):
    base = skewed_points(rng, n_base, BOX, n_hotspots=5, hotspot_sigma=60.0)
    stream = skewed_points(rng, n_stream, BOX, n_hotspots=3, hotspot_sigma=90.0)
    partitions = kd_partition(base, BOX, n_partitions)
    return base, stream, partitions


def make_queries(rng, n_queries: int):
    centers = [
        Point(float(x), float(y))
        for x, y in rng.uniform(50.0, 950.0, size=(n_queries, 2))
    ]
    radii = rng.uniform(20.0, 80.0, n_queries).tolist()
    return centers, radii


def batches(stream, batch_size: int):
    return [stream[i : i + batch_size] for i in range(0, len(stream), batch_size)]


def run_rebuild(base, partitions, stream_batches, centers, radii, k: int) -> dict:
    """Rebuild-per-batch baseline: every batch forces a full store rebuild."""
    store = PartitionedStore(base, partitions)
    results = []
    start = time.perf_counter()
    for batch in stream_batches:
        store.append_many(batch)
        store = store.rebuilt()  # the pre-delta workflow: repack everything
        results.append((store.range_query_many(centers, radii), store.knn_many(centers, k)))
    wall = time.perf_counter() - start
    return {"wall_s": wall, "results": results, "store": store}


def run_delta(base, partitions, stream_batches, centers, radii, k: int) -> dict:
    """Two-tier path: append to delta tails, compact opportunistically."""
    store = PartitionedStore(base, partitions)
    results = []
    pauses = []
    append_s = 0.0
    start = time.perf_counter()
    for batch in stream_batches:
        t0 = time.perf_counter()
        store.append_many(batch)
        append_s += time.perf_counter() - t0
        results.append((store.range_query_many(centers, radii), store.knn_many(centers, k)))
        stats = store.compact()  # default threshold (0.25 unless env-tuned)
        if stats.partitions:
            pauses.append(stats.seconds)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "results": results,
        "store": store,
        "append_s": append_s,
        "compaction_pauses_s": pauses,
    }


def check_bit_identity(delta_store, centers, radii, k: int) -> None:
    """The live delta store must answer exactly like a from-scratch rebuild."""
    fresh = delta_store.rebuilt()
    assert delta_store.range_query_many(centers, radii) == fresh.range_query_many(
        centers, radii
    ), "delta-merged range results diverged from rebuilt store"
    assert delta_store.knn_many(centers, k) == fresh.knn_many(centers, k), (
        "delta-merged kNN results diverged from rebuilt store"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced stream; assert bit-identity, append floor, pause budget",
    )
    args = parser.parse_args(argv)
    rng = np.random.default_rng(SEED)

    if args.smoke:
        n_base, n_stream, n_partitions = 10_000, 1_000, 16
        batch_size, n_queries, k = 100, 10, 5
    else:
        # High-frequency live ingest: small batches, a few monitoring
        # queries per tick — the regime the delta tier exists for.
        n_base, n_stream, n_partitions = 100_000, 10_000, 64
        batch_size, n_queries, k = 25, 2, 5

    base, stream, partitions = make_world(rng, n_base, n_stream, n_partitions)
    centers, radii = make_queries(rng, n_queries)
    stream_batches = batches(stream, batch_size)
    work_items = len(stream) + len(stream_batches) * n_queries * 2

    rebuild = run_rebuild(base, partitions, stream_batches, centers, radii, k)
    delta = run_delta(base, partitions, stream_batches, centers, radii, k)

    assert delta["results"] == rebuild["results"], (
        "delta path diverged from rebuild-per-batch baseline mid-stream"
    )
    check_bit_identity(delta["store"], centers, radii, k)

    speedup = rebuild["wall_s"] / delta["wall_s"]
    append_pps = len(stream) / delta["append_s"]
    pauses = delta["compaction_pauses_s"]
    max_pause = max(pauses) if pauses else 0.0
    store_stats = delta["store"].delta_stats()

    print(
        f"workload: {n_base} base + {n_stream} streamed points "
        f"({len(stream_batches)} batches of {batch_size}), {n_partitions} partitions, "
        f"{n_queries} range + {n_queries} kNN queries per batch"
    )
    print(f"{'path':<10} {'wall s':>9} {'items/s':>12}")
    for name, r in (("rebuild", rebuild), ("delta", delta)):
        print(f"{name:<10} {r['wall_s']:>9.3f} {work_items / r['wall_s']:>12.0f}")
    print(
        f"speedup: {speedup:.1f}x | append throughput {append_pps:,.0f} pts/s | "
        f"{len(pauses)} compactions, max pause {max_pause * 1e3:.2f} ms | "
        f"final delta fraction {store_stats['delta_fraction_max']:.3f}"
    )

    if args.smoke:
        assert append_pps >= SMOKE_APPEND_FLOOR_PPS, (
            f"append throughput floor blown: {append_pps:,.0f} pts/s "
            f"< {SMOKE_APPEND_FLOOR_PPS:,.0f} pts/s"
        )
        assert max_pause <= SMOKE_COMPACT_PAUSE_BUDGET_S, (
            f"compaction pause budget blown: {max_pause:.3f}s "
            f"> {SMOKE_COMPACT_PAUSE_BUDGET_S}s"
        )
        print(
            "smoke OK: delta ≡ rebuild bit-identical, append floor met, "
            "compaction pause bounded"
        )
        return 0

    assert speedup >= FULL_SPEEDUP_FLOOR, (
        f"speedup gate blown: {speedup:.1f}x < {FULL_SPEEDUP_FLOOR:.0f}x"
    )

    OUT_PATH.write_text(
        json.dumps(
            {
                "seed": SEED,
                "cpu_count": os.cpu_count(),
                "workload": {
                    "base_points": n_base,
                    "streamed_points": n_stream,
                    "partitions": n_partitions,
                    "batch_size": batch_size,
                    "queries_per_batch": n_queries * 2,
                },
                "rebuild": {"wall_s": rebuild["wall_s"]},
                "delta": {
                    "wall_s": delta["wall_s"],
                    "append_s": delta["append_s"],
                    "append_points_per_s": append_pps,
                    "compactions": len(pauses),
                    "compaction_pause_max_s": max_pause,
                    "compaction_pause_mean_s": (
                        float(np.mean(pauses)) if pauses else 0.0
                    ),
                    "final_store": store_stats,
                },
                "speedup_rebuild_over_delta": speedup,
                "bit_identical": True,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
