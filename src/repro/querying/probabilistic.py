"""Probabilistic queries over uncertain locations (Sec. 2.3.1,
[12, 13, 26, 43, 100, 120]).

Implements threshold probabilistic range and kNN queries over objects whose
locations are pdfs (:mod:`repro.core.uncertain`).  The tutorial's point:
algorithms *estimate upper and lower probability bounds to enable
priority-oriented processing and object pruning* — both queries here do
exactly that, and report how many exact-probability evaluations pruning
avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.geometry import BBox, Point
from ..core.uncertain import UncertainPoint


@dataclass
class QueryStats:
    """Work accounting: candidate counts through the filter steps."""

    total: int = 0
    pruned_lower: int = 0  # accepted by lower bound alone
    pruned_upper: int = 0  # rejected by upper bound alone
    refined: int = 0  # needed exact probability evaluation

    @property
    def pruning_ratio(self) -> float:
        """Fraction of objects decided without exact evaluation."""
        if self.total == 0:
            return 0.0
        return (self.pruned_lower + self.pruned_upper) / self.total


def _bounds_for_disk(
    obj: UncertainPoint, center: Point, radius: float, confidence: float
) -> tuple[float, float]:
    """Cheap (lower, upper) bounds on P(obj in disk) from the support bbox.

    If the support box (holding >= ``confidence`` mass) is entirely inside
    the disk, probability >= ``confidence``; if it misses the disk entirely,
    probability <= 1 - ``confidence``.
    """
    box = obj.location.support_bbox(confidence)
    if box.max_distance_to(center) <= radius:
        return confidence, 1.0
    if box.min_distance_to(center) > radius:
        return 0.0, 1.0 - confidence
    return 0.0, 1.0


def probabilistic_range_query(
    objects: list[UncertainPoint],
    center: Point,
    radius: float,
    threshold: float,
    confidence: float = 0.997,
) -> tuple[list[str], QueryStats]:
    """Objects with P(location in disk) >= ``threshold``.

    Two-phase: bound-based pruning, then exact ``prob_within`` only for the
    undecided.  Returns ``(object_ids, stats)``.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    stats = QueryStats(total=len(objects))
    hits: list[str] = []
    for obj in objects:
        lo, hi = _bounds_for_disk(obj, center, radius, confidence)
        if lo >= threshold:
            stats.pruned_lower += 1
            hits.append(obj.object_id)
        elif hi < threshold:
            stats.pruned_upper += 1
        else:
            stats.refined += 1
            if obj.location.prob_within(center, radius) >= threshold:
                hits.append(obj.object_id)
    return hits, stats


def probabilistic_range_query_naive(
    objects: list[UncertainPoint], center: Point, radius: float, threshold: float
) -> list[str]:
    """Baseline without pruning: exact probability for every object."""
    return [
        o.object_id
        for o in objects
        if o.location.prob_within(center, radius) >= threshold
    ]


def probabilistic_bbox_query(
    objects: list[UncertainPoint],
    box: BBox,
    threshold: float,
    confidence: float = 0.997,
) -> tuple[list[str], QueryStats]:
    """Threshold window query: P(location in box) >= ``threshold``."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    stats = QueryStats(total=len(objects))
    hits: list[str] = []
    for obj in objects:
        support = obj.location.support_bbox(confidence)
        if not support.intersects(box):
            stats.pruned_upper += 1
            continue
        inside = (
            box.min_x <= support.min_x
            and support.max_x <= box.max_x
            and box.min_y <= support.min_y
            and support.max_y <= box.max_y
        )
        if inside and confidence >= threshold:
            stats.pruned_lower += 1
            hits.append(obj.object_id)
            continue
        stats.refined += 1
        if obj.location.prob_in_bbox(box) >= threshold:
            hits.append(obj.object_id)
    return hits, stats


@dataclass(frozen=True)
class KnnResult:
    """One ranked kNN answer with its qualification probability."""

    object_id: str
    probability: float


def probabilistic_knn(
    objects: list[UncertainPoint],
    center: Point,
    k: int,
    rng: np.random.Generator,
    n_samples: int = 256,
) -> list[KnnResult]:
    """Monte-Carlo probabilistic kNN: P(object is among the k nearest).

    Draws joint samples of all object locations and counts how often each
    object ranks in the top k — the sampling estimator for the probabilistic
    threshold kNN of [43].  Returns the k objects with the highest
    qualification probability.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = len(objects)
    if n == 0:
        return []
    samples = np.stack(
        [o.location.sample(rng, n_samples) for o in objects]
    )  # (n, n_samples, 2)
    d = np.hypot(samples[..., 0] - center.x, samples[..., 1] - center.y)
    counts = np.zeros(n)
    for s in range(n_samples):
        order = np.argsort(d[:, s])[: min(k, n)]
        counts[order] += 1
    probs = counts / n_samples
    ranked = np.argsort(-probs)[: min(k, n)]
    return [KnnResult(objects[i].object_id, float(probs[i])) for i in ranked]


def expected_distance_knn(
    objects: list[UncertainPoint], center: Point, k: int
) -> list[str]:
    """Cheap kNN baseline ranking objects by distance of their mean location."""
    ranked = sorted(objects, key=lambda o: o.location.mean().distance_to(center))
    return [o.object_id for o in ranked[: min(k, len(objects))]]
