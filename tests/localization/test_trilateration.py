import numpy as np
import pytest

from repro.core import Point
from repro.localization import gauss_newton, linear_least_squares, residual_rms
from repro.synth import RangingObservation, measure_ranges

ANCHORS = [Point(0, 0), Point(400, 0), Point(0, 400), Point(400, 400)]


def exact_obs(p):
    return [RangingObservation(a, a.distance_to(p)) for a in ANCHORS]


class TestLinear:
    def test_exact_recovery(self):
        p = Point(123, 287)
        assert linear_least_squares(exact_obs(p)).distance_to(p) < 1e-6

    def test_needs_three(self):
        with pytest.raises(ValueError):
            linear_least_squares(exact_obs(Point(1, 1))[:2])

    def test_noisy_fix_reasonable(self, rng):
        p = Point(200, 100)
        obs = measure_ranges(ANCHORS, p, rng, noise_m=3.0)
        assert linear_least_squares(obs).distance_to(p) < 20.0


class TestGaussNewton:
    def test_exact_recovery(self):
        p = Point(321, 55)
        assert gauss_newton(exact_obs(p)).distance_to(p) < 1e-6

    def test_needs_three(self):
        with pytest.raises(ValueError):
            gauss_newton(exact_obs(Point(1, 1))[:2])

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            gauss_newton(exact_obs(Point(1, 1)), weights=np.ones(2))

    def test_custom_initial(self):
        p = Point(100, 100)
        est = gauss_newton(exact_obs(p), initial=Point(390, 390))
        assert est.distance_to(p) < 1e-3

    def test_weighting_downweights_bad_anchor(self, rng):
        p = Point(150, 250)
        obs = exact_obs(p)
        # Corrupt the last anchor's range badly.
        obs[-1] = RangingObservation(obs[-1].anchor, obs[-1].distance + 80.0)
        unweighted = gauss_newton(obs)
        weighted = gauss_newton(obs, weights=np.array([1, 1, 1, 0.01]))
        assert weighted.distance_to(p) < unweighted.distance_to(p)

    def test_statistical_improvement_over_linear(self):
        """Across trials, iterative WLS should beat the linearized solver."""
        rng = np.random.default_rng(4)
        lin, gn = [], []
        for _ in range(80):
            p = Point(rng.uniform(50, 350), rng.uniform(50, 350))
            obs = measure_ranges(ANCHORS, p, rng, noise_m=5.0)
            lin.append(linear_least_squares(obs).distance_to(p))
            gn.append(gauss_newton(obs).distance_to(p))
        assert np.mean(gn) <= np.mean(lin) + 0.5


class TestResiduals:
    def test_zero_at_truth(self):
        p = Point(77, 88)
        assert residual_rms(exact_obs(p), p) < 1e-9

    def test_positive_away_from_truth(self):
        p = Point(77, 88)
        assert residual_rms(exact_obs(p), Point(0, 0)) > 10.0
