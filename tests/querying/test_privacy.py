import numpy as np
import pytest

from repro.core import BBox, Point
from repro.querying import (
    GridShuffleScheme,
    OutsourcedStore,
    PrivateQueryClient,
    distance_leakage,
)


@pytest.fixture
def setup(rng, box):
    scheme = GridShuffleScheme(box, 16, b"test-key")
    store = OutsourcedStore(16, box)
    client = PrivateQueryClient(scheme, store)
    points = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(300)]
    client.upload(points)
    return scheme, store, client, points


class TestScheme:
    def test_key_required(self, box):
        with pytest.raises(ValueError):
            GridShuffleScheme(box, 16, b"")

    def test_grid_size_validated(self, box):
        with pytest.raises(ValueError):
            GridShuffleScheme(box, 1, b"k")

    def test_transform_roundtrip(self, rng, box):
        scheme = GridShuffleScheme(box, 16, b"k")
        for _ in range(100):
            p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            tp = scheme.transform(p, 0)
            back = scheme.recover(tp)
            assert back.distance_to(p) < 1e-9

    def test_different_keys_different_layout(self, box):
        a = GridShuffleScheme(box, 16, b"key-a")
        b = GridShuffleScheme(box, 16, b"key-b")
        p = Point(123, 456)
        ta, tb = a.transform(p, 0), b.transform(p, 0)
        assert (ta.x, ta.y) != (tb.x, tb.y)

    def test_same_key_deterministic(self, box):
        a = GridShuffleScheme(box, 16, b"key")
        b = GridShuffleScheme(box, 16, b"key")
        p = Point(123, 456)
        assert a.transform(p, 0) == b.transform(p, 0)

    def test_transform_moves_most_points(self, rng, box):
        scheme = GridShuffleScheme(box, 16, b"key")
        moved = 0
        for _ in range(100):
            p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            tp = scheme.transform(p, 0)
            if Point(tp.x, tp.y).distance_to(p) > 1.0:
                moved += 1
        assert moved > 90


class TestProtocol:
    QUERIES = [(Point(400, 400), 90.0), (Point(50, 950), 200.0), (Point(500, 500), 30.0)]

    @pytest.mark.parametrize("center,radius", QUERIES)
    def test_results_exact(self, setup, center, radius):
        _, _, client, points = setup
        hits = sorted(client.range_query(center, radius))
        truth = sorted(i for i, p in enumerate(points) if p.distance_to(center) <= radius)
        assert hits == truth

    def test_server_never_sees_true_coordinates(self, setup):
        scheme, store, _, points = setup
        # For each stored point, its server-side position differs from the
        # true position unless the cell happened to map to itself.
        same = 0
        for cell_points in store._cells.values():
            for tp in cell_points:
                if Point(tp.x, tp.y).distance_to(points[tp.item_id]) < 1e-9:
                    same += 1
        assert same < len(points) * 0.05  # at most ~1/256 fixed cells

    def test_server_work_counted(self, setup):
        _, store, client, _ = setup
        before = store.cells_fetched
        client.range_query(Point(400, 400), 90.0)
        assert store.cells_fetched > before


class TestLeakage:
    def test_low_distance_correlation(self, setup, rng):
        scheme, _, _, points = setup
        assert distance_leakage(scheme, points, rng) < 0.3

    def test_identity_scheme_would_leak(self, rng, box):
        """Sanity: without shuffling, distances correlate perfectly."""
        points = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(100)]
        true_d, same_d = [], []
        for _ in range(300):
            i, j = rng.choice(len(points), 2, replace=False)
            d = points[int(i)].distance_to(points[int(j)])
            true_d.append(d)
            same_d.append(d)
        assert abs(np.corrcoef(true_d, same_d)[0, 1]) > 0.999

    def test_leakage_degenerate_inputs(self, rng, box):
        scheme = GridShuffleScheme(box, 16, b"k")
        assert distance_leakage(scheme, [Point(0, 0)], rng) == 0.0
