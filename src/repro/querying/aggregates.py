"""Probabilistic aggregate queries over uncertain objects (Sec. 2.3.1,
[131, 43]).

Range *aggregates* against uncertain location data: how many objects are in
the region?  With independent per-object membership probabilities
``p_i = P(object i in region)``, the count follows a **Poisson-binomial**
distribution, which this module evaluates exactly by dynamic programming:

* :func:`membership_probabilities` — the ``p_i`` for a disk region,
* :func:`expected_count` / :func:`count_variance` — moments,
* :func:`count_distribution` — the full pmf (O(n^2) DP),
* :func:`prob_count_at_least` — threshold count queries
  ``P(count >= k)``, the uncertain COUNT of [131],
* :func:`probabilistic_count_query` — one-call API with bound-based
  pruning of certainly-out objects.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..core.geometry import Point
from ..core.uncertain import UncertainPoint


def membership_probabilities(
    objects: list[UncertainPoint],
    center: Point,
    radius: float,
    confidence: float = 0.9999,
) -> np.ndarray:
    """P(object in disk) per object, with cheap zero/one short-circuits.

    Objects whose high-confidence support box misses the disk contribute
    (approximately) zero and skip the exact evaluation — the pruning step
    that makes aggregate queries cheap over large uncertain collections.
    The min/max box-distance screens run as two vectorized kernel calls
    over all support boxes; only the ambiguous objects (box straddling the
    disk boundary) pay the exact per-pdf evaluation.
    """
    probs = np.zeros(len(objects))
    if not objects:
        return probs
    boxes = np.array(
        [
            (bb.min_x, bb.min_y, bb.max_x, bb.max_y)
            for bb in (obj.location.support_bbox(confidence) for obj in objects)
        ],
        dtype=float,
    )
    certainly_in = kernels.box_max_dists(boxes, center) <= radius
    possibly_in = kernels.box_min_dists(boxes, center) <= radius
    probs[certainly_in] = 1.0
    for i in np.flatnonzero(possibly_in & ~certainly_in):
        probs[i] = objects[i].location.prob_within(center, radius)
    return probs


def expected_count(probs: np.ndarray) -> float:
    """E[count] = sum of membership probabilities."""
    return float(np.asarray(probs, dtype=float).sum())


def count_variance(probs: np.ndarray) -> float:
    """Var[count] = sum p_i (1 - p_i) (independence)."""
    p = np.asarray(probs, dtype=float)
    return float((p * (1.0 - p)).sum())


def count_distribution(probs: np.ndarray) -> np.ndarray:
    """Exact Poisson-binomial pmf over counts 0..n (DP, O(n^2)).

    ``pmf[k] = P(count == k)``.  Probabilities outside [0, 1] are rejected.
    """
    p = np.asarray(probs, dtype=float)
    if ((p < 0) | (p > 1)).any():
        raise ValueError("membership probabilities must lie in [0, 1]")
    pmf = np.zeros(len(p) + 1)
    pmf[0] = 1.0
    for pi in p:
        # New pmf: either object absent (1-pi) or present (shift by one).
        pmf[1:] = pmf[1:] * (1.0 - pi) + pmf[:-1] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def prob_count_at_least(probs: np.ndarray, k: int) -> float:
    """P(count >= k) from the exact pmf."""
    if k <= 0:
        return 1.0
    pmf = count_distribution(probs)
    if k > len(pmf) - 1:
        return 0.0
    # Clamp: the DP accumulates ~1e-16 float error around certainty.
    return float(min(1.0, max(0.0, pmf[k:].sum())))


def probabilistic_count_query(
    objects: list[UncertainPoint],
    center: Point,
    radius: float,
    k: int | None = None,
) -> dict[str, float]:
    """One-call uncertain COUNT over a disk region.

    Returns the expected count, its standard deviation, and — when ``k``
    is given — ``P(count >= k)``.
    """
    probs = membership_probabilities(objects, center, radius)
    out = {
        "expected": expected_count(probs),
        "std": float(np.sqrt(count_variance(probs))),
    }
    if k is not None:
        out[f"p_count_ge_{k}"] = prob_count_at_least(probs, k)
    return out
