import pytest

from repro.core import Point
from repro.querying import (
    PartitionedStore,
    grid_partition,
    kd_partition,
    load_imbalance,
    skewed_points,
)


@pytest.fixture
def skew(rng, box):
    return skewed_points(rng, 1500, box, n_hotspots=3, hotspot_sigma=40.0)


@pytest.fixture
def uniform(rng, box):
    return [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(1500)]


class TestPartitioners:
    def test_grid_covers_all_points(self, uniform, box):
        parts = grid_partition(uniform, box, 4)
        assert sum(p.load for p in parts) == len(uniform)
        assert len(parts) == 16

    def test_kd_covers_all_points(self, skew, box):
        parts = kd_partition(skew, box, 16)
        assert sum(p.load for p in parts) == len(skew)

    def test_kd_partitions_disjoint(self, skew, box):
        parts = kd_partition(skew, box, 8)
        seen = set()
        for p in parts:
            assert not (seen & set(p.point_indices))
            seen |= set(p.point_indices)

    def test_points_inside_their_partition_bbox(self, skew, box):
        parts = kd_partition(skew, box, 16)
        for part in parts:
            for i in part.point_indices:
                assert part.bbox.expand(1e-9).contains(skew[i])

    def test_validation(self, uniform, box):
        with pytest.raises(ValueError):
            grid_partition(uniform, box, 0)
        with pytest.raises(ValueError):
            kd_partition(uniform, box, 0)


class TestImbalance:
    def test_kd_balances_skew_better_than_grid(self, skew, box):
        grid = grid_partition(skew, box, 4)
        kd = kd_partition(skew, box, 16)
        assert load_imbalance(kd) < load_imbalance(grid)

    def test_kd_near_perfect_on_skew(self, skew, box):
        assert load_imbalance(kd_partition(skew, box, 16)) < 1.3

    def test_uniform_data_grid_ok(self, uniform, box):
        assert load_imbalance(grid_partition(uniform, box, 4)) < 1.6

    def test_empty_partitions(self):
        assert load_imbalance([]) == 1.0


class TestPartitionedStore:
    def test_results_match_brute_force(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 16))
        q, r = Point(500, 500), 120.0
        expected = sorted(
            i for i, p in enumerate(skew) if p.distance_to(q) <= r
        )
        assert sorted(store.range_query(q, r)) == expected

    def test_partitions_touched_less_than_total(self, skew, box):
        parts = kd_partition(skew, box, 16)
        store = PartitionedStore(skew, parts)
        store.range_query(Point(200, 200), 50.0)
        assert store.mean_partitions_per_query() < len(parts)

    def test_query_counter(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 8))
        store.range_query(Point(0, 0), 10)
        store.range_query(Point(500, 500), 10)
        assert store.queries_run == 2

    def test_empty_store(self, box):
        store = PartitionedStore([], grid_partition([], box, 2))
        assert store.range_query(Point(0, 0), 100) == []

    def test_range_query_many_matches_singles(self, skew, box):
        parts = kd_partition(skew, box, 16)
        centers = [Point(200, 200), Point(500, 500), Point(950, 60)]
        radii = [50.0, 120.0, 80.0]
        singles = PartitionedStore(skew, parts)
        want = [singles.range_query(c, r) for c, r in zip(centers, radii)]
        batched = PartitionedStore(skew, parts)
        assert batched.range_query_many(centers, radii) == want
        assert batched.partitions_touched == singles.partitions_touched
        assert batched.queries_run == singles.queries_run

    def test_range_query_many_scalar_radius(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 8))
        centers = [Point(100, 100), Point(800, 800)]
        got = store.range_query_many(centers, 75.0)
        assert [sorted(h) for h in got] == [
            sorted(i for i, p in enumerate(skew) if p.distance_to(c) <= 75.0)
            for c in centers
        ]

    def test_knn_matches_brute_force(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 16))
        center, k = Point(420, 650), 9
        brute = [
            i
            for _, i in sorted((p.distance_to(center), i) for i, p in enumerate(skew))[:k]
        ]
        assert store.knn(center, k) == brute

    def test_knn_prunes_partitions(self, skew, box):
        parts = kd_partition(skew, box, 16)
        store = PartitionedStore(skew, parts)
        store.knn(Point(200, 200), 5)
        assert store.partitions_touched < len(parts)

    def test_knn_k_larger_than_points(self, box):
        pts = [Point(1, 1), Point(2, 2)]
        store = PartitionedStore(pts, grid_partition(pts, box, 2))
        assert sorted(store.knn(Point(0, 0), 10)) == [0, 1]

    def test_knn_validation(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        with pytest.raises(ValueError):
            store.knn(Point(0, 0), 0)

    def test_mismatched_radii_rejected(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        with pytest.raises(ValueError):
            store.range_query_many([Point(0, 0), Point(1, 1)], [5.0])


class TestPartitionDependencySets:
    """The serving layer's cache-invalidation oracle: a write outside a
    query's dependency set provably cannot change the query's answer."""

    def test_range_sets_match_router_predicate(self, skew, box):
        parts = kd_partition(skew, box, 16)
        store = PartitionedStore(skew, parts)
        centers = [Point(200, 200), Point(500, 500), Point(950, 60)]
        radii = [50.0, 120.0, 80.0]
        sets = store.range_partition_sets(centers, radii)
        for c, r, pids in zip(centers, radii, sets):
            # the exact predicate is internal; the contract that matters is
            # that every partition holding a hit is in the dependency set
            hit_parts = {
                pid
                for pid, part in enumerate(parts)
                for i in part.point_indices
                if skew[i].distance_to(c) <= r
            }
            assert hit_parts <= set(pids)
            assert len(pids) < len(parts)  # local queries touch few partitions

    def test_range_sets_accept_scalar_radius(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 8))
        centers = [Point(100, 100), Point(800, 800)]
        assert store.range_partition_sets(centers, 50.0) == store.range_partition_sets(
            centers, [50.0, 50.0]
        )

    def test_range_sets_validate_radii(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        with pytest.raises(ValueError):
            store.range_partition_sets([Point(0, 0), Point(1, 1)], [5.0])

    def test_knn_sets_cover_every_hit(self, skew, box):
        parts = kd_partition(skew, box, 16)
        store = PartitionedStore(skew, parts)
        centers = [Point(420, 650), Point(100, 100)]
        hits = store.knn_many(centers, 9)
        sets = store.knn_partition_sets(centers, hits, 9)
        for ids, pids in zip(hits, sets):
            hit_parts = {
                pid
                for pid, part in enumerate(parts)
                for i in part.point_indices
                if i in set(ids)
            }
            assert hit_parts <= set(pids)
            assert len(pids) < len(parts)

    def test_knn_short_answer_depends_on_all(self, box):
        pts = [Point(1, 1), Point(2, 2)]
        store = PartitionedStore(pts, grid_partition(pts, box, 2))
        hits = store.knn_many([Point(0, 0)], 10)
        assert store.knn_partition_sets([Point(0, 0)], hits, 10) == [(0, 1, 2, 3)]

    def test_knn_sets_require_aligned_hits(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        with pytest.raises(ValueError):
            store.knn_partition_sets([Point(0, 0)], [])

    def test_partition_boxes_read_only(self, skew, box):
        store = PartitionedStore(skew, kd_partition(skew, box, 4))
        boxes = store.partition_boxes
        assert boxes.shape == (4, 4)
        with pytest.raises(ValueError):
            boxes[0, 0] = 99.0


class TestPartitionLeaseExceptionSafety:
    """Regression tests for the R2-flow findings fixed in _PartitionLeases.lease:
    a failure anywhere between acquiring the arena leases and registering them
    in the cache must return every acquired lease to the arena."""

    class _FakeLease:
        def __init__(self):
            self.alive = True

        def release(self):
            self.alive = False

    def _fake_arena(self, fail_on_share=None):
        leases = []
        test = self

        class _FakeArena:
            def share(self, arr):
                if fail_on_share is not None and len(leases) + 1 == fail_on_share:
                    raise RuntimeError("arena exhausted")
                lease = test._FakeLease()
                leases.append(lease)
                return lease

        return _FakeArena(), leases

    def test_second_share_failure_releases_first_lease(self, monkeypatch):
        import numpy as np

        from repro.parallel import shm
        from repro.querying.distributed import _PartitionLeases

        arena, leases = self._fake_arena(fail_on_share=2)
        monkeypatch.setattr(shm, "get_arena", lambda: arena)
        pl = _PartitionLeases()
        with pytest.raises(RuntimeError, match="arena exhausted"):
            pl.lease(0, np.zeros((3, 3)), np.arange(3))
        assert len(leases) == 1 and not leases[0].alive
        assert len(pl) == 0

    def test_cache_registration_failure_releases_both_leases(self, monkeypatch):
        import numpy as np

        from repro.parallel import shm
        from repro.querying.distributed import _PartitionLeases

        arena, leases = self._fake_arena()
        monkeypatch.setattr(shm, "get_arena", lambda: arena)

        class _BoomDict(dict):
            def __setitem__(self, key, value):
                raise RuntimeError("bookkeeping failed")

        pl = _PartitionLeases()
        pl._leases = _BoomDict()
        with pytest.raises(RuntimeError, match="bookkeeping failed"):
            pl.lease(0, np.zeros((3, 3)), np.arange(3))
        assert len(leases) == 2
        assert all(not lease.alive for lease in leases)

    def test_successful_lease_is_cached_and_alive(self, monkeypatch):
        import numpy as np

        from repro.parallel import shm
        from repro.querying.distributed import _PartitionLeases

        arena, leases = self._fake_arena()
        monkeypatch.setattr(shm, "get_arena", lambda: arena)
        pl = _PartitionLeases()
        coords, index = np.zeros((3, 3)), np.arange(3)
        lease_c, lease_i = pl.lease(0, coords, index)
        assert lease_c.alive and lease_i.alive
        assert len(pl) == 1
