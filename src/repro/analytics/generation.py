"""Privacy-aware synthetic trajectory generation (Sec. 2.3.3 / 2.4,
[23, 76]).

The deep generative models the tutorial cites (TrajVAE [23], generative
sequence models [76]) fill the same taxonomy slot as this classical
counterpart: learn a mobility model from a corpus, then *sample* synthetic
trajectories that preserve aggregate movement statistics without
replicating any individual trace — the generation side of
privacy-preserving computing.

* :class:`MarkovTrajectoryGenerator` — grid Markov model fitted on a
  corpus; sampling produces synthetic cell paths re-embedded as
  trajectories,
* :func:`visit_distribution_divergence` — utility metric: Jensen-Shannon
  divergence between real and synthetic cell-visit distributions,
* :func:`nearest_real_distance` — privacy metric: how close each synthetic
  trajectory comes to its nearest real one (large = non-copying).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.geometry import BBox, Point
from ..core.trajectory import Trajectory, TrajectoryPoint


class MarkovTrajectoryGenerator:
    """Grid-cell Markov chain fitted from trajectories, with sampling."""

    def __init__(self, bbox: BBox, cell_size: float, step_time: float = 1.0) -> None:
        if cell_size <= 0 or step_time <= 0:
            raise ValueError("cell_size and step_time must be positive")
        self.bbox = bbox
        self.cell_size = cell_size
        self.step_time = step_time
        self.nx = max(1, int(math.ceil(bbox.width / cell_size)))
        self.ny = max(1, int(math.ceil(bbox.height / cell_size)))
        self.n_cells = self.nx * self.ny
        self._transitions = np.zeros((self.n_cells, self.n_cells))
        self._starts = np.zeros(self.n_cells)
        self._fitted = False

    def _cell_of(self, p: Point) -> int:
        xi = min(self.nx - 1, max(0, int((p.x - self.bbox.min_x) / self.cell_size)))
        yi = min(self.ny - 1, max(0, int((p.y - self.bbox.min_y) / self.cell_size)))
        return yi * self.nx + xi

    def _center(self, cell: int) -> Point:
        yi, xi = divmod(cell, self.nx)
        return Point(
            self.bbox.min_x + (xi + 0.5) * self.cell_size,
            self.bbox.min_y + (yi + 0.5) * self.cell_size,
        )

    def fit(self, corpus: list[Trajectory]) -> "MarkovTrajectoryGenerator":
        """Learn start and transition statistics from the corpus."""
        if not corpus:
            raise ValueError("empty corpus")
        for traj in corpus:
            cells = [self._cell_of(p.point) for p in traj]
            if not cells:
                continue
            self._starts[cells[0]] += 1.0
            for a, b in zip(cells, cells[1:]):
                self._transitions[a, b] += 1.0
        self._fitted = True
        return self

    def sample(
        self,
        rng: np.random.Generator,
        n_points: int,
        jitter: float | None = None,
        object_id: str = "synthetic",
    ) -> Trajectory:
        """One synthetic trajectory of ``n_points`` samples.

        Positions are cell centers plus uniform within-cell jitter
        (default: half a cell), so synthetic points do not align on a
        lattice.  Dead-end cells restart from the start distribution.
        """
        if not self._fitted:
            raise RuntimeError("call fit() first")
        if n_points < 1:
            raise ValueError("n_points must be >= 1")
        if jitter is None:
            jitter = self.cell_size / 2.0
        start_p = self._starts / self._starts.sum()
        cell = int(rng.choice(self.n_cells, p=start_p))
        points = []
        for i in range(n_points):
            c = self._center(cell)
            points.append(
                TrajectoryPoint(
                    c.x + rng.uniform(-jitter, jitter),
                    c.y + rng.uniform(-jitter, jitter),
                    i * self.step_time,
                )
            )
            row = self._transitions[cell]
            total = row.sum()
            if total > 0:
                cell = int(rng.choice(self.n_cells, p=row / total))
            else:
                cell = int(rng.choice(self.n_cells, p=start_p))
        return Trajectory(points, object_id)

    def sample_many(
        self, rng: np.random.Generator, n_trajectories: int, n_points: int
    ) -> list[Trajectory]:
        """Sample ``n_trajectories`` independent synthetic trajectories."""
        return [
            self.sample(rng, n_points, object_id=f"synthetic-{i}")
            for i in range(n_trajectories)
        ]

    def visit_distribution(self, trajs: list[Trajectory]) -> np.ndarray:
        """Normalized cell-visit histogram of a trajectory collection."""
        counts = np.zeros(self.n_cells)
        for t in trajs:
            for p in t:
                counts[self._cell_of(p.point)] += 1.0
        total = counts.sum()
        return counts / total if total > 0 else counts


def visit_distribution_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence (base 2, in [0, 1]) between visit histograms."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("histograms must share shape")
    m = 0.5 * (p + q)

    def kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


def nearest_real_distance(
    synthetic: Trajectory, corpus: list[Trajectory], n_samples: int = 10
) -> float:
    """Mean distance from the synthetic trace to its nearest real one.

    Compared at ``n_samples`` relative positions along each trajectory
    (index-aligned fractions), so trajectories of different lengths
    compare.  A large value certifies the synthetic trace copies nobody.
    """
    if not corpus:
        raise ValueError("empty corpus")
    fracs = np.linspace(0.0, 1.0, n_samples)

    def positions(t: Trajectory) -> np.ndarray:
        idx = (fracs * (len(t) - 1)).round().astype(int)
        return np.array([[t[int(i)].x, t[int(i)].y] for i in idx])

    sp = positions(synthetic)
    best = math.inf
    for real in corpus:
        rp = positions(real)
        d = float(np.mean(np.hypot(sp[:, 0] - rp[:, 0], sp[:, 1] - rp[:, 1])))
        best = min(best, d)
    return best
