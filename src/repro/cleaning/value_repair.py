"""STID thematic-value fault correction (Sec. 2.2.4, [90]).

Repairs *faulty thematic values* in sensor series using the spatiotemporal
dependencies the tutorial highlights: temporal autocorrelation within a
series and cross-sensor spatial correlation between neighbors.

* :func:`detect_spikes` / :func:`repair_with_interpolation` — temporal
  route: flag values inconsistent with their own series, repair by linear
  interpolation over clean samples,
* :func:`detect_stuck` — constant-run (stuck-at) fault detection,
* :func:`cross_sensor_repair` — spatial route: rebuild a faulty sensor's
  values from neighboring sensors via inverse-distance weighting, usable
  even when the sensor is wrong for a long stretch (where temporal
  interpolation fails).
"""

from __future__ import annotations

import numpy as np

from ..core.stid import STSeries
from .st_outliers import temporal_outliers


def detect_spikes(series: STSeries, window: int = 7, threshold: float = 3.0) -> list[int]:
    """Spike faults = temporal outliers of the value series."""
    return temporal_outliers(series, window, threshold)


def detect_stuck(series: STSeries, min_run: int = 5, tol: float = 1e-9) -> list[int]:
    """Indices inside constant runs of length >= ``min_run`` (stuck-at faults).

    The first sample of a run is considered genuine (the sensor did read
    that value once); the repeats are flagged.
    """
    values = series.values
    n = len(values)
    flagged: list[int] = []
    run_start = 0
    for i in range(1, n + 1):
        if i < n and abs(values[i] - values[run_start]) <= tol:
            continue
        run_len = i - run_start
        if run_len >= min_run:
            flagged.extend(range(run_start + 1, i))
        run_start = i
    return flagged


def repair_with_interpolation(series: STSeries, fault_indices: list[int]) -> STSeries:
    """Replace faulty values by linear interpolation over clean samples.

    Faults at the borders are replaced by the nearest clean value.
    """
    faults = set(fault_indices)
    times = series.times
    values = series.values
    clean = [i for i in range(len(values)) if i not in faults]
    if not clean:
        return series
    repaired = values.copy()
    clean_t = times[clean]
    clean_v = values[clean]
    for i in sorted(faults):
        if i < 0 or i >= len(values):
            raise IndexError(f"fault index {i} outside series")
        repaired[i] = float(np.interp(times[i], clean_t, clean_v))
    return series.with_values(repaired)


def cross_sensor_repair(
    faulty: STSeries,
    neighbors: list[STSeries],
    fault_indices: list[int],
    power: float = 2.0,
) -> STSeries:
    """Rebuild faulty readings from spatially neighboring sensors (IDW).

    A per-sensor offset (median difference on clean samples) is removed
    first, so heterogeneous calibration between devices does not leak into
    the repair — the bias-aware fusion step of [85].
    """
    if not neighbors:
        raise ValueError("need at least one neighbor series")
    faults = set(fault_indices)
    clean_idx = [i for i in range(len(faulty)) if i not in faults]
    times = faulty.times
    values = faulty.values
    # Neighbor estimates at our timestamps, bias-corrected on clean samples.
    estimates = []
    weights = []
    for nb in neighbors:
        d = faulty.location.distance_to(nb.location)
        w = 1.0 / max(d, 1e-6) ** power
        est = np.interp(times, nb.times, nb.values)
        if clean_idx:
            offset = float(np.median(values[clean_idx] - est[clean_idx]))
        else:
            offset = 0.0
        estimates.append(est + offset)
        weights.append(w)
    est = np.average(np.stack(estimates), axis=0, weights=np.array(weights))
    repaired = values.copy()
    for i in sorted(faults):
        repaired[i] = float(est[i])
    return faulty.with_values(repaired)


def repair_rmse(repaired: STSeries, truth: np.ndarray, indices: list[int]) -> float:
    """RMSE of the repaired values against truth, at the repaired indices."""
    if not indices:
        return 0.0
    r = repaired.values[indices]
    g = np.asarray(truth, dtype=float)[indices]
    return float(np.sqrt(np.mean((r - g) ** 2)))
