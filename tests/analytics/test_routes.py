import numpy as np
import pytest

from repro.core import BBox, Point, Trajectory, TrajectoryPoint
from repro.analytics import TransferNetwork, route_overlap

BOX = BBox(0, 0, 1000, 1000)


def cells_to_trajectory(cells, rng=None, jitter=0.0, interval=10.0):
    pts = []
    for i, (cx, cy) in enumerate(cells):
        x = cx * 100 + 50
        y = cy * 100 + 50
        if rng is not None and jitter > 0:
            x += rng.normal(0, jitter)
            y += rng.normal(0, jitter)
        pts.append(TrajectoryPoint(x, y, i * interval))
    return Trajectory(pts)


MAIN = [(1, 1), (2, 1), (3, 1), (4, 1)]
SIDE = [(1, 1), (1, 2), (2, 2), (3, 2), (4, 2), (4, 1)]


@pytest.fixture
def network(rng):
    corpus = [cells_to_trajectory(MAIN, rng, 5.0) for _ in range(15)]
    corpus += [cells_to_trajectory(SIDE, rng, 5.0) for _ in range(3)]
    return TransferNetwork(BOX, 100).fit(corpus)


class TestTransferNetwork:
    def test_cell_size_validated(self):
        with pytest.raises(ValueError):
            TransferNetwork(BOX, 0)

    def test_transition_probabilities_normalized(self, network):
        for node in network.graph.nodes:
            out = network.graph.out_edges(node, data=True)
            if out:
                assert sum(d["probability"] for _, _, d in out) == pytest.approx(1.0)

    def test_popular_route_prefers_main_corridor(self, network):
        route = network.popular_route(Point(150, 150), Point(450, 150))
        assert route_overlap(route, MAIN) > route_overlap(route, SIDE)

    def test_route_probability_product(self, network):
        route = network.popular_route(Point(150, 150), Point(450, 150))
        p = network.route_probability(route)
        assert 0.0 < p <= 1.0

    def test_impossible_route_probability_zero(self, network):
        assert network.route_probability([(1, 1), (9, 9)]) == 0.0

    def test_unknown_origin_rejected(self, network):
        with pytest.raises(ValueError):
            network.popular_route(Point(950, 950), Point(150, 150))

    def test_route_points_geometry(self, network):
        route = network.popular_route(Point(150, 150), Point(450, 150))
        pts = network.route_points(route)
        assert len(pts) == len(route)
        assert pts[0] == network.cell_center(route[0])

    def test_dedupes_repeated_cells(self, rng):
        stuttering = cells_to_trajectory(
            [(0, 0), (0, 0), (1, 0), (1, 0), (2, 0)], interval=5.0
        )
        tn = TransferNetwork(BOX, 100)
        tn.add_trajectory(stuttering)
        assert tn.graph.number_of_edges() == 2

    def test_sparse_trajectories_still_recover_route(self, rng):
        """The [107] point: no single sparse trajectory covers the route,
        but the aggregate recovers it."""
        # Each trajectory sees a random contiguous half of MAIN.
        corpus = []
        for _ in range(30):
            if rng.random() < 0.5:
                cells = MAIN[:3]
            else:
                cells = MAIN[1:]
            corpus.append(cells_to_trajectory(cells, rng, 5.0))
        tn = TransferNetwork(BOX, 100).fit(corpus)
        route = tn.popular_route(Point(150, 150), Point(450, 150))
        assert route == MAIN


class TestRouteOverlap:
    def test_identical(self):
        assert route_overlap(MAIN, MAIN) == 1.0

    def test_disjoint(self):
        assert route_overlap(MAIN, [(9, 9)]) == 0.0

    def test_empty(self):
        assert route_overlap([], []) == 1.0
