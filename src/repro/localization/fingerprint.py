"""Fingerprint positioning — single-source Ensemble LR (Sec. 2.2.1, [31]).

Weighted k-nearest-neighbor (WkNN) matching of an observed RSSI vector
against an offline radio map.  The *ensemble* aspect: the positioning
function produces a set of candidate results (the k matched reference
points), which are aggregated — here by inverse-signal-distance weighting —
into the final estimate.  The full candidate set is also exposed as a
:class:`~repro.core.uncertain.DiscreteLocation` so downstream probabilistic
query processing can keep the uncertainty.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Point
from ..core.uncertain import DiscreteLocation
from ..synth.sensors import RadioMap


class FingerprintLocalizer:
    """WkNN positioning over a surveyed radio map."""

    def __init__(self, radio_map: RadioMap, k: int = 4) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > len(radio_map):
            raise ValueError("k exceeds number of reference points")
        self.radio_map = radio_map
        self.k = k

    def candidates(self, rssi: np.ndarray) -> DiscreteLocation:
        """The k best-matching reference points with normalized weights.

        Weight of candidate i is ``1 / (eps + d_i)`` where ``d_i`` is the
        Euclidean distance in signal space.
        """
        rssi = np.asarray(rssi, dtype=float)
        if rssi.shape != (self.radio_map.fingerprints.shape[1],):
            raise ValueError(
                f"observation has {rssi.shape} entries, map expects "
                f"{self.radio_map.fingerprints.shape[1]}"
            )
        dists = np.linalg.norm(self.radio_map.fingerprints - rssi, axis=1)
        order = np.argsort(dists)[: self.k]
        weights = 1.0 / (1e-6 + dists[order])
        points = tuple(self.radio_map.reference_points[i] for i in order)
        return DiscreteLocation(points, tuple(float(w) for w in weights))

    def estimate(self, rssi: np.ndarray) -> Point:
        """Point estimate: the weighted centroid of the k candidates."""
        return self.candidates(rssi).mean()

    def estimate_nn(self, rssi: np.ndarray) -> Point:
        """Plain nearest-neighbor baseline (k = 1, no aggregation)."""
        rssi = np.asarray(rssi, dtype=float)
        dists = np.linalg.norm(self.radio_map.fingerprints - rssi, axis=1)
        return self.radio_map.reference_points[int(np.argmin(dists))]
