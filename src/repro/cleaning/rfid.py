"""Symbolic-trajectory fault correction — RFID cleansing (Sec. 2.2.4,
[8, 20, 32, 45]).

Raw RFID streams suffer *false negatives* (missed detections) and *false
positives* (cross-reads from adjacent antennas).  Implemented cleaners:

* :func:`window_smooth` — per-epoch majority over a sliding window, the
  SMURF-style [45] smoothing baseline: fills short detection gaps but lags
  at zone transitions,
* :class:`CorridorHMMCleaner` — probabilistic cleansing in the spirit of
  [8]: a hidden Markov model whose states are reader zones, whose emission
  model encodes the detection/cross-read probabilities, and whose
  transitions encode the deployment's spatial constraint (movement only
  between adjacent zones).  Viterbi decoding recovers the most probable
  zone sequence, correcting both fault types jointly.
"""

from __future__ import annotations

import math

import numpy as np

from ..synth.rfid import RawReading, ZoneVisit, readings_by_epoch


def window_smooth(
    readings: list[RawReading], n_readers: int, total_epochs: int, window: int = 5
) -> list[int | None]:
    """Majority-vote smoothing: per epoch, the most-read reader in a window.

    Returns one reader id (or None) per epoch in ``range(total_epochs)``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    by_epoch = readings_by_epoch(readings)
    half = window // 2
    out: list[int | None] = []
    for epoch in range(total_epochs):
        votes = np.zeros(n_readers)
        for e in range(epoch - half, epoch + half + 1):
            for reader in by_epoch.get(e, []):
                votes[reader] += 1
        out.append(int(np.argmax(votes)) if votes.sum() > 0 else None)
    return out


class CorridorHMMCleaner:
    """HMM cleansing of corridor RFID streams.

    State = occupied zone; per-epoch observation = the set of readers that
    fired.  Emission assumes reader ``r`` fires with probability
    ``p_detect`` if ``r`` is the occupied zone, ``p_cross`` if adjacent,
    and (numerically) never otherwise.  Transition allows staying or moving
    one zone forward/backward, with ``stay_prob`` mass on staying.
    """

    def __init__(
        self,
        n_readers: int,
        p_detect: float = 0.85,
        p_cross: float = 0.10,
        stay_prob: float = 0.8,
    ) -> None:
        if n_readers < 1:
            raise ValueError("need at least one reader")
        if not (0 < p_detect <= 1 and 0 <= p_cross < 1 and 0 < stay_prob < 1):
            raise ValueError("probabilities out of range")
        self.n = n_readers
        self.p_detect = p_detect
        self.p_cross = p_cross
        self.stay_prob = stay_prob

    def _log_emission(self, state: int, fired: set[int]) -> float:
        """log P(fired readers | occupied zone = state)."""
        logp = 0.0
        for r in range(self.n):
            if r == state:
                p = self.p_detect
            elif abs(r - state) == 1:
                p = self.p_cross
            else:
                p = 1e-4  # tiny probability for stray reads
            logp += math.log(p) if r in fired else math.log(1.0 - min(p, 1 - 1e-9))
        return logp

    def _log_transitions(self) -> np.ndarray:
        a = np.full((self.n, self.n), -math.inf)
        move = (1.0 - self.stay_prob) / 2.0
        for s in range(self.n):
            options = {s: self.stay_prob}
            if s - 1 >= 0:
                options[s - 1] = move
            if s + 1 < self.n:
                options[s + 1] = move
            total = sum(options.values())
            for s2, p in options.items():
                a[s, s2] = math.log(p / total)
        return a

    def clean(
        self, readings: list[RawReading], total_epochs: int
    ) -> list[int]:
        """Viterbi-decoded zone per epoch (length ``total_epochs``)."""
        by_epoch = readings_by_epoch(readings)
        log_a = self._log_transitions()
        fired0 = set(by_epoch.get(0, []))
        delta = np.array(
            [self._log_emission(s, fired0) - math.log(self.n) for s in range(self.n)]
        )
        back = np.zeros((total_epochs, self.n), dtype=int)
        for t in range(1, total_epochs):
            fired = set(by_epoch.get(t, []))
            emis = np.array([self._log_emission(s, fired) for s in range(self.n)])
            scores = delta[:, None] + log_a
            back[t] = np.argmax(scores, axis=0)
            delta = scores[back[t], np.arange(self.n)] + emis
        path = [int(np.argmax(delta))]
        for t in range(total_epochs - 1, 0, -1):
            path.append(int(back[t, path[-1]]))
        path.reverse()
        return path


def raw_reader_sequence(
    readings: list[RawReading], total_epochs: int
) -> list[int | None]:
    """Uncleaned baseline: an arbitrary (first) fired reader per epoch."""
    by_epoch = readings_by_epoch(readings)
    return [
        (by_epoch[e][0] if e in by_epoch and by_epoch[e] else None)
        for e in range(total_epochs)
    ]


def epoch_accuracy(
    decoded: list[int | None], visits: list[ZoneVisit]
) -> float:
    """Fraction of epochs whose decoded zone matches the ground truth."""
    truth: dict[int, int] = {}
    for v in visits:
        for e in range(v.enter_epoch, v.exit_epoch + 1):
            truth[e] = v.reader
    if not truth:
        return 1.0
    correct = sum(
        1 for e, z in truth.items() if e < len(decoded) and decoded[e] == z
    )
    return correct / len(truth)


def visits_from_sequence(sequence: list[int | None]) -> list[ZoneVisit]:
    """Collapse a per-epoch zone sequence into zone visits (run-length)."""
    visits: list[ZoneVisit] = []
    start = None
    current: int | None = None
    for e, z in enumerate(sequence):
        if z != current:
            if current is not None and start is not None:
                visits.append(ZoneVisit(current, start, e - 1))
            start = e if z is not None else None
            current = z
    if current is not None and start is not None:
        visits.append(ZoneVisit(current, start, len(sequence) - 1))
    return visits
