"""Synthetic ground-truth generators and quality-issue injectors.

The paper's techniques target real IoT deployments; here every deployment is
replaced by a seeded generator with exact ground truth (see DESIGN.md,
"Substitutions").  Sub-modules:

* :mod:`walks` — moving-object motion processes,
* :mod:`road_network` — synthetic road graphs and network-constrained trips,
* :mod:`sensors` — RSSI propagation, fingerprint maps, ranging anchors,
* :mod:`fields` — smooth spatiotemporal scalar fields (STID ground truth),
* :mod:`rfid` — symbolic-trajectory (RFID corridor) simulation,
* :mod:`checkins` — POI visits for the decision layer,
* :mod:`corrupt` — one injector per Table 1 characteristic.
"""

from .checkins import POI, CheckIn, CheckInWorld, corrupt_checkins, generate_pois
from .corrupt import (
    CorruptionProfile,
    add_gaussian_noise,
    add_outliers,
    add_sensor_bias,
    delay_arrivals,
    drop_interval,
    drop_points,
    duplicate_records,
    skew_timestamps,
    spike_values,
    stuck_sensor,
)
from .fields import SmoothField, random_sensor_sites, records_with_truth
from .rfid import CorridorWorld, RawReading, ZoneVisit, readings_by_epoch
from .road_network import RoadEdge, RoadNetwork
from .sensors import (
    AccessPoint,
    RadioMap,
    RangingObservation,
    deploy_access_points,
    measure_ranges,
    measure_vector,
)
from .walks import (
    StopSegment,
    correlated_random_walk,
    fleet,
    stop_and_go_walk,
    waypoint_walk,
)

__all__ = [
    "POI",
    "CheckIn",
    "CheckInWorld",
    "corrupt_checkins",
    "generate_pois",
    "CorruptionProfile",
    "add_gaussian_noise",
    "add_outliers",
    "add_sensor_bias",
    "delay_arrivals",
    "drop_interval",
    "drop_points",
    "duplicate_records",
    "skew_timestamps",
    "spike_values",
    "stuck_sensor",
    "SmoothField",
    "random_sensor_sites",
    "records_with_truth",
    "CorridorWorld",
    "RawReading",
    "ZoneVisit",
    "readings_by_epoch",
    "RoadEdge",
    "RoadNetwork",
    "AccessPoint",
    "RadioMap",
    "RangingObservation",
    "deploy_access_points",
    "measure_ranges",
    "measure_vector",
    "StopSegment",
    "correlated_random_walk",
    "fleet",
    "stop_and_go_walk",
    "waypoint_walk",
]
