import numpy as np
import pytest

from repro.learning import fit_ridge, predict_ridge, rmse


class TestRidge:
    def test_recovers_linear_model(self, rng):
        x = rng.normal(0, 1, (200, 3))
        w = np.array([1.5, -2.0, 0.5])
        y = x @ w + 4.0
        fitted = fit_ridge(x, y, alpha=1e-6)
        assert np.allclose(fitted[:3], w, atol=1e-4)
        assert fitted[3] == pytest.approx(4.0, abs=1e-4)

    def test_intercept_not_regularized(self, rng):
        x = rng.normal(0, 1, (100, 2))
        y = np.full(100, 50.0)  # pure intercept signal
        fitted = fit_ridge(x, y, alpha=100.0)
        assert fitted[-1] == pytest.approx(50.0, abs=0.5)

    def test_regularization_shrinks_weights(self, rng):
        x = rng.normal(0, 1, (30, 3))
        y = x @ np.array([3.0, 3.0, 3.0]) + rng.normal(0, 0.1, 30)
        loose = fit_ridge(x, y, 0.01)
        tight = fit_ridge(x, y, 100.0)
        assert np.linalg.norm(tight[:3]) < np.linalg.norm(loose[:3])

    def test_negative_alpha_rejected(self, rng):
        with pytest.raises(ValueError):
            fit_ridge(rng.normal(0, 1, (5, 2)), np.zeros(5), alpha=-1.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            fit_ridge(np.zeros(5), np.zeros(5))  # 1-D features
        with pytest.raises(ValueError):
            fit_ridge(np.zeros((5, 2)), np.zeros(4))

    def test_predict_matches_design(self, rng):
        x = rng.normal(0, 1, (50, 2))
        y = x @ np.array([1.0, 2.0]) + 1.0
        w = fit_ridge(x, y, 1e-9)
        assert np.allclose(predict_ridge(w, x), y, atol=1e-6)


class TestRmse:
    def test_zero_for_equal(self):
        assert rmse(np.arange(5.0), np.arange(5.0)) == 0.0

    def test_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))
