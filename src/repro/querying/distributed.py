"""Distributed query processing over skewed SID (Sec. 2.3.1, [93, 104, 111]).

Simulates the partition-and-route layer of a distributed spatial store:

* :func:`grid_partition` — static uniform tiling (ignores skew),
* :func:`kd_partition` — recursive median splits (SATO-style [104],
  adapts to skew),
* :func:`load_imbalance` — max/mean partition load, the quantity
  data-partitioning work minimizes,
* :class:`PartitionedStore` — routes range and kNN queries to the
  partitions that can contribute and counts partitions touched (the
  communication proxy).

The store's scan layer is columnar (the PR-2 batched kernels): each
partition's points live in contiguous coordinate/index arrays, batch
queries (:meth:`PartitionedStore.range_query_many` /
:meth:`~PartitionedStore.knn_many`) filter candidates with vectorized
reductions, and ``workers > 1`` fans query chunks out to a process pool
through shared-memory blocks (:mod:`repro.parallel.shm`) — the SATO-style
[104] place where parallelism pays.  Routing decisions, result order, and
the partitions-touched accounting are identical at every worker count.

The measurable claim: on skewed data, median partitioning yields near-1
imbalance while uniform tiling degrades — "node load-balancing and data
partitioning have been studied [for] queries over skewed SID".
"""

from __future__ import annotations

import weakref
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .. import kernels
from ..core.geometry import BBox, Point
from ..obs import OBS

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


@dataclass(frozen=True)
class Partition:
    """One shard: its spatial extent and the points assigned to it."""

    bbox: BBox
    point_indices: tuple[int, ...]

    @property
    def load(self) -> int:
        return len(self.point_indices)


def grid_partition(points: list[Point], region: BBox, n_cells_per_side: int) -> list[Partition]:
    """Uniform n x n tiling of the region."""
    if n_cells_per_side < 1:
        raise ValueError("need at least one cell per side")
    n = n_cells_per_side
    w, h = region.width / n, region.height / n
    buckets: dict[tuple[int, int], list[int]] = {}
    for i, p in enumerate(points):
        xi = min(n - 1, max(0, int((p.x - region.min_x) / w)))
        yi = min(n - 1, max(0, int((p.y - region.min_y) / h)))
        buckets.setdefault((xi, yi), []).append(i)
    parts = []
    for yi in range(n):
        for xi in range(n):
            bbox = BBox(
                region.min_x + xi * w,
                region.min_y + yi * h,
                region.min_x + (xi + 1) * w,
                region.min_y + (yi + 1) * h,
            )
            parts.append(Partition(bbox, tuple(buckets.get((xi, yi), []))))
    return parts


def kd_partition(points: list[Point], region: BBox, n_partitions: int) -> list[Partition]:
    """Recursive median splitting into ``n_partitions`` (power of 2 rounded up)."""
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    idx = list(range(len(points)))

    def split(indices: list[int], bbox: BBox, parts_left: int, depth: int) -> list[Partition]:
        if parts_left <= 1 or len(indices) <= 1:
            return [Partition(bbox, tuple(indices))]
        by_x = depth % 2 == 0
        vals = np.array([points[i].x if by_x else points[i].y for i in indices])
        median = float(np.median(vals))
        left = [i for i in indices if (points[i].x if by_x else points[i].y) <= median]
        right = [i for i in indices if (points[i].x if by_x else points[i].y) > median]
        if not left or not right:
            return [Partition(bbox, tuple(indices))]
        if by_x:
            b_left = BBox(bbox.min_x, bbox.min_y, median, bbox.max_y)
            b_right = BBox(median, bbox.min_y, bbox.max_x, bbox.max_y)
        else:
            b_left = BBox(bbox.min_x, bbox.min_y, bbox.max_x, median)
            b_right = BBox(bbox.min_x, median, bbox.max_x, bbox.max_y)
        half = parts_left // 2
        return split(left, b_left, parts_left - half, depth + 1) + split(
            right, b_right, half, depth + 1
        )

    return split(idx, region, n_partitions, 0)


def load_imbalance(partitions: list[Partition]) -> float:
    """Max load / mean load (1.0 = perfectly balanced)."""
    loads = [p.load for p in partitions]
    mean = float(np.mean(loads)) if loads else 0.0
    if mean == 0.0:
        return float("inf") if any(loads) else 1.0
    return max(loads) / mean


def skewed_points(
    rng: np.random.Generator,
    n_points: int,
    region: BBox,
    n_hotspots: int = 3,
    hotspot_sigma: float = 50.0,
    hotspot_fraction: float = 0.8,
) -> list[Point]:
    """Skewed workload: most points cluster in a few Gaussian hotspots."""
    centers = [
        (
            rng.uniform(region.min_x, region.max_x),
            rng.uniform(region.min_y, region.max_y),
        )
        for _ in range(n_hotspots)
    ]
    out = []
    for _ in range(n_points):
        if rng.random() < hotspot_fraction:
            cx, cy = centers[int(rng.integers(n_hotspots))]
            x = float(np.clip(rng.normal(cx, hotspot_sigma), region.min_x, region.max_x))
            y = float(np.clip(rng.normal(cy, hotspot_sigma), region.min_y, region.max_y))
        else:
            x = rng.uniform(region.min_x, region.max_x)
            y = rng.uniform(region.min_y, region.max_y)
        out.append(Point(x, y))
    return out


class _ColumnarPartitions:
    """Partition contents as contiguous arrays (the worker-shareable form).

    ``coords``/``index`` concatenate every partition's points in partition
    order; ``offsets[p]:offsets[p+1]`` delimits partition ``p``; ``boxes``
    holds each partition's bbox row.  Both the in-process scan path and the
    pool workers run the same routing functions over this one structure.
    """

    def __init__(
        self,
        coords: np.ndarray,
        index: np.ndarray,
        offsets: tuple[int, ...],
        boxes: np.ndarray,
    ) -> None:
        self.coords = coords
        self.index = index
        self.offsets = offsets
        self.boxes = boxes

    @classmethod
    def build(cls, points: list[Point], partitions: list[Partition]) -> "_ColumnarPartitions":
        offsets = [0]
        for part in partitions:
            offsets.append(offsets[-1] + len(part.point_indices))
        index = np.fromiter(
            (i for part in partitions for i in part.point_indices),
            dtype=np.int64,
            count=offsets[-1],
        )
        coords = kernels.coords_of([points[i] for i in index])
        boxes = np.array(
            [(p.bbox.min_x, p.bbox.min_y, p.bbox.max_x, p.bbox.max_y) for p in partitions],
            dtype=float,
        ).reshape(len(partitions), 4)
        return cls(coords, index, tuple(offsets), boxes)

    @property
    def n_partitions(self) -> int:
        return len(self.offsets) - 1

    def part(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(coords, point-index)`` views of partition ``p``."""
        lo, hi = self.offsets[p], self.offsets[p + 1]
        return self.coords[lo:hi], self.index[lo:hi]


def _route_range(
    cols: _ColumnarPartitions, centers: np.ndarray, radii: np.ndarray
) -> tuple[list[list[int]], int]:
    """Range routing: per-query hit lists plus partitions-touched count.

    A partition is *touched* by a query when its bbox overlaps the disk
    (whether or not any point qualifies), matching the legacy per-query
    scalar router.  Hits come back in partition order, then in each
    partition's ``point_indices`` order.  Scans are batched partition-major:
    one :func:`repro.kernels.range_masks` reduction covers every query
    routed to a partition.
    """
    n_queries = centers.shape[0]
    hits: list[list[int]] = [[] for _ in range(n_queries)]
    if n_queries == 0 or cols.n_partitions == 0:
        return hits, 0
    overlap = np.zeros((n_queries, cols.n_partitions), dtype=bool)
    for qi in range(n_queries):
        overlap[qi] = kernels.box_min_dists(cols.boxes, centers[qi]) <= radii[qi]
    touched = int(overlap.sum())
    for p in range(cols.n_partitions):
        routed = np.flatnonzero(overlap[:, p])
        if routed.size == 0:
            continue
        coords, index = cols.part(p)
        if coords.shape[0] == 0:
            continue
        masks = kernels.range_masks(coords, centers[routed], radii[routed])
        for qi, mask in zip(routed.tolist(), masks):
            hits[qi].extend(int(i) for i in index[mask])
    return hits, touched


def _route_knn(
    cols: _ColumnarPartitions, centers: np.ndarray, k: int
) -> tuple[list[list[int]], int]:
    """kNN routing: scan partitions best-first, prune by the k-th distance.

    Partitions are visited in ascending ``(bbox min-distance, partition
    index)`` order; scanning stops once ``k`` candidates are known and the
    next partition's lower bound exceeds the current k-th distance.  Every
    scanned partition counts as touched.  Ties break by ascending point
    index (the package-wide ``(distance, id)`` rule).
    """
    n_queries = centers.shape[0]
    out: list[list[int]] = [[] for _ in range(n_queries)]
    if n_queries == 0 or cols.n_partitions == 0 or k < 1:
        return out, 0
    touched = 0
    for qi in range(n_queries):
        lower = kernels.box_min_dists(cols.boxes, centers[qi])
        order = np.lexsort((np.arange(cols.n_partitions), lower))
        d_parts: list[np.ndarray] = []
        id_parts: list[np.ndarray] = []
        total = 0
        kth = np.inf
        for p in order.tolist():
            if total >= k and lower[p] > kth:
                break
            touched += 1
            coords, index = cols.part(p)
            if coords.shape[0] == 0:
                continue
            d_parts.append(kernels.dists_to(coords, centers[qi]))
            id_parts.append(index)
            total += index.shape[0]
            if total >= k:
                kth = float(np.partition(np.concatenate(d_parts), k - 1)[k - 1])
        if total:
            sel = kernels.knn_select(np.concatenate(d_parts), np.concatenate(id_parts), k)
            out[qi] = [int(i) for i in sel]
    return out, touched


def _release_leases(*leases: Any) -> None:
    """GC-time finalizer: return a dead store's arena leases (idempotent)."""
    for lease in leases:
        lease.release()


def _query_chunk_task(payload: tuple) -> tuple[list[list[int]], int]:
    """Pool worker: answer one query chunk against the shared columnar store."""
    from ..parallel import SharedArray

    coords_h, index_h, offsets, boxes, mode, centers, arg = payload
    # Nested with-items: if the second attach fails, the first still closes.
    with SharedArray.attach(coords_h) as coords, SharedArray.attach(index_h) as index:
        cols = _ColumnarPartitions(coords.array, index.array, offsets, boxes)
        if mode == "range":
            return _route_range(cols, centers, arg)
        return _route_knn(cols, centers, arg)


class PartitionedStore:
    """Query router over a partitioned point set.

    Single-query entry points (:meth:`range_query`, :meth:`knn`) are thin
    wrappers over the batched ones, which scan each partition with the PR-2
    columnar kernels and optionally fan query chunks out to a process pool
    (``workers > 1``).  ``partitions_touched`` counts every (query,
    partition) routing decision regardless of execution backend.
    """

    def __init__(self, points: list[Point], partitions: list[Partition]) -> None:
        self.points = points
        self.partitions = partitions
        self.partitions_touched = 0
        self.queries_run = 0
        self._cols = _ColumnarPartitions.build(points, partitions)
        self._shm_cache: tuple[Any, Any] | None = None
        self._shm_finalizer: weakref.finalize | None = None

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Route to overlapping partitions; returns matching point indices."""
        return self.range_query_many([center], [radius])[0]

    def range_query_many(
        self,
        centers: Sequence[Point],
        radii,
        *,
        workers: int | None = None,
        executor: Any = None,
    ) -> list[list[int]]:
        """Batch range routing; one hit list per center, in input order.

        ``radii`` is a scalar shared by every query or a per-query sequence.
        """
        c = kernels.centers_of(centers)
        r = np.asarray(radii, dtype=float)
        if r.ndim == 0:
            r = np.full(c.shape[0], float(r))
        elif r.shape != (c.shape[0],):
            raise ValueError("radii must be a scalar or match the number of centers")
        return self._run_batch("range", c, r, workers, executor)

    def knn(self, center: Point, k: int) -> list[int]:
        """Indices of the k nearest points (``(distance, index)`` tie rule)."""
        return self.knn_many([center], k)[0]

    def knn_many(
        self,
        centers: Sequence[Point],
        k: int,
        *,
        workers: int | None = None,
        executor: Any = None,
    ) -> list[list[int]]:
        """Batch kNN routing with best-first partition pruning."""
        if k < 1:
            raise ValueError("k must be at least 1")
        c = kernels.centers_of(centers)
        return self._run_batch("knn", c, k, workers, executor)

    def _run_batch(
        self,
        mode: str,
        centers: np.ndarray,
        arg,
        workers: int | None,
        executor: Any,
    ) -> list[list[int]]:
        from ..parallel import SerialExecutor, chunk_spans, resolve_executor

        obs_on = OBS.enabled
        self.queries_run += centers.shape[0]
        route = _route_range if mode == "range" else _route_knn
        cm = (
            OBS.tracer.span("query.partitioned_batch", mode=mode, queries=centers.shape[0])
            if obs_on
            else _NULL
        )
        with cm, resolve_executor(workers, executor, n_items=centers.shape[0]) as ex:
            if isinstance(ex, SerialExecutor):
                hits, touched = route(self._cols, centers, arg)
            else:
                spans = chunk_spans(centers.shape[0], None)
                coords_s, index_s = self._shared_cols()
                payloads = [
                    (
                        coords_s.handle,
                        index_s.handle,
                        self._cols.offsets,
                        self._cols.boxes,
                        mode,
                        centers[start:stop],
                        arg[start:stop] if mode == "range" else arg,
                    )
                    for start, stop in spans
                ]
                results = ex.map_ordered(_query_chunk_task, payloads)
                hits = [h for chunk_hits, _ in results for h in chunk_hits]
                touched = sum(t for _, t in results)
        self.partitions_touched += touched
        if obs_on:
            OBS.metrics.inc(
                "repro_query_partitions_touched_total", (("mode", mode),), float(touched)
            )
        return hits

    def _shared_cols(self) -> tuple[Any, Any]:
        """Arena leases of the columnar arrays, cached across batch calls.

        The coords/index blocks are immutable for the store's lifetime, so
        the first parallel batch leases them once from the default arena and
        every later batch reuses the same segments — no per-call
        create/copy/unlink, and pool workers keep their cached attachments.
        Leases invalidated by an arena ``close_all`` are re-shared lazily.
        """
        from ..parallel.shm import get_arena

        cached = self._shm_cache
        if cached is not None and cached[0].alive and cached[1].alive:
            return cached
        self.close_shared()
        arena = get_arena()
        coords_s = arena.share(self._cols.coords)
        try:
            index_s = arena.share(self._cols.index)
        except BaseException:
            coords_s.release()  # pairs the first lease on the failure path
            raise
        self._shm_cache = (coords_s, index_s)
        self._shm_finalizer = weakref.finalize(self, _release_leases, coords_s, index_s)
        return self._shm_cache

    def close_shared(self) -> None:
        """Return this store's cached arena leases (idempotent).

        Called automatically when the store is garbage collected; long-lived
        applications cycling many stores can call it eagerly to keep the
        arena's free list tight.
        """
        finalizer, self._shm_finalizer = self._shm_finalizer, None
        self._shm_cache = None
        if finalizer is not None:
            finalizer()

    def mean_partitions_per_query(self) -> float:
        """Average partitions touched per query (communication proxy)."""
        if self.queries_run == 0:
            return 0.0
        return self.partitions_touched / self.queries_run

    # -- cache-aware entry points (the serving layer's dependency oracle) --------

    @property
    def partition_boxes(self) -> np.ndarray:
        """Read-only ``(n_partitions, 4)`` min_x/min_y/max_x/max_y extents."""
        boxes = self._cols.boxes.view()
        boxes.flags.writeable = False
        return boxes

    def range_partition_sets(
        self, centers: Sequence[Point], radii
    ) -> list[tuple[int, ...]]:
        """Per-query partition dependency sets for range queries.

        A partition belongs to a query's set exactly when its bbox overlaps
        the query disk — the same predicate the router uses — so a write
        outside the set provably cannot change the query's answer.  The
        serving layer keys cached results on these sets for quality-epoch
        invalidation.
        """
        c = kernels.centers_of(centers)
        r = np.asarray(radii, dtype=float)
        if r.ndim == 0:
            r = np.full(c.shape[0], float(r))
        elif r.shape != (c.shape[0],):
            raise ValueError("radii must be a scalar or match the number of centers")
        out: list[tuple[int, ...]] = []
        for qi in range(c.shape[0]):
            overlap = kernels.box_min_dists(self._cols.boxes, c[qi]) <= r[qi]
            out.append(tuple(int(p) for p in np.flatnonzero(overlap)))
        return out

    def knn_partition_sets(
        self, centers: Sequence[Point], hits: Sequence[Sequence[int]], k: int | None = None
    ) -> list[tuple[int, ...]]:
        """Per-query partition dependency sets for answered kNN queries.

        ``hits`` is the corresponding :meth:`knn_many` output (pass the
        requested ``k`` to detect short answers).  A new point can enter a
        full top-k only from a partition whose bbox lower bound is within
        the current k-th distance, so those partitions form a conservative
        dependency set: any write elsewhere leaves the answer intact.  A
        short or empty answer (store held fewer than k points) depends on
        every partition.
        """
        c = kernels.centers_of(centers)
        if c.shape[0] != len(hits):
            raise ValueError("hits must align with centers")
        n_parts = self._cols.n_partitions
        out: list[tuple[int, ...]] = []
        for qi, ids in enumerate(hits):
            if not ids or (k is not None and len(ids) < k):
                out.append(tuple(range(n_parts)))
                continue
            coords = kernels.coords_of([self.points[i] for i in ids])
            kth = float(kernels.dists_to(coords, c[qi]).max())
            overlap = kernels.box_min_dists(self._cols.boxes, c[qi]) <= kth
            out.append(tuple(int(p) for p in np.flatnonzero(overlap)))
        return out
