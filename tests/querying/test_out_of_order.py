import numpy as np
import pytest

from repro.querying import StreamEvent, WatermarkAggregator, run_stream


def delayed_stream(rng, n=100, mean_delay=3.0):
    return [
        StreamEvent(float(t), float(t) + rng.exponential(mean_delay), float(t % 7))
        for t in range(n)
    ]


class TestWatermarkAggregator:
    def test_validation(self):
        with pytest.raises(ValueError):
            WatermarkAggregator(0.0, 1.0)
        with pytest.raises(ValueError):
            WatermarkAggregator(10.0, -1.0)

    def test_in_order_stream_fully_complete(self):
        events = [StreamEvent(float(t), float(t), 1.0) for t in range(50)]
        agg = run_stream(events, 10.0, 0.0)
        assert agg.completeness() == 1.0
        assert len(agg.results) == 5

    def test_window_means_correct(self):
        events = [StreamEvent(float(t), float(t), float(t)) for t in range(20)]
        agg = run_stream(events, 10.0, 0.0)
        first = next(r for r in agg.results if r.window_start == 0.0)
        assert first.mean == pytest.approx(np.mean(range(10)))
        assert first.count == 10

    def test_zero_lateness_drops_late_events(self, rng):
        events = delayed_stream(rng, 200, mean_delay=5.0)
        agg = run_stream(events, 10.0, 0.0)
        assert agg.completeness() < 1.0
        assert sum(r.late_drops for r in agg.results) > 0

    def test_lateness_tradeoff(self, rng):
        """More allowed lateness: completeness up, latency up — the
        quality-driven trade-off of [48]."""
        events = delayed_stream(rng, 300, mean_delay=5.0)
        comp, lat = [], []
        for lateness in (0.0, 10.0, 40.0):
            agg = run_stream(events, 10.0, lateness)
            comp.append(agg.completeness())
            lat.append(agg.mean_result_latency())
        assert comp == sorted(comp)
        assert lat == sorted(lat)
        assert comp[-1] == 1.0

    def test_flush_finalizes_tail(self, rng):
        events = delayed_stream(rng, 40)
        agg = WatermarkAggregator(10.0, 100.0)  # watermark never advances far
        for e in sorted(events, key=lambda e: e.arrival_time):
            agg.offer(e)
        assert len(agg.results) == 0
        agg.flush(1_000.0)
        assert len(agg.results) == 4

    def test_late_arrival_after_close_counted(self):
        agg = WatermarkAggregator(10.0, 0.0)
        agg.offer(StreamEvent(5.0, 0.0, 1.0))
        agg.offer(StreamEvent(25.0, 1.0, 1.0))  # watermark 25 closes [0,10)
        assert len(agg.results) == 1
        agg.offer(StreamEvent(7.0, 2.0, 1.0))  # too late for its window
        assert agg.results[0].late_drops == 1

    def test_results_in_window_order(self, rng):
        events = delayed_stream(rng, 200, 4.0)
        agg = run_stream(events, 10.0, 5.0)
        starts = [r.window_start for r in agg.results]
        assert starts == sorted(starts)

    def test_empty_stream(self):
        agg = run_stream([], 10.0, 1.0)
        assert agg.results == []
        assert agg.completeness() == 1.0
