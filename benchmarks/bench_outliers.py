"""Experiment F2-OR — outlier removal trade-offs (Sec. 2.2.3).

Claims measured:
  * The three trajectory OR families detect injected outliers, and their
    weaknesses match the paper: constraint-based degrades on noisy data;
    statistics-based needs history; prediction-based repairs in place.
  * STID OR: spatiotemporal neighborhood methods find value outliers;
    ST-DBSCAN marks density noise.
"""

import numpy as np

from conftest import print_table

from repro.cleaning import (
    STDBSCAN,
    detection_scores,
    neighborhood_outliers,
    prediction_outliers,
    profile_outliers,
    speed_outliers,
    zscore_outliers,
)
from repro.core import STRecord, accuracy_error
from repro.synth import add_gaussian_noise, add_outliers, correlated_random_walk


def _scenario(rng, box, noise):
    truth = correlated_random_walk(rng, 250, box, speed_mean=5, speed_sigma=1)
    noisy = add_gaussian_noise(truth, rng, noise)
    corrupted, idx = add_outliers(noisy, rng, 0.05, magnitude=200.0)
    return truth, corrupted, idx


def test_trajectory_or_families(rng, box, benchmark):
    truth, corrupted, idx = _scenario(rng, box, noise=3.0)
    # Profiles come from the same sensing system: history carries the same
    # measurement noise as the data being screened.
    history = [
        add_gaussian_noise(
            correlated_random_walk(rng, 200, box, speed_mean=5, speed_sigma=1),
            rng,
            3.0,
        )
        for _ in range(10)
    ]
    methods = {
        "constraint (speed)": lambda t: speed_outliers(t, 25.0),
        "statistics (windowed z)": lambda t: zscore_outliers(t, 7, 3.0),
        "statistics (profile)": lambda t: profile_outliers(t, history, 3.0),
        "prediction (Kalman gate)": lambda t: prediction_outliers(t, 3.0)[0],
    }
    rows = []
    f1 = {}
    for name, method in methods.items():
        scores = detection_scores(method(corrupted), idx, len(corrupted))
        rows.append((name, scores["precision"], scores["recall"], scores["f1"]))
        f1[name] = scores["f1"]
    benchmark(zscore_outliers, corrupted, 7, 3.0)
    print_table(
        "F2-OR: trajectory outlier detection (5% outliers, low noise)",
        ["method", "precision", "recall", "f1"],
        rows,
    )
    assert all(v > 0.5 for v in f1.values())


def test_constraint_method_degrades_with_noise(rng, box, benchmark):
    """Paper: constraint-based methods 'may not contend well with dynamic
    and noisy trajectories'."""
    rows = []
    f1s = []
    for noise in (2.0, 8.0, 20.0):
        truth, corrupted, idx = _scenario(np.random.default_rng(5), box, noise)
        scores = detection_scores(speed_outliers(corrupted, 25.0), idx, len(corrupted))
        rows.append((noise, scores["precision"], scores["recall"], scores["f1"]))
        f1s.append(scores["f1"])
    benchmark(speed_outliers, corrupted, 25.0)
    print_table(
        "F2-OR: constraint-based OR vs measurement noise",
        ["noise_sigma", "precision", "recall", "f1"],
        rows,
    )
    assert f1s[-1] < f1s[0]


def test_prediction_method_repairs(rng, box, benchmark):
    truth, corrupted, idx = _scenario(rng, box, 3.0)
    flagged, repaired = benchmark(prediction_outliers, corrupted, 3.0)
    rows = [
        ("corrupted", accuracy_error(corrupted, truth)),
        ("repaired", accuracy_error(repaired, truth)),
    ]
    print_table("F2-OR: prediction-based repair, mean error (m)", ["data", "error"], rows)
    assert accuracy_error(repaired, truth) < accuracy_error(corrupted, truth) / 2


def test_stid_outliers(rng, benchmark):
    # Smooth spatial gradient + planted value outliers.
    records = []
    truth_idx = []
    for i in range(150):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        v = 0.1 * x + 0.05 * y + rng.normal(0, 0.2)
        records.append(STRecord(x, y, float(i % 10), v))
    for j in rng.choice(150, size=8, replace=False):
        r = records[int(j)]
        records[int(j)] = STRecord(r.x, r.y, r.t, r.value + 40.0)
        truth_idx.append(int(j))
    found = benchmark(
        neighborhood_outliers, records, 40.0, 20.0, 4.0, 3
    )
    scores = detection_scores(found, truth_idx, len(records))
    rows = [("neighborhood z-score", scores["precision"], scores["recall"], scores["f1"])]
    # ST-DBSCAN marks isolated records as noise.
    cluster = [STRecord(rng.normal(10, 1), rng.normal(10, 1), float(i), 1.0) for i in range(20)]
    lonely = [STRecord(500, 500, 100.0, 1.0)]
    noise_idx = STDBSCAN(5, 30, 4).outliers(cluster + lonely)
    rows.append(("ST-DBSCAN (density)", 1.0 if noise_idx == [20] else 0.0, 1.0, 1.0))
    print_table(
        "F2-OR: STID outlier removal", ["method", "precision", "recall", "f1"], rows
    )
    assert scores["f1"] > 0.7
    assert noise_idx == [20]
