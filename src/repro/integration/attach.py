"""Trajectory + STID attachment (Sec. 2.2.5, [125]).

Attaches spatiotemporal measurements (air quality, temperature, ...) to
trajectory points by space-time proximity, producing an *enriched
trajectory* — e.g. the pollutant exposure profile of a trip.  This is the
tutorial's Trajectory+STID non-semantic integration case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stid import STRecord
from ..core.trajectory import Trajectory
from ..cleaning.interpolation import idw_interpolate


@dataclass(frozen=True)
class EnrichedPoint:
    """A trajectory point plus the attached thematic value (and confidence)."""

    x: float
    y: float
    t: float
    value: float
    support: int  # number of records within the attachment window


def attach_records(
    traj: Trajectory,
    records: list[STRecord],
    space_window: float = 300.0,
    time_window: float = 600.0,
    time_scale: float = 1.0,
) -> list[EnrichedPoint]:
    """Attach an IDW thematic estimate to every trajectory point.

    Only records within the space/time window contribute; points with no
    records in range receive NaN with support 0 (the caller decides whether
    to interpolate or drop).
    """
    xs = np.array([r.x for r in records])
    ys = np.array([r.y for r in records])
    ts = np.array([r.t for r in records])
    out: list[EnrichedPoint] = []
    for p in traj:
        if len(records) == 0:
            out.append(EnrichedPoint(p.x, p.y, p.t, float("nan"), 0))
            continue
        mask = (
            (np.hypot(xs - p.x, ys - p.y) <= space_window)
            & (np.abs(ts - p.t) <= time_window)
        )
        nearby = [records[i] for i in np.flatnonzero(mask)]
        if not nearby:
            out.append(EnrichedPoint(p.x, p.y, p.t, float("nan"), 0))
            continue
        v = idw_interpolate(nearby, p.point, p.t, time_scale=time_scale, k=8)
        out.append(EnrichedPoint(p.x, p.y, p.t, v, len(nearby)))
    return out


def exposure_integral(enriched: list[EnrichedPoint]) -> float:
    """Time integral of the attached value along the trip (trapezoid rule).

    NaN segments (no supporting measurements) contribute zero — the
    conservative reading for exposure-style accumulations.
    """
    total = 0.0
    for a, b in zip(enriched, enriched[1:]):
        if np.isnan(a.value) or np.isnan(b.value):
            continue
        total += 0.5 * (a.value + b.value) * (b.t - a.t)
    return total


def attachment_coverage(enriched: list[EnrichedPoint]) -> float:
    """Fraction of trajectory points that received a measurement."""
    if not enriched:
        return 0.0
    return sum(1 for e in enriched if e.support > 0) / len(enriched)
