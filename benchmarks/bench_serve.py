"""Benchmark: the quality-aware serving layer under closed-loop load (ISSUE 6).

Drives :class:`repro.serve.QueryService` with thousands of simulated
closed-loop clients (each awaits its response before issuing the next
query) over a partitioned spatial store and measures:

* **latency** — per-request p50/p99 and mean, queue wait included,
* **throughput** — sustained QPS over the closed-loop run,
* **coalescing** — kernel calls versus a naive ``max_batch=1`` service on
  the same workload (the ratio is the batching win),
* **caching** — epoch-validated hit rate on a skewed signature pool.

Writes ``BENCH_serve.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI gate

``--smoke`` runs a small client fleet and *asserts* the serving
invariants: zero dropped responses under the lossless ``block`` policy,
p99 latency under a generous budget, coalescing strictly beating the
naive service, and cached responses bit-identical to their uncached
originals.
"""

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import BBox, Point
from repro.querying import PartitionedStore, kd_partition, skewed_points
from repro.serve import KnnQueryRequest, QueryService, RangeQueryRequest

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

SEED = 2022

#: CI latency budget for the smoke fleet (generous: shared-runner safe).
SMOKE_P99_BUDGET_S = 0.25


def make_store(rng, n_points: int, n_partitions: int) -> PartitionedStore:
    box = BBox(0.0, 0.0, 1000.0, 1000.0)
    pts = skewed_points(rng, n_points, box, n_hotspots=5, hotspot_sigma=60.0)
    return PartitionedStore(pts, kd_partition(pts, box, n_partitions))


def make_workload(rng, n_clients: int, queries_per_client: int, n_distinct: int):
    """Per-client query scripts drawn from a shared skewed signature pool.

    The pool is what makes caching matter: clients re-ask popular questions
    (geometric rank weights), as dashboards and tiles do in practice.
    """
    centers = rng.uniform(50.0, 950.0, size=(n_distinct, 2))
    radii = rng.uniform(20.0, 80.0, size=n_distinct)
    ks = rng.integers(3, 12, size=n_distinct)
    weights = 0.97 ** np.arange(n_distinct)
    weights /= weights.sum()
    pool = []
    for i in range(n_distinct):
        center = Point(float(centers[i, 0]), float(centers[i, 1]))
        if i % 3:
            pool.append(RangeQueryRequest(center, float(radii[i])))
        else:
            pool.append(KnnQueryRequest(center, int(ks[i])))
    picks = rng.choice(n_distinct, size=(n_clients, queries_per_client), p=weights)
    return [[pool[j] for j in row] for row in picks]


async def _closed_loop(service: QueryService, scripts, latencies: list) -> None:
    async def client(script) -> None:
        for request in script:
            start = time.perf_counter()
            response = await service.submit(request)
            latencies.append(time.perf_counter() - start)
            assert response.ok, "closed-loop client lost a response"

    await asyncio.gather(*(client(s) for s in scripts))


def run_fleet(store: PartitionedStore, scripts, **svc_kwargs) -> dict:
    """One closed-loop run; returns latency/throughput/serving stats."""
    latencies: list = []

    async def go():
        async with QueryService(store, policy="block", **svc_kwargs) as svc:
            start = time.perf_counter()
            await _closed_loop(svc, scripts, latencies)
            wall = time.perf_counter() - start
        return wall, svc.stats, svc.cache.hit_rate()

    wall, stats, hit_rate = asyncio.run(go())
    lat = np.asarray(latencies)
    return {
        "clients": len(scripts),
        "requests": int(lat.size),
        "wall_s": wall,
        "qps": lat.size / wall,
        "latency_p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "latency_mean_ms": float(lat.mean()) * 1e3,
        "cache_hit_rate": hit_rate,
        "stats": stats.as_dict(),
    }


def check_cache_identity(store: PartitionedStore, scripts) -> None:
    """Cached responses must be bit-identical to their uncached originals."""

    async def go():
        async with QueryService(store, linger=0.0) as svc:
            for request in {r.signature(): r for s in scripts[:20] for r in s}.values():
                first = await svc.submit(request)
                second = await svc.submit(request)
                assert not first.cached and second.cached
                assert second.results == first.results, "cache broke bit-identity"

    asyncio.run(go())


def check_epoch_invalidation(store: PartitionedStore) -> None:
    """A bumped dependency partition must force recomputation."""

    async def go():
        async with QueryService(store, linger=0.0) as svc:
            request = RangeQueryRequest(Point(500.0, 500.0), 60.0)
            first = await svc.submit(request)
            svc.epochs.bump_point(500.0, 500.0)
            again = await svc.submit(request)
            assert not again.cached and again.results == first.results

    asyncio.run(go())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fleet; assert zero drops, p99 budget, coalescing > naive",
    )
    args = parser.parse_args(argv)
    rng = np.random.default_rng(SEED)

    if args.smoke:
        n_points, n_partitions = 4_000, 16
        n_clients, per_client, n_distinct = 400, 3, 120
    else:
        n_points, n_partitions = 20_000, 32
        n_clients, per_client, n_distinct = 10_000, 3, 2_000

    store = make_store(rng, n_points, n_partitions)
    scripts = make_workload(rng, n_clients, per_client, n_distinct)

    coalesced = run_fleet(store, scripts, max_batch=128, linger=0.002)
    naive = run_fleet(store, scripts, max_batch=1, linger=0.0)
    kernel_call_ratio = naive["stats"]["kernel_calls"] / coalesced["stats"]["kernel_calls"]
    check_cache_identity(store, scripts)
    check_epoch_invalidation(store)

    print(
        f"workload: {n_clients} closed-loop clients x {per_client} queries, "
        f"{n_distinct} distinct signatures, {n_points} points / {n_partitions} partitions"
    )
    print(f"{'service':<12} {'qps':>10} {'p50 ms':>8} {'p99 ms':>8} {'kernel calls':>13} {'hit rate':>9}")
    for name, r in (("coalesced", coalesced), ("naive", naive)):
        print(
            f"{name:<12} {r['qps']:>10.0f} {r['latency_p50_ms']:>8.2f} "
            f"{r['latency_p99_ms']:>8.2f} {r['stats']['kernel_calls']:>13.0f} "
            f"{r['cache_hit_rate']:>9.2%}"
        )
    print(
        f"coalescing: {kernel_call_ratio:.1f}x fewer kernel calls than naive "
        f"({coalesced['stats']['coalesce_ratio']:.1f} requests per call)"
    )

    if args.smoke:
        assert coalesced["stats"]["shed"] == 0, "block policy dropped responses"
        assert naive["stats"]["shed"] == 0, "naive run dropped responses"
        assert coalesced["latency_p99_ms"] < SMOKE_P99_BUDGET_S * 1e3, (
            f"p99 budget blown: {coalesced['latency_p99_ms']:.1f} ms "
            f">= {SMOKE_P99_BUDGET_S * 1e3:.0f} ms"
        )
        assert kernel_call_ratio > 1.0, "coalescing did not beat the naive service"
        print("smoke OK: zero drops, p99 within budget, coalescing beats naive")
        return 0

    OUT_PATH.write_text(
        json.dumps(
            {
                "seed": SEED,
                "cpu_count": os.cpu_count(),
                "workload": {
                    "clients": n_clients,
                    "queries_per_client": per_client,
                    "distinct_signatures": n_distinct,
                    "store_points": n_points,
                    "partitions": n_partitions,
                },
                "coalesced": coalesced,
                "naive": naive,
                "kernel_call_ratio_naive_over_coalesced": kernel_call_ratio,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
