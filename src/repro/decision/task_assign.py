"""DQ-aware spatial task assignment (Sec. 2.3.3, [98]).

Spatial crowdsourcing assigns workers to nearby tasks.  When worker
locations are *uncertain* (stale or noisy reports), a naive assignment on
point estimates overcommits workers who are probably out of range.  The
quality-aware assigner maximizes the *expected* number of completed tasks,
using each worker's location pdf to compute reach probabilities — the
uncertainty-aware sequential decision-making the tutorial highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.geometry import Point
from ..core.uncertain import UncertainLocation


@dataclass(frozen=True)
class Task:
    """A spatial task: location and service radius."""

    task_id: int
    location: Point
    radius: float


@dataclass(frozen=True)
class Worker:
    """A worker with an uncertain current location."""

    worker_id: int
    location: UncertainLocation


def reach_probability(worker: Worker, task: Task) -> float:
    """P(worker is within the task's service radius)."""
    return worker.location.prob_within(task.location, task.radius)


def assign_expected(
    workers: list[Worker], tasks: list[Task], min_probability: float = 0.0
) -> list[tuple[int, int, float]]:
    """Max expected-completion one-to-one assignment (Hungarian).

    Returns ``(worker_id, task_id, reach_probability)`` triples; pairs with
    probability below ``min_probability`` are dropped from the result.
    """
    if not workers or not tasks:
        return []
    prob = np.zeros((len(workers), len(tasks)))
    for i, w in enumerate(workers):
        for j, t in enumerate(tasks):
            prob[i, j] = reach_probability(w, t)
    rows, cols = linear_sum_assignment(-prob)
    return [
        (workers[i].worker_id, tasks[j].task_id, float(prob[i, j]))
        for i, j in zip(rows, cols)
        if prob[i, j] >= min_probability
    ]


def assign_naive(
    workers: list[Worker], tasks: list[Task]
) -> list[tuple[int, int]]:
    """Point-estimate baseline: Hungarian on mean-location distances.

    Distance stands in for utility; the assignment ignores uncertainty, so a
    worker whose *mean* is near a task gets it even when most of its
    probability mass is out of range.
    """
    if not workers or not tasks:
        return []
    dist = np.zeros((len(workers), len(tasks)))
    for i, w in enumerate(workers):
        for j, t in enumerate(tasks):
            dist[i, j] = w.location.mean().distance_to(t.location)
    rows, cols = linear_sum_assignment(dist)
    return [(workers[i].worker_id, tasks[j].task_id) for i, j in zip(rows, cols)]


def realized_completions(
    assignment: list[tuple[int, int]] | list[tuple[int, int, float]],
    true_positions: dict[int, Point],
    tasks: list[Task],
) -> int:
    """How many assigned tasks are actually completed given true positions."""
    task_by_id = {t.task_id: t for t in tasks}
    done = 0
    for entry in assignment:
        worker_id, task_id = entry[0], entry[1]
        task = task_by_id[task_id]
        pos = true_positions.get(worker_id)
        if pos is not None and pos.distance_to(task.location) <= task.radius:
            done += 1
    return done


def expected_completions(
    assignment: list[tuple[int, int, float]]
) -> float:
    """Model-side expected completions of a probability-annotated assignment."""
    return float(sum(p for _, _, p in assignment))
