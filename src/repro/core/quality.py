"""Data-quality dimensions and metrics (the tutorial's SID quality framework).

Sec. 2.1 of the tutorial groups the major DQ dimensions of spatial IoT data
into three requirement classes:

* *accurate and reliable* — Precision, Accuracy, Consistency;
* *comprehensive and informative* — Time Sparsity, Space Coverage,
  Completeness, Redundancy;
* *easy to use* — Latency, Staleness, Data Volume, Truth Volume,
  Resolution, Interpretability.

This module gives each dimension an operational metric so that Table 1 of
the paper (characteristic -> quality-issue arrows) can be *measured* rather
than asserted: `benchmarks/bench_table1.py` injects each characteristic with
:mod:`repro.synth.corrupt` and checks the direction of the metric change.

Metric polarity follows the paper's arrow notation: for each dimension we
report the *raw* quantity named by the dimension (e.g. ``time_sparsity`` is
the mean sampling gap, where larger = sparser = worse; ``accuracy`` is mean
positional error where larger = worse).  :data:`HIGH_IS_BAD` records the
polarity so reports can be compared mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence

import numpy as np

from .geometry import BBox, Point
from .stid import STRecord
from .trajectory import Trajectory


class Dimension(str, Enum):
    """The 13 DQ dimensions of the tutorial's framework."""

    PRECISION = "precision"
    ACCURACY = "accuracy"
    CONSISTENCY = "consistency"
    TIME_SPARSITY = "time_sparsity"
    SPACE_COVERAGE = "space_coverage"
    COMPLETENESS = "completeness"
    REDUNDANCY = "redundancy"
    LATENCY = "latency"
    STALENESS = "staleness"
    DATA_VOLUME = "data_volume"
    TRUTH_VOLUME = "truth_volume"
    RESOLUTION = "resolution"
    INTERPRETABILITY = "interpretability"


#: Polarity of each raw metric: True when a larger value means worse quality.
HIGH_IS_BAD: dict[Dimension, bool] = {
    Dimension.PRECISION: True,  # reported as jitter (m); more jitter = less precise
    Dimension.ACCURACY: True,  # reported as mean error (m)
    Dimension.CONSISTENCY: False,  # fraction of constraint-satisfying legs
    Dimension.TIME_SPARSITY: True,  # mean sampling gap (s)
    Dimension.SPACE_COVERAGE: False,  # fraction of region cells observed
    Dimension.COMPLETENESS: False,  # fraction of expected samples present
    Dimension.REDUNDANCY: True,  # fraction of near-duplicate records
    Dimension.LATENCY: True,  # mean arrival delay (s)
    Dimension.STALENESS: True,  # mean age of freshest record (s)
    Dimension.DATA_VOLUME: True,  # record count (a burden dimension in the paper)
    Dimension.TRUTH_VOLUME: False,  # fraction of records with ground truth
    Dimension.RESOLUTION: False,  # 1 / spatial granularity (1/m)
    Dimension.INTERPRETABILITY: False,  # fraction of semantically annotated records
}


# ---------------------------------------------------------------------------
# Accurate & reliable
# ---------------------------------------------------------------------------


def precision_jitter(traj: Trajectory, window: int = 5) -> float:
    """Measurement jitter (m): mean second-difference deviation.

    Precision in the paper's sense is *repeatability* of measurements; for a
    trajectory, the deviation of each interior point from the midpoint of
    its two neighbors isolates high-frequency sensor scatter from genuine
    (smooth) motion: it is exactly zero for uniform motion and grows
    monotonically with measurement noise.  ``window`` is accepted for API
    stability but the estimator is the 3-point second difference.
    """
    n = len(traj)
    if n < 3:
        return 0.0
    xyt = traj.as_xyt()
    mid_x = (xyt[:-2, 0] + xyt[2:, 0]) / 2.0
    mid_y = (xyt[:-2, 1] + xyt[2:, 1]) / 2.0
    devs = np.hypot(xyt[1:-1, 0] - mid_x, xyt[1:-1, 1] - mid_y)
    return float(np.mean(devs))


def accuracy_error(estimate: Trajectory, truth: Trajectory) -> float:
    """Mean positional error (m) against time-aligned ground truth.

    The estimate's samples are compared with the truth's interpolated
    position at the same timestamps; estimate times outside the truth span
    are ignored.
    """
    t0, t1 = truth.times[0], truth.times[-1]
    errs = [
        p.point.distance_to(truth.position_at(p.t))
        for p in estimate
        if t0 <= p.t <= t1
    ]
    if not errs:
        return float("nan")
    return float(np.mean(errs))


def consistency_ratio(
    traj: Trajectory, max_speed: float, max_accel: float | None = None
) -> float:
    """Fraction of legs satisfying physical motion constraints (1 = consistent).

    A leg is consistent when its implied speed is below ``max_speed`` and,
    when ``max_accel`` is given, the speed change rate between consecutive
    legs is below ``max_accel``.
    """
    speeds = traj.speeds()
    if speeds.size == 0:
        return 1.0
    ok = speeds <= max_speed
    if max_accel is not None and speeds.size >= 2:
        dt = traj.sampling_intervals()
        accel_ok = np.abs(np.diff(speeds)) / dt[1:] <= max_accel
        ok = ok & np.concatenate([[True], accel_ok])
    return float(np.mean(ok))


def value_consistency_ratio(
    records: Sequence[STRecord], neighbor_radius: float, max_value_gap: float
) -> float:
    """Fraction of STID records agreeing with their spatial neighbors.

    A record is consistent when its value differs from the mean of its
    spatial neighbors (within ``neighbor_radius``, same-ish time ignored)
    by at most ``max_value_gap``.  Records with no neighbors count as
    consistent.
    """
    if not records:
        return 1.0
    pts = np.array([[r.x, r.y] for r in records])
    vals = np.array([r.value for r in records])
    consistent = 0
    for i in range(len(records)):
        d = np.hypot(pts[:, 0] - pts[i, 0], pts[:, 1] - pts[i, 1])
        mask = (d <= neighbor_radius) & (d > 0)
        if not mask.any() or abs(vals[i] - float(vals[mask].mean())) <= max_value_gap:
            consistent += 1
    return consistent / len(records)


# ---------------------------------------------------------------------------
# Comprehensive & informative
# ---------------------------------------------------------------------------


def time_sparsity(traj: Trajectory) -> float:
    """Mean sampling gap in seconds (larger = sparser)."""
    gaps = traj.sampling_intervals()
    if gaps.size == 0:
        return float("inf")
    return float(np.mean(gaps))


def completeness(
    observed_times: Sequence[float],
    t_start: float,
    t_end: float,
    expected_interval: float,
) -> float:
    """Fraction of expected sampling slots containing at least one sample.

    The expected schedule is one sample per ``expected_interval`` seconds
    over ``[t_start, t_end]``.
    """
    if t_end <= t_start or expected_interval <= 0:
        raise ValueError("need a positive span and interval")
    n_slots = int(np.ceil((t_end - t_start) / expected_interval))
    filled = set()
    for t in observed_times:
        if t_start <= t <= t_end:
            filled.add(min(n_slots - 1, int((t - t_start) / expected_interval)))
    return len(filled) / n_slots


def space_coverage(
    points: Iterable[Point], region: BBox, cell_size: float
) -> float:
    """Fraction of region grid cells containing at least one observation."""
    nx = max(1, int(np.ceil(region.width / cell_size)))
    ny = max(1, int(np.ceil(region.height / cell_size)))
    seen: set[tuple[int, int]] = set()
    for p in points:
        if not region.contains(p):
            continue
        xi = min(nx - 1, int((p.x - region.min_x) / cell_size))
        yi = min(ny - 1, int((p.y - region.min_y) / cell_size))
        seen.add((xi, yi))
    return len(seen) / (nx * ny)


def redundancy_ratio(
    records: Sequence[STRecord], space_eps: float, time_eps: float
) -> float:
    """Fraction of records that duplicate an earlier record.

    A record is a duplicate when another record from the same source lies
    within ``space_eps`` meters and ``time_eps`` seconds earlier in the list.
    """
    if not records:
        return 0.0
    dup = 0
    kept: list[STRecord] = []
    for r in records:
        is_dup = any(
            k.source == r.source
            and abs(k.t - r.t) <= time_eps
            and np.hypot(k.x - r.x, k.y - r.y) <= space_eps
            for k in kept
        )
        if is_dup:
            dup += 1
        else:
            kept.append(r)
    return dup / len(records)


# ---------------------------------------------------------------------------
# Easy to use
# ---------------------------------------------------------------------------


def mean_latency(event_times: Sequence[float], arrival_times: Sequence[float]) -> float:
    """Mean delay (s) between measurement time and arrival at the consumer."""
    if len(event_times) != len(arrival_times):
        raise ValueError("event and arrival sequences must have equal length")
    if len(event_times) == 0:
        return 0.0
    delays = np.asarray(arrival_times, dtype=float) - np.asarray(event_times, dtype=float)
    if (delays < 0).any():
        raise ValueError("arrival before event time")
    return float(np.mean(delays))


def staleness(records: Sequence[STRecord], now: float) -> float:
    """Mean age (s) of the freshest record per source at wall time ``now``."""
    latest: dict[str, float] = {}
    for r in records:
        latest[r.source] = max(latest.get(r.source, -np.inf), r.t)
    if not latest:
        return float("inf")
    ages = [now - t for t in latest.values()]
    return float(np.mean(ages))


def data_volume(records: Sequence) -> int:
    """Record count (the paper treats excessive volume as a burden)."""
    return len(records)


def truth_volume(records: Sequence, labeled: Sequence[bool]) -> float:
    """Fraction of records accompanied by ground truth (verifiability)."""
    if len(records) != len(labeled):
        raise ValueError("records and labels must align")
    if not records:
        return 0.0
    return float(np.mean(np.asarray(labeled, dtype=bool)))


def spatial_resolution(cell_size: float) -> float:
    """Resolution as inverse granularity (1/m): finer cells = higher resolution."""
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    return 1.0 / cell_size


def interpretability_ratio(annotations: Sequence[str | None]) -> float:
    """Fraction of records carrying a semantic annotation."""
    if not annotations:
        return 0.0
    return sum(1 for a in annotations if a) / len(annotations)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class QualityReport:
    """A measured value per DQ dimension, with paper polarity attached."""

    values: dict[Dimension, float] = field(default_factory=dict)

    def __getitem__(self, dim: Dimension) -> float:
        return self.values[dim]

    def __contains__(self, dim: Dimension) -> bool:
        return dim in self.values

    def set(self, dim: Dimension, value: float) -> None:
        """Record a measured value for one DQ dimension."""
        self.values[dim] = float(value)

    def degraded_dimensions(self, baseline: "QualityReport", tol: float = 1e-9) -> list[Dimension]:
        """Dimensions measurably *worse* here than in ``baseline``.

        Worse respects polarity: a higher jitter, or a lower coverage, both
        count as degradation.  This is the mechanical reading of Table 1's
        arrows.
        """
        worse = []
        for dim, val in self.values.items():
            if dim not in baseline.values:
                continue
            base = baseline.values[dim]
            delta = val - base
            if HIGH_IS_BAD[dim] and delta > tol:
                worse.append(dim)
            elif not HIGH_IS_BAD[dim] and delta < -tol:
                worse.append(dim)
        return worse

    def to_rows(self) -> list[tuple[str, float, str]]:
        """``(dimension, value, polarity)`` rows for tabular printing."""
        return [
            (dim.value, val, "high=bad" if HIGH_IS_BAD[dim] else "high=good")
            for dim, val in sorted(self.values.items(), key=lambda kv: kv[0].value)
        ]


def assess_trajectory(
    traj: Trajectory,
    truth: Trajectory | None = None,
    max_speed: float = 50.0,
    region: BBox | None = None,
    coverage_cell: float = 100.0,
    expected_interval: float | None = None,
) -> QualityReport:
    """Convenience one-call assessment of a trajectory's DQ dimensions."""
    report = QualityReport()
    report.set(Dimension.PRECISION, precision_jitter(traj))
    report.set(Dimension.CONSISTENCY, consistency_ratio(traj, max_speed))
    report.set(Dimension.TIME_SPARSITY, time_sparsity(traj))
    report.set(Dimension.DATA_VOLUME, float(len(traj)))
    if truth is not None and len(traj) > 0:
        report.set(Dimension.ACCURACY, accuracy_error(traj, truth))
        report.set(
            Dimension.COMPLETENESS,
            completeness(
                traj.times,
                truth.times[0],
                truth.times[-1],
                expected_interval
                if expected_interval is not None
                else float(np.median(truth.sampling_intervals()) or 1.0),
            ),
        )
    if region is not None:
        report.set(
            Dimension.SPACE_COVERAGE,
            space_coverage((p.point for p in traj), region, coverage_cell),
        )
    return report
