"""Shared benchmark fixtures and table printing.

Every benchmark regenerates one experiment from DESIGN.md's index: it
computes the claim table (printed with ``-s``), asserts the *direction* of
the paper's claim, and times the core operation via pytest-benchmark.
"""

import numpy as np
import pytest

from repro.core import BBox


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Pretty-print a result table (visible with ``pytest -s``)."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


@pytest.fixture
def rng():
    return np.random.default_rng(2022)


@pytest.fixture
def box():
    return BBox(0.0, 0.0, 1000.0, 1000.0)


@pytest.fixture
def big_box():
    return BBox(0.0, 0.0, 2000.0, 2000.0)
