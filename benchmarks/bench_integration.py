"""Experiment F2-DI — data integration (Sec. 2.2.5).

Claims measured:
  * Semantic DI: stay/POI annotation turns raw traces interpretable
    (stay detection F1, interpretability ratio).
  * Traj+traj DI: entity linking across ID systems recovers identity, and
    degrades gracefully with view quality.
  * Traj+STID DI: attachment enriches trips with accurate exposure values.
  * STID+STID DI: fusion beats each single source and completes coverage.
"""

import numpy as np

from conftest import print_table

from repro.core import Point, interpretability_ratio, records_from_series
from repro.integration import (
    attach_records,
    attachment_coverage,
    build_semantic_trajectory,
    detect_stay_points,
    fuse_grids,
    fuse_series,
    fusion_gain,
    link_entities,
    linking_accuracy,
    stay_detection_scores,
)
from repro.synth import (
    SmoothField,
    add_gaussian_noise,
    add_sensor_bias,
    correlated_random_walk,
    drop_points,
    fleet,
    generate_pois,
    random_sensor_sites,
    stop_and_go_walk,
)


def test_semantic_annotation(rng, big_box, benchmark):
    traj, stops = stop_and_go_walk(
        rng, big_box, n_stops=4, move_points=25, stop_points=30, stop_jitter=2.0
    )
    pois = generate_pois(rng, 25, big_box)
    stays = benchmark(detect_stay_points, traj, 30.0, 15.0)
    scores = stay_detection_scores(stays, [(s.start_index, s.end_index) for s in stops])
    episodes = build_semantic_trajectory(traj, pois, 30.0, 15.0, 5000.0)
    raw_interp = interpretability_ratio([None] * len(traj))
    sem_interp = interpretability_ratio(
        [e.label if e.kind == "stay" else "move" for e in episodes]
    )
    rows = [
        ("stay detection precision", scores["precision"]),
        ("stay detection recall", scores["recall"]),
        ("interpretability raw", raw_interp),
        ("interpretability annotated", sem_interp),
    ]
    print_table("F2-DI: semantic annotation", ["metric", "value"], rows)
    assert scores["f1"] > 0.8
    assert sem_interp > raw_interp


def test_entity_linking_vs_quality(rng, big_box, benchmark):
    base = fleet(rng, 10, 120, big_box, speed_mean=8)
    rows = []
    accs = []
    for noise, drop in ((10.0, 0.2), (150.0, 0.7), (600.0, 0.9)):
        r = np.random.default_rng(11)
        view = [add_gaussian_noise(drop_points(t, r, drop), r, noise) for t in base]
        perm = list(r.permutation(10))
        shuffled = [view[i] for i in perm]
        truth = {i: perm.index(i) for i in range(10)}
        links = link_entities(base, shuffled, big_box, 150.0, 60.0)
        acc = linking_accuracy(links, truth)
        rows.append((f"noise={noise:.0f} drop={drop}", acc))
        accs.append(acc)
    benchmark(link_entities, base, base, big_box, 150.0, 60.0)
    print_table("F2-DI: entity linking accuracy vs view quality", ["view", "accuracy"], rows)
    assert accs[0] >= 0.9
    assert accs[0] >= accs[-1]


def test_trajectory_stid_attachment(rng, big_box, benchmark):
    field = SmoothField(rng, big_box, n_bumps=4, length_scale=300)
    sites = random_sensor_sites(rng, 40, big_box)
    series = field.sample_sensors(sites, np.arange(0, 300, 30.0), rng, noise_sigma=0.2)
    records = records_from_series(series)
    trip = correlated_random_walk(rng, 150, big_box, speed_mean=8)
    enriched = benchmark(attach_records, trip, records, 500.0, 600.0, 0.5)
    errs = [
        abs(e.value - field.value(Point(e.x, e.y), e.t))
        for e in enriched
        if e.support > 0
    ]
    rows = [
        ("coverage", attachment_coverage(enriched)),
        ("mean abs value error", float(np.mean(errs))),
    ]
    print_table("F2-DI: trajectory+STID attachment", ["metric", "value"], rows)
    assert attachment_coverage(enriched) > 0.95
    assert np.mean(errs) < 3.0


def test_stid_fusion(rng, box, benchmark):
    field = SmoothField(rng, box, n_bumps=3)
    site = Point(500, 500)
    times = np.arange(0, 600, 30.0)
    truth = np.array([field.value(site, t) for t in times])
    reference = field.sample_sensors([site], times, rng, noise_sigma=0.5)[0]
    cheap = add_sensor_bias(
        field.sample_sensors([site], times, rng, noise_sigma=2.0)[0], 5.0
    )
    fused = benchmark(
        fuse_series, [reference, cheap], times, [0.5, 2.0], True
    )
    gain = fusion_gain(truth, cheap.values, fused.values)
    ref_rmse = float(np.sqrt(np.mean((reference.values - truth) ** 2)))
    rows = [
        ("cheap sensor alone", gain["single_rmse"]),
        ("reference alone", ref_rmse),
        ("debiased fusion", gain["fused_rmse"]),
    ]
    print_table("F2-DI: STID+STID fusion RMSE", ["source", "rmse"], rows)
    assert gain["fused_rmse"] < gain["single_rmse"]
    assert gain["fused_rmse"] <= ref_rmse + 0.1

    # Grid fusion completes coverage.
    g1 = field.truth_grid(250, 300, 0, 600)
    g2 = g1.copy()
    g1.values[np.random.default_rng(1).random(g1.values.shape) < 0.5] = np.nan
    g2.values[np.random.default_rng(2).random(g2.values.shape) < 0.5] = np.nan
    fused_grid = fuse_grids(g1, g2)
    assert fused_grid.missing_fraction() < min(
        g1.missing_fraction(), g2.missing_fraction()
    )
