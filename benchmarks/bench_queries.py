"""Experiment F2-Q — queries over low-quality SID (Sec. 2.3.1).

Claims measured:
  * Uncertainty: bound-based pruning answers threshold queries exactly
    while skipping most exact-probability evaluations (speed).
  * Unsampled-time models: beads never exclude the true position; the
    alibi query proves absence correctly.
  * Dynamics: indexes beat scans; safe regions cut communication by
    orders of magnitude at identical answers.
  * Skew: median partitioning balances load where uniform tiling fails.
"""

import time

import numpy as np

from conftest import print_table

from repro.core import GaussianLocation, Point, UncertainPoint
from repro.querying import (
    GridIndex,
    NaiveRangeMonitor,
    RTree,
    SafeRegionRangeMonitor,
    bead_at,
    brute_force_range,
    build_entries,
    grid_partition,
    kd_partition,
    load_imbalance,
    probabilistic_range_query,
    probabilistic_range_query_naive,
    skewed_points,
)
from repro.synth import correlated_random_walk, fleet


def test_probabilistic_pruning(rng, box, benchmark):
    objects = [
        UncertainPoint(
            f"o{i}",
            GaussianLocation(
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000)), rng.uniform(5, 30)
            ),
        )
        for i in range(400)
    ]
    q = Point(500, 500)

    start = time.perf_counter()
    naive = probabilistic_range_query_naive(objects, q, 120.0, 0.5)
    naive_s = time.perf_counter() - start
    hits, stats = benchmark(probabilistic_range_query, objects, q, 120.0, 0.5)
    start = time.perf_counter()
    probabilistic_range_query(objects, q, 120.0, 0.5)
    pruned_s = time.perf_counter() - start

    rows = [
        ("naive (exact everywhere)", len(naive), 0.0, naive_s * 1000),
        ("bound-based pruning", len(hits), stats.pruning_ratio, pruned_s * 1000),
    ]
    print_table(
        "F2-Q: probabilistic range query (threshold 0.5)",
        ["strategy", "answers", "pruning ratio", "time_ms"],
        rows,
    )
    assert sorted(hits) == sorted(naive)
    assert stats.pruning_ratio > 0.7
    assert pruned_s < naive_s


def test_bead_soundness(rng, box, benchmark):
    dense = correlated_random_walk(rng, 100, box, speed_mean=6, interval=2.0)
    sparse = dense.downsample(8)
    v_max = float(dense.speeds().max()) * 1.2 + 1.0
    misses = 0
    checks = 0
    for t in np.linspace(sparse.times[0], sparse.times[-1], 40):
        bead = bead_at(sparse, float(t), v_max)
        checks += 1
        if not bead.contains(dense.position_at(float(t))):
            misses += 1
    benchmark(bead_at, sparse, float(sparse.times[1] + 1.0), v_max)
    rows = [("bead contains truth", f"{checks - misses}/{checks}")]
    print_table("F2-Q: space-time prism soundness", ["check", "result"], rows)
    assert misses == 0


def test_index_vs_scan(rng, box, benchmark):
    points = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(5000)]
    entries = build_entries(points)
    tree = RTree(entries, leaf_capacity=16)
    grid = GridIndex(box, 50.0)
    for e in entries:
        grid.insert(e)
    q, radius = Point(400, 600), 60.0

    def timed(fn):
        start = time.perf_counter()
        for _ in range(20):
            out = fn()
        return out, (time.perf_counter() - start) / 20 * 1000

    scan_out, scan_ms = timed(lambda: brute_force_range(entries, q, radius))
    tree_out, tree_ms = timed(lambda: tree.range_query(q, radius))
    grid_out, grid_ms = timed(lambda: grid.range_query(q, radius))
    benchmark(tree.range_query, q, radius)
    rows = [
        ("linear scan", len(scan_out), scan_ms),
        ("R-tree", len(tree_out), tree_ms),
        ("grid index", len(grid_out), grid_ms),
    ]
    print_table(
        "F2-Q: range query over 5k points", ["access method", "answers", "time_ms"], rows
    )
    assert sorted(tree_out) == sorted(scan_out) == sorted(grid_out)
    assert tree_ms < scan_ms and grid_ms < scan_ms


def test_safe_regions(rng, box, benchmark):
    objects = fleet(rng, 20, 150, box, speed_mean=4)
    center = Point(500, 500)
    safe = SafeRegionRangeMonitor(center, 200.0)
    naive = NaiveRangeMonitor(center, 200.0)
    for step in range(150):
        for t in objects:
            safe.observe(t.object_id, t[step].point)
            naive.observe(t.object_id, t[step].point)
    assert safe.answer() == naive.answer()
    rows = [
        ("naive re-evaluation", naive.stats.messages_sent, naive.stats.message_ratio()),
        ("safe regions", safe.stats.messages_sent, safe.stats.message_ratio()),
    ]
    safe_ratio = safe.stats.message_ratio()
    benchmark(safe.observe, "bench-obj", Point(0, 0))
    print_table(
        "F2-Q: continuous range query communication",
        ["protocol", "messages", "msg ratio"],
        rows,
    )
    assert safe_ratio < 0.1


def test_partitioning_under_skew(rng, box, benchmark):
    points = skewed_points(rng, 3000, box, n_hotspots=3, hotspot_sigma=40.0)
    grid_parts = grid_partition(points, box, 4)
    kd_parts = benchmark(kd_partition, points, box, 16)
    rows = [
        ("uniform grid (16 tiles)", load_imbalance(grid_parts)),
        ("kd median split (16 parts)", load_imbalance(kd_parts)),
    ]
    print_table(
        "F2-Q: load imbalance on skewed SID (max/mean)", ["partitioner", "imbalance"], rows
    )
    assert load_imbalance(kd_parts) < load_imbalance(grid_parts) / 2


def test_probabilistic_count_aggregate(rng, box, benchmark):
    """Uncertain COUNT [131]: exact Poisson-binomial vs Monte-Carlo."""
    from repro.querying import (
        membership_probabilities,
        expected_count,
        prob_count_at_least,
        probabilistic_count_query,
    )

    objects = [
        UncertainPoint(
            f"o{i}",
            GaussianLocation(
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000)), rng.uniform(10, 30)
            ),
        )
        for i in range(200)
    ]
    q = Point(500, 500)
    probs = membership_probabilities(objects, q, 200.0)
    mc = np.array([(rng.random(200) < probs).sum() for _ in range(3000)])
    k = int(round(expected_count(probs)))
    exact = prob_count_at_least(probs, k)
    empirical = float(np.mean(mc >= k))
    benchmark(probabilistic_count_query, objects, q, 200.0, k)
    rows = [
        ("E[count] exact / MC", expected_count(probs), float(mc.mean())),
        (f"P(count >= {k}) exact / MC", exact, empirical),
    ]
    print_table("F2-Q: uncertain COUNT aggregate", ["quantity", "exact", "monte-carlo"], rows)
    assert abs(exact - empirical) < 0.03
    assert abs(expected_count(probs) - mc.mean()) < 0.5


def test_predictive_range_query(rng, box, benchmark):
    """Predictive queries on Markov grids [129]: the model finds objects
    that *will* plausibly be in the region, pruning the hopeless."""
    from repro.querying import GridMobilityModel, predictive_range_query

    corpus = fleet(rng, 25, 80, box, speed_mean=8)
    model = GridMobilityModel(box, 100.0, step_time=5.0, v_max=15.0).fit(corpus)
    center = Point(500, 500)
    positions = {"near": Point(520, 480), "edge": Point(250, 500), "far": Point(50, 50)}
    hits = benchmark(
        predictive_range_query, model, positions, center, 200.0, 15.0, 0.15
    )
    ids = {oid for oid, _ in hits}
    rows = [(oid, dict(hits).get(oid, 0.0)) for oid in positions]
    print_table(
        "F2-Q: predictive range query (horizon 15 s, threshold 0.15)",
        ["object", "P(in region at t+15)"],
        rows,
    )
    assert "near" in ids and "far" not in ids
