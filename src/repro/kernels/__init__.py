"""Vectorized compute core: columnar kernels for the package's hot paths.

IoT-scale quality assessment is a *volume* problem: the per-point object
loops that make the operator implementations readable collapse under the
100k-point workloads the ROADMAP targets.  This package is the shared
escape hatch — object sequences are packed into contiguous NumPy arrays
once (:mod:`~repro.kernels.columnar`) and every downstream hot path runs as
batched reductions:

* :mod:`~repro.kernels.distances` — point-set / pairwise / box-bound
  distances, deterministic kNN selection, spherical distance,
* :mod:`~repro.kernels.motion` — per-leg speeds, headings, turn angles,
  sampling intervals,
* :mod:`~repro.kernels.screens` — windowed-median residuals, robust
  z-scores, both-leg spike flags,
* :mod:`~repro.kernels.reference` — the retained scalar loops every kernel
  is equivalence-tested against (``tests/test_kernels.py``) and benchmarked
  against (``benchmarks/bench_kernels.py``).

Consumers: :mod:`repro.querying.index` (batch range/kNN),
:mod:`repro.cleaning.outliers`, :mod:`repro.analytics.similarity`,
:mod:`repro.querying.aggregates`, and the cached derived arrays on
:class:`repro.core.Trajectory`.
"""

from .columnar import (
    center_of,
    centers_of,
    coords_of,
    entry_columns,
    frozen,
    xyt_columns,
)
from .distances import (
    box_gap_dists,
    box_max_dists,
    box_min_dists,
    chunked_range_hits,
    cross_dists,
    dists_to,
    haversine_m_many,
    knn_select,
    knn_select_many,
    range_mask,
    range_masks,
)
from .motion import (
    leg_displacements,
    leg_headings,
    leg_speeds,
    path_length,
    sampling_intervals,
    turn_angles,
)
from .screens import (
    both_leg_flags,
    robust_zscores,
    windowed_median_residuals,
    windowed_medians,
)

__all__ = [
    "center_of",
    "centers_of",
    "coords_of",
    "entry_columns",
    "frozen",
    "xyt_columns",
    "box_gap_dists",
    "box_max_dists",
    "box_min_dists",
    "chunked_range_hits",
    "cross_dists",
    "dists_to",
    "haversine_m_many",
    "knn_select",
    "knn_select_many",
    "range_mask",
    "range_masks",
    "leg_displacements",
    "leg_headings",
    "leg_speeds",
    "path_length",
    "sampling_intervals",
    "turn_angles",
    "both_leg_flags",
    "robust_zscores",
    "windowed_median_residuals",
    "windowed_medians",
]
