import numpy as np
import pytest

from repro.core import Point, STSeries
from repro.analytics import (
    change_series,
    coevolution_matrix,
    find_coevolving_groups,
    group_purity,
    lagged_correlation,
)


def series_from(values, sensor_id="s", loc=Point(0, 0)):
    return STSeries(sensor_id, loc, np.arange(float(len(values))), values)


@pytest.fixture
def driven_group(rng):
    """Four sensors driven by one signal + two independent sensors."""
    driver = np.cumsum(rng.normal(0, 1, 200))
    series = []
    for i in range(4):
        vals = driver + rng.normal(0, 0.05, 200)
        series.append(series_from(vals, f"g{i}", Point(10 * i, 0)))
    for i in range(2):
        vals = np.cumsum(rng.normal(0, 1, 200))
        series.append(series_from(vals, f"ind{i}", Point(1000 + i, 1000)))
    return series


class TestChangeSeries:
    def test_standardized(self, rng):
        s = series_from(np.cumsum(rng.normal(0, 1, 100)))
        c = change_series(s)
        assert c.mean() == pytest.approx(0.0, abs=1e-9)
        assert c.std() == pytest.approx(1.0, abs=1e-9)

    def test_short_series(self):
        assert change_series(series_from([1.0])).size == 0


class TestLaggedCorrelation:
    def test_identical_signals(self, rng):
        a = rng.normal(0, 1, 100)
        assert lagged_correlation(a, a) == pytest.approx(1.0)

    def test_lagged_copy_detected(self, rng):
        a = rng.normal(0, 1, 100)
        b = np.roll(a, 1)
        assert abs(lagged_correlation(a, b, max_lag=2)) > 0.9

    def test_independent_signals_low(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(0, 1, 500)
        assert abs(lagged_correlation(a, b)) < 0.3

    def test_short_input(self):
        assert lagged_correlation(np.zeros(2), np.zeros(2)) == 0.0

    def test_anticorrelation_detected(self, rng):
        a = rng.normal(0, 1, 200)
        assert lagged_correlation(a, -a) == pytest.approx(-1.0)


class TestCoevolutionMatrix:
    def test_symmetric_unit_diagonal(self, driven_group):
        m = coevolution_matrix(driven_group)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)

    def test_driven_sensors_correlated(self, driven_group):
        m = coevolution_matrix(driven_group)
        assert abs(m[0, 1]) > 0.8
        assert abs(m[0, 4]) < 0.5


class TestGroups:
    def test_finds_driven_group(self, driven_group):
        groups = find_coevolving_groups(driven_group, min_correlation=0.7)
        assert [0, 1, 2, 3] in groups

    def test_independent_sensors_excluded(self, driven_group):
        groups = find_coevolving_groups(driven_group, 0.7)
        grouped = {i for g in groups for i in g}
        assert 4 not in grouped and 5 not in grouped

    def test_spatial_constraint(self, driven_group):
        """With a tight distance cap, far-away member is rejected even when
        correlated."""
        # Move sensor 3 far away but keep its values.
        s3 = driven_group[3]
        moved = STSeries(s3.sensor_id, Point(99_999, 99_999), s3.times, s3.values)
        series = driven_group[:3] + [moved] + driven_group[4:]
        groups = find_coevolving_groups(series, 0.7, max_distance=100.0)
        grouped = {i for g in groups for i in g}
        assert 3 not in grouped

    def test_purity_metric(self):
        assert group_purity([[0, 1, 2]], [{0, 1, 2}]) == 1.0
        assert group_purity([[0, 1]], [{0, 1, 2, 3}]) == 0.5
        assert group_purity([], [{0}]) == 0.0
