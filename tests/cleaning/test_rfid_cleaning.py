import numpy as np
import pytest

from repro.cleaning import (
    CorridorHMMCleaner,
    epoch_accuracy,
    raw_reader_sequence,
    visits_from_sequence,
    window_smooth,
)
from repro.synth import CorridorWorld, ZoneVisit


@pytest.fixture
def scenario(rng):
    world = CorridorWorld(n_readers=8, dwell_min=4, dwell_max=8)
    visits = world.ground_truth(rng)
    readings = world.observe(visits, rng, p_detect=0.75, p_cross=0.15)
    return world, visits, readings


class TestWindowSmooth:
    def test_output_length(self, scenario):
        world, visits, readings = scenario
        total = world.total_epochs(visits)
        out = window_smooth(readings, world.n_readers, total, window=5)
        assert len(out) == total

    def test_fills_false_negatives(self, scenario):
        world, visits, readings = scenario
        total = world.total_epochs(visits)
        raw = raw_reader_sequence(readings, total)
        smoothed = window_smooth(readings, world.n_readers, total, window=5)
        raw_missing = sum(1 for r in raw if r is None)
        smoothed_missing = sum(1 for r in smoothed if r is None)
        assert smoothed_missing <= raw_missing

    def test_improves_accuracy_over_raw(self, scenario):
        world, visits, readings = scenario
        total = world.total_epochs(visits)
        acc_raw = epoch_accuracy(raw_reader_sequence(readings, total), visits)
        acc_smooth = epoch_accuracy(
            window_smooth(readings, world.n_readers, total, 5), visits
        )
        assert acc_smooth >= acc_raw

    def test_window_validated(self, scenario):
        world, visits, readings = scenario
        with pytest.raises(ValueError):
            window_smooth(readings, world.n_readers, 10, window=0)


class TestHMMCleaner:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            CorridorHMMCleaner(0)
        with pytest.raises(ValueError):
            CorridorHMMCleaner(5, p_detect=1.5)

    def test_perfect_data_decoded_exactly(self, rng):
        world = CorridorWorld(6, dwell_min=3, dwell_max=5)
        visits = world.ground_truth(rng)
        readings = world.observe(visits, rng, p_detect=1.0, p_cross=0.0)
        total = world.total_epochs(visits)
        decoded = CorridorHMMCleaner(6, 0.95, 0.05).clean(readings, total)
        assert epoch_accuracy(decoded, visits) == 1.0

    def test_beats_window_smoothing(self, rng):
        """Across several corridor runs the HMM cleaner should dominate."""
        hmm_acc, win_acc = [], []
        for seed in range(8):
            r = np.random.default_rng(seed)
            world = CorridorWorld(8, dwell_min=4, dwell_max=8)
            visits = world.ground_truth(r)
            readings = world.observe(visits, r, p_detect=0.7, p_cross=0.2)
            total = world.total_epochs(visits)
            hmm_acc.append(
                epoch_accuracy(
                    CorridorHMMCleaner(8, 0.7, 0.2).clean(readings, total), visits
                )
            )
            win_acc.append(
                epoch_accuracy(window_smooth(readings, 8, total, 5), visits)
            )
        assert np.mean(hmm_acc) > np.mean(win_acc)

    def test_decoded_path_is_physical(self, scenario):
        """Cleaned zone sequence never jumps more than one zone per epoch."""
        world, visits, readings = scenario
        total = world.total_epochs(visits)
        decoded = CorridorHMMCleaner(8, 0.75, 0.15).clean(readings, total)
        for a, b in zip(decoded, decoded[1:]):
            assert abs(a - b) <= 1

    def test_improves_over_raw(self, scenario):
        world, visits, readings = scenario
        total = world.total_epochs(visits)
        raw_acc = epoch_accuracy(raw_reader_sequence(readings, total), visits)
        hmm_acc = epoch_accuracy(
            CorridorHMMCleaner(8, 0.75, 0.15).clean(readings, total), visits
        )
        assert hmm_acc >= raw_acc


class TestVisitsFromSequence:
    def test_run_length_collapse(self):
        seq = [0, 0, 1, 1, 1, None, 2]
        visits = visits_from_sequence(seq)
        assert visits == [
            ZoneVisit(0, 0, 1),
            ZoneVisit(1, 2, 4),
            ZoneVisit(2, 6, 6),
        ]

    def test_empty(self):
        assert visits_from_sequence([]) == []

    def test_all_none(self):
        assert visits_from_sequence([None, None]) == []


class TestEpochAccuracy:
    def test_perfect(self):
        visits = [ZoneVisit(0, 0, 1), ZoneVisit(1, 2, 3)]
        assert epoch_accuracy([0, 0, 1, 1], visits) == 1.0

    def test_empty_truth(self):
        assert epoch_accuracy([0, 1], []) == 1.0

    def test_partial(self):
        visits = [ZoneVisit(0, 0, 3)]
        assert epoch_accuracy([0, 0, 1, 1], visits) == 0.5
