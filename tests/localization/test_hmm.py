import numpy as np
import pytest

from repro.core import BBox, Point, Trajectory, TrajectoryPoint, accuracy_error
from repro.localization import GridHMM
from repro.synth import add_gaussian_noise, correlated_random_walk


@pytest.fixture
def small_box():
    return BBox(0, 0, 200, 200)


@pytest.fixture
def hmm(small_box):
    return GridHMM(small_box, cell_size=20.0, max_speed=10.0, emission_sigma=10.0)


class TestGridHMM:
    def test_invalid_params(self, small_box):
        with pytest.raises(ValueError):
            GridHMM(small_box, 0, 1, 1)

    def test_grid_dimensions(self, hmm):
        assert hmm.nx == 10 and hmm.ny == 10 and hmm.n_cells == 100

    def test_viterbi_tracks_stationary_object(self, hmm, rng):
        target = Point(110, 110)
        pts = [
            TrajectoryPoint(target.x + rng.normal(0, 5), target.y + rng.normal(0, 5), float(i))
            for i in range(10)
        ]
        path = hmm.viterbi(Trajectory(pts))
        for cell in path:
            assert hmm.cell_center(cell).distance_to(target) < 40.0

    def test_viterbi_respects_speed_constraint(self, hmm):
        """A teleporting observation cannot drag the path across the grid."""
        pts = [
            TrajectoryPoint(10, 10, 0.0),
            TrajectoryPoint(190, 190, 1.0),  # 255 m in 1 s >> max_speed 10
            TrajectoryPoint(12, 12, 2.0),
        ]
        path = hmm.viterbi(Trajectory(pts))
        c0 = hmm.cell_center(path[0])
        c1 = hmm.cell_center(path[1])
        # The middle state stays within the reachable band of its neighbors.
        assert c0.distance_to(c1) <= 10.0 * 1.0 + 2 * hmm.cell_size

    def test_empty_rejected(self, hmm):
        with pytest.raises(ValueError):
            hmm.viterbi(Trajectory([]))

    def test_forward_posteriors_normalized(self, hmm, rng, small_box):
        t = correlated_random_walk(rng, 10, small_box, speed_mean=3)
        post = hmm.forward_posteriors(t)
        assert post.shape == (10, 100)
        assert np.allclose(post.sum(axis=1), 1.0, atol=1e-6)

    def test_posterior_location(self, hmm, rng, small_box):
        t = correlated_random_walk(rng, 8, small_box, speed_mean=3)
        loc = hmm.posterior_location(t, 4)
        assert sum(loc.weights) == pytest.approx(1.0)

    def test_refine_reduces_large_noise(self, rng, small_box):
        """With fine cells, HMM refinement beats heavily noisy raw data."""
        hmm = GridHMM(small_box, cell_size=8.0, max_speed=8.0, emission_sigma=15.0)
        truth = correlated_random_walk(rng, 40, small_box, speed_mean=4)
        noisy = add_gaussian_noise(truth, rng, 15.0)
        refined = hmm.refine(noisy)
        assert accuracy_error(refined, truth) < accuracy_error(noisy, truth)

    def test_refine_keeps_times(self, hmm, rng, small_box):
        t = correlated_random_walk(rng, 12, small_box)
        refined = hmm.refine(t)
        assert refined.times == t.times
