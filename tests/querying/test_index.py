import numpy as np
import pytest

from repro.core import BBox, Point
from repro.querying import (
    GridIndex,
    RTree,
    brute_force_knn,
    brute_force_range,
    build_entries,
)


@pytest.fixture
def points(rng):
    return [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(400)]


@pytest.fixture
def entries(points):
    return build_entries(points)


@pytest.fixture
def grid(entries, box):
    g = GridIndex(box, 50.0)
    for e in entries:
        g.insert(e)
    return g


@pytest.fixture
def rtree(entries):
    return RTree(entries, leaf_capacity=8)


QUERIES = [
    (Point(500, 500), 100.0),
    (Point(0, 0), 50.0),
    (Point(999, 999), 300.0),
    (Point(500, 500), 2000.0),  # covers everything
    (Point(-100, -100), 10.0),  # empty
]


class TestGridIndex:
    def test_len(self, grid, entries):
        assert len(grid) == len(entries)

    def test_cell_size_validated(self, box):
        with pytest.raises(ValueError):
            GridIndex(box, 0.0)

    @pytest.mark.parametrize("center,radius", QUERIES)
    def test_range_matches_brute_force(self, grid, entries, center, radius):
        assert sorted(grid.range_query(center, radius)) == sorted(
            brute_force_range(entries, center, radius)
        )

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_knn_matches_brute_force(self, grid, entries, k):
        q = Point(431, 207)
        assert grid.knn(q, k) == brute_force_knn(entries, q, k)

    def test_knn_query_outside_region(self, grid, entries):
        q = Point(-200, 500)
        assert grid.knn(q, 3) == brute_force_knn(entries, q, 3)

    def test_empty_index(self, box):
        g = GridIndex(box, 100.0)
        assert g.range_query(Point(0, 0), 100) == []
        assert g.knn(Point(0, 0), 5) == []


class TestRTree:
    def test_len(self, rtree, entries):
        assert len(rtree) == len(entries)

    def test_capacity_validated(self, entries):
        with pytest.raises(ValueError):
            RTree(entries, leaf_capacity=1)

    @pytest.mark.parametrize("center,radius", QUERIES)
    def test_range_matches_brute_force(self, rtree, entries, center, radius):
        assert sorted(rtree.range_query(center, radius)) == sorted(
            brute_force_range(entries, center, radius)
        )

    @pytest.mark.parametrize("k", [1, 7, 50])
    def test_knn_matches_brute_force(self, rtree, entries, k):
        q = Point(222, 888)
        assert rtree.knn(q, k) == brute_force_knn(entries, q, k)

    def test_knn_more_than_size(self, entries):
        small = RTree(entries[:5])
        assert len(small.knn(Point(0, 0), 100)) == 5

    def test_empty_tree(self):
        t = RTree([])
        assert t.range_query(Point(0, 0), 10) == []
        assert t.knn(Point(0, 0), 3) == []

    def test_skewed_data(self, rng):
        """STR loading must stay correct on clustered data."""
        pts = [Point(rng.normal(100, 5), rng.normal(100, 5)) for _ in range(200)]
        pts += [Point(rng.normal(900, 5), rng.normal(900, 5)) for _ in range(200)]
        es = build_entries(pts)
        t = RTree(es)
        q = Point(100, 100)
        assert sorted(t.range_query(q, 20)) == sorted(brute_force_range(es, q, 20))
        assert t.knn(q, 10) == brute_force_knn(es, q, 10)

    def test_duplicate_points(self):
        es = build_entries([Point(5, 5)] * 20)
        t = RTree(es)
        assert sorted(t.range_query(Point(5, 5), 1)) == list(range(20))
