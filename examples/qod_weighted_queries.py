"""Quality-of-Data scoring driving quality-weighted queries, end to end.

The full QoD loop of the tutorial: a sensor fleet reads a smooth
space-time field, but a few devices misbehave — one reports with a
constant bias, one froze an hour ago, one drifts steadily out of
calibration.  Every reading streams through an ingestion engine whose
``on_admit`` hook incrementally maintains a :class:`~repro.qod.QodRegistry`;
the registry's three control points (self checks, comparative reference
checks against spatial neighbors, deployment-status detectors) composite
into one score per sensor, with no labels or ground truth involved.

The scores then flow into exploitation: mapped to weights and installed
on the :class:`~repro.querying.PartitionedStore`, kNN queries rank by
effective distance ``d / w`` so low-quality sensors only answer when no
trustworthy one is near — and the asyncio serving layer caches weighted
answers keyed on the store's weights epoch, so re-scoring never serves a
stale result.

Run:  PYTHONPATH=src python examples/qod_weighted_queries.py
"""

import asyncio

import numpy as np

from repro.core import BBox, Point
from repro.ingest import IngestEngine, IngestEvent
from repro.qod import QodConfig, QodRegistry, qod_ingest_hook, quality_weights
from repro.querying import PartitionedStore, kd_partition
from repro.serve import KnnQueryRequest, QueryService
from repro.synth import SmoothField, random_sensor_sites, stuck_sensor
from repro.synth.corrupt import add_sensor_bias

SEED = 2022
N_SENSORS = 40
N_READINGS = 40
N_QUERIES = 60


def build_fleet(rng):
    """A field world with three misbehaving sensors hidden in the fleet."""
    box = BBox(0.0, 0.0, 1000.0, 1000.0)
    field = SmoothField(
        rng, box, n_bumps=5, length_scale=250.0, drift_speed=0.05, period=7200.0
    )
    sites = random_sensor_sites(rng, N_SENSORS, box)
    times = np.arange(N_READINGS, dtype=float) * 60.0
    series = field.sample_sensors(sites, times, rng, noise_sigma=0.3)
    series[3] = add_sensor_bias(series[3], 8.0)  # miscalibrated
    series[11] = stuck_sensor(series[11], 0, N_READINGS)  # frozen
    series[27] = series[27].with_values(  # drifting
        series[27].values + 0.01 * (times - times[0])
    )
    return box, field, sites, times, series, {3, 11, 27}


def ingest_and_score(series):
    """Stream every reading through the engine; the hook scores as we go."""
    registry = QodRegistry(
        QodConfig(
            value_bounds=(-50.0, 100.0),
            value_rate_bounds=(-0.05, 0.05),
            expected_interval=60.0,
            cqc_tolerance=4.0,
            cqc_min_scale=1.0,
            drift_tolerance=5e-3,
        )
    )
    with IngestEngine(n_shards=4, on_admit=qod_ingest_hook(registry)) as engine:
        for s in series:
            for t, v in zip(s.times, s.values):
                engine.offer(
                    IngestEvent(s.sensor_id, s.location.x, s.location.y, t, v, t)
                )
    return registry


async def serve_weighted(store, queries):
    """Ask each question both ways through the serving layer."""
    plain = [KnnQueryRequest(q, 5) for q in queries]
    weighted = [KnnQueryRequest(q, 5, weighted=True) for q in queries]
    async with QueryService(store, linger=0.0) as svc:
        plain_responses = await svc.submit_many(plain)
        weighted_responses = await svc.submit_many(weighted)
    return plain_responses, weighted_responses


def main():
    rng = np.random.default_rng(SEED)
    box, field, sites, times, series, bad = build_fleet(rng)

    registry = ingest_and_score(series)
    scores = registry.scores()
    print("lowest-scoring sensors (no labels were used):")
    for sid, s in sorted(scores.items(), key=lambda kv: kv[1].composite)[:5]:
        print(
            f"  {sid:<10} composite={s.composite:.2f} "
            f"(self={s.self_check:.2f} ref={s.reference:.2f} deploy={s.deployment:.2f})"
        )
    flagged = {sid for sid, s in scores.items() if s.composite < 0.5}
    truth = {series[i].sensor_id for i in bad}
    print(f"flagged {sorted(flagged)} / injected faults {sorted(truth)}")

    # scores -> weights -> store: weighted kNN ranks by effective distance
    weights = quality_weights(scores)
    points = [Point(s.x, s.y) for s in sites]
    store = PartitionedStore(points, kd_partition(points, box, 8))
    store.set_quality_weights([weights[s.sensor_id] for s in series])

    queries = [
        Point(rng.uniform(50, 950), rng.uniform(50, 950)) for _ in range(N_QUERIES)
    ]
    plain_responses, weighted_responses = asyncio.run(serve_weighted(store, queries))

    ti = N_READINGS - 1
    t = float(times[ti])

    def score_responses(responses):
        err = []
        for q, resp in zip(queries, responses):
            estimate = np.mean([series[i].values[ti] for i in resp.results])
            err.append(estimate - field.value(q, t))
        return float(np.sqrt(np.mean(np.square(err))))

    rmse_plain = score_responses(plain_responses)
    rmse_weighted = score_responses(weighted_responses)
    print(f"\nkNN field estimate over {N_QUERIES} queries (truth = noise-free field):")
    print(f"  unweighted RMSE: {rmse_plain:.3f}")
    print(f"  QoD-weighted:    {rmse_weighted:.3f}")

    dodged = sum(
        len(set(p.results) & {i for i in range(N_SENSORS) if series[i].sensor_id in truth})
        - len(set(w.results) & {i for i in range(N_SENSORS) if series[i].sensor_id in truth})
        for p, w in zip(plain_responses, weighted_responses)
    )
    print(f"  faulty-sensor answers avoided by weighting: {dodged}")
    assert rmse_weighted <= rmse_plain, "weighting should not hurt on this fleet"


if __name__ == "__main__":
    main()
