"""Location refinement (Sec. 2.2.1): ensemble, motion-based, collaborative."""

from .collaborative import PeerRange, iterative_refine, joint_denoise, range_stress
from .fingerprint import FingerprintLocalizer
from .fusion import (
    SourceEstimate,
    inverse_variance_fusion,
    median_fusion,
    reliability_weighted_fusion,
)
from .hmm import GridHMM
from .kalman import KalmanFilter2D, KalmanResult, kalman_refine
from .particle import (
    ParticleFilter2D,
    particle_refine,
    position_likelihood,
    range_likelihood,
)
from .trilateration import gauss_newton, linear_least_squares, residual_rms

__all__ = [
    "PeerRange",
    "iterative_refine",
    "joint_denoise",
    "range_stress",
    "FingerprintLocalizer",
    "SourceEstimate",
    "inverse_variance_fusion",
    "median_fusion",
    "reliability_weighted_fusion",
    "GridHMM",
    "KalmanFilter2D",
    "KalmanResult",
    "kalman_refine",
    "ParticleFilter2D",
    "particle_refine",
    "position_likelihood",
    "range_likelihood",
    "gauss_newton",
    "linear_least_squares",
    "residual_rms",
]
