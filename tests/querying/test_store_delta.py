"""Two-tier store invariants: delta buffers, compaction, and dependency sets.

The contract under test is the PR's tentpole: a point admitted through
``PartitionedStore.append`` is queryable immediately, every answer is
bit-identical to a from-scratch rebuild with the same membership
(``store.rebuilt()``), and compaction is a pure representation change —
it folds delta tails into base columns without perturbing a single
result.  The hypothesis suite at the bottom drives that equivalence
under shuffled admit orders and mid-stream compaction; the dependency
set tests pin the append-only kNN pruning bound (satellite 1) and the
lease lifecycle tests the double-release fix (satellite 2).
"""

from __future__ import annotations

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BBox, Point
from repro.querying import (
    CompactionStats,
    PartitionedStore,
    grid_partition,
    kd_partition,
    skewed_points,
)
from repro.querying.distributed import (
    COMPACT_THRESHOLD_ENV,
    DEFAULT_COMPACT_THRESHOLD,
    resolve_compact_threshold,
)

REGION = BBox(0.0, 0.0, 1000.0, 1000.0)


def make_store(n_points=400, n_parts=9, seed=2022, partitioner="grid"):
    rng = np.random.default_rng(seed)
    points = skewed_points(rng, n_points, REGION, n_hotspots=3, hotspot_sigma=50.0)
    if partitioner == "grid":
        parts = grid_partition(points, REGION, int(np.sqrt(n_parts)))
    else:
        parts = kd_partition(points, REGION, n_parts)
    return PartitionedStore(points, parts), rng


def query_grid(rng, n=20):
    centers = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(n)]
    radii = rng.uniform(20.0, 150.0, n).tolist()
    return centers, radii


def assert_matches_rebuilt(store, centers, radii, k=5):
    fresh = store.rebuilt()
    assert store.range_query_many(centers, radii) == fresh.range_query_many(
        centers, radii
    )
    assert store.knn_many(centers, k) == fresh.knn_many(centers, k)


class TestDeltaBuffer:
    def test_append_visible_immediately_with_sequential_ids(self):
        store, rng = make_store()
        n0 = len(store.points)
        pid = store.append(Point(500.0, 500.0))
        assert pid == n0
        ids = store.append_many([Point(1.0, 1.0), Point(999.0, 999.0)])
        assert ids == [n0 + 1, n0 + 2]
        assert len(store.points) == n0 + 3
        hits = store.range_query(Point(500.0, 500.0), 1.0)
        assert pid in hits

    def test_append_outside_region_grows_scan_box_and_is_findable(self):
        store, _ = make_store()
        pid = store.append(Point(1500.0, -200.0))
        assert store.range_query(Point(1500.0, -200.0), 5.0) == [pid]
        assert pid in store.knn(Point(1400.0, -100.0), 3)
        # the static partition geometry is unchanged — only scan boxes grow
        boxes = store.partition_boxes
        assert boxes[:, 2].max() <= REGION.max_x
        assert boxes[:, 1].min() >= REGION.min_y

    def test_append_empty_batch_is_noop(self):
        store, _ = make_store()
        n0 = len(store.points)
        assert store.append_many([]) == []
        assert len(store.points) == n0

    def test_append_to_store_without_partitions_raises(self):
        store = PartitionedStore([], [])
        with pytest.raises(ValueError, match="no partitions"):
            store.append(Point(0.0, 0.0))

    def test_partitions_property_reflects_live_membership(self):
        store, _ = make_store()
        before = {i for part in store.partitions for i in part.point_indices}
        pid = store.append(Point(123.0, 456.0))
        after = [part.point_indices for part in store.partitions]
        live = {i for members in after for i in members}
        assert live == before | {pid}
        # exactly one partition absorbed the newcomer, at its tail
        gained = [m for m in after if pid in m]
        assert len(gained) == 1 and gained[0][-1] == pid

    def test_constructor_copies_points_list(self):
        points = [Point(10.0, 10.0), Point(900.0, 900.0)]
        parts = grid_partition(points, REGION, 2)
        store = PartitionedStore(points, parts)
        store.append(Point(50.0, 50.0))
        assert len(points) == 2  # caller's list untouched

    def test_delta_stats_accounting(self):
        store, _ = make_store(n_points=100, n_parts=4)
        stats = store.delta_stats()
        assert stats["points"] == 100.0
        assert stats["delta_points"] == 0.0
        store.append_many([Point(5.0, 5.0)] * 7)
        stats = store.delta_stats()
        assert stats["points"] == 107.0
        assert stats["base_points"] == 100.0
        assert stats["delta_points"] == 7.0
        assert stats["appends_total"] == 7.0
        assert 0.0 < stats["delta_fraction_max"] <= 1.0
        assert stats["compactions"] == 0.0

    def test_mixed_appends_match_rebuilt(self):
        store, rng = make_store()
        extra = skewed_points(rng, 120, REGION, n_hotspots=2, hotspot_sigma=30.0)
        extra.append(Point(-40.0, 1100.0))
        store.append_many(extra)
        centers, radii = query_grid(rng)
        assert_matches_rebuilt(store, centers, radii)

    def test_duplicate_coordinates_keep_id_tiebreak(self):
        store, _ = make_store(n_points=50, n_parts=4)
        target = Point(250.0, 250.0)
        ids = store.append_many([target, target, target])
        hits = store.knn(target, 3)
        # (distance, index) ordering: equal distances rank by id
        assert hits == sorted(ids)[:3]


class TestCompaction:
    def test_compact_folds_deltas_and_preserves_answers(self):
        store, rng = make_store()
        store.append_many(
            skewed_points(rng, 200, REGION, n_hotspots=2, hotspot_sigma=60.0)
        )
        centers, radii = query_grid(rng)
        before_range = store.range_query_many(centers, radii)
        before_knn = store.knn_many(centers, 7)
        stats = store.compact(threshold=0.0)
        assert isinstance(stats, CompactionStats)
        assert stats.points_folded == 200
        assert stats.partitions >= 1
        assert stats.seconds >= 0.0
        assert store.delta_stats()["delta_points"] == 0.0
        assert store.range_query_many(centers, radii) == before_range
        assert store.knn_many(centers, 7) == before_knn
        assert_matches_rebuilt(store, centers, radii)

    def test_threshold_selects_only_heavy_partitions(self):
        points = [Point(10.0, 10.0), Point(900.0, 900.0)]
        parts = grid_partition(points, REGION, 2)
        store = PartitionedStore(points, parts)
        # partition holding (10,10) gets a huge delta; the other none
        store.append_many([Point(20.0, 20.0)] * 9)
        stats = store.compact(threshold=0.5)
        assert stats.partitions == 1
        assert stats.points_folded == 9

    def test_compact_below_threshold_is_noop(self):
        store, _ = make_store()
        store.append(Point(500.0, 500.0))
        stats = store.compact(threshold=0.99)
        assert (stats.partitions, stats.points_folded) == (0, 0)
        assert store.delta_stats()["delta_points"] == 1.0

    def test_explicit_partition_ids_override_threshold(self):
        store, _ = make_store(n_points=100, n_parts=4)
        ids = store.append_many([Point(5.0, 5.0), Point(995.0, 995.0)])
        assert len(ids) == 2
        stats = store.compact(partition_ids=range(store._tiers.n_partitions))
        assert stats.points_folded == 2
        assert store.compactions == 1
        assert store.compacted_points == 2

    def test_compact_does_not_change_static_geometry(self):
        store, rng = make_store()
        boxes_before = store.partition_boxes.copy()
        store.append_many([Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
                           for _ in range(50)])
        store.compact(threshold=0.0)
        np.testing.assert_array_equal(store.partition_boxes, boxes_before)

    def test_repeated_append_compact_cycles(self):
        store, rng = make_store(n_points=200, n_parts=4)
        for _ in range(4):
            store.append_many(
                skewed_points(rng, 60, REGION, n_hotspots=1, hotspot_sigma=80.0)
            )
            store.compact(threshold=0.0)
        centers, radii = query_grid(rng)
        assert_matches_rebuilt(store, centers, radii)
        assert store.delta_stats()["compacted_points_total"] == 240.0

    def test_resolve_threshold_precedence(self, monkeypatch):
        monkeypatch.delenv(COMPACT_THRESHOLD_ENV, raising=False)
        assert resolve_compact_threshold() == DEFAULT_COMPACT_THRESHOLD
        assert resolve_compact_threshold(0.7) == 0.7
        monkeypatch.setenv(COMPACT_THRESHOLD_ENV, "0.1")
        assert resolve_compact_threshold() == 0.1
        assert resolve_compact_threshold(0.7) == 0.7  # explicit beats env
        monkeypatch.setenv(COMPACT_THRESHOLD_ENV, "not-a-float")
        with pytest.raises(ValueError):
            resolve_compact_threshold()


class TestKnnPartitionSetsTightening:
    """Satellite 1: strict min-distance bound on kNN dependency sets."""

    def test_tight_sets_subset_of_conservative(self):
        store, rng = make_store(n_points=600, n_parts=16, partitioner="kd")
        centers, _ = query_grid(rng, n=30)
        hits = store.knn_many(centers, 5)
        tight = store.knn_partition_sets(centers, hits, 5)
        loose = store.knn_partition_sets(centers, hits, 5, append_only=False)
        for t, l in zip(tight, loose):
            assert set(t) <= set(l)

    def test_exact_boundary_tie_pruned_only_when_append_only(self):
        # 2x2 grid over [0,1000]^2, cells split at x=500.  Query at
        # (100,250) with k=2: the k-th neighbour sits at distance exactly
        # 400, which is also exactly the min-distance to the right cells'
        # shared boundary.  A newcomer ON that boundary ties at the k-th
        # distance and loses the (distance, id) tie — the strict bound may
        # prune the boundary partition, the conservative one may not.
        points = [Point(100.0, 250.0), Point(500.0, 250.0)]
        store = PartitionedStore(points, grid_partition(points, REGION, 2))
        center = Point(100.0, 250.0)
        hits = store.knn_many([center], 2)
        assert sorted(hits[0]) == [0, 1]
        tight = store.knn_partition_sets([center], hits, 2)[0]
        loose = store.knn_partition_sets([center], hits, 2, append_only=False)[0]
        pruned = set(loose) - set(tight)
        assert pruned, "strict bound should drop the exact-tie partition"
        # the pruning is sound: appending ON the tie circle must not
        # change the answer (the newcomer's higher id loses the tie)
        store.append(Point(500.0, 250.0))
        assert store.knn_many([center], 2) == hits

    def test_appends_outside_set_never_change_answers(self):
        store, rng = make_store(n_points=500, n_parts=16, partitioner="kd")
        centers, _ = query_grid(rng, n=15)
        k = 4
        hits = store.knn_many(centers, k)
        sets = store.knn_partition_sets(centers, hits, k)
        boxes = store.partition_boxes
        for qi, dep in enumerate(sets):
            outside = [p for p in range(len(boxes)) if p not in dep]
            if not outside:
                continue
            p = outside[0]
            # centre of an untouched partition's box — routed there
            store.append(
                Point((boxes[p, 0] + boxes[p, 2]) / 2, (boxes[p, 1] + boxes[p, 3]) / 2)
            )
            assert store.knn_many([centers[qi]], k)[0] == hits[qi]

    def test_short_answer_depends_on_every_partition(self):
        store, _ = make_store(n_points=10, n_parts=4)
        center = Point(500.0, 500.0)
        hits = store.knn_many([center], 50)
        sets = store.knn_partition_sets([center], hits, 50)
        assert sets == [tuple(range(store._tiers.n_partitions))]
        # exact, not conservative: an append anywhere enters the answer
        pid = store.append(Point(999.0, 1.0))
        assert pid in store.knn_many([center], 50)[0]

    def test_hits_misalignment_raises(self):
        store, _ = make_store(n_points=20, n_parts=4)
        with pytest.raises(ValueError, match="align"):
            store.knn_partition_sets([Point(1.0, 1.0)], [])


class _InProcessPoolStub:
    workers = 2

    def map_ordered(self, fn, payloads):
        return [fn(p) for p in payloads]

    def close(self):
        pass


class TestLeaseLifecycle:
    """Satellite 2: shared-column release is single-owner and idempotent."""

    def lease_up(self, store, rng):
        centers, radii = query_grid(rng, n=8)
        out = store.range_query_many(centers, radii, executor=_InProcessPoolStub())
        assert len(store._leases) > 0
        return centers, radii, out

    def test_double_close_shared_is_safe(self):
        store, rng = make_store()
        self.lease_up(store, rng)
        store.close_shared()
        assert len(store._leases) == 0
        store.close_shared()  # second release: structurally a no-op
        assert len(store._leases) == 0

    def test_finalizer_after_explicit_close_releases_nothing(self):
        store, rng = make_store()
        self.lease_up(store, rng)
        store.close_shared()
        fin = store._lease_finalizer
        del store
        gc.collect()
        assert not fin.alive or fin.peek() is not None
        if fin.alive:
            fin()  # explicit double-fire — must not raise

    def test_queries_after_close_re_lease_and_stay_identical(self):
        store, rng = make_store()
        centers, radii, first = self.lease_up(store, rng)
        store.close_shared()
        again = store.range_query_many(centers, radii, executor=_InProcessPoolStub())
        assert again == first
        assert len(store._leases) > 0
        store.close_shared()

    def test_compaction_invalidates_only_affected_partitions(self):
        store, rng = make_store(n_points=400, n_parts=9)
        # deltas land in a known partition
        store.append_many([Point(5.0, 5.0)] * 40)
        self.lease_up(store, rng)
        leased_before = set(store._leases._leases)
        fractions = store._tiers.delta_fractions()
        dirty = {p for p, f in enumerate(fractions) if f > 0.0}
        assert dirty
        store.compact(threshold=0.0)
        leased_after = set(store._leases._leases)
        assert leased_after == leased_before - dirty
        store.close_shared()

    def test_stale_lease_replaced_after_compaction(self):
        store, rng = make_store(n_points=300, n_parts=4)
        store.append_many([Point(500.0, 500.0)] * 30)
        centers, radii, before = self.lease_up(store, rng)
        store.compact(threshold=0.0)
        after = store.range_query_many(centers, radii, executor=_InProcessPoolStub())
        assert after == before
        store.close_shared()


class TestParallelDeltaParity:
    def test_parallel_with_live_deltas_matches_serial(self):
        store, rng = make_store(n_points=500, n_parts=16, partitioner="kd")
        store.append_many(
            skewed_points(rng, 150, REGION, n_hotspots=2, hotspot_sigma=40.0)
        )
        centers, radii = query_grid(rng, n=30)
        serial = store.range_query_many(centers, radii)
        par = store.range_query_many(centers, radii, executor=_InProcessPoolStub())
        assert par == serial
        sk = store.knn_many(centers, 6)
        pk = store.knn_many(centers, 6, executor=_InProcessPoolStub())
        assert pk == sk
        store.close_shared()


# -- hypothesis: admit-order / compaction equivalence (satellite 3) -----------

coord = st.floats(min_value=-50.0, max_value=1050.0, allow_nan=False)
point_lists = st.lists(st.builds(Point, coord, coord), min_size=0, max_size=40)


class TestStoreDeltaProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        streamed=point_lists,
        order_seed=st.integers(min_value=0, max_value=2**31 - 1),
        compact_at=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_shuffled_admits_with_midstream_compaction_match_rebuilt(
        self, streamed, order_seed, compact_at, k
    ):
        base_rng = np.random.default_rng(2022)
        base = skewed_points(base_rng, 60, REGION, n_hotspots=2, hotspot_sigma=80.0)
        parts = grid_partition(base, REGION, 2)
        store = PartitionedStore(base, parts)

        order = np.random.default_rng(order_seed).permutation(len(streamed))
        for i, j in enumerate(order):
            store.append(streamed[int(j)])
            if i == compact_at:
                store.compact(threshold=0.0)

        q_rng = np.random.default_rng(order_seed ^ 0x5EED)
        centers = [
            Point(q_rng.uniform(-50, 1050), q_rng.uniform(-50, 1050)) for _ in range(6)
        ]
        radii = q_rng.uniform(10.0, 300.0, 6).tolist()

        fresh = store.rebuilt()
        assert store.range_query_many(centers, radii) == fresh.range_query_many(
            centers, radii
        )
        assert store.knn_many(centers, k) == fresh.knn_many(centers, k)
        # membership equivalence, partition by partition, in admit order
        assert [p.point_indices for p in store.partitions] == [
            p.point_indices for p in fresh.partitions
        ]

    @settings(max_examples=20, deadline=None)
    @given(
        streamed=point_lists,
        split=st.integers(min_value=0, max_value=40),
    )
    def test_batch_vs_single_appends_identical(self, streamed, split):
        base_rng = np.random.default_rng(7)
        base = skewed_points(base_rng, 40, REGION, n_hotspots=1, hotspot_sigma=90.0)
        parts = kd_partition(base, REGION, 4)
        a = PartitionedStore(base, parts)
        b = PartitionedStore(base, parts)
        cut = min(split, len(streamed))
        a.append_many(streamed)
        b.append_many(streamed[:cut])
        for p in streamed[cut:]:
            b.append(p)
        assert [p.point_indices for p in a.partitions] == [p.point_indices for p in b.partitions]
        centers = [Point(500.0, 500.0), Point(-20.0, 1020.0)]
        assert a.range_query_many(centers, 250.0) == b.range_query_many(centers, 250.0)
        assert a.knn_many(centers, 5) == b.knn_many(centers, 5)
