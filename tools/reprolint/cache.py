"""Content-hash incremental cache for reprolint.

Per-file entries store the source digest plus the extracted
:class:`~tools.reprolint.core.ModuleInfo`, the per-file findings, and the
pragma map — so an unchanged file is neither re-parsed nor re-analyzed.
Whole-program rules (R8 layering, R9 lock order) re-run only when their
*fingerprint* changes: the combined import/lock index across all modules
plus the layer manifest and the ``docs/ARCHITECTURE.md`` marker.  Tree
rules (R3 parity, R5 export hygiene) key on the digests of the files they
actually read.  Editing one leaf module therefore re-analyzes exactly
that module and reuses everything else.

The cache is a single JSON file (default ``.reprolint_cache.json`` at the
repo root, gitignored).  A version stamp invalidates it wholesale when
the analyzer itself changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

#: Bump when extraction or rule semantics change: stale entries self-invalidate.
CACHE_VERSION = 1


def digest_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def digest_file(path: Path) -> str | None:
    try:
        return digest_bytes(path.read_bytes())
    except OSError:
        return None


@dataclass
class CacheStats:
    """What the incremental layer actually did on one run."""

    files_analyzed: int = 0
    files_cached: int = 0
    whole_program_reused: bool = False
    tree_rules_reused: bool = False


@dataclass
class FileEntry:
    """Cached per-file analysis keyed on the source digest."""

    digest: str
    info: dict = field(default_factory=dict)  # ModuleInfo.as_dict()
    findings: list = field(default_factory=list)  # raw per-file Finding.as_dict()
    pragmas: dict = field(default_factory=dict)  # line(str) -> [rule, ...]

    def as_dict(self) -> dict:
        return {
            "digest": self.digest,
            "info": self.info,
            "findings": self.findings,
            "pragmas": self.pragmas,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FileEntry":
        return cls(
            digest=str(d["digest"]),
            info=dict(d.get("info", {})),
            findings=list(d.get("findings", [])),
            pragmas=dict(d.get("pragmas", {})),
        )


class LintCache:
    """Load/update/save the on-disk cache; tolerant of any corruption."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.files: dict[str, FileEntry] = {}
        #: fingerprint -> raw findings for the whole-program rule group
        self.whole_program: dict = {"key": None, "findings": []}
        #: fingerprint -> raw findings for the tree rule group
        self.tree_rules: dict = {"key": None, "findings": []}

    @classmethod
    def load(cls, path: Path) -> "LintCache":
        cache = cls(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
            return cache
        try:
            for rel, entry in raw.get("files", {}).items():
                cache.files[rel] = FileEntry.from_dict(entry)
            wp = raw.get("whole_program", {})
            if isinstance(wp, dict):
                cache.whole_program = {
                    "key": wp.get("key"),
                    "findings": list(wp.get("findings", [])),
                }
            tr = raw.get("tree_rules", {})
            if isinstance(tr, dict):
                cache.tree_rules = {
                    "key": tr.get("key"),
                    "findings": list(tr.get("findings", [])),
                }
        except (KeyError, TypeError, ValueError):
            return cls(path)  # corrupt entry: start fresh
        return cache

    def save(self, live_rels: set[str]) -> None:
        """Atomically persist, pruning entries for files that no longer exist."""
        payload = {
            "version": CACHE_VERSION,
            "files": {
                rel: entry.as_dict()
                for rel, entry in sorted(self.files.items())
                if rel in live_rels
            },
            "whole_program": self.whole_program,
            "tree_rules": self.tree_rules,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, separators=(",", ":"))
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a read-only tree just runs uncached


def whole_program_key(
    wp_fingerprints: list, layers: dict[str, int], marker_digest: str | None
) -> str:
    """Key the whole-program rule group on exactly what those rules read."""
    blob = json.dumps(
        {
            "version": CACHE_VERSION,
            "modules": wp_fingerprints,
            "layers": sorted(layers.items()),
            "marker": marker_digest,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return digest_bytes(blob.encode("utf-8"))


def tree_rules_key(root: Path, anchor_rels: list[str]) -> str:
    """Key the tree rule group on the digests of the files those rules read."""
    parts: list[tuple[str, str | None]] = []
    for rel in sorted(set(anchor_rels)):
        parts.append((rel, digest_file(root / rel)))
    blob = json.dumps({"version": CACHE_VERSION, "anchors": parts}, separators=(",", ":"))
    return digest_bytes(blob.encode("utf-8"))
