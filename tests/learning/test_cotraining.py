import numpy as np
import pytest

from repro.learning import CentroidClassifier, CoTrainingClassifier


def two_view_world(rng, n_per=150):
    """Binary classes separable in each of two independent views."""
    xa = np.vstack(
        [rng.normal([0, 0, 0, 0], 1.2, (n_per, 4)), rng.normal([2, 2, 0, 0], 1.2, (n_per, 4))]
    )
    xb = np.vstack(
        [rng.normal([0, 0, 0, 0], 1.2, (n_per, 4)), rng.normal([0, 0, 2, 2], 1.2, (n_per, 4))]
    )
    y = np.array([0] * n_per + [1] * n_per)
    perm = rng.permutation(2 * n_per)
    return xa[perm], xb[perm], y[perm]


@pytest.fixture
def world(rng):
    xa, xb, y = two_view_world(rng)
    train = slice(0, 200)
    test = slice(200, 300)
    labeled = (
        list(np.flatnonzero(y[train] == 0)[:2]) + list(np.flatnonzero(y[train] == 1)[:2])
    )
    return xa, xb, y, train, test, labeled


class TestCentroidClassifier:
    def test_fit_requires_two_classes(self, rng):
        with pytest.raises(ValueError):
            CentroidClassifier().fit(rng.normal(0, 1, (5, 2)), np.zeros(5))

    def test_predict_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            CentroidClassifier().predict(rng.normal(0, 1, (5, 2)))

    def test_separable_classes_high_accuracy(self, rng):
        x = np.vstack([rng.normal(0, 0.5, (50, 2)), rng.normal(5, 0.5, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        clf = CentroidClassifier().fit(x, y)
        assert clf.accuracy(x, y) > 0.98

    def test_margin_reflects_confidence(self, rng):
        x = np.array([[0.0, 0.0], [5.0, 5.0]])
        y = np.array([0, 1])
        clf = CentroidClassifier().fit(x, y)
        _, margins = clf.predict_with_margin(
            np.array([[0.0, 0.0], [2.5, 2.5]])
        )
        assert margins[0] > margins[1]  # near a centroid > midway


class TestCoTraining:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            CoTrainingClassifier(n_rounds=0)

    def test_needs_labels(self, world):
        xa, xb, y, train, _, _ = world
        with pytest.raises(ValueError):
            CoTrainingClassifier().fit(xa[train], xb[train], y[train], [])

    def test_alignment_validated(self, world):
        xa, xb, y, train, _, labeled = world
        with pytest.raises(ValueError):
            CoTrainingClassifier().fit(xa[train], xb[0:100], y[train], labeled)

    def test_beats_supervised_baseline(self, world):
        """The [22] claim: unlabeled data + two views beat labels alone."""
        xa, xb, y, train, test, labeled = world
        base = CentroidClassifier().fit(xa[train][labeled], y[train][labeled])
        base_acc = base.accuracy(xa[test], y[test])
        co = CoTrainingClassifier(n_rounds=10, per_round=6).fit(
            xa[train], xb[train], y[train], labeled
        )
        co_acc = co.accuracy(xa[test], xb[test], y[test])
        assert co_acc >= base_acc

    def test_beats_baseline_across_seeds(self):
        wins = 0
        for seed in range(6):
            rng = np.random.default_rng(seed)
            xa, xb, y = two_view_world(rng)
            labeled = (
                list(np.flatnonzero(y[:200] == 0)[:2])
                + list(np.flatnonzero(y[:200] == 1)[:2])
            )
            base = CentroidClassifier().fit(xa[:200][labeled], y[:200][labeled])
            base_acc = base.accuracy(xa[200:], y[200:])
            co = CoTrainingClassifier().fit(xa[:200], xb[:200], y[:200], labeled)
            co_acc = co.accuracy(xa[200:], xb[200:], y[200:])
            wins += co_acc >= base_acc
        assert wins >= 5

    def test_prediction_uses_both_views(self, world):
        xa, xb, y, train, test, labeled = world
        co = CoTrainingClassifier().fit(xa[train], xb[train], y[train], labeled)
        preds = co.predict(xa[test], xb[test])
        assert preds.shape == (100,)
        assert set(np.unique(preds)) <= {0, 1}
