import numpy as np
import pytest

from repro.synth import CorridorWorld, RawReading, readings_by_epoch


@pytest.fixture
def world():
    return CorridorWorld(n_readers=6, dwell_min=2, dwell_max=4)


class TestGroundTruth:
    def test_visits_cover_all_readers_in_order(self, world, rng):
        visits = world.ground_truth(rng)
        assert [v.reader for v in visits] == list(range(6))

    def test_visits_contiguous(self, world, rng):
        visits = world.ground_truth(rng)
        for a, b in zip(visits, visits[1:]):
            assert b.enter_epoch == a.exit_epoch + 1

    def test_dwell_bounds(self, world, rng):
        visits = world.ground_truth(rng)
        for v in visits:
            assert 2 <= v.exit_epoch - v.enter_epoch + 1 <= 4

    def test_truth_reader_at(self, world, rng):
        visits = world.ground_truth(rng)
        assert world.truth_reader_at(visits, 0) == 0
        assert world.truth_reader_at(visits, visits[-1].exit_epoch) == 5
        assert world.truth_reader_at(visits, 10_000) is None

    def test_total_epochs(self, world, rng):
        visits = world.ground_truth(rng)
        assert world.total_epochs(visits) == visits[-1].exit_epoch + 1
        assert world.total_epochs([]) == 0


class TestObservation:
    def test_perfect_detection(self, world, rng):
        visits = world.ground_truth(rng)
        readings = world.observe(visits, rng, p_detect=1.0, p_cross=0.0)
        total = world.total_epochs(visits)
        assert len(readings) == total  # one true read per epoch
        for r in readings:
            assert world.truth_reader_at(visits, r.epoch) == r.reader

    def test_false_negatives_reduce_reads(self, world):
        visits = world.ground_truth(np.random.default_rng(0))
        full = world.observe(visits, np.random.default_rng(1), 1.0, 0.0)
        lossy = world.observe(visits, np.random.default_rng(1), 0.4, 0.0)
        assert len(lossy) < len(full)

    def test_false_positives_come_from_neighbors(self, world, rng):
        visits = world.ground_truth(rng)
        readings = world.observe(visits, rng, p_detect=0.0, p_cross=1.0)
        for r in readings:
            truth = world.truth_reader_at(visits, r.epoch)
            assert abs(r.reader - truth) == 1

    def test_probability_validation(self, world, rng):
        visits = world.ground_truth(rng)
        with pytest.raises(ValueError):
            world.observe(visits, rng, p_detect=1.5)

    def test_readings_sorted(self, world, rng):
        visits = world.ground_truth(rng)
        readings = world.observe(visits, rng, 0.9, 0.3)
        keys = [(r.epoch, r.reader) for r in readings]
        assert keys == sorted(keys)


class TestGrouping:
    def test_readings_by_epoch_dedupes(self):
        rs = [RawReading(0, 2, "t"), RawReading(0, 2, "t"), RawReading(0, 1, "t")]
        grouped = readings_by_epoch(rs)
        assert grouped == {0: [1, 2]}

    def test_empty(self):
        assert readings_by_epoch([]) == {}
