"""The per-module and tree-level reprolint rules (R1, R3–R7).

Every per-module rule takes a parsed :class:`~tools.reprolint.core.Module`
and returns ``list[Finding]``; the tree-level rules (R3, R5) take the repo
root and return ``(Finding, pragma_map)`` pairs so the runner can honor
inline pragmas in files it did not itself scan.  The flow-based R2 lives
in :mod:`tools.reprolint.flow`; the whole-program R8/R9 live in
:mod:`tools.reprolint.graph` and :mod:`tools.reprolint.locks`.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .core import Finding, Module, pragma_lines

# -- shared AST helpers --------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully dotted origin, e.g. ``np -> numpy``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".", 1)[0]] = (
                    a.name if a.asname else a.name.split(".", 1)[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def resolve_call_name(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Fully dotted name of a call target, import aliases applied."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    first, _, rest = dotted.partition(".")
    origin = aliases.get(first, first)
    return f"{origin}.{rest}" if rest else origin


def parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    return {child: parent for parent in ast.walk(tree) for child in ast.iter_child_nodes(parent)}


# -- R1: determinism -----------------------------------------------------------

#: Wall-clock and sleep entry points that make library output time-dependent.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random members that are fine in deterministic code: explicit
#: generator/bit-generator construction and seed derivation.
ALLOWED_NP_RANDOM = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def rule_r1_determinism(module: Module) -> list[Finding]:
    """No hidden global randomness or wall-clock reads in library code."""
    aliases = import_aliases(module.tree)
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call_name(node, aliases)
        if name is None:
            continue
        if name == "random" or name.startswith("random."):
            findings.append(
                Finding(
                    module.rel,
                    node.lineno,
                    "R1",
                    f"stdlib `{name}()` breaks seeded determinism — inject a "
                    "`np.random.Generator` parameter instead",
                )
            )
        elif name in WALL_CLOCK_CALLS:
            findings.append(
                Finding(
                    module.rel,
                    node.lineno,
                    "R1",
                    f"wall-clock call `{name}()` in library code — pass timestamps "
                    "explicitly, or waive this file in reprolint_baseline.toml if "
                    "timing is the feature",
                )
            )
        elif name.startswith("numpy.random."):
            member = name.rsplit(".", 1)[1]
            if member == "default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        Finding(
                            module.rel,
                            node.lineno,
                            "R1",
                            "unseeded `np.random.default_rng()` — thread a seed or "
                            "an injected Generator through instead",
                        )
                    )
            elif member not in ALLOWED_NP_RANDOM:
                findings.append(
                    Finding(
                        module.rel,
                        node.lineno,
                        "R1",
                        f"legacy global-state `np.random.{member}()` — use an "
                        "injected `np.random.Generator`",
                    )
                )
    return findings


# -- R3: kernel/reference parity -----------------------------------------------

KERNEL_MODULES = ("distances", "motion", "screens")


def _public_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    return [
        node
        for node in tree.body
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_")
    ]


def rule_r3_kernel_parity(root: Path) -> list[tuple[Finding, dict[int, set[str]]]]:
    """Every public kernel needs a same-named reference twin and test coverage."""
    kernels_dir = root / "src" / "repro" / "kernels"
    reference_path = kernels_dir / "reference.py"
    if not reference_path.exists():
        return []
    ref_names = {f.name for f in _public_functions(ast.parse(reference_path.read_text()))}
    tests_path = root / "tests" / "test_kernels.py"
    tests_text = tests_path.read_text(encoding="utf-8") if tests_path.exists() else ""

    out: list[tuple[Finding, dict[int, set[str]]]] = []
    for mod_name in KERNEL_MODULES:
        path = kernels_dir / f"{mod_name}.py"
        if not path.exists():
            continue
        source = path.read_text(encoding="utf-8")
        pragmas = pragma_lines(source)
        rel = path.resolve().relative_to(root).as_posix()
        for func in _public_functions(ast.parse(source)):
            if func.name not in ref_names:
                out.append(
                    (
                        Finding(
                            rel,
                            func.lineno,
                            "R3",
                            f"public kernel `{func.name}` has no same-named scalar "
                            "reference twin in kernels/reference.py",
                        ),
                        pragmas,
                    )
                )
            elif not re.search(rf"\b{re.escape(func.name)}\b", tests_text):
                out.append(
                    (
                        Finding(
                            rel,
                            func.lineno,
                            "R3",
                            f"kernel `{func.name}` never appears in "
                            "tests/test_kernels.py — add it to the parity suite",
                        ),
                        pragmas,
                    )
                )
    return out


# -- R4: lock discipline -------------------------------------------------------

LOCK_FACTORIES = {"Lock", "RLock"}


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.*lock`` attributes assigned a Lock()/RLock()."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        factory = dotted_name(node.value.func)
        if factory is None or factory.rsplit(".", 1)[-1] not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and (target.attr == "lock" or target.attr.endswith("_lock"))
            ):
                locks.add(target.attr)
    return locks


def _self_attr_root(target: ast.AST) -> str | None:
    """``self.<attr>`` root of an assignment target, unwrapping subscripts."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        value = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(value, ast.Name)
            and value.id == "self"
        ):
            return node.attr
        node = value
    return None


def _guarded_by_lock(
    node: ast.AST, parents: dict[ast.AST, ast.AST], locks: set[str], method: ast.FunctionDef
) -> bool:
    cur: ast.AST | None = node
    while cur is not None and cur is not method:
        parent = parents.get(cur)
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            for item in parent.items:
                for sub in ast.walk(item.context_expr):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr in locks
                    ):
                        return True
        cur = parent
    return False


def rule_r4_lock_discipline(module: Module) -> list[Finding]:
    """In lock-declaring ingest classes, writes happen under the lock."""
    parents = parent_map(module.tree)
    findings: list[Finding] = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls)
        if not locks:
            continue
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef) or method.name == "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    targets: list[ast.AST] = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    attr = _self_attr_root(target)
                    if attr is None or attr in locks:
                        continue
                    if not _guarded_by_lock(node, parents, locks, method):
                        findings.append(
                            Finding(
                                module.rel,
                                node.lineno,
                                "R4",
                                f"`{cls.name}.{method.name}` writes `self.{attr}` "
                                f"outside `with self.{sorted(locks)[0]}` — shared "
                                "state in a lock-declaring class must be written "
                                "under the lock",
                            )
                        )
    return findings


# -- R5: export hygiene --------------------------------------------------------

_API_SECTION_RE = re.compile(r"^## `(repro\.[A-Za-z_][A-Za-z0-9_.]*)`")
_API_ROW_RE = re.compile(r"^\| `([A-Za-z_][A-Za-z0-9_]*)`")


def _documented_exports(api_md: str) -> dict[str, dict[str, int]]:
    """Package -> {export name -> line number} parsed from docs/API.md."""
    sections: dict[str, dict[str, int]] = {}
    current: dict[str, int] | None = None
    for lineno, line in enumerate(api_md.splitlines(), start=1):
        m = _API_SECTION_RE.match(line)
        if m:
            current = sections.setdefault(m.group(1), {})
            continue
        m = _API_ROW_RE.match(line)
        if m and current is not None:
            current[m.group(1)] = lineno
    return sections


def _declared_all(tree: ast.Module) -> tuple[dict[str, int], int] | None:
    """``__all__`` entries (name -> line) and the assignment line, if present."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            names: dict[str, int] = {}
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names[elt.value] = elt.lineno
            return names, node.lineno
    return None


def rule_r5_export_hygiene(root: Path) -> list[tuple[Finding, dict[int, set[str]]]]:
    """Subpackage ``__all__`` and docs/API.md must list the same names."""
    api_path = root / "docs" / "API.md"
    pkg_root = root / "src" / "repro"
    if not api_path.exists() or not pkg_root.is_dir():
        return []
    api_text = api_path.read_text(encoding="utf-8")
    documented = _documented_exports(api_text)
    api_rel = api_path.resolve().relative_to(root).as_posix()
    api_pragmas = pragma_lines(api_text)

    out: list[tuple[Finding, dict[int, set[str]]]] = []
    for init in sorted(pkg_root.glob("*/__init__.py")):
        source = init.read_text(encoding="utf-8")
        declared = _declared_all(ast.parse(source))
        if declared is None:
            continue
        exports, all_line = declared
        pkg = f"repro.{init.parent.name}"
        rel = init.resolve().relative_to(root).as_posix()
        pragmas = pragma_lines(source)
        section = documented.get(pkg)
        if section is None:
            out.append(
                (
                    Finding(
                        rel,
                        all_line,
                        "R5",
                        f"`{pkg}` has no section in docs/API.md — regenerate with "
                        "`python tools/gen_api_docs.py`",
                    ),
                    pragmas,
                )
            )
            continue
        for name in sorted(set(exports) - set(section)):
            out.append(
                (
                    Finding(
                        rel,
                        exports[name],
                        "R5",
                        f"export `{name}` of `{pkg}` is missing from docs/API.md — "
                        "regenerate with `python tools/gen_api_docs.py`",
                    ),
                    pragmas,
                )
            )
        for name in sorted(set(section) - set(exports)):
            out.append(
                (
                    Finding(
                        api_rel,
                        section[name],
                        "R5",
                        f"docs/API.md documents `{name}` under `{pkg}` but it is "
                        "not in `__all__` — regenerate with "
                        "`python tools/gen_api_docs.py`",
                    ),
                    api_pragmas,
                )
            )
    return out


# -- R6: pool discipline -------------------------------------------------------


def rule_r6_pool_discipline(module: Module) -> list[Finding]:
    """Direct ``ProcessExecutor(...)`` construction is reserved for the pool layer.

    Every other module must lease from the process-wide
    :class:`~repro.parallel.pool.WorkerPoolManager` (via ``get_executor`` or
    ``resolve_executor``) — a privately constructed pool dodges prewarming,
    health checks, reuse accounting, and the ``shutdown_all`` atexit seam,
    which is exactly the cold-start-per-call regression the manager removed.
    """
    if module.rel.startswith("src/repro/parallel/"):
        return []
    aliases = import_aliases(module.tree)
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call_name(node, aliases)
        if name is not None and name.rsplit(".", 1)[-1] == "ProcessExecutor":
            findings.append(
                Finding(
                    module.rel,
                    node.lineno,
                    "R6",
                    "direct `ProcessExecutor(...)` outside repro.parallel — lease "
                    "a warm pool via `get_executor()` / `WorkerPoolManager.acquire()` "
                    "so pools are shared, prewarmed, and closed by `shutdown_all()`",
                )
            )
    return findings


# -- R7: store append discipline -----------------------------------------------

_R7_MUTATORS = frozenset({"append", "extend", "insert"})


def rule_r7_store_append_discipline(module: Module) -> list[Finding]:
    """In-place mutation of a ``.points`` attribute bypasses the delta tier.

    :class:`~repro.querying.distributed.PartitionedStore` keeps packed base
    columns plus per-partition delta tails in sync with ``store.points``;
    calling ``store.points.append(...)`` (or ``extend``/``insert``/``+=``)
    adds a point the columnar tiers never see, so range/kNN answers silently
    drop it and ``rebuilt()`` stops agreeing with the live store.  All
    admission must flow through ``PartitionedStore.append`` /
    ``append_many``, which route, grow scan boxes, and keep delta accounting
    honest.  The one sanctioned seam — the delta tier's own bookkeeping in
    ``_TwoTierColumns.append`` — carries an inline pragma.
    """
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _R7_MUTATORS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "points"
        ):
            findings.append(
                Finding(
                    module.rel,
                    node.lineno,
                    "R7",
                    f"in-place `.points.{node.func.attr}(...)` bypasses the "
                    "store's delta tier — admit points via "
                    "`PartitionedStore.append` / `append_many` so columnar "
                    "tiers, scan boxes, and compaction accounting stay in sync",
                )
            )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Attribute) and target.attr == "points":
                findings.append(
                    Finding(
                        module.rel,
                        node.lineno,
                        "R7",
                        "augmented assignment on `.points` bypasses the "
                        "store's delta tier — admit points via "
                        "`PartitionedStore.append` / `append_many` so columnar "
                        "tiers, scan boxes, and compaction accounting stay in sync",
                    )
                )
    return findings
