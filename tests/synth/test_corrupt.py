import numpy as np
import pytest

from repro.core import STRecord, STSeries, Point
from repro.synth import (
    CorruptionProfile,
    add_gaussian_noise,
    add_outliers,
    add_sensor_bias,
    delay_arrivals,
    drop_interval,
    drop_points,
    duplicate_records,
    skew_timestamps,
    spike_values,
    stuck_sensor,
)


@pytest.fixture
def series():
    return STSeries("s", Point(0, 0), np.arange(50.0), np.linspace(0, 10, 50))


class TestPositionNoise:
    def test_preserves_timestamps(self, rng, walk):
        noisy = add_gaussian_noise(walk, rng, 5.0)
        assert noisy.times == walk.times

    def test_zero_sigma_identity(self, rng, walk):
        same = add_gaussian_noise(walk, rng, 0.0)
        assert same == walk

    def test_negative_sigma_rejected(self, rng, walk):
        with pytest.raises(ValueError):
            add_gaussian_noise(walk, rng, -1.0)

    def test_noise_magnitude(self, rng, walk):
        noisy = add_gaussian_noise(walk, rng, 10.0)
        errs = [a.distance_to(b) for a, b in zip(walk.points, noisy.points)]
        # Rayleigh mean = sigma * sqrt(pi/2) ~ 12.5.
        assert np.mean(errs) == pytest.approx(12.5, rel=0.25)


class TestOutliers:
    def test_indices_are_truthful(self, rng, walk):
        corrupted, idx = add_outliers(walk, rng, 0.1, magnitude=300)
        for i in idx:
            assert corrupted[i].distance_to(walk[i]) >= 150.0
        clean = set(range(len(walk))) - set(idx)
        for i in clean:
            assert corrupted[i] == walk[i]

    def test_endpoints_spared(self, rng, walk):
        _, idx = add_outliers(walk, rng, 0.5)
        assert 0 not in idx and len(walk) - 1 not in idx

    def test_zero_rate_noop(self, rng, walk):
        corrupted, idx = add_outliers(walk, rng, 0.0)
        assert idx == [] and corrupted == walk

    def test_short_trajectory_noop(self, rng, walk):
        short = walk[0:2]
        corrupted, idx = add_outliers(short, rng, 0.5)
        assert idx == []


class TestDropping:
    def test_drop_rate_roughly_respected(self, rng, walk):
        dropped = drop_points(walk, rng, 0.5)
        assert len(dropped) < len(walk)
        assert 0.3 < 1 - len(dropped) / len(walk) < 0.7

    def test_endpoints_kept(self, rng, walk):
        dropped = drop_points(walk, rng, 0.9)
        assert dropped[0] == walk[0] and dropped[-1] == walk[-1]

    def test_invalid_rate(self, rng, walk):
        with pytest.raises(ValueError):
            drop_points(walk, rng, 1.0)

    def test_drop_interval(self, walk):
        t0, t1 = walk.times[10], walk.times[20]
        out = drop_interval(walk, t0, t1)
        assert all(not (t0 <= p.t <= t1) for p in out)
        assert len(out) == len(walk) - 11


class TestDuplication:
    def test_adds_duplicates(self, rng):
        recs = [STRecord(i, 0, float(i), 1.0, "a") for i in range(20)]
        out = duplicate_records(recs, rng, rate=0.5)
        assert len(out) == 30
        assert all(a.t <= b.t for a, b in zip(out, out[1:]))

    def test_zero_rate(self, rng):
        recs = [STRecord(0, 0, 0.0, 1.0, "a")]
        assert len(duplicate_records(recs, rng, rate=0.0)) == 1


class TestTiming:
    def test_delays_nonnegative(self, rng):
        events = np.arange(10.0)
        arrivals = delay_arrivals(events, rng, 2.0)
        assert (arrivals >= events).all()

    def test_delay_mean(self, rng):
        events = np.zeros(5000)
        arrivals = delay_arrivals(events, rng, 3.0)
        assert np.mean(arrivals) == pytest.approx(3.0, rel=0.1)

    def test_skew_reports_indices(self, rng):
        times = np.arange(100.0)
        skewed, idx = skew_timestamps(times, rng, rate=0.3, max_shift=5.0)
        assert len(idx) == 30
        untouched = sorted(set(range(100)) - set(idx))
        assert np.array_equal(skewed[untouched], times[untouched])

    def test_skew_zero_rate(self, rng):
        times = np.arange(10.0)
        skewed, idx = skew_timestamps(times, rng, rate=0.0)
        assert idx == [] and np.array_equal(skewed, times)


class TestValueFaults:
    def test_spikes_at_reported_indices(self, rng, series):
        spiked, idx = spike_values(series, rng, 0.1, magnitude=20.0)
        assert len(idx) == 5
        for i in idx:
            assert abs(spiked.values[i] - series.values[i]) >= 10.0
        clean = sorted(set(range(50)) - set(idx))
        assert np.array_equal(spiked.values[clean], series.values[clean])

    def test_stuck_sensor_constant_run(self, series):
        stuck = stuck_sensor(series, start=10, length=15)
        assert np.all(stuck.values[10:25] == stuck.values[10])
        assert np.array_equal(stuck.values[:10], series.values[:10])

    def test_stuck_start_validated(self, series):
        with pytest.raises(ValueError):
            stuck_sensor(series, start=100, length=5)

    def test_bias_shift(self, series):
        biased = add_sensor_bias(series, 7.0)
        assert np.allclose(biased.values - series.values, 7.0)


class TestProfile:
    def test_profile_applies_all(self, rng, walk):
        profile = CorruptionProfile(noise_sigma=5, outlier_rate=0.05, drop_rate=0.3)
        corrupted, idx = profile.apply(walk, rng)
        assert len(corrupted) < len(walk)
        assert len(idx) >= 1
