"""Data integration (Sec. 2.2.5): semantic and non-semantic."""

from .attach import (
    EnrichedPoint,
    attach_records,
    attachment_coverage,
    exposure_integral,
)
from .entity_linking import (
    link_entities,
    linking_accuracy,
    signature_similarity,
    st_signature,
)
from .fusion import (
    debias_series,
    estimate_bias,
    fuse_grids,
    fuse_series,
    fusion_gain,
)
from .semantic import (
    Episode,
    StayPoint,
    annotate_with_pois,
    build_semantic_trajectory,
    detect_stay_points,
    stay_detection_scores,
)

__all__ = [
    "EnrichedPoint",
    "attach_records",
    "attachment_coverage",
    "exposure_integral",
    "link_entities",
    "linking_accuracy",
    "signature_similarity",
    "st_signature",
    "debias_series",
    "estimate_bias",
    "fuse_grids",
    "fuse_series",
    "fusion_gain",
    "Episode",
    "StayPoint",
    "annotate_with_pois",
    "build_semantic_trajectory",
    "detect_stay_points",
    "stay_detection_scores",
]
