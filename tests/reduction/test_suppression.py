import numpy as np
import pytest

from repro.reduction import suppress_constant, suppress_linear


@pytest.fixture
def noisy_signal(rng):
    t = np.arange(400.0)
    return t, np.sin(t / 40.0) * 5 + rng.normal(0, 0.1, 400) + 20


class TestConstantSuppression:
    def test_error_bound_holds(self, noisy_signal):
        _, vals = noisy_signal
        tol = 0.5
        res = suppress_constant(vals, tol)
        assert res.max_error(vals) <= tol + 1e-9

    def test_messages_saved(self, noisy_signal):
        _, vals = noisy_signal
        res = suppress_constant(vals, 0.5)
        assert res.message_ratio() < 0.5

    def test_constant_signal_one_message(self):
        res = suppress_constant(np.full(50, 7.0), 0.1)
        assert res.messages_sent == 1

    def test_zero_tolerance_sends_on_every_change(self):
        vals = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
        res = suppress_constant(vals, 0.0)
        assert res.messages_sent == 3

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            suppress_constant(np.zeros(3), -1.0)

    def test_empty(self):
        res = suppress_constant(np.array([]), 1.0)
        assert res.messages_sent == 0

    def test_tolerance_message_tradeoff(self, noisy_signal):
        _, vals = noisy_signal
        tight = suppress_constant(vals, 0.2).messages_sent
        loose = suppress_constant(vals, 2.0).messages_sent
        assert loose < tight


class TestLinearSuppression:
    def test_error_bound_holds(self, noisy_signal):
        t, vals = noisy_signal
        tol = 0.5
        res = suppress_linear(t, vals, tol)
        assert res.max_error(vals) <= tol + 1e-9

    def test_linear_trend_needs_two_messages(self):
        t = np.arange(100.0)
        vals = 0.3 * t + 5.0
        res = suppress_linear(t, vals, 0.01)
        assert res.messages_sent == 2

    def test_constant_predictor_beats_linear_on_noise(self, rng):
        """The tutorial's robustness caveat: on pure noise the linear
        predictor overreacts (slope chases noise) vs the constant one."""
        t = np.arange(500.0)
        vals = rng.normal(0, 1.0, 500) * 0.3 + 10.0
        const_msgs = suppress_constant(vals, 1.0).messages_sent
        lin_msgs = suppress_linear(t, vals, 1.0).messages_sent
        assert const_msgs <= lin_msgs

    def test_linear_beats_constant_on_trend(self):
        t = np.arange(200.0)
        vals = 0.5 * t
        const_msgs = suppress_constant(vals, 1.0).messages_sent
        lin_msgs = suppress_linear(t, vals, 1.0).messages_sent
        assert lin_msgs < const_msgs

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            suppress_linear(np.arange(3.0), np.zeros(2), 1.0)

    def test_reconstruction_matches_sent_points(self, noisy_signal):
        t, vals = noisy_signal
        res = suppress_linear(t, vals, 0.5)
        sent_idx = np.flatnonzero(res.sent_mask)
        assert np.allclose(res.reconstruction[sent_idx], vals[sent_idx])
