"""Decision-making using low-quality SID (Sec. 2.3.3)."""

from .federated import (
    ClientUpdate,
    FederatedClient,
    FederatedServer,
    train_centralized,
    train_federated,
    train_local_only,
)
from .next_location import MarkovNextLocation, evaluate_accuracy, split_stream
from .recommend import (
    NaiveRecommender,
    UncertainCheckinRecommender,
    hit_rate,
)
from .site_selection import (
    PUSiteSelector,
    ranking_quality,
    site_features,
    visits_from_fleet,
)
from .task_assign import (
    Task,
    Worker,
    assign_expected,
    assign_naive,
    expected_completions,
    reach_probability,
    realized_completions,
)
from .traffic import (
    cell_volumes,
    naive_scaling,
    sample_fleet,
    smoothed_inference,
    volume_errors,
)

__all__ = [
    "ClientUpdate",
    "FederatedClient",
    "FederatedServer",
    "train_centralized",
    "train_federated",
    "train_local_only",
    "MarkovNextLocation",
    "evaluate_accuracy",
    "split_stream",
    "NaiveRecommender",
    "UncertainCheckinRecommender",
    "hit_rate",
    "PUSiteSelector",
    "ranking_quality",
    "site_features",
    "visits_from_fleet",
    "Task",
    "Worker",
    "assign_expected",
    "assign_naive",
    "expected_completions",
    "reach_probability",
    "realized_completions",
    "cell_volumes",
    "naive_scaling",
    "sample_fleet",
    "smoothed_inference",
    "volume_errors",
]
