"""Cross-layer integration tests: full DQ pipelines over synthetic worlds.

Each test exercises several subsystems together, matching the tutorial's
storyline: corrupt SID -> quality management -> exploitation.
"""

import numpy as np
import pytest

from repro.analytics import MovementModel, OnlineAnomalyDetector
from repro.cleaning import (
    HMMMapMatcher,
    prediction_outliers,
    recover_route,
    remove_and_repair,
    zscore_outliers,
)
from repro.core import (
    BBox,
    Dimension,
    Pipeline,
    Point,
    Stage,
    Trajectory,
    accuracy_error,
    assess_trajectory,
    consistency_ratio,
    precision_jitter,
    synchronized_error,
)
from repro.localization import kalman_refine
from repro.reduction import compress_trip, decompress_trip, td_tr
from repro.synth import (
    CorruptionProfile,
    RoadNetwork,
    add_gaussian_noise,
    correlated_random_walk,
    fleet,
)


class TestCleaningPipeline:
    """Middleware (Sec. 2.4) end to end: OR -> smoothing on corrupted data."""

    def test_pipeline_recovers_quality(self, rng, box):
        truth = correlated_random_walk(rng, 200, box, speed_mean=5)
        corrupted, _ = CorruptionProfile(
            noise_sigma=6.0, outlier_rate=0.05, outlier_magnitude=200.0, drop_rate=0.0
        ).apply(truth, rng)

        pipeline = Pipeline(
            [
                Stage("outlier-repair", lambda t: remove_and_repair(t, zscore_outliers(t))),
                Stage("kalman", lambda t: kalman_refine(t, 1.0, 6.0)),
            ],
            probes={
                "accuracy": lambda t: accuracy_error(t, truth),
                "jitter": lambda t: precision_jitter(t),
            },
        )
        result = pipeline.run(corrupted)
        raw_err = accuracy_error(corrupted, truth)
        final_err = accuracy_error(result.output, truth)
        assert final_err < raw_err / 2
        # Quality probes recorded per stage and improving monotonically.
        series = [v for _, v in result.metric_series("accuracy")]
        assert series[-1] <= series[0]

    def test_ablation_attributes_gains(self, rng, box):
        truth = correlated_random_walk(rng, 200, box, speed_mean=5)
        corrupted, _ = CorruptionProfile(
            noise_sigma=6.0, outlier_rate=0.06, outlier_magnitude=250.0, drop_rate=0.0
        ).apply(truth, rng)
        pipeline = Pipeline(
            [
                Stage("outlier-repair", lambda t: remove_and_repair(t, zscore_outliers(t))),
                Stage("kalman", lambda t: kalman_refine(t, 1.0, 6.0)),
            ]
        )
        runs = pipeline.run_ablations(corrupted)
        full_err = accuracy_error(runs["full"].output, truth)
        # Dropping either stage should not beat the full pipeline by much.
        for skipped, res in runs.items():
            if skipped == "full":
                continue
            assert accuracy_error(res.output, truth) >= full_err - 1.0


class TestVehiclePipeline:
    """Road-network stack: generate -> corrupt -> match -> recover -> compress."""

    def test_match_recover_compress_roundtrip(self, rng):
        net = RoadNetwork.grid(6, 6, 250.0)
        route = net.random_route(rng, min_edges=9)
        truth = net.trajectory_along_path(route, speed=12.0, interval=1.0)
        observed = add_gaussian_noise(truth.downsample(5), rng, 10.0)

        matcher = HMMMapMatcher(net, emission_sigma=12, candidate_radius=80)
        recovered = recover_route(net, observed, matcher)
        assert synchronized_error(truth, recovered) < synchronized_error(truth, observed)

        matched_route = matcher.match(observed).route
        usable_route = matched_route if len(matched_route) >= 2 else route
        trip = compress_trip(net, usable_route, recovered, epsilon=10.0)
        restored = decompress_trip(net, trip)
        assert trip.byte_ratio() > 3.0
        assert len(restored) >= 2

    def test_simplify_then_assess(self, rng, box):
        truth = correlated_random_walk(rng, 400, box, speed_mean=6)
        simplified = td_tr(truth, 10.0)
        rep = assess_trajectory(simplified, truth=truth)
        # Reduction trades volume for sparsity but keeps accuracy bounded.
        assert rep[Dimension.DATA_VOLUME] < len(truth)
        assert rep[Dimension.ACCURACY] <= 10.0 + 1e-6


class TestAnalyticsOnCleanedData:
    """Cleaning improves downstream analysis (the business-layer payoff)."""

    def test_anomaly_detector_on_refined_fleet(self, rng):
        box = BBox(0, 0, 800, 800)
        normal = [
            correlated_random_walk(rng, 60, box, speed_mean=5, turn_sigma=0.15)
            for _ in range(25)
        ]
        model = MovementModel(box, 80.0).fit(normal)
        det = OnlineAnomalyDetector(model, window=4)
        det.calibrate(normal, 0.999)

        # A noisy-but-normal trip: cleaning should reduce false alarms.
        fresh = correlated_random_walk(rng, 60, box, speed_mean=5, turn_sigma=0.15)
        noisy = add_gaussian_noise(fresh, rng, 30.0)
        cleaned = kalman_refine(noisy, 1.0, 30.0)
        noisy_score = max(det.windowed_scores(noisy))
        clean_score = max(det.windowed_scores(cleaned))
        assert clean_score <= noisy_score

    def test_quality_report_drives_routing(self, rng, box):
        """DQ-aware task planning: route data to cleaning only when the
        report says so."""
        truth = correlated_random_walk(rng, 150, box, speed_mean=5)
        noisy = add_gaussian_noise(truth, rng, 20.0)

        def maybe_clean(t: Trajectory) -> Trajectory:
            rep = assess_trajectory(t, max_speed=15.0)
            if rep[Dimension.PRECISION] > 5.0 or rep[Dimension.CONSISTENCY] < 0.9:
                return kalman_refine(t, 1.0, 20.0)
            return t

        routed_clean = maybe_clean(truth)
        routed_noisy = maybe_clean(noisy)
        assert routed_clean == truth  # clean data passes through untouched
        assert accuracy_error(routed_noisy, truth) < accuracy_error(noisy, truth)
