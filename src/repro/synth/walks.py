"""Moving-object generators.

Ground-truth motion processes for the planar world.  They expose the SID
characteristics the tutorial's Table 1 builds on: *Markovian* headings,
*varying smoothly* positions, and stop episodes for semantic annotation.
All generators are deterministic given a seeded ``numpy`` Generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.geometry import BBox, Point
from ..core.trajectory import Trajectory, TrajectoryPoint


def _reflect(value: float, lo: float, hi: float) -> float:
    """Reflect ``value`` into ``[lo, hi]`` (billiard boundary)."""
    span = hi - lo
    if span <= 0:
        return lo
    v = (value - lo) % (2.0 * span)
    return lo + (span - abs(v - span))


def correlated_random_walk(
    rng: np.random.Generator,
    n_points: int,
    bbox: BBox,
    start: Point | None = None,
    speed_mean: float = 10.0,
    speed_sigma: float = 2.0,
    turn_sigma: float = 0.3,
    interval: float = 1.0,
    object_id: str = "obj",
) -> Trajectory:
    """A Markovian correlated random walk (heading persists, speed wanders).

    This is the canonical ground-truth motion model: heading evolves by
    Gaussian turns (Markovian characteristic) and position varies smoothly.
    The walk reflects off the bbox borders.
    """
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    if start is None:
        start = Point(
            rng.uniform(bbox.min_x, bbox.max_x), rng.uniform(bbox.min_y, bbox.max_y)
        )
    heading = rng.uniform(-math.pi, math.pi)
    x, y = start.x, start.y
    points = [TrajectoryPoint(x, y, 0.0)]
    for i in range(1, n_points):
        heading += rng.normal(0.0, turn_sigma)
        speed = max(0.0, rng.normal(speed_mean, speed_sigma))
        x += speed * interval * math.cos(heading)
        y += speed * interval * math.sin(heading)
        nx = _reflect(x, bbox.min_x, bbox.max_x)
        ny = _reflect(y, bbox.min_y, bbox.max_y)
        if nx != x or ny != y:
            # Bounce: keep position legal and flip heading accordingly.
            heading += math.pi / 2.0
            x, y = nx, ny
        points.append(TrajectoryPoint(x, y, i * interval))
    return Trajectory(points, object_id)


def waypoint_walk(
    rng: np.random.Generator,
    n_waypoints: int,
    bbox: BBox,
    speed: float = 10.0,
    interval: float = 1.0,
    pause_time: float = 0.0,
    object_id: str = "obj",
) -> Trajectory:
    """Random-waypoint motion: straight legs between uniform waypoints.

    With ``pause_time > 0`` the object dwells at each waypoint, producing
    the stop episodes that semantic annotation (Sec. 2.2.5) extracts.
    """
    if n_waypoints < 2:
        raise ValueError("need at least 2 waypoints")
    waypoints = [
        Point(rng.uniform(bbox.min_x, bbox.max_x), rng.uniform(bbox.min_y, bbox.max_y))
        for _ in range(n_waypoints)
    ]
    points: list[TrajectoryPoint] = []
    t = 0.0
    pos = waypoints[0]
    points.append(TrajectoryPoint(pos.x, pos.y, t))
    for target in waypoints[1:]:
        dist = pos.distance_to(target)
        travel = dist / speed if speed > 0 else 0.0
        n_steps = max(1, int(math.ceil(travel / interval)))
        for step in range(1, n_steps + 1):
            frac = min(1.0, step / n_steps)
            p = Point(pos.x + (target.x - pos.x) * frac, pos.y + (target.y - pos.y) * frac)
            t += interval
            points.append(TrajectoryPoint(p.x, p.y, t))
        pos = target
        if pause_time > 0:
            n_pause = int(pause_time / interval)
            for _ in range(n_pause):
                t += interval
                # Tiny jitter so the trajectory stays strictly time-ordered
                # but visually dwells (position constant).
                points.append(TrajectoryPoint(pos.x, pos.y, t))
    return Trajectory(points, object_id)


@dataclass(frozen=True)
class StopSegment:
    """Ground-truth dwell episode: index span and the dwell location."""

    start_index: int
    end_index: int
    location: Point


def stop_and_go_walk(
    rng: np.random.Generator,
    bbox: BBox,
    n_stops: int = 3,
    move_points: int = 30,
    stop_points: int = 15,
    speed: float = 10.0,
    stop_jitter: float = 1.0,
    interval: float = 1.0,
    object_id: str = "obj",
) -> tuple[Trajectory, list[StopSegment]]:
    """A walk alternating travel legs and noisy dwells, with labeled stops.

    Returns the trajectory and the list of ground-truth stop segments, the
    labels for evaluating stay-point detection / semantic annotation.
    """
    points: list[TrajectoryPoint] = []
    stops: list[StopSegment] = []
    t = 0.0
    pos = Point(rng.uniform(bbox.min_x, bbox.max_x), rng.uniform(bbox.min_y, bbox.max_y))
    for stop_i in range(n_stops):
        target = Point(
            rng.uniform(bbox.min_x, bbox.max_x), rng.uniform(bbox.min_y, bbox.max_y)
        )
        for step in range(move_points):
            frac = (step + 1) / move_points
            p = Point(pos.x + (target.x - pos.x) * frac, pos.y + (target.y - pos.y) * frac)
            points.append(TrajectoryPoint(p.x, p.y, t))
            t += interval
        pos = target
        start_idx = len(points)
        for _ in range(stop_points):
            points.append(
                TrajectoryPoint(
                    pos.x + rng.normal(0, stop_jitter),
                    pos.y + rng.normal(0, stop_jitter),
                    t,
                )
            )
            t += interval
        stops.append(StopSegment(start_idx, len(points) - 1, pos))
    return Trajectory(points, object_id), stops


def fleet(
    rng: np.random.Generator,
    n_objects: int,
    n_points: int,
    bbox: BBox,
    speed_mean: float = 10.0,
    **kwargs,
) -> list[Trajectory]:
    """A fleet of independent correlated random walks, ids ``obj-0..n-1``."""
    return [
        correlated_random_walk(
            rng,
            n_points,
            bbox,
            speed_mean=speed_mean,
            object_id=f"obj-{i}",
            **kwargs,
        )
        for i in range(n_objects)
    ]
