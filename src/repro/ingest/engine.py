"""Sharded streaming ingestion engine with bounded queues and backpressure.

:class:`IngestEngine` is the middleware front door: producers ``offer``
readings, a stable hash of the sensor id routes each reading to one of N
shard workers (so one sensor's stream is always processed in order by a
single worker), and every reading runs through a per-sensor chain of
quality gates (:mod:`repro.ingest.gates`) before admission to a store.

Each shard has a bounded queue; when a queue fills, the engine applies one
of three explicit backpressure policies:

* ``block`` — the producer waits (lossless, producer-paced),
* ``drop_oldest`` — the oldest queued reading is evicted (freshness wins),
* ``reject`` — the new reading is refused and ``offer`` returns False
  (caller-visible load shedding).

All admissions, repairs, quarantines, drops, and rejections are accounted
in the engine's :class:`~repro.ingest.registry.QualityRegistry`, whose
conservation invariant (``offered == admitted + quarantined + dropped +
rejected``) holds after :meth:`IngestEngine.close`.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from typing import Callable, Iterable, Sequence

from ..core.stid import STRecord
from ..core.trajectory import TrajectoryPoint
from ..obs import OBS
from .events import Decision, GateOutcome, IngestEvent
from .gates import StreamingGate, flush_chain, run_chain
from .registry import IngestCounters, QualityRegistry

#: Recognized backpressure policies for full shard queues.
POLICIES = ("block", "drop_oldest", "reject")

_SENTINEL = object()

#: Shared no-op context for disabled-observability paths.
_NULL = nullcontext()


class InMemoryStore:
    """Thread-safe append-only store of admitted records (the default sink)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[STRecord] = []

    def write(self, event: IngestEvent) -> None:
        """Persist one admitted reading."""
        record = event.to_record()
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[STRecord]:
        """Copy of everything admitted so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def by_sensor(self) -> dict[str, list[STRecord]]:
        """Admitted records grouped by producing sensor."""
        out: dict[str, list[STRecord]] = {}
        for r in self.records:
            out.setdefault(r.source, []).append(r)
        return out


class LatencyStore:
    """Store decorator emulating a backend with fixed per-write latency.

    Real sinks (time-series databases, message logs) cost wall time per
    write; wrapping :class:`InMemoryStore` in this decorator makes the
    sharding benchmark honest about where streaming ingestion actually
    spends its time.
    """

    def __init__(self, inner, write_latency: float) -> None:
        if write_latency < 0:
            raise ValueError("write_latency must be non-negative")
        self.inner = inner
        self.write_latency = write_latency

    def write(self, event: IngestEvent) -> None:
        """Persist one reading after the emulated backend delay."""
        if self.write_latency > 0:
            time.sleep(self.write_latency)
        self.inner.write(event)

    def __len__(self) -> int:
        return len(self.inner)


def shard_of(sensor_id: str, n_shards: int) -> int:
    """Stable shard assignment: CRC32 of the sensor id modulo shard count."""
    return zlib.crc32(sensor_id.encode("utf-8")) % n_shards


class IngestEngine:
    """Hash-sharded streaming ingestion with per-sensor quality gates.

    ``gate_factories`` build a fresh gate chain per sensor (gates are
    stateful, so they cannot be shared); ``store`` receives every admitted
    event (default: a new :class:`InMemoryStore`); ``registry`` collects
    online stats and accounting (default: a new
    :class:`~repro.ingest.registry.QualityRegistry`); ``on_admit`` is an
    optional hook called with every gate-admitted event *before* its store
    write — the seam the serving layer uses to bump partition quality
    epochs (:func:`repro.serve.ingest_epoch_hook`).

    The engine is a context manager: leaving the ``with`` block performs a
    graceful :meth:`close` (drain queues, flush gate buffers, join workers).
    """

    def __init__(
        self,
        n_shards: int = 4,
        gate_factories: Sequence[Callable[[], StreamingGate]] = (),
        registry: QualityRegistry | None = None,
        store=None,
        queue_size: int = 1024,
        policy: str = "block",
        quarantine_store=None,
        on_admit: Callable[[IngestEvent], None] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.n_shards = n_shards
        self.policy = policy
        self.registry = registry if registry is not None else QualityRegistry()
        self.store = store if store is not None else InMemoryStore()
        self.quarantine_store = quarantine_store
        self.on_admit = on_admit
        self._gate_factories = list(gate_factories)
        self._queues: list[queue.Queue] = [queue.Queue(maxsize=queue_size) for _ in range(n_shards)]
        self._chains: list[dict[str, list[StreamingGate]]] = [{} for _ in range(n_shards)]
        self._latencies: list[list[float]] = [[] for _ in range(n_shards)]
        self._processed: list[int] = [0] * n_shards
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=n_shards, thread_name_prefix="ingest-shard"
        )
        self._futures: list[Future] = [
            self._executor.submit(self._worker, i) for i in range(n_shards)
        ]

    # -- producer side -----------------------------------------------------------

    def offer(self, event: IngestEvent) -> bool:
        """Route one reading to its shard, applying the backpressure policy.

        Returns True when the reading entered a shard queue, False when it
        was rejected (``reject`` policy with a full queue).
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        obs_on = OBS.enabled
        self.registry.record_offer()
        if obs_on:
            OBS.metrics.inc("repro_ingest_offered_total")
        q = self._queues[shard_of(event.sensor_id, self.n_shards)]
        if self.policy == "block":
            if obs_on and q.full():
                OBS.metrics.inc("repro_ingest_backpressure_total", (("policy", "block"),))
            q.put(event)
            return True
        if self.policy == "reject":
            try:
                q.put_nowait(event)
                return True
            except queue.Full:
                self.registry.record_rejected()
                if obs_on:
                    OBS.metrics.inc("repro_ingest_backpressure_total", (("policy", "reject"),))
                return False
        # drop_oldest: evict from the head until the new reading fits
        while True:
            try:
                q.put_nowait(event)
                return True
            except queue.Full:
                try:
                    victim = q.get_nowait()
                except queue.Empty:
                    continue  # a worker drained it first; retry the put
                if victim is not _SENTINEL:
                    self.registry.record_dropped()
                    if obs_on:
                        OBS.metrics.inc(
                            "repro_ingest_backpressure_total", (("policy", "drop_oldest"),)
                        )
                else:  # never evict the shutdown marker
                    q.put(victim)

    def offer_record(self, record: STRecord, arrival_time: float | None = None) -> bool:
        """Offer one STID record (see :meth:`offer`)."""
        return self.offer(IngestEvent.from_record(record, arrival_time))

    def offer_point(
        self,
        sensor_id: str,
        point: TrajectoryPoint,
        arrival_time: float | None = None,
    ) -> bool:
        """Offer one trajectory sample (see :meth:`offer`)."""
        return self.offer(IngestEvent.from_point(sensor_id, point, arrival_time=arrival_time))

    def offer_many(self, events: Iterable[IngestEvent]) -> int:
        """Offer a batch; returns how many were accepted into queues."""
        return sum(1 for ev in events if self.offer(ev))

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> IngestCounters:
        """Graceful shutdown: drain queues, flush gate buffers, join workers.

        Returns the final accounting counters (conservation holds: every
        offered event is admitted, quarantined, dropped, or rejected).
        """
        if not self._closed:
            self._closed = True
            for q in self._queues:
                q.put(_SENTINEL)
            for future in self._futures:
                future.result()  # re-raises worker errors
            self._executor.shutdown(wait=True)
        return self.registry.counters_snapshot()

    def __enter__(self) -> "IngestEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observability -----------------------------------------------------------

    def gate_latencies(self) -> list[float]:
        """Per-event gate-chain latencies (seconds) across all shards."""
        out: list[float] = []
        for shard in self._latencies:
            out.extend(shard)
        return out

    def processed_per_shard(self) -> list[int]:
        """How many readings each shard worker has processed."""
        return list(self._processed)

    # -- shard workers -----------------------------------------------------------

    def _worker(self, shard: int) -> None:
        q = self._queues[shard]
        chains = self._chains[shard]
        with OBS.tracer.span("ingest.shard", shard=shard) if OBS.enabled else _NULL:
            while True:
                item = q.get()
                if item is _SENTINEL:
                    break
                self._process(shard, chains, item)
            for gates in chains.values():
                for outcome in flush_chain(gates):
                    self._settle(outcome)

    def _process(self, shard: int, chains: dict[str, list[StreamingGate]], event: IngestEvent) -> None:
        self.registry.observe(event)
        gates = chains.get(event.sensor_id)
        if gates is None:
            gates = [factory() for factory in self._gate_factories]
            chains[event.sensor_id] = gates
        start = time.perf_counter()
        outcomes = run_chain(gates, event)
        elapsed = time.perf_counter() - start
        self._latencies[shard].append(elapsed)
        self._processed[shard] += 1
        if OBS.enabled:
            OBS.metrics.observe("repro_ingest_gate_seconds", (("shard", str(shard)),), elapsed)
        for outcome in outcomes:
            self._settle(outcome)

    def _settle(self, outcome: GateOutcome) -> None:
        self.registry.record_outcome(outcome)
        if OBS.enabled:
            OBS.metrics.inc(
                "repro_ingest_gate_outcomes_total",
                (("decision", outcome.decision.value), ("gate", outcome.gate or "none")),
            )
        if outcome.decision is Decision.QUARANTINE:
            if self.quarantine_store is not None:
                self.quarantine_store.write(outcome.event)
        else:
            # The admit hook fires BEFORE the store write: downstream caches
            # keyed on quality epochs (repro.serve) must observe the
            # invalidation no later than the write becomes readable.
            if self.on_admit is not None:
                self.on_admit(outcome.event)
            self.store.write(outcome.event)
