"""Thread-safe registry of live per-sensor quality state and accounting.

The registry is the read side of the ingestion engine: shard workers fold
every incoming reading into per-sensor :class:`OnlineSensorStats` (or
windowed variants) and record every gate decision, while monitoring code
snapshots :class:`~repro.core.quality.QualityReport` objects — the *same*
report type, dimensions, and ``HIGH_IS_BAD`` polarity conventions the batch
metrics in :mod:`repro.core.quality` produce, so dashboards and the Table 1
benchmark can read live and batch quality identically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Mapping

from ..core.quality import Dimension, QualityReport
from .events import Decision, GateOutcome, IngestEvent
from .online_stats import OnlineSensorStats


@dataclass
class IngestCounters:
    """Conservation accounting for an ingestion run.

    After a clean shutdown every offered event is accounted for exactly
    once: ``offered == admitted + quarantined + dropped + rejected``
    (``repaired`` is the subset of ``admitted`` that a gate modified).
    """

    offered: int = 0
    admitted: int = 0
    repaired: int = 0
    quarantined: int = 0
    dropped: int = 0  # evicted by the drop_oldest backpressure policy
    rejected: int = 0  # refused by the reject backpressure policy

    def accounted(self) -> int:
        """Events with a terminal fate (everything but in-flight ones)."""
        return self.admitted + self.quarantined + self.dropped + self.rejected

    def conserved(self) -> bool:
        """True when no event is unaccounted for (valid after shutdown)."""
        return self.offered == self.accounted()

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for JSON summaries."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "dropped": self.dropped,
            "rejected": self.rejected,
        }


class _SensorEntry:
    """One sensor's stats plus its lock (updates come from one shard only,
    but snapshots may race with updates)."""

    __slots__ = ("stats", "lock", "decisions")

    def __init__(self, stats) -> None:
        self.stats = stats
        self.lock = threading.Lock()
        self.decisions = {Decision.ADMIT: 0, Decision.REPAIR: 0, Decision.QUARANTINE: 0}


class QualityRegistry:
    """Live per-sensor DQ metrics plus engine-wide decision accounting.

    ``stats_factory`` builds the per-sensor accumulator — by default a
    cumulative :class:`OnlineSensorStats`; pass e.g.
    ``lambda: WindowedSensorStats(300.0, expected_interval=5.0)`` for a
    sliding horizon.  All methods are safe to call from any thread.
    """

    def __init__(self, stats_factory: Callable[[], object] | None = None) -> None:
        self._stats_factory = stats_factory or OnlineSensorStats
        self._sensors: dict[str, _SensorEntry] = {}
        self._registry_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.counters = IngestCounters()

    # -- write side (shard workers) -------------------------------------------

    def observe(self, event: IngestEvent) -> None:
        """Fold one raw incoming reading into its sensor's online stats."""
        entry = self._entry(event.sensor_id)
        with entry.lock:
            entry.stats.update(event)

    def record_offer(self, n: int = 1) -> None:
        """Count events offered to the engine (before any gating)."""
        with self._counter_lock:
            self.counters.offered += n

    def record_outcome(self, outcome: GateOutcome) -> None:
        """Count one terminal gate decision for its sensor and globally."""
        entry = self._entry(outcome.event.sensor_id)
        with entry.lock:
            entry.decisions[outcome.decision] += 1
        with self._counter_lock:
            if outcome.decision is Decision.QUARANTINE:
                self.counters.quarantined += 1
            else:
                self.counters.admitted += 1
                if outcome.decision is Decision.REPAIR:
                    self.counters.repaired += 1

    def record_dropped(self, n: int = 1) -> None:
        """Count events evicted under the ``drop_oldest`` policy."""
        with self._counter_lock:
            self.counters.dropped += n

    def record_rejected(self, n: int = 1) -> None:
        """Count events refused under the ``reject`` policy."""
        with self._counter_lock:
            self.counters.rejected += n

    # -- read side (monitoring) ------------------------------------------------

    @property
    def sensor_ids(self) -> list[str]:
        """Sensors seen so far (sorted for stable output)."""
        with self._registry_lock:
            return sorted(self._sensors)

    def snapshot(self, sensor_id: str, now: float | None = None) -> QualityReport:
        """One sensor's live quality as a batch-compatible report.

        Raises :class:`KeyError` for a sensor the registry has never seen —
        reads never create entries, so a typo'd id cannot pollute
        :attr:`sensor_ids` or skew :meth:`aggregate`.
        """
        with self._registry_lock:
            if sensor_id not in self._sensors:
                raise KeyError(sensor_id)
            entry = self._sensors[sensor_id]
        with entry.lock:
            return entry.stats.snapshot(now)

    def snapshot_all(self, now: float | None = None) -> dict[str, QualityReport]:
        """Live reports for every sensor."""
        return {sid: self.snapshot(sid, now) for sid in self.sensor_ids}

    def aggregate(self, now: float | None = None) -> QualityReport:
        """Fleet-level report: per-dimension mean over all sensors.

        The staleness aggregate equals the batch
        :func:`repro.core.quality.staleness` (mean age of each source's
        freshest record); other dimensions are macro-averages.
        """
        sums: dict[Dimension, float] = {}
        counts: dict[Dimension, int] = {}
        for report in self.snapshot_all(now).values():
            for dim, value in report.values.items():
                sums[dim] = sums.get(dim, 0.0) + value
                counts[dim] = counts.get(dim, 0) + 1
        out = QualityReport()
        for dim, total in sums.items():
            if dim is Dimension.DATA_VOLUME:
                out.set(dim, total)  # volume adds up; averaging would hide load
            else:
                out.set(dim, total / counts[dim])
        return out

    def decision_counts(self, sensor_id: str) -> Mapping[Decision, int]:
        """Per-sensor terminal decision tallies (KeyError if never seen)."""
        with self._registry_lock:
            if sensor_id not in self._sensors:
                raise KeyError(sensor_id)
            entry = self._sensors[sensor_id]
        with entry.lock:
            return dict(entry.decisions)

    def counters_snapshot(self) -> IngestCounters:
        """Consistent copy of the global accounting counters."""
        with self._counter_lock:
            return IngestCounters(**self.counters.as_dict())

    # -- internals ---------------------------------------------------------------

    def _entry(self, sensor_id: str) -> _SensorEntry:
        with self._registry_lock:
            entry = self._sensors.get(sensor_id)
            if entry is None:
                entry = _SensorEntry(self._stats_factory())
                self._sensors[sensor_id] = entry
            return entry

