"""Quality-driven processing of out-of-order streams (Sec. 2.3.1, [48]).

IoT transport delays deliver measurements out of event-time order.  A
windowed aggregator must choose *how long to wait*: emitting early keeps
latency low but misses late events (incomplete results); waiting longer
raises latency.  Ji et al. [48] call this quality-driven continuous query
execution.

:class:`WatermarkAggregator` implements the standard watermark buffer:
events are buffered, and a window is finalized when the watermark
(max event time seen minus ``allowed_lateness``) passes its end.  The
completeness/latency trade-off is measured exactly, which is the claim the
tutorial makes for this family.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamEvent:
    """One measurement with its event time and its arrival time."""

    event_time: float
    arrival_time: float
    value: float


class WatermarkClock:
    """Event-time watermark: max event time observed minus allowed lateness.

    The watermark is the standard disorder bound for out-of-order streams:
    once it passes an instant, no further event with a smaller event time is
    expected.  Shared by :class:`WatermarkAggregator` and the streaming
    reordering gate in :mod:`repro.ingest.gates`.
    """

    __slots__ = ("allowed_lateness", "_max_event_time")

    def __init__(self, allowed_lateness: float) -> None:
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        self.allowed_lateness = allowed_lateness
        self._max_event_time = float("-inf")

    @property
    def max_event_time(self) -> float:
        return self._max_event_time

    @property
    def watermark(self) -> float:
        return self._max_event_time - self.allowed_lateness

    def observe(self, event_time: float) -> float:
        """Advance the clock with one event; returns the new watermark."""
        self._max_event_time = max(self._max_event_time, event_time)
        return self.watermark


@dataclass
class WindowResult:
    """A finalized tumbling window."""

    window_start: float
    count: int
    mean: float
    emitted_at: float  # arrival-time instant when the window was closed
    late_drops: int  # events for this window that arrived after it closed


class WatermarkAggregator:
    """Tumbling-window mean over an out-of-order stream.

    ``allowed_lateness`` is the quality knob: watermark = max event time
    observed − allowed_lateness; a window [s, s+w) closes when the
    watermark passes s+w.  Events arriving for an already-closed window are
    counted as dropped (incompleteness).
    """

    def __init__(self, window_size: float, allowed_lateness: float) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        self.window_size = window_size
        self.allowed_lateness = allowed_lateness
        self._buffers: dict[int, list[StreamEvent]] = {}
        self._closed: dict[int, WindowResult] = {}
        self._clock = WatermarkClock(allowed_lateness)
        self.results: list[WindowResult] = []

    def _window_of(self, event_time: float) -> int:
        return int(event_time // self.window_size)

    def offer(self, event: StreamEvent) -> list[WindowResult]:
        """Process one arrival; returns any windows finalized by it."""
        w = self._window_of(event.event_time)
        if w in self._closed:
            self._closed[w].late_drops += 1
        else:
            self._buffers.setdefault(w, []).append(event)
        watermark = self._clock.observe(event.event_time)
        emitted = []
        for win in sorted(self._buffers):
            window_end = (win + 1) * self.window_size
            if window_end <= watermark:
                emitted.append(self._finalize(win, event.arrival_time))
            else:
                break
        return emitted

    def flush(self, at_arrival_time: float) -> list[WindowResult]:
        """End of stream: finalize every remaining window."""
        return [
            self._finalize(win, at_arrival_time) for win in sorted(self._buffers)
        ]

    def _finalize(self, win: int, now: float) -> WindowResult:
        events = self._buffers.pop(win)
        values = [e.value for e in events]
        result = WindowResult(
            window_start=win * self.window_size,
            count=len(values),
            mean=sum(values) / len(values) if values else float("nan"),
            emitted_at=now,
            late_drops=0,
        )
        self._closed[win] = result
        self.results.append(result)
        return result

    # -- quality accounting ------------------------------------------------------

    def completeness(self) -> float:
        """Fraction of events that made it into their window's result."""
        included = sum(r.count for r in self.results)
        dropped = sum(r.late_drops for r in self.results)
        total = included + dropped
        return included / total if total else 1.0

    def mean_result_latency(self) -> float:
        """Mean (emission arrival-time − window end event-time)."""
        if not self.results:
            return 0.0
        lags = [
            r.emitted_at - (r.window_start + self.window_size) for r in self.results
        ]
        return sum(lags) / len(lags)


def run_stream(
    events: list[StreamEvent], window_size: float, allowed_lateness: float
) -> WatermarkAggregator:
    """Feed arrival-ordered events through an aggregator and flush."""
    agg = WatermarkAggregator(window_size, allowed_lateness)
    ordered = sorted(events, key=lambda e: e.arrival_time)
    for e in ordered:
        agg.offer(e)
    if ordered:
        agg.flush(ordered[-1].arrival_time)
    return agg
