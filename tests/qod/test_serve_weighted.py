"""Serving-layer QoD regression tests.

The bug class under guard: the result cache must never serve a weighted
answer computed under an old weight vector.  Weighted requests carry the
``weighted`` flag in their signature AND are keyed on the store's
``weights_epoch``, so ``set_quality_weights`` (or clearing weights)
implicitly invalidates every cached weighted answer while leaving
unweighted entries untouched.
"""

import asyncio

import numpy as np
import pytest

from repro.core import Point
from repro.querying import PartitionedStore, kd_partition, skewed_points
from repro.serve import KnnQueryRequest, QueryService


@pytest.fixture
def store(rng, box):
    pts = skewed_points(rng, 400, box, n_hotspots=3, hotspot_sigma=40.0)
    return PartitionedStore(pts, kd_partition(pts, box, 8))


def knn_requests(n, k=5, weighted=False):
    return [
        KnnQueryRequest(Point(100.0 + 83.0 * i, 140.0 + 61.0 * i), k, weighted=weighted)
        for i in range(n)
    ]


def serve_all(store, requests, **kwargs):
    async def go():
        async with QueryService(store, linger=0.0, **kwargs) as svc:
            return await svc.submit_many(requests), svc.stats

    return asyncio.run(go())


def fresh_weights(rng, store):
    return 0.05 + 0.95 * rng.random(len(store.points))


class TestWeightedServing:
    def test_weighted_results_match_direct_store(self, rng, store):
        store.set_quality_weights(fresh_weights(rng, store))
        reqs = knn_requests(6, weighted=True)
        responses, _ = serve_all(store, reqs)
        for req, resp in zip(reqs, responses):
            assert resp.ok
            assert list(resp.results) == store.knn(req.center, req.k, weighted=True)

    def test_weighted_and_unweighted_cached_separately(self, rng, store):
        store.set_quality_weights(fresh_weights(rng, store))
        plain = knn_requests(4)
        weighted = knn_requests(4, weighted=True)

        async def go():
            async with QueryService(store, linger=0.0) as svc:
                first = await svc.submit_many(plain + weighted)
                second = await svc.submit_many(plain + weighted)  # all hits
                return first, second, svc.stats

        first, second, stats = asyncio.run(go())
        assert stats.cache_hits == 8  # each flavor re-served from its own entry
        assert all(r.cached for r in second)
        assert [r.results for r in first] == [r.results for r in second]
        # the two flavors really ranked differently somewhere
        assert any(
            a.results != b.results for a, b in zip(first[:4], first[4:8])
        )

    def test_regression_weight_update_invalidates_weighted_cache(self, rng, store):
        """Toggling/replacing weights must never serve a stale weighted hit."""
        req = knn_requests(1, k=7, weighted=True)[0]
        store.set_quality_weights(fresh_weights(rng, store))

        async def go():
            async with QueryService(store, linger=0.0) as svc:
                first = await svc.submit(req)
                repeat = await svc.submit(req)  # same epoch: a legitimate hit
                store.set_quality_weights(fresh_weights(rng, store))
                after_update = await svc.submit(req)
                want_updated = store.knn(req.center, req.k, weighted=True)
                store.set_quality_weights(None)
                after_clear = await svc.submit(req)
                return first, repeat, after_update, after_clear, want_updated

        first, repeat, after_update, after_clear, want_updated = asyncio.run(go())
        assert not first.cached and repeat.cached
        assert not after_update.cached, "served stale weighted result"
        assert not after_clear.cached, "clearing weights must also invalidate"
        assert list(after_update.results) == want_updated
        assert list(after_clear.results) == store.knn(req.center, req.k)

    def test_weight_update_leaves_unweighted_cache_alone(self, rng, store):
        reqs = knn_requests(4)

        async def go():
            async with QueryService(store, linger=0.0) as svc:
                await svc.submit_many(reqs)
                store.set_quality_weights(fresh_weights(rng, store))
                return await svc.submit_many(reqs)

        responses = asyncio.run(go())
        assert all(r.cached for r in responses), "unweighted entries over-invalidated"

    def test_weighted_without_installed_weights_serves_plain_ranking(self, store):
        reqs = knn_requests(3, weighted=True)
        responses, _ = serve_all(store, reqs)
        for req, resp in zip(reqs, responses):
            assert list(resp.results) == store.knn(req.center, req.k)

    def test_weighted_epoch_survives_service_restart(self, rng, store):
        """Epoch keying is store state, not service state: a new service
        instance over the same store still distinguishes epochs."""
        req = knn_requests(1, weighted=True)[0]
        store.set_quality_weights(fresh_weights(rng, store))
        first, _ = serve_all(store, [req])
        store.set_quality_weights(np.full(len(store.points), 0.5))
        second, _ = serve_all(store, [req])
        assert first[0].ok and second[0].ok
        assert not second[0].cached
