"""HMM map matching and route recovery — inference-based trajectory UE
(Sec. 2.2.2, [108, 137]).

Noisy, sparsely sampled vehicle trajectories are restored by exploiting the
explicit spatial constraint of the road network:

* :class:`HMMMapMatcher` implements the standard hidden-Markov map matcher
  (Gaussian emission around candidate edge projections; transition favoring
  route distance ≈ straight-line distance) decoded with Viterbi.
* :func:`recover_route` completes the path between consecutive matched
  points with network shortest paths — turning low-sampling-rate input into
  a full route, the "route recovery" task of [108].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.geometry import Point, project_point_to_segment
from ..core.trajectory import Trajectory, TrajectoryPoint
from ..synth.road_network import RoadNetwork


@dataclass(frozen=True)
class MatchedPoint:
    """One matched sample: the chosen edge, projected position, and time."""

    edge: tuple[int, int]
    position: Point
    t: float


@dataclass
class MatchResult:
    """Viterbi-matched samples plus the recovered node-level route."""

    matched: list[MatchedPoint]
    route: list[int]

    def trajectory(self, object_id: str = "") -> Trajectory:
        """The matched samples as a crisp trajectory."""
        return Trajectory(
            [TrajectoryPoint(m.position.x, m.position.y, m.t) for m in self.matched],
            object_id,
        )


class HMMMapMatcher:
    """Hidden-Markov map matcher over a :class:`RoadNetwork`."""

    def __init__(
        self,
        network: RoadNetwork,
        emission_sigma: float = 10.0,
        transition_beta: float = 30.0,
        candidate_radius: float = 50.0,
        max_candidates: int = 6,
    ) -> None:
        if emission_sigma <= 0 or transition_beta <= 0 or candidate_radius <= 0:
            raise ValueError("sigma, beta, radius must be positive")
        self.network = network
        self.emission_sigma = emission_sigma
        self.transition_beta = transition_beta
        self.candidate_radius = candidate_radius
        self.max_candidates = max_candidates
        self._edges = list(network.graph.edges)
        self._build_edge_index()

    def _build_edge_index(self) -> None:
        """Bucket edges into a uniform grid for O(local) candidate lookup.

        Cell size equals the candidate radius; an edge is registered in
        every cell its (slightly expanded) bounding box overlaps, so a 3x3
        neighborhood query is guaranteed to see every edge within the
        radius of any point in the center cell.
        """
        bbox = self.network.bbox().expand(self.candidate_radius)
        self._index_origin = (bbox.min_x, bbox.min_y)
        self._index_cell = self.candidate_radius
        self._edge_cells: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for u, v in self._edges:
            a, b = self.network.positions[u], self.network.positions[v]
            x0 = int((min(a.x, b.x) - bbox.min_x) / self._index_cell)
            x1 = int((max(a.x, b.x) - bbox.min_x) / self._index_cell)
            y0 = int((min(a.y, b.y) - bbox.min_y) / self._index_cell)
            y1 = int((max(a.y, b.y) - bbox.min_y) / self._index_cell)
            for xi in range(x0, x1 + 1):
                for yi in range(y0, y1 + 1):
                    self._edge_cells.setdefault((xi, yi), []).append((u, v))

    # -- candidate generation -------------------------------------------------

    def _nearby_edges(self, p: Point) -> list[tuple[int, int]]:
        """Edges registered in the 3x3 index neighborhood of ``p``."""
        xi = int((p.x - self._index_origin[0]) / self._index_cell)
        yi = int((p.y - self._index_origin[1]) / self._index_cell)
        seen: set[tuple[int, int]] = set()
        out: list[tuple[int, int]] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for edge in self._edge_cells.get((xi + dx, yi + dy), []):
                    if edge not in seen:
                        seen.add(edge)
                        out.append(edge)
        return out

    def _candidates(self, p: Point) -> list[tuple[tuple[int, int], Point, float]]:
        """Edges within the candidate radius: ``(edge, projection, distance)``."""
        cands = []
        for u, v in self._nearby_edges(p):
            a, b = self.network.positions[u], self.network.positions[v]
            q, _ = project_point_to_segment(p, a, b)
            d = p.distance_to(q)
            if d <= self.candidate_radius:
                cands.append(((u, v), q, d))
        cands.sort(key=lambda c: c[2])
        if not cands:
            # Fall back to the globally nearest edge so matching never fails.
            cands = [self.network.snap(p)]
        return cands[: self.max_candidates]

    def _route_distance(self, e1: tuple[int, int], q1: Point, e2: tuple[int, int], q2: Point) -> float:
        """Network distance between projections on two (possibly equal) edges."""
        if set(e1) == set(e2):
            return q1.distance_to(q2)
        best = math.inf
        for n1 in e1:
            for n2 in e2:
                try:
                    d = nx.shortest_path_length(
                        self.network.graph, n1, n2, weight="length"
                    )
                except nx.NetworkXNoPath:
                    continue
                total = q1.distance_to(self.network.positions[n1]) + d + q2.distance_to(
                    self.network.positions[n2]
                )
                best = min(best, total)
        return best

    # -- decoding ----------------------------------------------------------------

    def match(self, traj: Trajectory) -> MatchResult:
        """Viterbi decoding of the most probable edge sequence."""
        if len(traj) == 0:
            raise ValueError("empty trajectory")
        layers = [self._candidates(p.point) for p in traj]
        n = len(traj)
        # log emission: Gaussian in projection distance.
        log_e = [
            np.array([-0.5 * (c[2] / self.emission_sigma) ** 2 for c in layer])
            for layer in layers
        ]
        scores = [log_e[0]]
        back: list[np.ndarray] = []
        for t in range(1, n):
            straight = traj[t - 1].point.distance_to(traj[t].point)
            prev_layer, cur_layer = layers[t - 1], layers[t]
            s = np.full((len(prev_layer), len(cur_layer)), -math.inf)
            for i, (e1, q1, _) in enumerate(prev_layer):
                for j, (e2, q2, _) in enumerate(cur_layer):
                    route = self._route_distance(e1, q1, e2, q2)
                    if not math.isfinite(route):
                        continue
                    # Newson-Krumm: exponential penalty on |route - straight|.
                    s[i, j] = -abs(route - straight) / self.transition_beta
            total = scores[-1][:, None] + s
            back.append(np.argmax(total, axis=0))
            scores.append(total[back[-1], np.arange(len(cur_layer))] + log_e[t])
        # Backtrack.
        path_idx = [int(np.argmax(scores[-1]))]
        for t in range(n - 1, 0, -1):
            path_idx.append(int(back[t - 1][path_idx[-1]]))
        path_idx.reverse()
        matched = [
            MatchedPoint(layers[t][j][0], layers[t][j][1], traj[t].t)
            for t, j in enumerate(path_idx)
        ]
        return MatchResult(matched, self._stitch_route(matched))

    def _stitch_route(self, matched: list[MatchedPoint]) -> list[int]:
        """Connect matched edges into a node-level route via shortest paths."""
        route: list[int] = []
        for prev, cur in zip(matched, matched[1:]):
            if set(prev.edge) == set(cur.edge):
                continue
            start = min(
                prev.edge, key=lambda nid: self.network.positions[nid].distance_to(cur.position)
            )
            end = min(
                cur.edge, key=lambda nid: self.network.positions[nid].distance_to(prev.position)
            )
            try:
                seg = self.network.shortest_path(start, end)
            except nx.NetworkXNoPath:
                seg = [start, end]
            if route and seg and route[-1] == seg[0]:
                seg = seg[1:]
            route.extend(seg)
        return route


def recover_route(
    network: RoadNetwork,
    traj: Trajectory,
    matcher: HMMMapMatcher | None = None,
    speed_hint: float | None = None,
) -> Trajectory:
    """Restore a dense network-constrained trajectory from sparse samples.

    Matches the sparse samples, fills the gaps with network shortest paths,
    and re-times the recovered geometry assuming uniform speed per gap
    (``speed_hint`` overrides the implied speed when provided).
    """
    matcher = matcher or HMMMapMatcher(network)
    result = matcher.match(traj)
    m = result.matched
    if len(m) < 2:
        return result.trajectory(traj.object_id)
    points: list[TrajectoryPoint] = [TrajectoryPoint(m[0].position.x, m[0].position.y, m[0].t)]
    for prev, cur in zip(m, m[1:]):
        # Geometry of the gap: projections plus intermediate route nodes.
        geometry = [prev.position]
        if set(prev.edge) != set(cur.edge):
            start = min(
                prev.edge, key=lambda nid: network.positions[nid].distance_to(cur.position)
            )
            end = min(
                cur.edge, key=lambda nid: network.positions[nid].distance_to(prev.position)
            )
            try:
                seg = network.shortest_path(start, end)
            except nx.NetworkXNoPath:
                seg = []
            geometry.extend(network.positions[nid] for nid in seg)
        geometry.append(cur.position)
        # Distribute time along the geometry proportionally to length.
        total = sum(a.distance_to(b) for a, b in zip(geometry, geometry[1:]))
        dt = cur.t - prev.t
        acc = 0.0
        for a, b in zip(geometry, geometry[1:]):
            acc += a.distance_to(b)
            t = prev.t + (dt * acc / total if total > 0 else dt)
            if t > points[-1].t + 1e-9:
                points.append(TrajectoryPoint(b.x, b.y, min(t, cur.t)))
    return Trajectory(points, traj.object_id)
