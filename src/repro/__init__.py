"""repro — Spatial IoT data quality: management and exploitation.

A library-scale reproduction of the SIGMOD 2022 tutorial *Spatial Data
Quality in the IoT Era* (Li, Tang, Lu, Cheema, Jensen).  Sub-packages follow
the tutorial's taxonomy (Figure 2):

* :mod:`repro.core` — SID data model and DQ dimension metrics (Sec. 2.1),
* :mod:`repro.synth` — synthetic IoT worlds and quality-issue injectors,
* :mod:`repro.localization` — location refinement (Sec. 2.2.1),
* :mod:`repro.cleaning` — uncertainty elimination, outlier removal, fault
  correction (Sec. 2.2.2-2.2.4),
* :mod:`repro.integration` — semantic and non-semantic data integration
  (Sec. 2.2.5),
* :mod:`repro.reduction` — trajectory and STID reduction (Sec. 2.2.6),
* :mod:`repro.querying` — queries over low-quality SID (Sec. 2.3.1),
* :mod:`repro.analytics` — analyses on low-quality SID (Sec. 2.3.2),
* :mod:`repro.decision` — decision-making using low-quality SID (Sec. 2.3.3),
* :mod:`repro.ingest` — streaming ingestion with sharded quality gates and
  online DQ metrics (the Sec. 2.4 middleware, made live),
* :mod:`repro.kernels` — the vectorized compute core: columnar batch
  kernels backing every hot path above,
* :mod:`repro.parallel` — the fleet-scale execution layer: process pools
  with shared-memory columnar handoff behind a backend-agnostic
  ``Executor`` protocol,
* :mod:`repro.obs` — observability: tracing, metrics, and profiling hooks
  across the pipeline, ingest, parallel, and querying layers (off by
  default; a single guard check when disabled),
* :mod:`repro.serve` — the quality-aware serving layer: an asyncio query
  service with request coalescing, admission control, and an
  epoch-invalidated result cache over the partitioned store,
* :mod:`repro.qod` — per-sensor Quality-of-Data scoring (self checks,
  neighbor reference checks, deployment-status detectors) feeding
  quality-weighted kNN, aggregation, and interpolation.
"""

__version__ = "1.0.0"

from . import (
    analytics,
    cleaning,
    core,
    decision,
    indoor,
    ingest,
    integration,
    kernels,
    learning,
    localization,
    obs,
    parallel,
    qod,
    querying,
    reduction,
    serve,
    synth,
)

__all__ = [
    "analytics",
    "cleaning",
    "core",
    "decision",
    "indoor",
    "ingest",
    "integration",
    "kernels",
    "learning",
    "localization",
    "obs",
    "parallel",
    "qod",
    "querying",
    "reduction",
    "serve",
    "synth",
    "__version__",
]
