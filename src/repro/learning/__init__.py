"""Learning paradigms for low-quality SID (the tutorial's technique axis).

Figure 2's *learning paradigm* viewpoint, one working instance each:

* semi-supervised co-training over two sensing views [22]
  (:mod:`cotraining`),
* transfer learning across regions with a proximal source prior [116]
  (:mod:`transfer`),
* multi-task learning with shared + per-task components [83, 132]
  (:mod:`multitask`),
* reinforcement learning for adaptive device sampling [98, 99, 106]
  (:mod:`rl_sampling`).

Unsupervised (EM-style deconvolution) lives in
:mod:`repro.decision.recommend`; federated learning in
:mod:`repro.decision.federated`.
"""

from .cotraining import CentroidClassifier, CoTrainingClassifier
from .multitask import MultiTaskRidge
from .ridge import fit_ridge, predict_ridge, rmse
from .rl_sampling import (
    AdaptiveSamplingAgent,
    SamplingRun,
    regime_switching_signal,
)
from .transfer import TransferRidge, target_only_ridge

__all__ = [
    "CentroidClassifier",
    "CoTrainingClassifier",
    "MultiTaskRidge",
    "fit_ridge",
    "predict_ridge",
    "rmse",
    "AdaptiveSamplingAgent",
    "SamplingRun",
    "regime_switching_signal",
    "TransferRidge",
    "target_only_ridge",
]
