"""Experiment T1 — Table 1 of the paper, measured.

The paper's Table 1 maps SID characteristics to the quality issues they
cause (arrows).  Here each characteristic is *injected* into clean ground
truth and every DQ dimension is *measured* before and after; the test
asserts exactly the arrows the paper claims.

The full injector x metric grid also runs as a parallel fan-out — each
cell is one independent task dispatched through :mod:`repro.parallel` (see
``table1_grid.py``); run ``python benchmarks/bench_table1.py --workers N``
to print the grid computed on ``N`` processes.
"""

import numpy as np

from conftest import print_table

from repro.core import (
    Dimension,
    STRecord,
    assess_trajectory,
    completeness,
    data_volume,
    mean_latency,
    redundancy_ratio,
    staleness,
    time_sparsity,
    value_consistency_ratio,
)
from repro.synth import (
    add_gaussian_noise,
    add_outliers,
    correlated_random_walk,
    delay_arrivals,
    drop_points,
    duplicate_records,
    skew_timestamps,
)

MAX_SPEED = 15.0


def _clean_truth(rng, box):
    return correlated_random_walk(rng, 300, box, speed_mean=5, speed_sigma=1)


def test_row_noisy_and_erroneous(rng, box, benchmark):
    """Noisy/erroneous -> ↓precision, ↓accuracy, ↓consistency."""
    truth = _clean_truth(rng, box)
    noisy, _ = add_outliers(add_gaussian_noise(truth, rng, 15.0), rng, 0.05, 200.0)
    base = assess_trajectory(truth, truth=truth, max_speed=MAX_SPEED)
    rep = benchmark(assess_trajectory, noisy, truth=truth, max_speed=MAX_SPEED)
    degraded = set(rep.degraded_dimensions(base))
    rows = [
        (d.value, base.values.get(d, float("nan")), rep.values.get(d, float("nan")),
         "DEGRADED" if d in degraded else "-")
        for d in (Dimension.PRECISION, Dimension.ACCURACY, Dimension.CONSISTENCY)
    ]
    print_table(
        "T1 row: noisy and erroneous", ["dimension", "clean", "corrupted", "arrow"], rows
    )
    assert {Dimension.PRECISION, Dimension.ACCURACY, Dimension.CONSISTENCY} <= degraded


def test_row_temporally_discrete(rng, box, benchmark):
    """Temporally discrete -> ↑time sparsity, ↓completeness, ↑staleness."""
    truth = _clean_truth(rng, box)
    sparse = benchmark(drop_points, truth, rng, 0.6)
    t0, t1 = truth.times[0], truth.times[-1]
    rows = [
        ("time_sparsity", time_sparsity(truth), time_sparsity(sparse)),
        (
            "completeness",
            completeness(truth.times, t0, t1, 1.0),
            completeness(sparse.times, t0, t1, 1.0),
        ),
    ]
    print_table("T1 row: temporally discrete", ["dimension", "clean", "sparse"], rows)
    assert time_sparsity(sparse) > time_sparsity(truth)
    assert completeness(sparse.times, t0, t1, 1.0) < completeness(truth.times, t0, t1, 1.0)
    # Staleness: the freshest record ages with the sampling gap.
    recs_dense = [STRecord(p.x, p.y, p.t, 0.0, "s") for p in truth]
    recs_sparse = [STRecord(p.x, p.y, p.t, 0.0, "s") for p in sparse if p.t <= t1 - 20]
    assert staleness(recs_sparse, t1) >= staleness(recs_dense, t1)


def test_row_decentralized_heterogeneous(rng, benchmark):
    """Decentralized/heterogeneous -> ↓consistency, ↑latency."""
    times = np.arange(0, 300, 1.0)
    # Two sensors observing the same constant phenomenon, one biased.
    recs_consistent = [STRecord(0, 0, t, 20.0, "a") for t in times] + [
        STRecord(5, 0, t, 20.2, "b") for t in times
    ]
    recs_biased = [STRecord(0, 0, t, 20.0, "a") for t in times] + [
        STRecord(5, 0, t, 28.0, "b") for t in times
    ]
    cons_ok = value_consistency_ratio(recs_consistent, 50.0, 2.0)
    cons_bad = value_consistency_ratio(recs_biased, 50.0, 2.0)
    arrivals = benchmark(delay_arrivals, times, rng, 3.0)
    lat_network = mean_latency(times, arrivals)
    rows = [
        ("consistency", cons_ok, cons_bad),
        ("latency", 0.0, lat_network),
    ]
    print_table(
        "T1 row: decentralized and heterogeneous", ["dimension", "ideal", "IoT"], rows
    )
    assert cons_bad < cons_ok
    assert lat_network > 0.5


def test_row_voluminous_duplicated(rng, benchmark):
    """Voluminous/duplicated -> ↑redundancy, ↑data volume."""
    times = np.arange(0, 200, 1.0)
    recs = [STRecord(0, 0, t, 1.0, "s") for t in times]
    dup = benchmark(duplicate_records, recs, rng, 0.5)
    rows = [
        ("redundancy", redundancy_ratio(recs, 1.0, 0.5), redundancy_ratio(dup, 1.0, 0.5)),
        ("data_volume", data_volume(recs), data_volume(dup)),
    ]
    print_table("T1 row: voluminous and duplicated", ["dimension", "clean", "dup"], rows)
    assert redundancy_ratio(dup, 1.0, 0.5) > redundancy_ratio(recs, 1.0, 0.5)
    assert data_volume(dup) > data_volume(recs)


def test_row_dynamic_clock_disorder(rng, benchmark):
    """Dynamic devices -> disordered timestamps (consistency issue)."""
    times = np.arange(0, 200, 1.0)
    skewed, _ = benchmark(skew_timestamps, times, rng, 0.3, 5.0)
    from repro.cleaning import order_violations

    rows = [("order_violations", order_violations(times), order_violations(skewed))]
    print_table("T1 row: dynamic (clock skew)", ["dimension", "clean", "skewed"], rows)
    assert order_violations(skewed) > 0


def test_grid_parallel_matches_serial():
    """The fan-out grid is identical on 1 and 2 workers, and shows the arrows."""
    from table1_grid import run_grid

    serial = run_grid(2022, workers=1)
    parallel = run_grid(2022, workers=2)
    assert serial == parallel
    rows = [
        (inj, serial[(inj, "precision")], serial[(inj, "accuracy")], serial[(inj, "consistency")])
        for inj in ("clean", "noisy", "noisy+erroneous")
    ]
    print_table("T1 grid (parallel)", ["injector", "precision", "accuracy", "consistency"], rows)
    # The paper's arrows, read off the grid: corruption degrades the columns.
    assert serial[("noisy", "precision")] > serial[("clean", "precision")]
    assert serial[("noisy+erroneous", "accuracy")] > serial[("clean", "accuracy")]
    assert serial[("noisy+erroneous", "consistency")] < serial[("clean", "consistency")]
    assert serial[("temporally-sparse", "completeness")] < serial[("clean", "completeness")]


if __name__ == "__main__":
    import argparse

    from table1_grid import format_grid, run_grid

    parser = argparse.ArgumentParser(description="Parallel Table-1 injector x metric grid")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2022)
    cli = parser.parse_args()
    print(format_grid(run_grid(cli.seed, workers=cli.workers)))
