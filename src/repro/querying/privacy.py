"""Privacy-preserving outsourced spatial queries (Sec. 2.3.1 / 2.4, [117]).

The tutorial's *data decentralization* obstacle: a data owner wants an
untrusted server to answer spatial queries over private locations.
Following the spatial-transformation approach of Yiu et al. [117], the
owner applies a keyed, distance-distorting transformation before upload;
the server indexes and answers queries in the transformed space; the owner
maps candidate results back and refines locally.

:class:`GridShuffleScheme` implements the classical cell-shuffling
transform: space is tiled, tiles are permuted with a secret key (and points
jittered inside tiles deterministically), so global geometry — and thus the
owner's whereabouts — is hidden from the server, while cell-level lookups
stay exact.  The scheme trades *server-side work* for privacy: the server
can only retrieve candidate tiles, never prune by true distance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.geometry import BBox, Point


@dataclass(frozen=True)
class TransformedPoint:
    """A point as stored by the untrusted server (no true geometry)."""

    x: float
    y: float
    item_id: int


class GridShuffleScheme:
    """Keyed cell-permutation transform for private point outsourcing.

    The region is tiled into ``n x n`` cells.  A pseudorandom permutation
    derived from ``key`` maps each true cell to a shuffled cell; a point is
    re-embedded at the same within-cell offset of its shuffled cell.  Range
    queries are answered by transforming the *cells overlapping the query*
    and retrieving their contents; refinement happens client-side.
    """

    def __init__(self, region: BBox, n_cells_per_side: int, key: bytes) -> None:
        if n_cells_per_side < 2:
            raise ValueError("need at least a 2x2 grid")
        if not key:
            raise ValueError("empty key")
        self.region = region
        self.n = n_cells_per_side
        self._cell_w = region.width / self.n
        self._cell_h = region.height / self.n
        self._perm = self._keyed_permutation(key)
        self._inv = np.argsort(self._perm)

    def _keyed_permutation(self, key: bytes) -> np.ndarray:
        seed = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        rng = np.random.default_rng(seed)
        return rng.permutation(self.n * self.n)

    # -- coordinate maps -------------------------------------------------------

    def _cell_of(self, p: Point) -> int:
        xi = min(self.n - 1, max(0, int((p.x - self.region.min_x) / self._cell_w)))
        yi = min(self.n - 1, max(0, int((p.y - self.region.min_y) / self._cell_h)))
        return yi * self.n + xi

    def _cell_origin(self, cell: int) -> tuple[float, float]:
        yi, xi = divmod(cell, self.n)
        return (
            self.region.min_x + xi * self._cell_w,
            self.region.min_y + yi * self._cell_h,
        )

    def transform(self, p: Point, item_id: int) -> TransformedPoint:
        """Owner-side: encode a private point for upload."""
        cell = self._cell_of(p)
        ox, oy = self._cell_origin(cell)
        # Points exactly on the region's max border clamp into the last
        # cell; keep their offset strictly inside the cell so the inverse
        # map resolves the same (shuffled) cell.
        dx = min(p.x - ox, self._cell_w * (1.0 - 1e-12))
        dy = min(p.y - oy, self._cell_h * (1.0 - 1e-12))
        tx_cell = int(self._perm[cell])
        nx, ny = self._cell_origin(tx_cell)
        return TransformedPoint(nx + dx, ny + dy, item_id)

    def recover(self, tp: TransformedPoint) -> Point:
        """Owner-side: decode a stored point back to true coordinates."""
        shuffled_cell = self._cell_of(Point(tp.x, tp.y))
        true_cell = int(self._inv[shuffled_cell])
        sx, sy = self._cell_origin(shuffled_cell)
        ox, oy = self._cell_origin(true_cell)
        return Point(ox + (tp.x - sx), oy + (tp.y - sy))

    def query_cells(self, center: Point, radius: float) -> list[int]:
        """Owner-side: the *transformed* cell ids the server must fetch."""
        x0 = int((center.x - radius - self.region.min_x) / self._cell_w)
        x1 = int((center.x + radius - self.region.min_x) / self._cell_w)
        y0 = int((center.y - radius - self.region.min_y) / self._cell_h)
        y1 = int((center.y + radius - self.region.min_y) / self._cell_h)
        cells = []
        for yi in range(max(0, y0), min(self.n - 1, y1) + 1):
            for xi in range(max(0, x0), min(self.n - 1, x1) + 1):
                cells.append(int(self._perm[yi * self.n + xi]))
        return cells


class OutsourcedStore:
    """The untrusted server: stores transformed points, serves cell fetches.

    It never sees the key, true coordinates, or the query geometry — only
    opaque cell ids, so its view of the data is a bag of shuffled tiles.
    """

    def __init__(self, n_cells_per_side: int, region: BBox) -> None:
        self.n = n_cells_per_side
        self.region = region
        self._cell_w = region.width / self.n
        self._cell_h = region.height / self.n
        self._cells: dict[int, list[TransformedPoint]] = {}
        self.cells_fetched = 0

    def upload(self, points: list[TransformedPoint]) -> None:
        """Index transformed points by their (shuffled) cell."""
        for tp in points:
            xi = min(self.n - 1, max(0, int((tp.x - self.region.min_x) / self._cell_w)))
            yi = min(self.n - 1, max(0, int((tp.y - self.region.min_y) / self._cell_h)))
            self._cells.setdefault(yi * self.n + xi, []).append(tp)

    def fetch_cells(self, cell_ids: list[int]) -> list[TransformedPoint]:
        """Return the transformed points stored in the requested cells."""
        self.cells_fetched += len(cell_ids)
        out: list[TransformedPoint] = []
        for c in cell_ids:
            out.extend(self._cells.get(c, []))
        return out


class PrivateQueryClient:
    """Owner-side protocol driver: upload, query, refine."""

    def __init__(self, scheme: GridShuffleScheme, store: OutsourcedStore) -> None:
        self.scheme = scheme
        self.store = store
        self._truth: dict[int, Point] = {}

    def upload(self, points: list[Point]) -> None:
        """Transform and upload the owner's private points."""
        self._truth = dict(enumerate(points))
        self.store.upload(
            [self.scheme.transform(p, i) for i, p in enumerate(points)]
        )

    def range_query(self, center: Point, radius: float) -> list[int]:
        """Exact private range query: fetch candidate tiles, refine locally."""
        candidates = self.store.fetch_cells(self.scheme.query_cells(center, radius))
        hits = []
        for tp in candidates:
            true_point = self.scheme.recover(tp)
            if true_point.distance_to(center) <= radius:
                hits.append(tp.item_id)
        return hits


def distance_leakage(
    scheme: GridShuffleScheme, points: list[Point], rng: np.random.Generator, n_pairs: int = 500
) -> float:
    """Privacy proxy: |corr| between true and transformed pair distances.

    Near 0 means the server's view of pairwise geometry carries (almost) no
    information about true proximity beyond same-cell co-location.
    """
    if len(points) < 2:
        return 0.0
    transformed = [scheme.transform(p, i) for i, p in enumerate(points)]
    true_d, tx_d = [], []
    for _ in range(n_pairs):
        i, j = rng.choice(len(points), size=2, replace=False)
        true_d.append(points[int(i)].distance_to(points[int(j)]))
        a, b = transformed[int(i)], transformed[int(j)]
        tx_d.append(float(np.hypot(a.x - b.x, a.y - b.y)))
    if np.std(true_d) < 1e-12 or np.std(tx_d) < 1e-12:
        return 0.0
    return float(abs(np.corrcoef(true_d, tx_d)[0, 1]))
