import math

import numpy as np
import pytest

from repro.core.geometry import (
    BBox,
    Point,
    angle_difference,
    bearing,
    convex_hull_area,
    euclidean,
    haversine_m,
    interpolate,
    pairwise_distances,
    perpendicular_distance,
    point_along_polyline,
    point_segment_distance,
    polyline_length,
    project_point_to_segment,
    synchronized_euclidean_distance,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translate(self):
        assert Point(1, 1).translate(2, -1) == Point(3, 0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_iter_unpack(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    def test_as_array(self):
        assert np.allclose(Point(1.5, -2.5).as_array(), [1.5, -2.5])

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5  # type: ignore[misc]


class TestBBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BBox(10, 0, 0, 10)

    def test_from_points(self):
        b = BBox.from_points([Point(1, 5), Point(-2, 3), Point(4, 4)])
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (-2, 3, 4, 5)

    def test_from_points_empty(self):
        with pytest.raises(ValueError):
            BBox.from_points([])

    def test_contains_border(self):
        b = BBox(0, 0, 10, 10)
        assert b.contains(Point(0, 10))
        assert not b.contains(Point(-0.1, 5))

    def test_intersects(self):
        a = BBox(0, 0, 10, 10)
        assert a.intersects(BBox(10, 10, 20, 20))  # touching counts
        assert not a.intersects(BBox(11, 11, 20, 20))

    def test_union(self):
        u = BBox(0, 0, 1, 1).union(BBox(5, 5, 6, 6))
        assert (u.min_x, u.max_y) == (0, 6)

    def test_expand(self):
        e = BBox(0, 0, 2, 2).expand(1)
        assert (e.min_x, e.max_x) == (-1, 3)

    def test_min_distance_inside_is_zero(self):
        assert BBox(0, 0, 10, 10).min_distance_to(Point(5, 5)) == 0.0

    def test_min_distance_outside(self):
        assert BBox(0, 0, 10, 10).min_distance_to(Point(13, 14)) == 5.0

    def test_max_distance(self):
        assert BBox(0, 0, 10, 10).max_distance_to(Point(0, 0)) == pytest.approx(
            math.hypot(10, 10)
        )

    def test_area_center(self):
        b = BBox(0, 0, 4, 2)
        assert b.area == 8
        assert b.center == Point(2, 1)


class TestSegmentOps:
    def test_projection_interior(self):
        q, t = project_point_to_segment(Point(5, 5), Point(0, 0), Point(10, 0))
        assert q == Point(5, 0)
        assert t == 0.5

    def test_projection_clamped(self):
        q, t = project_point_to_segment(Point(-5, 3), Point(0, 0), Point(10, 0))
        assert q == Point(0, 0)
        assert t == 0.0

    def test_projection_degenerate_segment(self):
        q, t = project_point_to_segment(Point(1, 1), Point(2, 2), Point(2, 2))
        assert q == Point(2, 2) and t == 0.0

    def test_point_segment_distance(self):
        assert point_segment_distance(Point(5, 3), Point(0, 0), Point(10, 0)) == 3.0

    def test_perpendicular_vs_segment_distance(self):
        # Beyond the endpoint: segment distance grows, line distance doesn't.
        p = Point(20, 3)
        assert perpendicular_distance(p, Point(0, 0), Point(10, 0)) == 3.0
        assert point_segment_distance(p, Point(0, 0), Point(10, 0)) > 3.0

    def test_perpendicular_degenerate(self):
        assert perpendicular_distance(Point(3, 4), Point(0, 0), Point(0, 0)) == 5.0


class TestPolyline:
    def test_length(self):
        pts = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert polyline_length(pts) == 7.0

    def test_length_short(self):
        assert polyline_length([Point(0, 0)]) == 0.0

    def test_point_along(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10)]
        assert point_along_polyline(pts, 15) == Point(10, 5)

    def test_point_along_clamps(self):
        pts = [Point(0, 0), Point(10, 0)]
        assert point_along_polyline(pts, -5) == Point(0, 0)
        assert point_along_polyline(pts, 100) == Point(10, 0)

    def test_point_along_empty(self):
        with pytest.raises(ValueError):
            point_along_polyline([], 1.0)


class TestAnglesAndSED:
    def test_bearing_cardinal(self):
        assert bearing(Point(0, 0), Point(1, 0)) == 0.0
        assert bearing(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_angle_difference_wraps(self):
        assert angle_difference(0.1, 2 * math.pi - 0.1) == pytest.approx(0.2)

    def test_interpolate(self):
        assert interpolate(Point(0, 0), Point(10, 20), 0.25) == Point(2.5, 5.0)

    def test_sed_midpoint(self):
        # Uniform motion 0->10 over t in [0, 10]; at t=5 interpolant is (5, 0).
        d = synchronized_euclidean_distance(
            Point(5, 7), 5.0, Point(0, 0), 0.0, Point(10, 0), 10.0
        )
        assert d == 7.0

    def test_sed_degenerate_time(self):
        d = synchronized_euclidean_distance(
            Point(3, 4), 0.0, Point(0, 0), 0.0, Point(10, 0), 0.0
        )
        assert d == 5.0


class TestBulkOps:
    def test_pairwise(self):
        m = pairwise_distances([Point(0, 0), Point(3, 4)])
        assert m.shape == (2, 2)
        assert m[0, 1] == m[1, 0] == 5.0
        assert m[0, 0] == 0.0

    def test_pairwise_empty(self):
        assert pairwise_distances([]).shape == (0, 0)

    def test_hull_square(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        assert convex_hull_area(pts) == pytest.approx(1.0)

    def test_hull_collinear(self):
        assert convex_hull_area([Point(0, 0), Point(1, 1), Point(2, 2)]) == 0.0

    def test_haversine_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        d = haversine_m(0, 0, 1, 0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_haversine_zero(self):
        assert haversine_m(10, 50, 10, 50) == 0.0

    def test_euclidean_alias(self):
        assert euclidean(Point(0, 0), Point(6, 8)) == 10.0
