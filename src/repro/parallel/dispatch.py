"""Adaptive serial-vs-parallel dispatch: a measured cost model per pool.

The seed-era BENCH_parallel.json showed ``workers=2`` *slower* than
``workers=1`` on every workload: below some batch size the fixed dispatch
cost (payload pickling, pool round-trip, result transfer) dwarfs the kernel
work being distributed.  This module gives the parallel layer a measured
basis for that decision instead of a guess:

* :func:`calibrate_dispatch` times a seeded micro-probe serially (per-item
  kernel cost) and an idle pool round-trip (fixed dispatch overhead) on a
  warm executor — once per pool, best-of-rounds,
* :class:`DispatchModel` turns the two costs into a crossover batch size:
  parallel pays only when the per-item saving ``item_cost * (1 - 1/workers)``
  amortizes the overhead over the batch,
* :func:`dispatch_decision` routes one batch ``"serial"`` or ``"parallel"``,
  honouring the ``REPRO_PARALLEL_DISPATCH`` env override.

Routing only chooses *where* a batch runs.  Chunk boundaries and per-item
seeds are pure functions of the work-list (:mod:`repro.parallel.chunking`),
so the ``workers=1`` path is bit-identical to ``workers=N`` for every
consumer — a dispatch decision can change timings, never results.  With no
calibrated model registered (the default outside the benchmarks), ``auto``
behaves exactly like the pre-model layer: requested workers run parallel.

Timing here goes through the injectable :class:`~repro.obs.clock.Clock`
seam, keeping this module mechanically verifiable under reprolint R1.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..obs.clock import Clock, MonotonicClock
from .chunking import derive_seed

#: Environment override for batch routing: "serial" and "parallel" force the
#: backend unconditionally; "auto" (or unset) consults the calibrated model.
DISPATCH_ENV = "REPRO_PARALLEL_DISPATCH"

#: Accepted values of :data:`DISPATCH_ENV`.
DISPATCH_MODES = ("serial", "parallel", "auto")

#: Base seed for the calibration probe workload (fixed: calibration must
#: measure the same floating-point work on every box).
CALIBRATION_SEED = 2022

#: Elapsed-time floor (seconds) so a too-coarse clock can never produce a
#: zero cost and an infinite/zero crossover.
_MIN_ELAPSED = 1e-9


def dispatch_mode() -> str:
    """Routing mode from ``REPRO_PARALLEL_DISPATCH`` (default ``"auto"``)."""
    mode = os.environ.get(DISPATCH_ENV, "").strip().lower() or "auto"
    if mode not in DISPATCH_MODES:
        raise ValueError(
            f"{DISPATCH_ENV}={mode!r} is not a valid dispatch mode; "
            f"options: {DISPATCH_MODES}"
        )
    return mode


@dataclass(frozen=True)
class DispatchModel:
    """Calibrated cost model for one (workers, start_method) pool.

    ``dispatch_overhead_s`` is the fixed price of one pooled map call (an
    idle round-trip on the warm pool); ``item_cost_s`` is the serial cost of
    one probe item.  Both come from :func:`calibrate_dispatch`.
    """

    workers: int
    start_method: str | None
    dispatch_overhead_s: float
    item_cost_s: float
    probe_items: int

    def crossover_items(self, item_cost_s: float | None = None) -> float:
        """Batch size where parallel starts winning for the given item cost.

        Distributing ``n`` items over ``w`` workers saves at most
        ``n * cost * (1 - 1/w)`` versus serial while paying the fixed
        dispatch overhead, so the breakeven batch size is
        ``overhead / (cost * (1 - 1/w))``.  Defaults to the calibrated
        probe-item cost; pass a workload-specific per-item cost to place the
        crossover for that workload.
        """
        cost = self.item_cost_s if item_cost_s is None else item_cost_s
        cost = max(cost, _MIN_ELAPSED)
        saving_fraction = 1.0 - 1.0 / max(2, self.workers)
        return self.dispatch_overhead_s / (cost * saving_fraction)

    def choose(self, n_items: int, item_cost_s: float | None = None) -> str:
        """``"serial"`` below the crossover batch size, ``"parallel"`` above."""
        return "parallel" if n_items >= self.crossover_items(item_cost_s) else "serial"

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (crossover included) for benchmark provenance."""
        out: dict[str, Any] = asdict(self)
        out["crossover_items"] = self.crossover_items()
        return out


def _calibration_probe(index: int) -> float:
    """One seeded probe item: a small vectorized reduction, kernel-shaped.

    Deliberately sized like one cheap query kernel call (a few thousand
    flops on a contiguous block) so the calibrated per-item cost lands in
    the same regime as the real fan-out consumers.
    """
    rng = np.random.default_rng(derive_seed(CALIBRATION_SEED, index))
    block = rng.standard_normal(256)
    return float(np.sqrt(block * block + 1.0).sum())


def _probe_chunk(indices: Sequence[int]) -> float:
    """Pool-side calibration task: run the probe over one index chunk."""
    return sum(_calibration_probe(i) for i in indices)


def _best_of(rounds: int, clock: Clock, run: Callable[[], None]) -> float:
    """Minimum elapsed seconds of ``run`` over ``rounds`` attempts."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = clock.now()
        run()
        best = min(best, clock.now() - t0)
    return max(best, _MIN_ELAPSED)


def calibrate_dispatch(
    executor: Any,
    *,
    clock: Clock | None = None,
    probe_items: int = 256,
    rounds: int = 3,
) -> DispatchModel:
    """Measure one pool's dispatch overhead and the serial probe-item cost.

    ``executor`` must be a warm parallel executor (a
    :class:`~repro.parallel.pool.PoolLease` or
    :class:`~repro.parallel.executor.ProcessExecutor`); one untimed
    round-trip warms it before measurement.  The overhead measurement maps
    one near-empty task per worker through the pool (pickling + IPC +
    scheduling, no kernel work); the item cost runs the same seeded probe
    in-process.  Both take the best of ``rounds`` attempts, which rejects
    scheduler noise on shared runners.
    """
    clock = MonotonicClock() if clock is None else clock
    workers = int(getattr(executor, "workers", 1))
    start_method = getattr(executor, "start_method", None)
    idle_payloads = [(i,) for i in range(max(1, workers))]
    executor.map_ordered(_probe_chunk, idle_payloads)  # warm, untimed
    overhead = _best_of(
        rounds, clock, lambda: executor.map_ordered(_probe_chunk, idle_payloads)
    )

    def serial_run() -> None:
        for i in range(probe_items):
            _calibration_probe(i)

    serial_run()  # warm numpy/caches, untimed
    item_cost = _best_of(rounds, clock, serial_run) / max(1, probe_items)
    return DispatchModel(
        workers=workers,
        start_method=start_method,
        dispatch_overhead_s=overhead,
        item_cost_s=item_cost,
        probe_items=probe_items,
    )


def dispatch_decision(
    n_items: int | None,
    workers: int | None,
    start_method: str | None = None,
    *,
    item_cost_s: float | None = None,
) -> str:
    """Route one batch: ``"serial"`` or ``"parallel"``.

    The env override wins outright; in ``auto`` mode the decision consults
    the pool manager's calibrated model for ``(workers, start_method)``.
    Unknown batch size, serial-anyway worker counts, or an uncalibrated
    pool all resolve to ``"parallel"`` — i.e. exactly the legacy behaviour,
    so the model only ever *removes* dispatch overhead that measurement
    proved unprofitable.
    """
    mode = dispatch_mode()
    if mode == "serial":
        return "serial"
    if mode == "parallel":
        return "parallel"
    if n_items is None or workers is None or workers <= 1:
        return "parallel"
    from .pool import get_pool_manager

    model = get_pool_manager().model_for(workers, start_method)
    if model is None:
        return "parallel"
    return model.choose(n_items, item_cost_s)
