"""Symbolic indoor tracking and cleansing ([114, 118]; generalizes the
corridor cleaner of :mod:`repro.cleaning.rfid` to arbitrary floor plans).

An object walks from room to room; room-level readers detect it with false
negatives (missed epochs) and false positives (adjacent-room cross-reads).
The :class:`RoomHMMTracker` recovers the room sequence with a hidden Markov
model whose transition structure *is the floor plan* — the spatial
constraint modeling the tutorial emphasizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .space import IndoorSpace


@dataclass(frozen=True)
class RoomReading:
    """One raw symbolic detection: epoch, detected room."""

    epoch: int
    room: str


def simulate_room_walk(
    space: IndoorSpace,
    rng: np.random.Generator,
    n_epochs: int,
    start_room: str | None = None,
    move_prob: float = 0.3,
) -> list[str]:
    """A topology-respecting room sequence (the symbolic ground truth)."""
    rooms = sorted(space.rooms)
    current = start_room if start_room is not None else str(rng.choice(rooms))
    if current not in space.rooms:
        raise ValueError(f"unknown start room {current}")
    seq = []
    for _ in range(n_epochs):
        seq.append(current)
        if rng.random() < move_prob:
            neighbors = space.adjacent_rooms(current)
            if neighbors:
                current = str(rng.choice(neighbors))
    return seq


def observe_rooms(
    space: IndoorSpace,
    truth: list[str],
    rng: np.random.Generator,
    p_detect: float = 0.8,
    p_cross: float = 0.1,
) -> list[RoomReading]:
    """Emit raw room readings with false negatives and adjacent cross-reads."""
    if not 0.0 <= p_detect <= 1.0 or not 0.0 <= p_cross <= 1.0:
        raise ValueError("probabilities must be in [0, 1]")
    readings: list[RoomReading] = []
    for epoch, room in enumerate(truth):
        if rng.random() < p_detect:
            readings.append(RoomReading(epoch, room))
        for neighbor in space.adjacent_rooms(room):
            if rng.random() < p_cross:
                readings.append(RoomReading(epoch, neighbor))
    return readings


class RoomHMMTracker:
    """Viterbi decoding of room occupancy from raw symbolic readings.

    States are rooms; transitions allow staying or moving to an adjacent
    room (the floor plan as prior); emissions model detection and
    cross-read probabilities per reader.
    """

    def __init__(
        self,
        space: IndoorSpace,
        p_detect: float = 0.8,
        p_cross: float = 0.1,
        stay_prob: float = 0.7,
    ) -> None:
        if not (0 < p_detect <= 1 and 0 <= p_cross < 1 and 0 < stay_prob < 1):
            raise ValueError("probabilities out of range")
        self.space = space
        self.rooms = sorted(space.rooms)
        self._index = {r: i for i, r in enumerate(self.rooms)}
        self.p_detect = p_detect
        self.p_cross = p_cross
        self.stay_prob = stay_prob
        self._log_a = self._log_transitions()

    def _log_transitions(self) -> np.ndarray:
        n = len(self.rooms)
        a = np.full((n, n), -math.inf)
        move = 1.0 - self.stay_prob
        for r in self.rooms:
            i = self._index[r]
            neighbors = self.space.adjacent_rooms(r)
            options = {i: self.stay_prob}
            for nb in neighbors:
                options[self._index[nb]] = move / len(neighbors)
            total = sum(options.values())
            for j, p in options.items():
                a[i, j] = math.log(p / total)
        return a

    def _log_emission(self, room: str, fired: set[str]) -> float:
        logp = 0.0
        neighbors = set(self.space.adjacent_rooms(room))
        for r in self.rooms:
            if r == room:
                p = self.p_detect
            elif r in neighbors:
                p = self.p_cross
            else:
                p = 1e-4
            logp += math.log(p) if r in fired else math.log(1.0 - min(p, 1 - 1e-9))
        return logp

    def track(self, readings: list[RoomReading], n_epochs: int) -> list[str]:
        """Most probable room per epoch."""
        by_epoch: dict[int, set[str]] = {}
        for r in readings:
            by_epoch.setdefault(r.epoch, set()).add(r.room)
        n = len(self.rooms)
        delta = np.array(
            [
                self._log_emission(r, by_epoch.get(0, set())) - math.log(n)
                for r in self.rooms
            ]
        )
        back = np.zeros((n_epochs, n), dtype=int)
        for t in range(1, n_epochs):
            fired = by_epoch.get(t, set())
            emis = np.array([self._log_emission(r, fired) for r in self.rooms])
            scores = delta[:, None] + self._log_a
            back[t] = np.argmax(scores, axis=0)
            delta = scores[back[t], np.arange(n)] + emis
        path = [int(np.argmax(delta))]
        for t in range(n_epochs - 1, 0, -1):
            path.append(int(back[t, path[-1]]))
        path.reverse()
        return [self.rooms[i] for i in path]


def raw_room_sequence(
    readings: list[RoomReading], n_epochs: int
) -> list[str | None]:
    """Uncleaned baseline: an arbitrary fired room per epoch (None if silent)."""
    by_epoch: dict[int, list[str]] = {}
    for r in readings:
        by_epoch.setdefault(r.epoch, []).append(r.room)
    return [
        (sorted(by_epoch[e])[0] if e in by_epoch else None) for e in range(n_epochs)
    ]


def sequence_accuracy(decoded: list[str | None], truth: list[str]) -> float:
    """Fraction of epochs with the correct room."""
    if not truth:
        return 1.0
    correct = sum(
        1 for d, t in zip(decoded, truth) if d == t
    )
    return correct / len(truth)
