"""Online trajectory simplification (Sec. 2.2.6, [54, 69, 73, 82]).

One-pass algorithms suited to resource-constrained IoT devices — the
tutorial's *online* DR branch.  Implemented:

* :func:`opening_window` — keep a window open while every buffered point
  stays within the SED bound of the window chord (OPW-TR [54]),
* :class:`DeadReckoningReporter` — report a point only when the actual
  position drifts more than a threshold from the last reported
  linear-motion prediction (the device-side suppression primitive),
* :class:`SquishE` — SQUISH-E(ε) [82]: a bounded-priority-queue compressor
  whose priorities accumulate discarded-neighbor error, guaranteeing an
  SED bound while running online.
"""

from __future__ import annotations

import heapq
import itertools

from ..core.geometry import synchronized_euclidean_distance
from ..core.trajectory import Trajectory, TrajectoryPoint


def opening_window(traj: Trajectory, epsilon: float) -> Trajectory:
    """OPW-TR: greedy windows bounded by SED ``epsilon`` (one pass)."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    n = len(traj)
    if n <= 2:
        return traj
    kept = [traj[0]]
    anchor = 0
    i = 2
    while i < n:
        a, b = traj[anchor], traj[i]
        ok = all(
            synchronized_euclidean_distance(
                traj[j].point, traj[j].t, a.point, a.t, b.point, b.t
            )
            <= epsilon
            for j in range(anchor + 1, i)
        )
        if not ok:
            kept.append(traj[i - 1])
            anchor = i - 1
        i += 1
    kept.append(traj[n - 1])
    return Trajectory(kept, traj.object_id)


class DeadReckoningReporter:
    """Device-side dead reckoning: transmit only on prediction failure.

    After each report the device (and the server, symmetrically) predicts
    linear motion at the last reported velocity; a new report is sent when
    the true position deviates more than ``threshold``.  ``reported()``
    returns what the server received, and :func:`reconstruct` rebuilds the
    server-side estimate for error accounting.
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._reports: list[TrajectoryPoint] = []
        self._velocity: tuple[float, float] = (0.0, 0.0)

    def offer(self, p: TrajectoryPoint) -> bool:
        """Process one sample; returns True when it was transmitted."""
        if not self._reports:
            self._reports.append(p)
            return True
        last = self._reports[-1]
        dt = p.t - last.t
        pred_x = last.x + self._velocity[0] * dt
        pred_y = last.y + self._velocity[1] * dt
        if ((p.x - pred_x) ** 2 + (p.y - pred_y) ** 2) ** 0.5 > self.threshold:
            if dt > 0:
                self._velocity = ((p.x - last.x) / dt, (p.y - last.y) / dt)
            self._reports.append(p)
            return True
        return False

    def run(self, traj: Trajectory) -> Trajectory:
        """Feed a whole trajectory (resets state); returns the transmitted subset."""
        self._reports = []
        self._velocity = (0.0, 0.0)
        for p in traj:
            self.offer(p)
        return self.reported(traj.object_id)

    def reported(self, object_id: str = "") -> Trajectory:
        """The transmitted samples as a trajectory."""
        return Trajectory(self._reports, object_id)


def reconstruct_dead_reckoning(
    reports: Trajectory, at_times: list[float]
) -> list[tuple[float, float]]:
    """Server-side reconstruction: extrapolate each report at its velocity.

    Returns ``(x, y)`` per query time.  Between report k and k+1 the server
    runs the velocity in effect after report k (estimated from the previous
    leg), matching the device's prediction rule.
    """
    out = []
    pts = reports.points
    for t in at_times:
        # Find the last report at or before t.
        k = 0
        for i, p in enumerate(pts):
            if p.t <= t:
                k = i
        base = pts[k]
        if k == 0:
            vx = vy = 0.0
        else:
            prev = pts[k - 1]
            dt = base.t - prev.t
            vx = (base.x - prev.x) / dt if dt > 0 else 0.0
            vy = (base.y - prev.y) / dt if dt > 0 else 0.0
        dt = t - base.t
        out.append((base.x + vx * dt, base.y + vy * dt))
    return out


class SquishE:
    """SQUISH-E(ε): online priority-queue simplification with an SED bound.

    Each buffered point carries a priority = the SED it would introduce if
    removed, plus the accumulated priority of previously removed neighbors.
    Points are evicted while the minimum priority stays <= ``epsilon``,
    so the final buffer guarantees ``max SED <= epsilon``.
    """

    def __init__(self, epsilon: float) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon

    def simplify(self, traj: Trajectory) -> Trajectory:
        """Run the priority-queue eviction; returns the SED-bounded subset."""
        n = len(traj)
        if n <= 2:
            return traj
        pts = list(traj.points)
        # Doubly linked structure over indices.
        prev = list(range(-1, n - 1))
        nxt = list(range(1, n + 1))
        inherited = [0.0] * n
        alive = [True] * n
        counter = itertools.count()
        heap: list[tuple[float, int, int]] = []

        def sed_if_removed(i: int) -> float:
            a, b = pts[prev[i]], pts[nxt[i]]
            return synchronized_euclidean_distance(
                pts[i].point, pts[i].t, a.point, a.t, b.point, b.t
            )

        def push(i: int) -> None:
            pri = inherited[i] + sed_if_removed(i)
            heapq.heappush(heap, (pri, next(counter), i))

        for i in range(1, n - 1):
            push(i)
        while heap:
            pri, _, i = heapq.heappop(heap)
            if not alive[i] or prev[i] < 0 or nxt[i] >= n:
                continue
            # Skip stale entries (priority changed since push).
            current = inherited[i] + sed_if_removed(i)
            if abs(current - pri) > 1e-12:
                continue
            if pri > self.epsilon:
                break
            # Remove i; neighbors inherit its priority.
            alive[i] = False
            p, q = prev[i], nxt[i]
            nxt[p], prev[q] = q, p
            for j in (p, q):
                if 0 < j < n - 1 and alive[j]:
                    inherited[j] = max(inherited[j], pri)
                    push(j)
        kept = [pts[i] for i in range(n) if alive[i]]
        return Trajectory(kept, traj.object_id)
