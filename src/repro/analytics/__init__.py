"""Analyses on low-quality SID (Sec. 2.3.2)."""

from .anomaly import (
    LegScore,
    MovementModel,
    OnlineAnomalyDetector,
    detection_rates,
)
from .clustering import (
    UncertainTrajectoryClusterer,
    cluster_crisp_trajectories,
    clustering_agreement,
    crisp_trajectory_distance,
    dbscan,
    expected_trajectory_distance,
    kmedoids,
)
from .coevolution import (
    change_series,
    coevolution_matrix,
    find_coevolving_groups,
    group_purity,
    lagged_correlation,
)
from .patterns import (
    UncertainSymbol,
    mine_frequent_sequences,
    mine_frequent_sequences_certain,
    pattern_precision_recall,
    symbolize,
)
from .generation import (
    MarkovTrajectoryGenerator,
    nearest_real_distance,
    visit_distribution_divergence,
)
from .routes import TransferNetwork, route_overlap
from .streaming import (
    ContinuousSimilarityMonitor,
    MonitorUpdate,
    cell_signature,
    signature_distance,
)
from .similarity import (
    PAIRWISE_METRICS,
    SearchStats,
    SimilaritySearch,
    bbox_lower_bound,
    dtw_distance,
    edr_distance,
    frechet_distance,
    hausdorff_distance,
    pairwise_distances,
)

__all__ = [
    "LegScore",
    "MovementModel",
    "OnlineAnomalyDetector",
    "detection_rates",
    "UncertainTrajectoryClusterer",
    "cluster_crisp_trajectories",
    "clustering_agreement",
    "crisp_trajectory_distance",
    "dbscan",
    "expected_trajectory_distance",
    "kmedoids",
    "change_series",
    "coevolution_matrix",
    "find_coevolving_groups",
    "group_purity",
    "lagged_correlation",
    "UncertainSymbol",
    "mine_frequent_sequences",
    "mine_frequent_sequences_certain",
    "pattern_precision_recall",
    "symbolize",
    "TransferNetwork",
    "route_overlap",
    "ContinuousSimilarityMonitor",
    "MonitorUpdate",
    "cell_signature",
    "signature_distance",
    "PAIRWISE_METRICS",
    "SearchStats",
    "SimilaritySearch",
    "bbox_lower_bound",
    "dtw_distance",
    "edr_distance",
    "frechet_distance",
    "hausdorff_distance",
    "pairwise_distances",
    "MarkovTrajectoryGenerator",
    "nearest_real_distance",
    "visit_distribution_divergence",
]
