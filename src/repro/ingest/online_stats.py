"""Incremental, O(1)-memory online counterparts of the batch DQ metrics.

Each metric in :mod:`repro.core.quality` consumes a *finished* collection;
a quality middleware for live SID (Sec. 2.4 of the tutorial) must instead
maintain the same quantities per sensor while the stream is still running.
:class:`OnlineSensorStats` does that with constant memory per sensor:

* completeness vs. an expected sampling rate — slot counting, matching
  :func:`repro.core.quality.completeness` exactly on in-order streams;
* staleness — age of the freshest reading, matching
  :func:`repro.core.quality.staleness` per source;
* redundancy — duplicate ratio against a time-bounded kept set, matching
  :func:`repro.core.quality.redundancy_ratio` for time-ordered streams;
* precision — positional jitter via Welford's algorithm over the same
  3-point second differences as :func:`repro.core.quality.precision_jitter`;
* value consistency — rate-constraint violations, the streaming reading of
  :func:`repro.cleaning.screen.speed_violations`;
* time sparsity, latency, and data volume as running means/counts.

:class:`WindowedSensorStats` adds a sliding horizon by pane rotation (two
tumbling panes of ``window`` seconds each), so stale degradation ages out
of the snapshot instead of haunting the cumulative averages forever.
"""

from __future__ import annotations

import math
from collections import deque

from ..core.quality import Dimension, QualityReport
from .events import IngestEvent


class Welford:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        """Fold one sample into the running moments."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far (0 when n < 2)."""
        return self._m2 / self.n if self.n >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the samples seen so far."""
        return math.sqrt(self.variance)

    @classmethod
    def combine(cls, a: "Welford", b: "Welford") -> "Welford":
        """Merge two accumulators (Chan et al. parallel update)."""
        out = cls()
        out.n = a.n + b.n
        if out.n == 0:
            return out
        delta = b.mean - a.mean
        out.mean = a.mean + delta * (b.n / out.n)
        out._m2 = a._m2 + b._m2 + delta * delta * (a.n * b.n / out.n)
        return out


class OnlineSensorStats:
    """Constant-memory quality accumulators for one sensor's stream.

    ``expected_interval`` enables the completeness metric; ``space_eps`` /
    ``time_eps`` parameterize duplicate detection exactly as in
    :func:`repro.core.quality.redundancy_ratio`; ``value_rate_bounds`` is an
    optional ``(s_min, s_max)`` pair enabling the value-consistency metric
    (fraction of consecutive readings whose change rate is feasible).
    """

    __slots__ = (
        "expected_interval",
        "space_eps",
        "time_eps",
        "value_rate_bounds",
        "n",
        "latency",
        "jitter",
        "_t_start",
        "_t_first",
        "_t_max",
        "_last_t",
        "_gap_sum",
        "_gap_count",
        "_slots_filled",
        "_last_slot",
        "_prev_slot",
        "_first_slot",
        "_dups",
        "_kept",
        "_violations",
        "_pairs",
        "_prev_vt",
        "_first_vt",
        "_tail",
    )

    def __init__(
        self,
        expected_interval: float | None = None,
        space_eps: float = 1.0,
        time_eps: float = 0.5,
        value_rate_bounds: tuple[float, float] | None = None,
        t_start: float | None = None,
    ) -> None:
        if expected_interval is not None and expected_interval <= 0:
            raise ValueError("expected_interval must be positive")
        if value_rate_bounds is not None and value_rate_bounds[0] > value_rate_bounds[1]:
            raise ValueError("value_rate_bounds must be (s_min, s_max) with s_min <= s_max")
        self.expected_interval = expected_interval
        self.space_eps = space_eps
        self.time_eps = time_eps
        self.value_rate_bounds = value_rate_bounds
        self.n = 0
        self.latency = Welford()
        self.jitter = Welford()
        self._t_start = t_start  # completeness schedule origin
        self._t_first: float | None = None  # first event time seen
        self._t_max: float | None = None
        self._last_t: float | None = None
        self._gap_sum = 0.0
        self._gap_count = 0
        self._slots_filled = 0
        self._last_slot: int | None = None
        self._prev_slot: int | None = None
        self._first_slot: int | None = None
        self._dups = 0
        self._kept: deque[tuple[float, float, float]] = deque()  # (x, y, t) non-dups
        self._violations = 0
        self._pairs = 0
        self._prev_vt: tuple[float, float] | None = None  # (t, value)
        self._first_vt: tuple[float, float] | None = None
        self._tail: deque[tuple[float, float]] = deque(maxlen=2)  # (x, y) for jitter

    # -- ingestion ---------------------------------------------------------------

    def update(self, event: IngestEvent) -> None:
        """Fold one reading into every accumulator (O(1) amortized)."""
        t = event.t
        self.n += 1
        self.latency.push(event.arrival_time - t)

        if self._t_first is None:
            self._t_first = t
        if self._t_start is None:
            self._t_start = t
        if self._t_max is None or t > self._t_max:
            self._t_max = t

        # time sparsity: running mean sampling gap
        if self._last_t is not None:
            self._gap_sum += t - self._last_t
            self._gap_count += 1
        self._last_t = t

        # completeness: count distinct expected-schedule slots (in-order streams)
        if self.expected_interval is not None and t >= self._t_start:
            slot = int((t - self._t_start) / self.expected_interval)
            if self._last_slot is None or slot > self._last_slot:
                self._slots_filled += 1
                self._prev_slot = self._last_slot
                self._last_slot = slot
                if self._first_slot is None:
                    self._first_slot = slot

        # redundancy: duplicate against the kept set within time_eps
        while self._kept and self._kept[0][2] < t - self.time_eps:
            self._kept.popleft()
        is_dup = any(
            math.hypot(kx - event.x, ky - event.y) <= self.space_eps
            and abs(kt - t) <= self.time_eps
            for kx, ky, kt in self._kept
        )
        if is_dup:
            self._dups += 1
        else:
            self._kept.append((event.x, event.y, t))

        # value consistency: rate-constraint violations between consecutive readings
        if self.value_rate_bounds is not None and not math.isnan(event.value):
            if self._first_vt is None:
                self._first_vt = (t, event.value)
            if self._prev_vt is not None:
                self._count_rate_pair(self._prev_vt, (t, event.value))
            self._prev_vt = (t, event.value)

        # precision: Welford over 3-point second-difference deviations
        if len(self._tail) == 2:
            (x0, y0), (x1, y1) = self._tail
            dev = math.hypot(x1 - (x0 + event.x) / 2.0, y1 - (y0 + event.y) / 2.0)
            self.jitter.push(dev)
        self._tail.append((event.x, event.y))

    def _count_rate_pair(self, prev: tuple[float, float], cur: tuple[float, float]) -> None:
        s_min, s_max = self.value_rate_bounds  # type: ignore[misc]
        dt = cur[0] - prev[0]
        if dt <= 0:
            return
        rate = (cur[1] - prev[1]) / dt
        self._pairs += 1
        if rate < s_min - 1e-12 or rate > s_max + 1e-12:
            self._violations += 1

    # -- snapshots ---------------------------------------------------------------

    @property
    def last_event_time(self) -> float | None:
        """Event time of the freshest reading (None before any reading)."""
        return self._t_max

    def completeness(self) -> float | None:
        """Fraction of expected sampling slots filled so far (None if unset).

        Slots are counted from the first *observed* reading onward, which
        coincides with :func:`repro.core.quality.completeness` whenever the
        schedule starts at the first sample (the usual case), and lets
        windowed panes score only the span they actually cover.
        """
        if (
            self.expected_interval is None
            or self._t_max is None
            or self._t_start is None
            or self._t_max <= self._t_start
        ):
            return None
        n_slots = int(math.ceil((self._t_max - self._t_start) / self.expected_interval))
        denom = n_slots - (self._first_slot or 0)
        if denom <= 0:
            return None
        filled = self._slots_filled
        # A final reading exactly at t_end opens slot n_slots, which the batch
        # metric clamps into slot n_slots-1; undo the double count if needed.
        if self._last_slot is not None and self._last_slot >= n_slots:
            if self._prev_slot is not None and self._prev_slot == n_slots - 1:
                filled -= 1
        return min(1.0, filled / denom)

    def snapshot(self, now: float | None = None) -> QualityReport:
        """The stream so far as a batch-compatible :class:`QualityReport`.

        ``now`` is the wall-clock instant used for staleness; when omitted
        the staleness dimension is left out of the report.
        """
        report = QualityReport()
        report.set(Dimension.DATA_VOLUME, float(self.n))
        if self.n == 0:
            return report
        report.set(Dimension.LATENCY, self.latency.mean)
        report.set(Dimension.REDUNDANCY, self._dups / self.n)
        if self._gap_count > 0:
            report.set(Dimension.TIME_SPARSITY, self._gap_sum / self._gap_count)
        if self.jitter.n > 0:
            report.set(Dimension.PRECISION, self.jitter.mean)
        elif self.n >= 1:
            report.set(Dimension.PRECISION, 0.0)
        comp = self.completeness()
        if comp is not None:
            report.set(Dimension.COMPLETENESS, comp)
        if self.value_rate_bounds is not None and self._pairs > 0:
            report.set(Dimension.CONSISTENCY, 1.0 - self._violations / self._pairs)
        if now is not None and self._t_max is not None:
            report.set(Dimension.STALENESS, now - self._t_max)
        return report

    # -- pane merging (sliding windows) ------------------------------------------

    @classmethod
    def combine(cls, a: "OnlineSensorStats", b: "OnlineSensorStats") -> "OnlineSensorStats":
        """Merge two pane accumulators covering adjacent time ranges.

        ``a`` must cover the earlier range.  The merge is exact for every
        metric except redundancy, where duplicates straddling the pane
        boundary are undercounted (each pane deduplicates independently).
        """
        out = cls(
            expected_interval=a.expected_interval,
            space_eps=a.space_eps,
            time_eps=a.time_eps,
            value_rate_bounds=a.value_rate_bounds,
        )
        if a.n == 0:
            return b._copy_into(out)
        if b.n == 0:
            return a._copy_into(out)
        out.n = a.n + b.n
        out.latency = Welford.combine(a.latency, b.latency)
        out.jitter = Welford.combine(a.jitter, b.jitter)
        out._t_start = a._t_start
        out._t_first = a._t_first
        out._t_max = max(a._t_max, b._t_max)  # type: ignore[type-var]
        out._last_t = b._last_t
        out._gap_sum = a._gap_sum + b._gap_sum
        out._gap_count = a._gap_count + b._gap_count
        if a._last_t is not None and b._t_first is not None:
            out._gap_sum += b._t_first - a._last_t  # the cross-pane gap
            out._gap_count += 1
        out._slots_filled = a._slots_filled + b._slots_filled
        if (
            a._last_slot is not None
            and b._first_slot is not None
            and a._last_slot == b._first_slot
        ):
            out._slots_filled -= 1  # the boundary slot was counted by both panes
        out._last_slot = b._last_slot if b._last_slot is not None else a._last_slot
        if b._prev_slot is not None:
            out._prev_slot = b._prev_slot
        elif b._last_slot is not None and a._last_slot != b._last_slot:
            out._prev_slot = a._last_slot
        else:
            out._prev_slot = a._prev_slot
        out._first_slot = a._first_slot if a._first_slot is not None else b._first_slot
        out._dups = a._dups + b._dups
        out._kept = deque(b._kept)
        out._violations = a._violations + b._violations
        out._pairs = a._pairs + b._pairs
        if a._prev_vt is not None and b._first_vt is not None:
            out._count_rate_pair(a._prev_vt, b._first_vt)  # the cross-pane pair
        out._prev_vt = b._prev_vt if b._prev_vt is not None else a._prev_vt
        out._first_vt = a._first_vt if a._first_vt is not None else b._first_vt
        out._tail = deque(b._tail, maxlen=2)
        return out

    def _copy_into(self, out: "OnlineSensorStats") -> "OnlineSensorStats":
        for name in self.__slots__:
            value = getattr(self, name)
            if isinstance(value, deque):
                value = deque(value, maxlen=value.maxlen)
            setattr(out, name, value)
        return out


class WindowedSensorStats:
    """Sliding-horizon quality via two-pane rotation.

    Readings accumulate into the *current* pane; when the pane has covered
    ``window`` seconds of event time it becomes the *previous* pane and a
    fresh one starts.  Snapshots merge the two panes, so every snapshot
    reflects between ``window`` and ``2 * window`` seconds of history and
    older degradation ages out.
    """

    __slots__ = ("window", "_kwargs", "_current", "_previous", "_pane_start", "_origin")

    def __init__(self, window: float, **stats_kwargs) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._kwargs = stats_kwargs
        self._current = OnlineSensorStats(**stats_kwargs)
        self._previous: OnlineSensorStats | None = None
        self._pane_start: float | None = None
        self._origin: float | None = stats_kwargs.get("t_start")

    def update(self, event: IngestEvent) -> None:
        """Fold one reading, rotating panes when the window elapses."""
        if self._pane_start is None:
            self._pane_start = event.t
            if self._origin is None:
                self._origin = event.t
        elif event.t - self._pane_start >= self.window:
            self._previous = self._current
            # Every pane shares the original schedule origin so completeness
            # slot indices stay comparable when panes are merged.
            kwargs = dict(self._kwargs, t_start=self._origin)
            self._current = OnlineSensorStats(**kwargs)
            self._pane_start = self._pane_start + self.window * math.floor(
                (event.t - self._pane_start) / self.window
            )
        self._current.update(event)

    def snapshot(self, now: float | None = None) -> QualityReport:
        """Quality of the last one-to-two windows of stream history."""
        return self._merged().snapshot(now)

    @property
    def last_event_time(self) -> float | None:
        """Event time of the freshest reading within the horizon."""
        return self._merged().last_event_time

    def _merged(self) -> OnlineSensorStats:
        if self._previous is None:
            return self._current
        return OnlineSensorStats.combine(self._previous, self._current)
