import numpy as np
import pytest

from repro.core import BBox, Point
from repro.synth import SmoothField, random_sensor_sites, records_with_truth


@pytest.fixture
def field(rng, box):
    return SmoothField(rng, box, n_bumps=4, length_scale=200.0, drift_speed=0.1)


class TestSmoothField:
    def test_deterministic_value(self, field):
        p = Point(300, 300)
        assert field.value(p, 100.0) == field.value(p, 100.0)

    def test_spatial_autocorrelation(self, field):
        """Nearby points must be more similar than distant points."""
        base = Point(500, 500)
        near = abs(field.value(base, 0) - field.value(Point(510, 500), 0))
        far_vals = [
            abs(field.value(base, 0) - field.value(Point(500 + d, 500), 0))
            for d in (300, 400, 500)
        ]
        assert near <= max(far_vals) + 1e-9

    def test_varies_smoothly_in_time(self, field):
        p = Point(400, 400)
        v0, v1 = field.value(p, 0.0), field.value(p, 1.0)
        assert abs(v0 - v1) < 1.0

    def test_diurnal_period(self, rng, box):
        f = SmoothField(rng, box, n_bumps=0, diurnal_amplitude=3.0, period=100.0)
        p = Point(0, 0)
        assert f.value(p, 0.0) == pytest.approx(f.value(p, 100.0), abs=1e-9)
        assert f.value(p, 25.0) - f.value(p, 0.0) == pytest.approx(3.0, abs=1e-9)

    def test_invalid_anisotropy(self, rng, box):
        with pytest.raises(ValueError):
            SmoothField(rng, box, anisotropy=0.0)

    def test_anisotropic_field_directional(self, rng, box):
        f = SmoothField(
            np.random.default_rng(5), box, n_bumps=1, anisotropy=4.0,
            drift_speed=0.0, diurnal_amplitude=0.0,
        )
        bump = f._bumps[0]
        c = Point(bump.cx, bump.cy)
        dx = abs(f.value(Point(c.x + 200, c.y), 0) - f.value(c, 0))
        dy = abs(f.value(Point(c.x, c.y + 200), 0) - f.value(c, 0))
        # sigma_x = 4 * sigma_y: moving along x changes the value less.
        assert dx < dy

    def test_values_batch(self, field):
        pts = [Point(0, 0), Point(100, 100)]
        vals = field.values(pts, 0.0)
        assert vals.shape == (2,)
        assert vals[0] == field.value(pts[0], 0.0)


class TestSampling:
    def test_sensor_series_shapes(self, field, rng):
        sites = random_sensor_sites(rng, 5, field.bbox)
        times = np.arange(0, 100, 10.0)
        series = field.sample_sensors(sites, times, rng)
        assert len(series) == 5
        assert all(len(s) == 10 for s in series)
        assert len({s.sensor_id for s in series}) == 5

    def test_noise_level(self, field, rng):
        site = [Point(500, 500)]
        times = np.arange(0, 2000, 1.0)
        s = field.sample_sensors(site, times, rng, noise_sigma=2.0)[0]
        truth = np.array([field.value(site[0], t) for t in times])
        assert np.std(s.values - truth) == pytest.approx(2.0, rel=0.15)

    def test_bias_is_constant_per_sensor(self, field, rng):
        sites = random_sensor_sites(rng, 3, field.bbox)
        times = np.arange(0, 100, 10.0)
        series = field.sample_sensors(sites, times, rng, noise_sigma=0.0, bias_per_sensor=5.0)
        for s, loc in zip(series, sites):
            truth = np.array([field.value(loc, t) for t in times])
            offsets = s.values - truth
            assert np.std(offsets) < 1e-9  # constant offset
        # Not all sensors share the same offset.
        offs = [float((s.values - np.array([field.value(loc, t) for t in times]))[0])
                for s, loc in zip(series, sites)]
        assert np.std(offs) > 0.1

    def test_truth_grid(self, field):
        g = field.truth_grid(cell_size=250, t_step=50, t_start=0, t_end=100)
        assert g.missing_fraction() == 0.0
        p, t = g.cell_center(0, 0, 0)
        assert g.values[0, 0, 0] == pytest.approx(field.value(p, t))

    def test_records_with_truth(self, field, rng):
        sites = random_sensor_sites(rng, 2, field.bbox)
        series = field.sample_sensors(sites, np.array([0.0, 10.0]), rng, noise_sigma=1.0)
        pairs = records_with_truth(field, series)
        assert len(pairs) == 4
        for rec, truth in pairs:
            assert abs(rec.value - truth) < 6.0  # noise-bounded
